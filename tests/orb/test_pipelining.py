"""Request pipelining: concurrent in-flight calls on one connection.

The tentpole scenarios of the multiplexing layer:

* N threads invoking through one proxy share one connection, and their
  upcalls genuinely overlap on the server's worker pool;
* a slow request's deadline cancels only its own future — independent
  calls on the same connection proceed, and the late reply is dropped
  as stale without killing the connection;
* a transport stall delays replies, but every caller still fails (or
  completes) by its *own* deadline instead of queueing behind the
  stalled call;
* a connection reset fails every in-flight call with the right CORBA
  exception, and the retry budget accounting stays exact across the
  fan-out;
* interleaved traced calls still produce correct span trees and exact
  per-span byte attribution.
"""

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import ZCOctetSequence
from repro.idl import compile_idl
from repro.obs import SpanCollector, build_span_tree, dump_spans
from repro.obs.cli import main as metrics_cli
from repro.orb import (COMM_FAILURE, ORB, TIMEOUT, CompletionStatus,
                       InvocationPolicy, ORBConfig)
from repro.transport import FaultPlan, faulty_registry

PIPE_IDL = """
interface Pipe {
    double work(in double seconds);
    unsigned long poke(in unsigned long x);
};
"""

_pipe_api = None


def _pipe():
    global _pipe_api
    if _pipe_api is None:
        _pipe_api = compile_idl(PIPE_IDL, module_name="_pipelining_idl")
    return _pipe_api


def make_pipe_impl():
    api = _pipe()

    class PipeImpl(api.Pipe_skel):
        def __init__(self):
            self._lock = threading.Lock()
            self.active = 0
            self.max_active = 0
            self.pokes = 0

        def work(self, seconds):
            with self._lock:
                self.active += 1
                self.max_active = max(self.max_active, self.active)
            time.sleep(seconds)
            with self._lock:
                self.active -= 1
            return seconds

        def poke(self, x):
            with self._lock:
                self.pokes += 1
            return (x + 1) & 0xFFFFFFFF

    return PipeImpl()


@pytest.fixture
def pipe_pair_factory():
    """makes (stub, impl, client, server); optional FaultPlan/policy."""
    orbs = []

    def make(scheme="loop", plan=None, policy=None, workers=4):
        server = ORB(ORBConfig(scheme=scheme, server_workers=workers))
        if plan is not None:
            client = ORB(ORBConfig(scheme=scheme, collocated_calls=False),
                         transports=faulty_registry(plan), policy=policy)
        else:
            client = ORB(ORBConfig(scheme=scheme, collocated_calls=False),
                         policy=policy)
        orbs.extend([client, server])
        impl = make_pipe_impl()
        ref = server.activate(impl)
        stub = client.string_to_object(server.object_to_string(ref))
        return stub, impl, client, server

    yield make
    for orb in orbs:
        orb.shutdown()


def _proxy(client):
    return next(iter(client._proxies.values()))


class TestPipelining:
    @pytest.mark.parametrize("scheme", ["loop", "tcp"])
    def test_concurrent_calls_share_one_connection(self, pipe_pair_factory,
                                                   scheme):
        stub, impl, client, _ = pipe_pair_factory(scheme, workers=8)
        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(lambda _: stub.work(0.15), range(8)))
        elapsed = time.perf_counter() - t0
        assert results == [0.15] * 8
        proxy = _proxy(client)
        # one connection served all eight callers...
        assert proxy.stats.reconnects == 0
        assert proxy.calls == 8
        # ...and the upcalls overlapped rather than queueing: serial
        # execution would need 8 * 0.15 = 1.2s
        assert impl.max_active >= 2
        assert elapsed < 0.9

    def test_deadline_cancels_only_its_own_call(self, pipe_pair_factory):
        """A slow request times out on its own; an independent call on
        the same connection completes while it is still in flight, and
        the eventual late reply is dropped without hurting anyone."""
        stub, impl, client, _ = pipe_pair_factory("loop")
        slow_pol = InvocationPolicy(timeout=0.2)
        outcome = {}

        def slow():
            t0 = time.perf_counter()
            with pytest.raises(TIMEOUT) as ei:
                client.invoke(stub.ior, stub._signature("work"), [0.8],
                              policy=slow_pol)
            outcome["elapsed"] = time.perf_counter() - t0
            outcome["exc"] = ei.value

        slow_thread = threading.Thread(target=slow)
        slow_thread.start()
        time.sleep(0.05)  # the slow request is now in flight
        # independent calls complete well within the slow call's window
        for i in range(3):
            assert stub.poke(i) == i + 1
        slow_thread.join(timeout=5)
        assert outcome["exc"].completed is CompletionStatus.COMPLETED_MAYBE
        assert outcome["elapsed"] < 0.6  # its own deadline, not 0.8s
        proxy = _proxy(client)
        assert proxy.stats.timeouts == 1
        # the connection survived the timeout AND the stale late reply
        time.sleep(0.9)
        assert stub.poke(41) == 42
        assert proxy.stats.reconnects == 0

    def test_transport_stall_respects_each_callers_deadline(
            self, pipe_pair_factory):
        """The demux reader stalls on the wire; every waiter gives up at
        its *own* deadline rather than riding out the stall."""
        plan = FaultPlan().stall_recv(nth=1, delay=1.2)
        pol = InvocationPolicy(timeout=0.3)
        stub, _, client, _ = pipe_pair_factory("tcp", plan=plan, policy=pol)
        elapsed = {}

        def call(i):
            t0 = time.perf_counter()
            with pytest.raises(TIMEOUT):
                stub.poke(i)
            elapsed[i] = time.perf_counter() - t0

        threads = [threading.Thread(target=call, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        # both timed out at ~0.3s; neither waited for the 1.2s stall
        assert all(v < 1.0 for v in elapsed.values()), elapsed
        assert _proxy(client).stats.timeouts == 2
        # once the stall clears, the same connection serves new calls
        time.sleep(1.2)
        assert stub.poke(7) == 8
        assert _proxy(client).stats.reconnects == 0

    def test_reset_fails_all_inflight_and_retry_budget_holds(
            self, pipe_pair_factory):
        """One wire reset, two requests in flight: both futures fail
        with a retryable verdict, both (idempotent) calls re-issue on a
        fresh connection, and the shared stats count every step once."""
        plan = FaultPlan().reset_on_recv(nth=1)
        sleeps = []
        pol = InvocationPolicy(max_retries=2, seed=7, sleep=sleeps.append)
        stub, impl, client, _ = pipe_pair_factory("loop", plan=plan,
                                                  policy=pol)
        sig = dataclasses.replace(stub._signature("work"), idempotent=True)
        results = []

        def call():
            results.append(client.invoke(stub.ior, sig, [0.15], policy=pol))

        threads = [threading.Thread(target=call) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert results == [0.15, 0.15]
        assert [e.action for e in plan.events] == ["reset"]
        stats = _proxy(client).stats
        # each of the two failed in-flight calls retried exactly once,
        # and the dead connection was replaced exactly once
        assert stats.retries == 2
        assert stats.reconnects == 1
        assert stats.timeouts == 0

    def test_nonidempotent_inflight_calls_fail_completed_maybe(
            self, pipe_pair_factory):
        """Without idempotence the fan-out failure must surface, each
        caller getting its own COMPLETED_MAYBE COMM_FAILURE."""
        plan = FaultPlan().reset_on_recv(nth=1)
        pol = InvocationPolicy(max_retries=2, seed=7, sleep=lambda s: None)
        stub, _, client, _ = pipe_pair_factory("loop", plan=plan,
                                               policy=pol)
        failures = []

        def call():
            with pytest.raises(COMM_FAILURE) as ei:
                stub.work(0.15)
            failures.append(ei.value)

        threads = [threading.Thread(target=call) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert len(failures) == 2
        assert all(f.completed is CompletionStatus.COMPLETED_MAYBE
                   for f in failures)
        # distinct exception instances per caller, no cross-threading
        assert failures[0] is not failures[1]
        assert _proxy(client).stats.retries == 0


class TestInterleavedTracing:
    def test_two_clients_interleaved_spans_build_correct_trees(
            self, tmp_path):
        """Two traced clients pipeline deposit-carrying calls at one
        traced server; every span lands on the right tree, the stage
        order inside each client span survives the interleaving, and
        per-span byte splits still reconcile exactly with each
        connection's ConnStats."""
        collector = SpanCollector()

        def traced(seed, server=True):
            cfg = ORBConfig(scheme="loop") if server else \
                ORBConfig(scheme="loop", collocated_calls=False)
            orb = ORB(cfg)
            orb.enable_tracing(distributed=True, collector=collector,
                               trace_seed=seed)
            return orb

        server = traced(1)
        clients = [traced(seed, server=False) for seed in (2, 3)]
        try:
            impl = make_pipe_impl()
            ref = server.activate(impl)
            ior = server.object_to_string(ref)
            stubs = [c.string_to_object(ior) for c in clients]

            def drive(stub):
                with ThreadPoolExecutor(max_workers=3) as pool:
                    list(pool.map(lambda s: stub.work(s),
                                  [0.05, 0.08, 0.03]))

            with ThreadPoolExecutor(max_workers=2) as outer:
                list(outer.map(drive, stubs))

            deadline = time.monotonic() + 5
            while len(collector) < 12 and time.monotonic() < deadline:
                time.sleep(0.005)
            spans = collector.spans
            assert len(spans) == 12  # 6 calls x (client + server)

            forest = build_span_tree(spans)
            assert len(forest) == 6  # every call is its own trace
            for roots in forest.values():
                (root,) = roots
                assert root.span.kind == "client"
                (child,) = root.children
                assert child.span.kind == "server"
                assert child.span.request_id == root.span.request_id
                # interleaving must not scramble the per-span stages
                assert [e.stage for e in root.span.stages] == \
                    ["marshal", "control-send", "deposit-send",
                     "server-wait", "deposit-recv", "demarshal"]

            # per-client reconciliation: the spans of each client sum
            # to exactly that client's connection counters
            for client in clients:
                proxy = next(iter(client._proxies.values()))
                node = f"orb{client.orb_id}"
                cli_spans = [s for s in spans
                             if s.kind == "client" and s.node == node]
                assert len(cli_spans) == 3
                assert sum(s.control_bytes_sent for s in cli_spans) == \
                    proxy.stats.bytes_sent
                assert sum(s.control_bytes_recv for s in cli_spans) == \
                    proxy.stats.bytes_received

            # the CLI agrees the interleaved dump is a valid forest
            dump_path = str(tmp_path / "interleaved.json")
            dump_spans(collector, dump_path)
            assert metrics_cli(["check", dump_path]) == 0
            assert metrics_cli(["tree", dump_path]) == 0
        finally:
            for orb in clients:
                orb.shutdown()
            server.shutdown()

    def test_deposit_bytes_reconcile_under_pipelining(self):
        """Zero-copy deposit accounting stays exact when the deposits
        of several in-flight calls interleave on one connection."""
        collector = SpanCollector()
        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        server.enable_tracing(distributed=True, collector=collector,
                              trace_seed=5)
        client.enable_tracing(distributed=True, collector=collector,
                              trace_seed=6)
        try:
            from tests.conftest import make_store_impl
            import tests.conftest as conf
            api = compile_idl(conf.TEST_IDL,
                              module_name="_test_store_idl")
            impl = make_store_impl(api)
            ref = server.activate(impl)
            stub = client.string_to_object(server.object_to_string(ref))

            sizes = [8 * 1024, 16 * 1024, 32 * 1024, 4 * 1024]
            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(
                    lambda n: stub.put(ZCOctetSequence.from_data(bytes(n))),
                    sizes))

            proxy = next(iter(client._proxies.values()))
            cli_spans = [s for s in collector.spans if s.kind == "client"]
            assert len(cli_spans) == 4
            assert sum(s.deposit_bytes_sent for s in cli_spans) == \
                proxy.stats.deposit_bytes_sent == sum(sizes)
            assert sum(s.control_bytes_sent for s in cli_spans) == \
                proxy.stats.bytes_sent
            assert impl._get_total() == sum(sizes)
        finally:
            client.shutdown()
            server.shutdown()


class TestServerPoolObservability:
    def test_inflight_gauge_and_queue_histogram(self, pipe_pair_factory):
        """The worker pool reports its gauge/histogram through the
        server ORB's metrics registry once tracing is enabled."""
        stub, impl, client, server = pipe_pair_factory("loop", workers=4)
        server.enable_tracing()
        reg = server.metrics
        assert reg is not None
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(lambda _: stub.work(0.1), range(4)))
        gauge = reg.gauge("server_inflight_requests")
        assert gauge.value == 0  # all drained
        hist = reg.histogram(
            "server_queue_depth",
            buckets=server._server.workers.QUEUE_BUCKETS)
        assert hist.count == 4  # one sample per submitted request
