"""AMI-style deferred invocation tests."""

import time

import pytest

from repro.core import OctetSequence, ZCOctetSequence
from repro.orb import BAD_PARAM, ORB, ORBConfig
from repro.orb.async_invoke import AsyncInvoker, invoke_async


class TestAsyncInvoker:
    def test_future_result(self, loop_pair):
        stub, impl, *_ = loop_pair
        with AsyncInvoker() as ami:
            fut = ami.submit(stub, "put_std", (OctetSequence(b"async"),))
            assert fut.result(timeout=10) == 5

    def test_exception_through_future(self, loop_pair, test_api):
        stub, *_ = loop_pair
        with AsyncInvoker() as ami:
            fut = ami.submit(stub, "put",
                             (ZCOctetSequence.from_data(b""),))
            with pytest.raises(test_api.Test_Failed):
                fut.result(timeout=10)

    def test_calls_to_different_servers_overlap(self, test_api):
        """Two slow servers, one deferred call each: wall time ~ one
        call, not two."""
        from repro.idl import compile_idl
        api = compile_idl("""
        interface Slow { double work(in double seconds); };
        """, module_name="_ami_slow_idl")

        class SlowImpl(api.Slow_skel):
            def work(self, seconds):
                time.sleep(seconds)
                return seconds

        client = ORB(ORBConfig(scheme="tcp", collocated_calls=False))
        orbs, stubs = [], []
        for _ in range(2):
            orb = ORB(ORBConfig(scheme="tcp"))
            stubs.append(client.string_to_object(
                orb.object_to_string(orb.activate(SlowImpl()))))
            orbs.append(orb)
        try:
            with AsyncInvoker() as ami:
                t0 = time.perf_counter()
                futures = [ami.submit(s, "work", (0.3,)) for s in stubs]
                results = [f.result(timeout=10) for f in futures]
                elapsed = time.perf_counter() - t0
            assert results == [0.3, 0.3]
            assert elapsed < 0.55  # overlapped, not 0.6+ serial
        finally:
            client.shutdown()
            for orb in orbs:
                orb.shutdown()

    def test_map_unordered(self, loop_pair):
        stub, impl, *_ = loop_pair
        with AsyncInvoker() as ami:
            results = ami.map_unordered([
                (stub, "put_std", (OctetSequence(bytes(n)),))
                for n in (10, 20, 30)])
        # deferred calls to one server now pipeline, so arrival order
        # is unspecified — but every deposit lands exactly once, and
        # whichever call lands last sees the full total
        assert max(results) == 60
        assert impl._get_total() == 60

    def test_submit_after_shutdown_rejected(self, loop_pair):
        stub, *_ = loop_pair
        ami = AsyncInvoker()
        ami.shutdown()
        with pytest.raises(BAD_PARAM):
            ami.submit(stub, "reset", ())

    def test_bad_target_rejected(self):
        with AsyncInvoker() as ami:
            with pytest.raises(BAD_PARAM):
                ami.submit("nope", "op")

    def test_module_level_helper(self, loop_pair):
        stub, *_ = loop_pair
        fut = invoke_async(stub, "swap", ("xy",))
        assert fut.result(timeout=10) == ("XY", "yx")
