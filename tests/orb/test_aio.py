"""The native coroutine surface: ``await proxy.op(...)``, windowed
fan-out, the sync↔async bridge, and buffer hygiene when an awaited
call is cancelled mid-flight."""

import asyncio
import threading
import time

import pytest

from repro.core import BufferPool, OctetSequence
from repro.orb import BAD_OPERATION, ORB, ORBConfig
from repro.orb.aio import async_api, gather_window, run_sync
from tests.conftest import make_store_impl


def _settle(predicate, timeout=5.0, step=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


@pytest.fixture
def async_pair(test_api):
    impl = make_store_impl(test_api)
    server = ORB(ORBConfig(scheme="tcp"))
    client = ORB(ORBConfig(scheme="tcp"))
    stub = client.string_to_object(
        server.object_to_string(server.activate(impl)))
    yield async_api(stub), stub, impl, client, server
    client.shutdown()
    server.shutdown()


class TestAsyncStub:
    def test_await_returns_sync_result(self, async_pair):
        ast, stub, impl, *_ = async_pair

        async def go():
            return await ast.put_std(OctetSequence(b"hello"))

        assert asyncio.run(go()) == 5
        assert impl._total == 5

    def test_multiple_ops_and_user_exception(self, async_pair, test_api):
        ast, *_ = async_pair

        async def go():
            got = await ast.get_std(16)
            assert bytes(got) == bytes(i % 256 for i in range(16))
            with pytest.raises(test_api.Test_Failed) as ei:
                from repro.core import ZCOctetSequence
                await ast.put(ZCOctetSequence.from_data(b""))
            assert ei.value.code == 7

        asyncio.run(go())

    def test_unknown_operation_raises_at_call(self, async_pair):
        ast, *_ = async_pair

        async def go():
            await ast.no_such_op()

        with pytest.raises(BAD_OPERATION):
            asyncio.run(go())

    def test_private_attribute_stays_attribute_error(self, async_pair):
        ast, *_ = async_pair
        with pytest.raises(AttributeError):
            ast._private

    def test_sync_property_returns_wrapped_stub(self, async_pair):
        ast, stub, *_ = async_pair
        assert ast.sync is stub


class TestGatherWindow:
    def test_results_in_submission_order(self, async_pair):
        ast, *_ = async_pair

        async def go():
            return await gather_window(
                [lambda n=n: ast.get_std(n) for n in range(12)],
                window=3)

        results = asyncio.run(go())
        assert [len(bytes(r)) for r in results] == list(range(12))

    def test_return_exceptions(self, async_pair):
        ast, *_ = async_pair

        async def go():
            return await gather_window(
                [lambda: ast.get_std(4), lambda: ast.no_such_op()],
                window=2, return_exceptions=True)

        ok, err = asyncio.run(go())
        assert bytes(ok) == bytes([0, 1, 2, 3])
        assert isinstance(err, BAD_OPERATION)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            asyncio.run(gather_window([], window=0))


class TestRunSync:
    def test_bridges_from_a_plain_thread(self, async_pair):
        ast, *_ = async_pair
        got = run_sync(ast.get_std(5), timeout=30.0)
        assert len(bytes(got)) == 5


class TestCancellation:
    def test_cancelled_call_releases_deposit_buffers(self, test_api):
        """S3: cancel an awaited zero-copy reply mid-flight; when the
        stale reply lands later its deposit buffers must go straight
        back to the client's BufferPool — no leak."""
        pool = BufferPool()
        impl = make_store_impl(test_api)
        entered = threading.Event()
        release = threading.Event()
        orig_get = impl.get

        def slow_get(n):
            entered.set()
            assert release.wait(10.0)
            return orig_get(n)

        impl.get = slow_get
        server = ORB(ORBConfig(scheme="tcp"))
        client = ORB(ORBConfig(scheme="tcp"), pool=pool)
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(impl)))
            ast = async_api(stub)

            async def go():
                task = asyncio.create_task(ast.get(256 * 1024))
                loop = asyncio.get_running_loop()
                assert await loop.run_in_executor(None, entered.wait, 10)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                release.set()

            asyncio.run(go())

            # the late reply is stale: the demux drops it and releases
            # every deposit buffer it acquired from the pool
            def no_leak():
                s = pool.stats()
                acquired = s["hits"] + s["misses"]
                return acquired > 0 and acquired == s["reclaims"]

            assert _settle(no_leak), pool.stats()
        finally:
            release.set()
            client.shutdown()
            server.shutdown()

    def test_cancel_during_send_hop_releases_late_reply(
            self, test_api, monkeypatch):
        """The nastier race: cancellation lands while the marshal+send
        is still on the executor thread — the awaiter never reaches the
        reply wait, but the send completes anyway and registers a
        reply nobody will collect.  The registration must be retired
        and the late reply's buffers reclaimed."""
        from repro.orb.proxy import IIOPProxy

        pool = BufferPool()
        impl = make_store_impl(test_api)
        server = ORB(ORBConfig(scheme="tcp"))
        client = ORB(ORBConfig(scheme="tcp"), pool=pool)
        in_send = threading.Event()
        cancelled = threading.Event()
        orig_send = IIOPProxy._send_attempt_sync

        def held_send(proxy, *a, **kw):
            in_send.set()
            assert cancelled.wait(10.0)
            return orig_send(proxy, *a, **kw)

        monkeypatch.setattr(IIOPProxy, "_send_attempt_sync", held_send)
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(impl)))
            ast = async_api(stub)

            async def go():
                task = asyncio.create_task(ast.get(256 * 1024))
                loop = asyncio.get_running_loop()
                assert await loop.run_in_executor(None, in_send.wait, 10)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                cancelled.set()

            asyncio.run(go())

            def no_leak():
                s = pool.stats()
                acquired = s["hits"] + s["misses"]
                return acquired > 0 and acquired == s["reclaims"]

            assert _settle(no_leak), pool.stats()
        finally:
            cancelled.set()
            client.shutdown()
            server.shutdown()
