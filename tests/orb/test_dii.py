"""Dynamic Invocation Interface tests."""

import pytest

from repro.cdr import (TC_SEQ_OCTET, TC_SEQ_ZC_OCTET, TC_STRING, TC_ULONG)
from repro.core import OctetSequence, ZCOctetSequence
from repro.orb import BAD_PARAM, DynRequest


class TestDynRequest:
    def test_dynamic_call_without_stub_method(self, loop_pair):
        stub, impl, *_ = loop_pair
        n = DynRequest(stub, "put_std", result_tc=TC_ULONG) \
            .add_in_arg(OctetSequence(b"dyn"), TC_SEQ_OCTET) \
            .invoke()
        assert n == 3
        assert impl.last.tobytes() == b"dyn"

    def test_dynamic_zero_copy_rides_deposit_path(self, loop_pair):
        """The deposit optimization is ORB property, not stub property."""
        stub, impl, client, _ = loop_pair
        payload = ZCOctetSequence.from_data(b"q" * 20_000)
        n = DynRequest(stub, "put", result_tc=TC_ULONG) \
            .add_in_arg(payload, TC_SEQ_ZC_OCTET) \
            .invoke()
        assert n == 20_000
        assert impl.last.is_page_aligned
        conn = next(iter(client._proxies.values())).conn
        assert conn.stats.deposits_sent == 1

    def test_inout_and_result(self, loop_pair):
        stub, *_ = loop_pair
        req = DynRequest(stub, "swap", result_tc=TC_STRING)
        req.add_inout_arg("abc", TC_STRING)
        assert req.invoke() == ("ABC", "cba")
        assert req.result == ("ABC", "cba")

    def test_oneway(self, loop_pair):
        stub, impl, *_ = loop_pair
        DynRequest(stub, "reset", oneway=True).invoke()
        assert impl.resets == 1

    def test_reinvocation_rejected(self, loop_pair):
        stub, *_ = loop_pair
        req = DynRequest(stub, "reset", oneway=True)
        req.invoke()
        with pytest.raises(BAD_PARAM, match="re-invoked"):
            req.invoke()

    def test_target_must_be_reference(self):
        with pytest.raises(BAD_PARAM):
            DynRequest("not a stub", "op")

    def test_user_exception_surfaces(self, loop_pair, test_api):
        stub, *_ = loop_pair
        req = DynRequest(stub, "put", result_tc=TC_ULONG,
                         raises=(test_api.Test_Failed.TYPECODE,))
        req.add_in_arg(ZCOctetSequence.from_data(b""), TC_SEQ_ZC_OCTET)
        with pytest.raises(test_api.Test_Failed):
            req.invoke()
