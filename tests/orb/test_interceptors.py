"""Request interceptor tests."""

import pytest

from repro.core import OctetSequence, ZCOctetSequence
from repro.orb import (BAD_PARAM, ORB, AccountingInterceptor, ORBConfig,
                       RequestInfo, RequestInterceptor)


class _Recorder(RequestInterceptor):
    def __init__(self):
        self.events = []

    def send_request(self, info):
        self.events.append(("send_request", info.operation))

    def receive_reply(self, info):
        self.events.append(("receive_reply", info.operation,
                            info.reply_status))

    def receive_request(self, info):
        self.events.append(("receive_request", info.operation))

    def send_reply(self, info):
        self.events.append(("send_reply", info.operation,
                            info.reply_status))


class TestInterceptors:
    def test_all_four_points_fire_in_order(self, test_api, store_impl):
        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        rec_client, rec_server = _Recorder(), _Recorder()
        client.interceptors.register(rec_client)
        server.interceptors.register(rec_server)
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(store_impl)))
            stub.put_std(OctetSequence(b"watch me"))
            assert rec_client.events == [
                ("send_request", "put_std"),
                ("receive_reply", "put_std", "NO_EXCEPTION")]
            assert rec_server.events == [
                ("receive_request", "put_std"),
                ("send_reply", "put_std", "NO_EXCEPTION")]
        finally:
            client.shutdown()
            server.shutdown()

    def test_exception_status_visible(self, test_api, store_impl):
        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        rec = _Recorder()
        client.interceptors.register(rec)
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(store_impl)))
            with pytest.raises(test_api.Test_Failed):
                stub.put(ZCOctetSequence.from_data(b""))
            assert rec.events[-1] == ("receive_reply", "put",
                                      "USER_EXCEPTION")
        finally:
            client.shutdown()
            server.shutdown()

    def test_interceptor_can_abort_call(self, test_api, store_impl):
        class Firewall(RequestInterceptor):
            def send_request(self, info):
                if info.operation == "reset":
                    raise BAD_PARAM(message="reset forbidden by policy")

        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        client.interceptors.register(Firewall())
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(store_impl)))
            stub.put_std(OctetSequence(b"ok"))  # allowed
            with pytest.raises(BAD_PARAM, match="forbidden"):
                stub._invoke("reset", ())
            assert store_impl.resets == 0  # never reached the servant
        finally:
            client.shutdown()
            server.shutdown()

    def test_accounting_interceptor(self, test_api, store_impl):
        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        acct = AccountingInterceptor()
        client.interceptors.register(acct)
        server.interceptors.register(acct)
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(store_impl)))
            for _ in range(3):
                stub.put_std(OctetSequence(b"x"))
            assert acct.calls["put_std"] == 3
            assert acct.calls["srv:put_std"] == 3
            assert acct.total_s["put_std"] > 0
            assert acct.errors == {}
        finally:
            client.shutdown()
            server.shutdown()

    def test_unregister(self, test_api, store_impl):
        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        rec = _Recorder()
        client.interceptors.register(rec)
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(store_impl)))
            stub.put_std(OctetSequence(b"a"))
            client.interceptors.unregister(rec)
            stub.put_std(OctetSequence(b"b"))
            assert len(rec.events) == 2  # only the first call recorded
        finally:
            client.shutdown()
            server.shutdown()

    def test_no_overhead_when_empty(self, loop_pair):
        """With no interceptors registered, no RequestInfo is built."""
        stub, impl, client, _ = loop_pair
        assert len(client.interceptors) == 0
        stub.put_std(OctetSequence(b"fast path"))  # must not blow up
