"""Unit tests for the object adapter and CORBA exceptions."""

import pytest

from repro.cdr import CDRDecoder, CDREncoder
from repro.orb import (BAD_PARAM, COMM_FAILURE, OBJECT_NOT_EXIST, POA,
                       CompletionStatus, Servant, SystemException,
                       UserException)
from repro.orb.exceptions import (decode_system_exception,
                                  encode_system_exception,
                                  system_exception_class)
from repro.orb.signatures import InterfaceDef


class _Thing(Servant):
    _INTERFACE = InterfaceDef(repo_id="IDL:Thing_poa:1.0", name="Thing")


class TestPOA:
    def test_activate_returns_stable_key(self):
        poa = POA("P")
        servant = _Thing()
        key1 = poa.activate_object(servant)
        key2 = poa.activate_object(servant)  # idempotent
        assert key1 == key2
        assert poa.find_servant(key1) is servant
        assert len(poa) == 1

    def test_distinct_servants_distinct_keys(self):
        poa = POA("P")
        keys = {poa.activate_object(_Thing()) for _ in range(10)}
        assert len(keys) == 10

    def test_deactivate(self):
        poa = POA("P")
        servant = _Thing()
        key = poa.activate_object(servant)
        poa.deactivate_object(key)
        assert poa.find_servant(key) is None
        with pytest.raises(OBJECT_NOT_EXIST):
            poa.deactivate_object(key)

    def test_reactivate_after_deactivate_gets_new_key(self):
        poa = POA("P")
        servant = _Thing()
        key = poa.activate_object(servant)
        poa.deactivate_object(key)
        key2 = poa.activate_object(servant)
        assert key2 != key

    def test_non_servant_rejected(self):
        with pytest.raises(BAD_PARAM):
            POA("P").activate_object(object())

    def test_servant_without_interface_rejected(self):
        class Bare(Servant):
            pass

        with pytest.raises(TypeError, match="_INTERFACE"):
            POA("P").activate_object(Bare())

    def test_keys_carry_poa_name(self):
        poa = POA("MyPOA")
        key = poa.activate_object(_Thing())
        assert key.startswith(b"MyPOA/")

    def test_implicit_object_operations(self):
        servant = _Thing()
        assert servant._is_a("IDL:Thing_poa:1.0")
        assert not servant._is_a("IDL:Other:1.0")
        assert servant._non_existent() is False


class TestSystemExceptions:
    def test_repo_ids(self):
        exc = COMM_FAILURE(minor=3)
        assert exc.repo_id == "IDL:omg.org/CORBA/COMM_FAILURE:1.0"
        assert exc.minor == 3
        assert exc.completed is CompletionStatus.COMPLETED_NO

    def test_wire_round_trip(self):
        exc = OBJECT_NOT_EXIST(
            minor=7, completed=CompletionStatus.COMPLETED_MAYBE)
        enc = CDREncoder()
        encode_system_exception(enc, exc)
        out = decode_system_exception(CDRDecoder(enc.getvalue()))
        assert type(out) is type(exc)
        assert out.minor == 7
        assert out.completed is CompletionStatus.COMPLETED_MAYBE

    def test_unknown_repo_id_maps_to_unknown(self):
        from repro.orb import UNKNOWN
        cls = system_exception_class("IDL:omg.org/CORBA/NOT_A_THING:1.0")
        assert cls is UNKNOWN

    def test_message_in_str_not_on_wire(self):
        exc = COMM_FAILURE(message="socket reset")
        assert "socket reset" in str(exc)
        enc = CDREncoder()
        encode_system_exception(enc, exc)
        out = decode_system_exception(CDRDecoder(enc.getvalue()))
        assert out.message == ""  # minor+status only, per spec

    def test_all_standard_exceptions_are_distinct_types(self):
        from repro.orb import exceptions as mod
        names = ["UNKNOWN", "BAD_PARAM", "COMM_FAILURE", "MARSHAL",
                 "TRANSIENT", "OBJECT_NOT_EXIST", "NO_IMPLEMENT",
                 "BAD_OPERATION", "INTERNAL", "TIMEOUT"]
        classes = [getattr(mod, n) for n in names]
        assert len(set(classes)) == len(classes)
        for cls in classes:
            assert issubclass(cls, SystemException)


class TestUserExceptions:
    def test_members_as_attributes(self):
        class MyExc(UserException):
            pass

        exc = MyExc(code=4, why="nope")
        assert exc.code == 4
        assert "why='nope'" in str(exc)

    def test_repo_id_requires_typecode(self):
        class NoTc(UserException):
            pass

        with pytest.raises(TypeError, match="TYPECODE"):
            NoTc().repo_id
