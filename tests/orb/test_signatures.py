"""Unit tests for operation signatures and the interface model."""

import pytest

from repro.cdr import CDRDecoder, CDREncoder, MarshalContext
from repro.cdr.typecode import TC_DOUBLE, TC_LONG, TC_STRING, exception_tc
from repro.orb import (BAD_PARAM, MARSHAL, InterfaceDef, OperationSignature,
                       Param, ParamMode)


def _sig(**kw):
    defaults = dict(name="op")
    defaults.update(kw)
    return OperationSignature(**defaults)


class TestParamMode:
    def test_directionality(self):
        assert ParamMode.IN.sends and not ParamMode.IN.returns
        assert ParamMode.OUT.returns and not ParamMode.OUT.sends
        assert ParamMode.INOUT.sends and ParamMode.INOUT.returns


class TestSignatureValidation:
    def test_oneway_constraints(self):
        with pytest.raises(ValueError):
            _sig(oneway=True, result_tc=TC_LONG)
        with pytest.raises(ValueError):
            _sig(oneway=True,
                 params=(Param("x", ParamMode.OUT, TC_LONG),))
        with pytest.raises(ValueError):
            _sig(oneway=True, raises=(exception_tc(
                "E", [], repo_id="IDL:Esig:1.0"),))
        _sig(oneway=True)  # valid

    def test_wrong_arg_count(self):
        sig = _sig(params=(Param("a", ParamMode.IN, TC_LONG),))
        with pytest.raises(BAD_PARAM, match="takes 1"):
            sig.marshal_request(CDREncoder(), [1, 2], MarshalContext())

    def test_out_params_not_sent(self):
        sig = _sig(params=(Param("a", ParamMode.IN, TC_LONG),
                           Param("b", ParamMode.OUT, TC_STRING)))
        enc = CDREncoder()
        sig.marshal_request(enc, [42], MarshalContext())
        dec = CDRDecoder(enc.getvalue())
        assert sig.demarshal_request(dec, MarshalContext()) == [42]
        assert dec.remaining == 0  # the OUT param used no wire space


class TestResultPacking:
    def test_void_no_outs(self):
        sig = _sig()
        assert sig.pack_results(None, []) is None
        assert sig.split_servant_return(None) == (None, [])

    def test_result_only(self):
        sig = _sig(result_tc=TC_LONG)
        assert sig.pack_results(7, []) == 7
        assert sig.split_servant_return(7) == (7, [])

    def test_single_out_void_result(self):
        sig = _sig(params=(Param("o", ParamMode.OUT, TC_STRING),))
        assert sig.pack_results(None, ["v"]) == "v"
        assert sig.split_servant_return("v") == (None, ["v"])

    def test_result_plus_outs(self):
        sig = _sig(result_tc=TC_LONG,
                   params=(Param("o1", ParamMode.OUT, TC_STRING),
                           Param("o2", ParamMode.INOUT, TC_DOUBLE)))
        assert sig.pack_results(1, ["a", 2.0]) == (1, "a", 2.0)
        assert sig.split_servant_return((1, "a", 2.0)) == (1, ["a", 2.0])

    def test_wrong_tuple_shape_rejected(self):
        sig = _sig(result_tc=TC_LONG,
                   params=(Param("o", ParamMode.OUT, TC_STRING),))
        with pytest.raises(MARSHAL, match="2-tuple"):
            sig.split_servant_return(5)

    def test_reply_marshal_count_checked(self):
        sig = _sig(params=(Param("o", ParamMode.OUT, TC_STRING),))
        with pytest.raises(MARSHAL, match="must produce 1"):
            sig.marshal_reply(CDREncoder(), None, [], MarshalContext())


class TestInterfaceDef:
    def _tree(self):
        base = InterfaceDef(repo_id="IDL:Base:1.0", name="Base",
                            operations=(_sig(name="ping"),
                                        _sig(name="shared")))
        derived = InterfaceDef(
            repo_id="IDL:Derived:1.0", name="Derived",
            operations=(_sig(name="extra"),
                        _sig(name="shared", result_tc=TC_LONG)),
            bases=(base,))
        return base, derived

    def test_find_operation_walks_bases(self):
        base, derived = self._tree()
        assert derived.find_operation("ping") is base.operations[0]
        assert derived.find_operation("extra") is not None
        assert derived.find_operation("ghost") is None

    def test_override_shadows_base(self):
        _, derived = self._tree()
        assert derived.find_operation("shared").result_tc is TC_LONG

    def test_all_operations_merged(self):
        _, derived = self._tree()
        ops = derived.all_operations()
        assert set(ops) == {"ping", "shared", "extra"}
        assert ops["shared"].result_tc is TC_LONG

    def test_is_a_transitive(self):
        base, derived = self._tree()
        assert derived.is_a("IDL:Derived:1.0")
        assert derived.is_a("IDL:Base:1.0")
        assert not base.is_a("IDL:Derived:1.0")

    def test_exception_lookup(self):
        tc = exception_tc("Boom", [("why", TC_STRING)],
                          repo_id="IDL:Boom_sig:1.0")
        sig = _sig(raises=(tc,))
        assert sig.exception_tc_by_id("IDL:Boom_sig:1.0") is tc
        assert sig.exception_tc_by_id("IDL:Other:1.0") is None
