"""Property test: arbitrary message mixes survive the connection layer
intact, at any fragmentation threshold."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import get_marshaller
from repro.cdr.typecode import TC_SEQ_OCTET, TC_SEQ_ZC_OCTET
from repro.core import OctetSequence, ZCOctetSequence
from repro.giop import MsgType, RequestHeader
from repro.orb.connection import GIOPConn
from repro.transport import LoopbackTransport

_payload = st.tuples(st.booleans(), st.binary(min_size=0, max_size=30000))


@settings(max_examples=40, deadline=None)
@given(st.lists(_payload, min_size=1, max_size=6),
       st.sampled_from([0, 100, 4096]))
def test_message_mix_round_trip(payloads, fragment_size):
    """Send a random mix of standard and zero-copy payloads as GIOP
    requests; every one must arrive byte-identical and in order."""
    transport = LoopbackTransport()
    accepted = []
    listener = transport.listen(f"prop-{id(payloads)}", 0, accepted.append)
    try:
        client_stream = transport.connect(listener.endpoint)
        sender = GIOPConn(client_stream, fragment_size=fragment_size)
        receiver = GIOPConn(accepted[0])

        for i, (zero_copy, data) in enumerate(payloads):
            tc = TC_SEQ_ZC_OCTET if zero_copy else TC_SEQ_OCTET
            value = (ZCOctetSequence.from_data(data) if zero_copy
                     else OctetSequence(data))
            ctx = sender.make_marshal_context()
            enc = sender.body_encoder()
            get_marshaller(tc).marshal(enc, value, ctx)
            sender.send_message(
                RequestHeader(request_id=i, object_key=b"obj",
                              operation=f"op{i}"),
                enc.getvalue(), ctx)

        for i, (zero_copy, data) in enumerate(payloads):
            rm = receiver.read_message()
            assert rm.header.msg_type is MsgType.Request
            req = rm.msg.body_header
            assert req.request_id == i
            assert req.operation == f"op{i}"
            tc = TC_SEQ_ZC_OCTET if zero_copy else TC_SEQ_OCTET
            dctx = rm.make_demarshal_context()
            out = get_marshaller(tc).demarshal(rm.params_decoder(), dctx)
            assert out.tobytes() == data
            if zero_copy and data:
                assert out.is_page_aligned
    finally:
        listener.close()
