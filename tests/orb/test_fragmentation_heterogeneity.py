"""GIOP 1.1 fragmentation and cross-endian interoperability tests.

Two CORBA-compliance properties the paper leans on:

* IIOP stays standard — including fragmented control messages;
* heterogeneity is negotiated per GIOP message byte-order flag, with
  receiver-makes-right conversion (§2.1); the homogeneous fast path
  merely *bypasses* conversion, it does not break mixed clusters.
"""

import itertools

import pytest

from repro.cdr.encoder import NATIVE_LITTLE
from repro.core import OctetSequence, ZCOctetSequence
from repro.orb import ORB, ORBConfig


class TestFragmentation:
    def _pair(self, test_api, store_impl, fragment_size):
        server = ORB(ORBConfig(scheme="loop",
                               fragment_size=fragment_size))
        client = ORB(ORBConfig(scheme="loop",
                               fragment_size=fragment_size,
                               collocated_calls=False))
        ref = server.activate(store_impl)
        stub = client.string_to_object(server.object_to_string(ref))
        return stub, client, server

    def test_large_request_fragmented_and_reassembled(self, test_api,
                                                      store_impl):
        stub, client, server = self._pair(test_api, store_impl,
                                          fragment_size=1024)
        try:
            data = bytes(range(256)) * 64  # 16 KiB inline payload
            assert stub.put_std(OctetSequence(data)) == len(data)
            assert store_impl.last.tobytes() == data
        finally:
            client.shutdown()
            server.shutdown()

    def test_fragmented_reply(self, test_api, store_impl):
        stub, client, server = self._pair(test_api, store_impl,
                                          fragment_size=512)
        try:
            seq = stub.get_std(8000)  # std sequence: inline reply body
            assert seq.tobytes() == bytes(i % 256 for i in range(8000))
        finally:
            client.shutdown()
            server.shutdown()

    def test_small_messages_not_fragmented(self, test_api, store_impl):
        stub, client, server = self._pair(test_api, store_impl,
                                          fragment_size=64 * 1024)
        try:
            assert stub.put_std(OctetSequence(b"tiny")) == 4
            conn = next(iter(client._proxies.values())).conn
            assert conn.stats.messages_sent == 1
        finally:
            client.shutdown()
            server.shutdown()

    def test_deposits_ride_after_final_fragment(self, test_api,
                                                store_impl):
        """Zero-copy payloads follow the last control fragment."""
        stub, client, server = self._pair(test_api, store_impl,
                                          fragment_size=128)
        try:
            data = b"Z" * 50_000
            assert stub.put(ZCOctetSequence.from_data(data)) == len(data)
            assert store_impl.last.tobytes() == data
            assert store_impl.last.is_page_aligned
        finally:
            client.shutdown()
            server.shutdown()

    def test_fragmentation_with_many_sizes(self, test_api, store_impl):
        stub, client, server = self._pair(test_api, store_impl,
                                          fragment_size=333)  # odd size
        try:
            for n in (1, 332, 333, 334, 999, 10_000):
                payload = bytes(i % 251 for i in range(n))
                stub.put_std(OctetSequence(payload))
                assert store_impl.last.tobytes() == payload
        finally:
            client.shutdown()
            server.shutdown()


class TestReassemblyLinearity:
    """Reassembling N fragments must cost O(N) copy work.

    The old loop rebuilt ``bytearray(body)`` from scratch per fragment
    — O(N^2) in the total size.  Timing the same reassembly at 64 and
    256 fragments (fixed fragment size) separates the regimes by a
    wide margin: linear predicts a ~4x wall-time ratio, quadratic
    (16x the copied bytes) predicts ~16x.
    """

    FRAG = 16 * 1024
    _ids = itertools.count(1)

    def _reassemble_seconds(self, fragments):
        import time

        from repro.cdr import get_marshaller
        from repro.cdr.typecode import TC_SEQ_OCTET
        from repro.giop import RequestHeader
        from repro.orb.connection import GIOPConn
        from repro.transport import LoopbackTransport

        transport = LoopbackTransport()
        accepted = []
        listener = transport.listen(
            f"reasm-{next(self._ids)}", 0, accepted.append)
        client_stream = transport.connect(listener.endpoint)
        listener.close()
        sender = GIOPConn(client_stream, fragment_size=self.FRAG)
        receiver = GIOPConn(accepted[0])
        try:
            # inline body large enough to split into ~`fragments` pieces
            data = bytes(self.FRAG) * (fragments - 1)
            ctx = sender.make_marshal_context()
            enc = sender.body_encoder()
            get_marshaller(TC_SEQ_OCTET).marshal(
                enc, OctetSequence(data), ctx)
            sender.send_message(
                RequestHeader(request_id=1, object_key=b"k",
                              operation="put"), enc.getvalue(), ctx)
            t0 = time.perf_counter()
            rm = receiver.read_message()
            elapsed = time.perf_counter() - t0
            assert rm.header.size >= len(data)
            return elapsed
        finally:
            client_stream.close()
            accepted[0].close()

    def test_256_fragments_reassemble_in_linear_time(self):
        small = min(self._reassemble_seconds(64) for _ in range(3))
        large = min(self._reassemble_seconds(256) for _ in range(3))
        # linear: ~4x; quadratic: ~16x.  8x splits the regimes with
        # margin for scheduler noise on either side.
        assert large < 8 * small, (
            f"256-fragment reassembly took {large:.4f}s vs {small:.4f}s "
            f"for 64 fragments ({large / small:.1f}x) — copy work is "
            f"superlinear in the fragment count")


class TestHeterogeneity:
    @pytest.mark.parametrize("client_little,server_little", [
        (True, False), (False, True), (False, False)])
    def test_cross_endian_pairs_interoperate(self, test_api, store_impl,
                                             client_little, server_little):
        """All byte-order pairings work: each side declares its order in
        the GIOP header, the receiver converts on mismatch."""
        server = ORB(ORBConfig(scheme="loop",
                               wire_little_endian=server_little))
        client = ORB(ORBConfig(scheme="loop",
                               wire_little_endian=client_little,
                               collocated_calls=False))
        try:
            ref = server.activate(store_impl)
            stub = client.string_to_object(server.object_to_string(ref))
            # typed data (string + struct + ulong) forces conversion
            h = test_api.Test_Header(name="héllo", size=0x01020304)
            assert stub.describe(h) == "héllo/16909060"
            # bulk octets: no conversion needed, any order
            data = bytes(range(256)) * 16
            assert stub.put_std(OctetSequence(data)) == len(data)
            assert store_impl.last.tobytes() == data
            # zero-copy path works cross-endian too (octets are
            # order-free; the descriptor rides in the declared order)
            assert stub.put(ZCOctetSequence.from_data(data)) == 2 * len(data)
        finally:
            client.shutdown()
            server.shutdown()

    def test_numeric_zc_cross_endian(self, test_api):
        """The §4.1 numeric extension fixes byte order in place."""
        import numpy as np
        from repro.idl import compile_idl
        api = compile_idl("""
        interface Het { sequence<zc_long> bump(in sequence<zc_long> v); };
        """, module_name="_test_het_idl")

        class Impl(api.Het_skel):
            def bump(self, v):
                return v + 1

        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(Impl())))
            # a foreign-endian array from the application
            foreign_order = ">i4" if NATIVE_LITTLE else "<i4"
            x = np.arange(1000, dtype=foreign_order)
            out = stub.bump(x)
            assert np.array_equal(out, np.arange(1, 1001))
        finally:
            client.shutdown()
            server.shutdown()


class TestFrameZeroCopy:
    """The framing hot path must slice the chunk plan, never join it.

    The old ``_frame`` flattened the scatter/gather plan into one
    ``bytes`` before cutting fragments — a full copy of every body on
    every fragmented send.  The rewrite walks the plan and emits
    per-fragment chunk lists whose pieces are memoryview slices of the
    original chunks.
    """

    FRAG = 1000
    _ids = itertools.count(1)

    def _conn(self, fragment_size):
        from repro.orb.connection import GIOPConn
        from repro.transport import LoopbackTransport

        transport = LoopbackTransport()
        accepted = []
        listener = transport.listen(
            f"frame-{next(self._ids)}", 0, accepted.append)
        stream = transport.connect(listener.endpoint)
        listener.close()
        return GIOPConn(stream, fragment_size=fragment_size)

    @staticmethod
    def _reassemble(chunks):
        """Strip the 12-byte GIOP headers; return the body bytes."""
        from repro.giop import GIOP_HEADER_SIZE, GIOPHeader

        wire = b"".join(bytes(c) for c in chunks)
        body = bytearray()
        pos = 0
        n_frags = 0
        while pos < len(wire):
            header = GIOPHeader.decode(
                memoryview(wire)[pos:pos + GIOP_HEADER_SIZE])
            pos += GIOP_HEADER_SIZE
            body += wire[pos:pos + header.size]
            pos += header.size
            n_frags += 1
        return bytes(body), n_frags

    def test_fragmented_wire_bytes_equal_unfragmented(self):
        from repro.giop import MsgType

        plan = [bytes([i % 256]) * n
                for i, n in enumerate((100, 3000, 17, 4500, 1))]
        nbytes = sum(len(c) for c in plan)

        flat_chunks, n1 = self._conn(0)._frame(
            MsgType.Request, list(plan), nbytes)
        frag_chunks, n2 = self._conn(self.FRAG)._frame(
            MsgType.Request, list(plan), nbytes)
        assert n1 == 1 and n2 == 8  # ceil(7618 / 1000)

        flat_body, _ = self._reassemble(flat_chunks)
        frag_body, n_headers = self._reassemble(frag_chunks)
        assert frag_body == flat_body == b"".join(plan)
        assert n_headers == 8

    def test_fragment_pieces_alias_the_original_chunks(self):
        """No copy: every body piece is a view into the caller's plan."""
        from repro.giop import MsgType

        big = bytearray(b"A" * 5000)
        plan = [b"hdr-bytes", memoryview(big)]
        chunks, n = self._conn(self.FRAG)._frame(
            MsgType.Request, plan, 9 + 5000)
        assert n > 1
        pieces = [c for c in chunks if isinstance(c, memoryview)]
        assert sum(p.nbytes for p in pieces) == 9 + 5000
        aliased = [p for p in pieces if p.obj is big]
        assert sum(p.nbytes for p in aliased) == 5000

        # aliasing is observable: mutate the source, the plan follows
        big[0:3] = b"XYZ"
        first = next(p for p in aliased)
        assert bytes(first[:3]) == b"XYZ"

    def test_odd_fragment_boundaries_respect_chunk_seams(self):
        """Chunk seams and fragment boundaries interleave arbitrarily."""
        from repro.giop import MsgType

        plan = [bytes([i % 256]) * n for i, n in enumerate(
            (1, 999, 1000, 1001, 5, 5, 5, 2500))]
        nbytes = sum(len(c) for c in plan)
        chunks, n = self._conn(self.FRAG)._frame(
            MsgType.Request, list(plan), nbytes)
        body, n_headers = self._reassemble(chunks)
        assert body == b"".join(plan)
        assert n == n_headers == -(-nbytes // self.FRAG)
