"""Failure injection: the ORB must fail loudly and cleanly, not hang
or corrupt state, when the wire or the peer misbehaves."""

import threading

import pytest

from repro.core import OctetSequence
from repro.giop import GIOPError, GIOPHeader, MsgType
from repro.orb import COMM_FAILURE, ORB, TRANSIENT, ORBConfig, SystemException
from repro.orb.connection import GIOPConn
from repro.transport import LoopbackTransport, TCPTransport


@pytest.fixture
def raw_pair():
    """A raw loopback stream pair (no ORB on the server side)."""
    transport = LoopbackTransport()
    accepted = []
    listener = transport.listen("fault-host", 0, accepted.append)
    client = transport.connect(listener.endpoint)
    yield client, accepted[0]
    listener.close()


class TestMalformedWire:
    def test_garbage_magic_raises_gioperror(self, raw_pair):
        client, server = raw_pair
        conn = GIOPConn(server)
        client.send(b"EVIL" + bytes(8))
        with pytest.raises(GIOPError, match="magic"):
            conn.read_message()

    def test_truncated_header(self, raw_pair):
        client, server = raw_pair
        conn = GIOPConn(server)
        client.send(b"GIOP\x01")  # 5 of 12 bytes, then silence
        with pytest.raises(SystemException):
            conn.read_message()

    def test_size_larger_than_stream(self, raw_pair):
        client, server = raw_pair
        conn = GIOPConn(server)
        header = GIOPHeader(msg_type=MsgType.Request, size=1000)
        client.send(header.encode() + b"short")
        with pytest.raises(COMM_FAILURE):
            conn.read_message()

    def test_bad_body_rejected_not_crash(self, raw_pair):
        client, server = raw_pair
        conn = GIOPConn(server)
        body = b"\xff" * 32  # nonsense RequestHeader
        header = GIOPHeader(msg_type=MsgType.Request, size=len(body))
        client.send(header.encode() + body)
        with pytest.raises(GIOPError):
            conn.read_message()

    def test_deposit_payload_missing(self, raw_pair):
        """Control message promises a deposit; the data never comes."""
        from repro.core import DepositDescriptor
        from repro.giop import RequestHeader, ServiceContext, encode_message
        client, server = raw_pair
        conn = GIOPConn(server)
        req = RequestHeader(
            request_id=1, object_key=b"k", operation="op",
            service_contexts=[ServiceContext.for_deposit(
                DepositDescriptor(1, 4096))])
        client.send(encode_message(req))  # header only, no payload
        with pytest.raises(COMM_FAILURE):
            conn.read_message()


class TestServerRobustness:
    def test_garbage_does_not_kill_other_clients(self, test_api,
                                                 store_impl):
        """One client writing garbage must not take down the server for
        a well-behaved client."""
        server = ORB(ORBConfig(scheme="tcp"))
        good = ORB(ORBConfig(scheme="tcp"))
        try:
            ref = server.activate(store_impl)
            ior = server.object_to_string(ref)
            stub = good.string_to_object(ior)
            assert stub.put_std(OctetSequence(b"before")) == 6

            # rogue client: raw socket, garbage bytes
            transport = TCPTransport()
            rogue = transport.connect(server.endpoint)
            rogue.send(b"totally not GIOP at all.....")
            rogue.close()

            assert stub.put_std(OctetSequence(b"after!")) == 12
        finally:
            good.shutdown()
            server.shutdown()

    def test_server_shutdown_mid_session_raises_comm_failure(
            self, test_api, store_impl):
        server = ORB(ORBConfig(scheme="tcp"))
        client = ORB(ORBConfig(scheme="tcp"))
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(store_impl)))
            stub.put_std(OctetSequence(b"ok"))
            server.shutdown()
            with pytest.raises((COMM_FAILURE, TRANSIENT)):
                stub.put_std(OctetSequence(b"too late"))
        finally:
            client.shutdown()
            server.shutdown()

    def test_reconnect_after_failure(self, test_api):
        """A fresh proxy connection works after the old one died."""
        from tests.conftest import make_store_impl
        server1 = ORB(ORBConfig(scheme="tcp"))
        client = ORB(ORBConfig(scheme="tcp"))
        impl1 = make_store_impl(test_api)
        try:
            stub = client.string_to_object(
                server1.object_to_string(server1.activate(impl1)))
            stub.put_std(OctetSequence(b"1"))
            server1.shutdown()
            with pytest.raises((COMM_FAILURE, TRANSIENT)):
                stub.put_std(OctetSequence(b"2"))
            # a brand-new server on a new port; new reference
            server2 = ORB(ORBConfig(scheme="tcp"))
            impl2 = make_store_impl(test_api)
            stub2 = client.string_to_object(
                server2.object_to_string(server2.activate(impl2)))
            assert stub2.put_std(OctetSequence(b"33")) == 2
            server2.shutdown()
        finally:
            client.shutdown()

    def test_concurrent_clients_over_tcp(self, test_api):
        """Several clients hammering one servant concurrently."""
        from tests.conftest import make_store_impl
        server = ORB(ORBConfig(scheme="tcp"))
        impl = make_store_impl(test_api)
        ior = server.object_to_string(server.activate(impl))
        errors = []

        def client_run(i):
            orb = ORB(ORBConfig(scheme="tcp"))
            try:
                stub = orb.string_to_object(ior)
                for j in range(20):
                    n = stub.put_std(OctetSequence(bytes([i]) * 100))
                    assert n > 0
            except Exception as e:  # noqa: BLE001 - recorded
                errors.append(e)
            finally:
                orb.shutdown()

        threads = [threading.Thread(target=client_run, args=(i,))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        server.shutdown()
        assert not errors
        assert impl._total == 4 * 20 * 100


class TestStreamChunking:
    def test_messages_survive_arbitrary_chunk_boundaries(self, raw_pair):
        """GIOP framing must not depend on send/recv boundary
        coincidence: deliver a valid message one byte at a time."""
        from repro.giop import RequestHeader, encode_message
        client, server = raw_pair
        conn = GIOPConn(server)
        msg = encode_message(RequestHeader(
            request_id=9, object_key=b"key", operation="frag_op"),
            params=b"PAYLOAD!")
        for i in range(len(msg)):
            client.send(msg[i:i + 1])
        rm = conn.read_message()
        assert rm.msg.body_header.operation == "frag_op"
        assert rm.params_decoder().get_view(8).tobytes() == b"PAYLOAD!"
