"""The resilience layer: deadlines, retry budgets, backoff, deposit
fallback — driven end-to-end through the ORB over the fault-injection
transport.

Covers the acceptance scenarios of the resilience subsystem: a call
that hits a mid-stream reset completes via retry with backoff; a call
exceeding its deadline raises TIMEOUT with an honest completion status;
an interrupted zero-copy deposit returns its buffer to the pool and the
retry succeeds via the copy path."""

import dataclasses
import time

import pytest

from repro.core import BufferPool, OctetSequence, ZCOctetSequence
from repro.orb import (COMM_FAILURE, ORB, TIMEOUT, CompletionStatus,
                       Deadline, InvocationPolicy, ORBConfig, retry_safe)
from repro.orb.exceptions import INTERNAL, TRANSIENT
from repro.transport import FaultPlan, faulty_registry


def _policy(**kw):
    """A test policy that records sleeps instead of performing them."""
    sleeps = []
    kw.setdefault("max_retries", 3)
    kw.setdefault("seed", 7)
    pol = InvocationPolicy(sleep=sleeps.append, **kw)
    return pol, sleeps


def faulty_client(plan, policy=None):
    return ORB(ORBConfig(scheme="loop"), transports=faulty_registry(plan),
               policy=policy)


@pytest.fixture
def faulty_pair_factory(test_api, store_impl):
    """makes (stub, impl, client, server) with a FaultPlan + policy."""
    orbs = []

    def make(plan, policy=None, server_pool=None):
        server = ORB(ORBConfig(scheme="loop"), pool=server_pool)
        client = faulty_client(plan, policy)
        orbs.extend([client, server])
        ref = server.activate(store_impl)
        stub = client.string_to_object(server.object_to_string(ref))
        return stub, store_impl, client, server

    yield make
    for orb in orbs:
        orb.shutdown()


class TestBackoffSchedule:
    def test_deterministic_given_seed(self):
        a = InvocationPolicy(max_retries=4, seed=11)
        b = InvocationPolicy(max_retries=4, seed=11)
        assert a.preview_schedule() == b.preview_schedule()
        assert [a.backoff(i) for i in range(4)] == b.preview_schedule()

    def test_exponential_without_jitter(self):
        pol = InvocationPolicy(max_retries=3, base_backoff=0.01,
                               backoff_multiplier=2.0, jitter=0.0)
        assert pol.preview_schedule() == [0.01, 0.02, 0.04]

    def test_backoff_ceiling(self):
        pol = InvocationPolicy(max_retries=8, base_backoff=0.1,
                               backoff_multiplier=10.0, max_backoff=0.5,
                               jitter=0.0)
        assert max(pol.preview_schedule()) == 0.5

    def test_jitter_stays_within_fraction(self):
        pol = InvocationPolicy(max_retries=50, base_backoff=0.1,
                               backoff_multiplier=1.0, jitter=0.2, seed=3)
        for delay in pol.preview_schedule():
            assert 0.08 <= delay <= 0.12

    def test_validation(self):
        with pytest.raises(ValueError):
            InvocationPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            InvocationPolicy(jitter=1.5)


class TestRetryDecision:
    def test_matrix(self):
        pol = InvocationPolicy(max_retries=2)
        no = CompletionStatus.COMPLETED_NO
        maybe = CompletionStatus.COMPLETED_MAYBE
        yes = CompletionStatus.COMPLETED_YES
        assert pol.retryable(TRANSIENT(completed=no))
        assert pol.retryable(COMM_FAILURE(completed=no))
        assert not pol.retryable(COMM_FAILURE(completed=maybe))
        assert pol.retryable(COMM_FAILURE(completed=maybe), idempotent=True)
        assert not pol.retryable(COMM_FAILURE(completed=yes))
        assert not pol.retryable(INTERNAL(completed=no))
        assert not pol.retryable(TIMEOUT(completed=no))

    def test_retry_safe_helper(self):
        no = CompletionStatus.COMPLETED_NO
        maybe = CompletionStatus.COMPLETED_MAYBE
        assert retry_safe(TRANSIENT(completed=no))
        assert not retry_safe(TRANSIENT(completed=maybe))
        assert retry_safe(TRANSIENT(completed=maybe), idempotent=True)
        assert not retry_safe(INTERNAL(completed=no))

    def test_category_switches(self):
        no = CompletionStatus.COMPLETED_NO
        pol = InvocationPolicy(max_retries=2, retry_comm_failure=False)
        assert not pol.retryable(COMM_FAILURE(completed=no))
        assert pol.retryable(TRANSIENT(completed=no))


class TestDeadline:
    def test_fake_clock(self):
        now = [100.0]
        dl = Deadline(0.5, clock=lambda: now[0])
        assert not dl.expired
        assert dl.remaining == pytest.approx(0.5)
        now[0] += 0.6
        assert dl.expired

    def test_policy_without_timeout_has_no_deadline(self):
        assert InvocationPolicy().start_deadline() is None


class TestRetryThroughORB:
    def test_mid_stream_reset_retried_with_backoff(self, faulty_pair_factory):
        """Acceptance: one mid-stream reset, call still completes."""
        plan = FaultPlan().partial_send(nth=1, fraction=0.5)
        pol, sleeps = _policy()
        stub, impl, client, _ = faulty_pair_factory(plan, pol)
        assert stub.put_std(OctetSequence(b"resilient!")) == 10
        assert impl._total == 10  # executed exactly once
        assert [e.action for e in plan.events] == ["partial"]
        assert sleeps == pol.preview_schedule()[:1]
        proxy = next(iter(client._proxies.values()))
        assert proxy.stats.retries == 1
        assert proxy.stats.reconnects == 1

    def test_connect_refusal_retried_and_zc_path_preserved(
            self, faulty_pair_factory):
        """A connect-time failure retries without abandoning zero-copy:
        the fresh attempt re-registers the deposit on the new conn."""
        plan = FaultPlan().refuse_connect(nth=1)
        pol, _ = _policy()
        stub, impl, client, _ = faulty_pair_factory(plan, pol)
        payload = bytes(range(256)) * 16
        assert stub.put(ZCOctetSequence.from_data(payload)) == len(payload)
        assert isinstance(impl.last, ZCOctetSequence)
        proxy = next(iter(client._proxies.values()))
        assert proxy.stats.retries == 1
        assert proxy.stats.deposits_sent == 1
        assert proxy.stats.deposit_fallbacks == 0

    def test_corrupted_control_bytes_retried(self, faulty_pair_factory):
        """GIOP header corruption draws a MessageError from the server;
        the request never executed, so the retry is safe."""
        plan = FaultPlan().corrupt_send(nth=1, byte_offset=0)
        pol, _ = _policy()
        stub, impl, _, _ = faulty_pair_factory(plan, pol)
        assert stub.put_std(OctetSequence(b"abc")) == 3
        assert impl._total == 3

    def test_budget_exhaustion_raises_original(self, faulty_pair_factory):
        plan = (FaultPlan().reset_on_send(nth=1, conn=1)
                .reset_on_send(nth=1, conn=2)
                .reset_on_send(nth=1, conn=3))
        pol, sleeps = _policy(max_retries=2)
        stub, impl, client, _ = faulty_pair_factory(plan, pol)
        with pytest.raises(COMM_FAILURE, match="injected reset"):
            stub.put_std(OctetSequence(b"never"))
        assert impl._total == 0
        assert len(sleeps) == 2
        proxy = next(iter(client._proxies.values()))
        assert proxy.stats.retries == 2

    def test_no_policy_means_single_attempt(self, faulty_pair_factory):
        plan = FaultPlan().reset_on_send(nth=1)
        stub, impl, _, _ = faulty_pair_factory(plan, policy=None)
        with pytest.raises(COMM_FAILURE):
            stub.put_std(OctetSequence(b"x"))
        assert impl._total == 0

    def test_reply_side_failure_not_retried_unless_idempotent(
            self, faulty_pair_factory):
        """Once the request left in full, completion is unknowable:
        COMPLETED_MAYBE must not be transparently retried..."""
        plan = FaultPlan().reset_on_recv(nth=1)
        pol, _ = _policy()
        stub, impl, client, _ = faulty_pair_factory(plan, pol)
        with pytest.raises(COMM_FAILURE) as ei:
            stub.put_std(OctetSequence(b"side-effect"))
        assert ei.value.completed is CompletionStatus.COMPLETED_MAYBE
        assert impl._total == 11  # the server did execute it

    def test_reply_side_failure_retried_when_idempotent(
            self, faulty_pair_factory):
        """...but an idempotent operation may be re-issued."""
        plan = FaultPlan().reset_on_recv(nth=1)
        pol, _ = _policy()
        stub, _, client, _ = faulty_pair_factory(plan, pol)
        sig = dataclasses.replace(stub._signature("get_std"),
                                  idempotent=True)
        result = client.invoke(stub.ior, sig, [8], policy=pol)
        assert bytes(result) == bytes(i % 256 for i in range(8))

    def test_readonly_attribute_is_idempotent(self, faulty_pair_factory):
        """Attribute getters are marked idempotent by the IDL compiler,
        so even a COMPLETED_MAYBE failure retries."""
        plan = FaultPlan().reset_on_recv(nth=1)
        pol, _ = _policy()
        stub, impl, _, _ = faulty_pair_factory(plan, pol)
        impl._total = 99
        assert stub.total == 99

    def test_stats_accumulate_across_reconnects(self, faulty_pair_factory):
        plan = FaultPlan().reset_on_send(nth=2)
        pol, _ = _policy()
        stub, _, client, _ = faulty_pair_factory(plan, pol)
        stub.put_std(OctetSequence(b"one"))
        stub.put_std(OctetSequence(b"two"))
        proxy = next(iter(client._proxies.values()))
        assert proxy.stats.reconnects == 1
        assert proxy.stats.retries == 1
        # the interrupted send is never tallied: 2 calls that completed
        assert proxy.stats.messages_sent == 2
        assert proxy.conn.stats is proxy.stats

    def test_per_proxy_policy_overrides_orb(self, faulty_pair_factory):
        plan = FaultPlan().reset_on_send(nth=1)
        stub, impl, _, _ = faulty_pair_factory(plan, policy=None)
        pol, _ = _policy()
        stub._set_policy(pol)
        assert stub.put_std(OctetSequence(b"ok")) == 2
        assert impl._total == 2


class TestDeadlines:
    def test_deadline_expiry_mid_send_is_completed_no(
            self, faulty_pair_factory):
        """Acceptance: the stall trips the deadline and the reset
        guarantees the request never fully left — TIMEOUT must carry
        COMPLETED_NO, the one completion status it can assert."""
        plan = FaultPlan().stall_then_reset_send(nth=1, delay=0.06)
        pol, _ = _policy(timeout=0.02, max_retries=5)
        stub, impl, client, _ = faulty_pair_factory(plan, pol)
        with pytest.raises(TIMEOUT) as ei:
            stub.put_std(OctetSequence(b"too slow"))
        assert ei.value.completed is CompletionStatus.COMPLETED_NO
        assert impl._total == 0
        proxy = next(iter(client._proxies.values()))
        assert proxy.stats.timeouts == 1

    def test_deadline_expiry_mid_deposit_send(self, faulty_pair_factory):
        """Same honesty requirement when the stall interrupts the
        zero-copy data path itself."""
        plan = FaultPlan().stall_then_reset_send(nth=1, delay=0.06)
        pol, _ = _policy(timeout=0.02, max_retries=5)
        stub, impl, _, _ = faulty_pair_factory(plan, pol)
        with pytest.raises(TIMEOUT) as ei:
            stub.put(ZCOctetSequence.from_data(b"z" * 65536))
        assert ei.value.completed is CompletionStatus.COMPLETED_NO
        assert impl._total == 0

    def test_deadline_already_expired_raises_before_send(self):
        now = [0.0]
        pol = InvocationPolicy(timeout=0.01, clock=lambda: now[0],
                               sleep=lambda s: None)
        dl = pol.start_deadline()
        now[0] += 0.02
        assert dl.expired

    def test_backoff_clamped_to_deadline_budget(self, faulty_pair_factory):
        """The retry sleep never overshoots the remaining deadline."""
        plan = FaultPlan().reset_on_send(nth=1)
        pol, sleeps = _policy(timeout=5.0, max_retries=2,
                              base_backoff=60.0, jitter=0.0)
        stub, _, _, _ = faulty_pair_factory(plan, pol)
        assert stub.put_std(OctetSequence(b"ok")) == 2
        assert len(sleeps) == 1 and sleeps[0] <= 5.0


class TestDepositFallback:
    def test_interrupted_deposit_returns_buffer_and_retries_by_copy(
            self, faulty_pair_factory):
        """Acceptance: a deposit cut mid-landing gives its page-aligned
        buffer back to the pool (no leak), and the retry delivers the
        same payload via the copy path."""
        pool = BufferPool()
        payload = bytes(i % 251 for i in range(65536))
        plan = FaultPlan().partial_send(nth=1, fraction=0.5)
        pol, sleeps = _policy()
        stub, impl, client, _ = faulty_pair_factory(plan, pol,
                                                    server_pool=pool)
        assert stub.put(ZCOctetSequence.from_data(payload)) == len(payload)
        # exactly one landing buffer was acquired, and it went back
        acquired = pool.hits + pool.misses
        assert acquired == 1
        assert pool.reclaims == 1
        assert pool.cached_count == 1
        # the payload arrived intact, by copy, exactly once
        assert bytes(impl.last) == payload
        assert impl._total == len(payload)
        proxy = next(iter(client._proxies.values()))
        assert proxy.stats.deposit_fallbacks == 1
        assert proxy.stats.retries == 1
        # the doomed deposit send never completed, the retry used the
        # copy path: no deposit is ever tallied as sent
        assert proxy.stats.deposits_sent == 0
        assert sleeps == pol.preview_schedule()[:1]

    def test_fallback_is_observable_in_events(self, faulty_pair_factory):
        plan = FaultPlan().partial_send(nth=1, fraction=0.5)
        pol, _ = _policy()
        stub, _, _, _ = faulty_pair_factory(plan, pol)
        stub.put(ZCOctetSequence.from_data(b"q" * 32768))
        (ev,) = plan.events
        assert ev.action == "partial" and ev.op == "send"


class TestTCPDeadline:
    def test_slow_server_trips_read_timeout(self):
        """Over real TCP the remaining deadline becomes a socket
        timeout; expiry surfaces as TIMEOUT with COMPLETED_MAYBE (the
        request did leave in full)."""
        from repro.idl import compile_idl
        api = compile_idl("""
            interface Sleepy { long nap(in unsigned long millis); };
        """, module_name="_test_sleepy_idl")

        class SleepyImpl(api.Sleepy_skel):
            def nap(self, millis):
                time.sleep(millis / 1000.0)
                return millis

        server = ORB(ORBConfig(scheme="tcp"))
        client = ORB(ORBConfig(scheme="tcp"),
                     policy=InvocationPolicy(timeout=0.1))
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(SleepyImpl())))
            t0 = time.monotonic()
            with pytest.raises(TIMEOUT) as ei:
                stub.nap(2000)
            assert time.monotonic() - t0 < 1.0
            assert ei.value.completed is CompletionStatus.COMPLETED_MAYBE
        finally:
            client.shutdown()
            server.shutdown()
