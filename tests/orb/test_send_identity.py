"""Copy-free send identity: the payload the application owns is the
payload the transport sees.

Three layers of the same claim:

* the connection's gather-write hands ``sendv`` a memoryview into the
  application's buffer (mutation visibility proves sharing);
* over the shm transport, a ``ZCOctetSequence`` payload is staged into
  the arena at *marshal* time, so the deposit send is a pure slot
  reference (``shm_references_sent``);
* ``ZCOctetSequence.in_arena`` builds the sequence inside a leased
  slot up front, eliminating even the staging copy.
"""

import pytest

from repro.cdr import get_marshaller
from repro.cdr.typecode import TC_SEQ_ZC_OCTET
from repro.core import ZCOctetSequence
from repro.giop import MsgType, RequestHeader
from repro.orb.connection import GIOPConn
from repro.transport.shm import ShmArena, shm_available

PAYLOAD = 64 * 1024


class _CaptureStream:
    """Stream double that records every sendv chunk list verbatim."""

    def __init__(self):
        self.batches = []

    def sendv(self, chunks):
        self.batches.append(list(chunks))

    def close(self):
        pass


class TestGatherWriteIdentity:
    def _send(self, conn, seq):
        ctx = conn.make_marshal_context()
        enc = conn.body_encoder()
        get_marshaller(TC_SEQ_ZC_OCTET).marshal(enc, seq, ctx)
        conn.send_message(
            RequestHeader(request_id=1, object_key=b"k", operation="op"),
            enc, ctx)

    def test_inline_zc_payload_shares_app_buffer(self):
        """With the registry off the payload travels inline — but as a
        *reference* into the application's sequence, never a copy."""
        stream = _CaptureStream()
        conn = GIOPConn(stream, zero_copy=False)
        seq = ZCOctetSequence.from_data(bytes(PAYLOAD))
        self._send(conn, seq)
        assert len(stream.batches) == 1
        shared = [c for c in stream.batches[0]
                  if isinstance(c, memoryview) and c.nbytes == PAYLOAD]
        assert len(shared) == 1
        seq.view()[0] = 0x5A  # mutate after "send": the chunk sees it
        assert shared[0][0] == 0x5A
        seq.view()[-1] = 0xA5
        assert shared[0][-1] == 0xA5

    def test_chunks_concatenate_to_a_parseable_message(self):
        """The gather batch joins to exactly one well-formed GIOP
        request (header sizes consistent, single fragment)."""
        from repro.giop import GIOP_HEADER_SIZE, GIOPHeader
        stream = _CaptureStream()
        conn = GIOPConn(stream, zero_copy=False)
        self._send(conn, ZCOctetSequence.from_data(bytes(PAYLOAD)))
        wire = b"".join(bytes(c) for c in stream.batches[0])
        header = GIOPHeader.decode(wire[:GIOP_HEADER_SIZE])
        assert header.msg_type is MsgType.Request
        assert header.size == len(wire) - GIOP_HEADER_SIZE

    def test_registry_path_keeps_payload_out_of_control_message(self):
        """With the registry on (no deposit channel on this stream) the
        control message excludes the payload; the trailing deposit view
        is the application buffer itself."""
        stream = _CaptureStream()
        conn = GIOPConn(stream)  # zero_copy on; plain stream, no arena
        seq = ZCOctetSequence.from_data(bytes(PAYLOAD))
        self._send(conn, seq)
        batch = stream.batches[0]
        control = sum(len(c) for c in batch) - PAYLOAD
        assert control < 4096  # header + descriptor only
        payload_views = [c for c in batch
                         if isinstance(c, memoryview)
                         and c.nbytes == PAYLOAD]
        assert len(payload_views) == 1
        seq.view()[0] = 0x77
        assert payload_views[0][0] == 0x77


@pytest.mark.skipif(not shm_available(), reason="no usable /dev/shm")
class TestShmReferenceSend:
    def test_marshal_stages_into_arena_send_is_reference(self):
        """End to end over shm: a plain ``from_data`` payload is staged
        into the arena while marshaling, so the wire-facing deposit is
        a slot reference, not a copy."""
        from repro.apps.ttcp import _TTCPServant, _ttcp_api
        from repro.orb import ORB, ORBConfig
        _ttcp_api()
        server = ORB(ORBConfig(scheme="shm"))
        client = ORB(ORBConfig(scheme="shm", collocated_calls=False))
        try:
            ref = server.activate(_TTCPServant())
            stub = client.string_to_object(server.object_to_string(ref))
            data = bytes(range(256)) * 1024  # 256 KiB
            assert stub.send_zc(ZCOctetSequence.from_data(data)) == len(data)
            proxy = next(iter(client._proxies.values()))
            channel = proxy.conn.stream.deposit_channel
            assert channel is not None
            assert channel.shm_references_sent == 1
            assert channel.shm_fallbacks_sent == 0
            # staging must not leak arena slots: repeated calls keep
            # taking the reference path (the receiver may still hold
            # the most recent slot, but never accumulates them)
            for _ in range(3):
                stub.send_zc(ZCOctetSequence.from_data(data))
            assert channel.shm_references_sent == 4
            assert channel.shm_fallbacks_sent == 0
            arena = channel.send_arena
            assert arena.free_slots >= arena.slot_count - 1
        finally:
            client.shutdown()
            server.shutdown()


class TestInArena:
    def test_in_arena_copy_once_then_reference(self, tmp_path):
        arena = ShmArena.create(str(tmp_path), slot_size=64 * 1024,
                                slot_count=4)
        try:
            data = bytes(range(256)) * 64  # 16 KiB
            seq = ZCOctetSequence.in_arena(arena, data)
            assert seq is not None
            assert seq.tobytes() == data
            assert arena.free_slots == 3  # the slot is leased
            # the sequence's storage IS the arena slot
            lo = arena.slot_address(0)
            hi = lo + arena.slot_size * arena.slot_count
            import ctypes
            addr = ctypes.addressof(
                (ctypes.c_char * 0).from_buffer(seq.view()))
            assert lo <= addr < hi
            seq.release()
            assert arena.free_slots == 4
        finally:
            arena.close()

    def test_in_arena_fill_in_place(self, tmp_path):
        arena = ShmArena.create(str(tmp_path), slot_size=64 * 1024,
                                slot_count=4)
        try:
            seq = ZCOctetSequence.in_arena(arena, n=4096)
            assert seq is not None and len(seq) == 4096
            seq.view()[:] = b"\x3c" * 4096  # producer writes in place
            assert seq.tobytes() == b"\x3c" * 4096
            seq.release()
        finally:
            arena.close()

    def test_in_arena_refuses_oversize_and_exhaustion(self, tmp_path):
        arena = ShmArena.create(str(tmp_path), slot_size=4096,
                                slot_count=1)
        try:
            assert ZCOctetSequence.in_arena(arena, bytes(8192)) is None
            held = ZCOctetSequence.in_arena(arena, bytes(16))
            assert held is not None
            assert ZCOctetSequence.in_arena(arena, bytes(16)) is None
            held.release()
            assert ZCOctetSequence.in_arena(arena, bytes(16)) is not None
        finally:
            arena.close()

    def test_in_arena_requires_an_arena(self):
        assert ZCOctetSequence.in_arena(object(), bytes(16)) is None
        assert ZCOctetSequence.in_arena(None, bytes(16)) is None
