"""End-to-end ORB invocation tests over loopback and TCP."""

import pytest

from repro.core import OctetSequence, ZCOctetSequence
from repro.orb import BAD_OPERATION, OBJECT_NOT_EXIST, ORB, UNKNOWN, ORBConfig


class TestBasicInvocation:
    def test_string_result(self, loop_pair, test_api):
        stub, impl, *_ = loop_pair
        h = test_api.Test_Header(name="clip", size=9)
        assert stub.describe(h) == "clip/9"

    def test_attribute_getter(self, loop_pair):
        stub, impl, *_ = loop_pair
        assert stub.total == 0
        stub.put_std(OctetSequence(b"xy"))
        assert stub.total == 2

    def test_inout_parameter(self, loop_pair):
        stub, *_ = loop_pair
        assert stub.swap("abc") == ("ABC", "cba")

    def test_oneway_returns_immediately(self, loop_pair):
        stub, impl, *_ = loop_pair
        assert stub.reset() is None
        assert impl.resets == 1

    def test_user_exception_raised_at_client(self, loop_pair, test_api):
        stub, *_ = loop_pair
        with pytest.raises(test_api.Test_Failed) as exc_info:
            stub.put(ZCOctetSequence.from_data(b""))
        assert exc_info.value.reason == "empty"
        assert exc_info.value.code == 7

    def test_servant_bug_maps_to_unknown(self, loop_pair):
        stub, impl, *_ = loop_pair
        impl.describe = lambda h: 1 / 0
        with pytest.raises(UNKNOWN):
            stub.describe_via = None  # does not matter
            stub._invoke("describe", ({"name": "x", "size": 1},))

    def test_missing_operation_rejected(self, loop_pair):
        stub, *_ = loop_pair
        with pytest.raises(BAD_OPERATION):
            stub._invoke("no_such_op", ())

    def test_is_a_and_non_existent(self, loop_pair):
        stub, *_ = loop_pair
        assert stub._is_a("IDL:Test/Store:1.0")
        assert not stub._non_existent()

    def test_deactivated_object_not_exist(self, loop_pair):
        stub, impl, client, server = loop_pair
        server.deactivate(stub)
        with pytest.raises(OBJECT_NOT_EXIST):
            stub.put_std(OctetSequence(b"z"))


class TestZeroCopyPath:
    def test_zc_payload_integrity(self, loop_pair):
        stub, impl, *_ = loop_pair
        data = bytes(range(256)) * 500
        assert stub.put(ZCOctetSequence.from_data(data)) == len(data)
        assert impl.last.tobytes() == data

    def test_received_sequence_is_aligned_zero_copy(self, loop_pair):
        stub, impl, *_ = loop_pair
        stub.put(ZCOctetSequence.from_data(b"q" * 70000))
        assert impl.last.is_zero_copy
        assert impl.last.is_page_aligned

    def test_zc_return_value(self, loop_pair):
        stub, *_ = loop_pair
        seq = stub.get(10000)
        assert seq.is_zero_copy
        assert seq.tobytes() == bytes(i % 256 for i in range(10000))

    def test_deposit_used_for_zc_not_std(self, loop_pair):
        stub, impl, client, _ = loop_pair
        stub.put(ZCOctetSequence.from_data(b"a" * 5000))
        stub.put_std(OctetSequence(b"b" * 5000))
        conn = next(iter(client._proxies.values())).conn
        assert conn.stats.deposits_sent == 1
        assert conn.stats.deposit_bytes_sent == 5000

    def test_zero_copy_disabled_falls_back_inline(self, test_api,
                                                  store_impl):
        server = ORB(ORBConfig(scheme="loop", zero_copy=False))
        client = ORB(ORBConfig(scheme="loop", zero_copy=False))
        try:
            ref = server.activate(store_impl)
            stub = client.string_to_object(server.object_to_string(ref))
            data = b"inline" * 1000
            assert stub.put(ZCOctetSequence.from_data(data)) == len(data)
            assert store_impl.last.tobytes() == data
            conn = next(iter(client._proxies.values())).conn
            assert conn.stats.deposits_sent == 0
        finally:
            client.shutdown()
            server.shutdown()

    def test_generic_loop_mode_still_correct(self, test_api, store_impl):
        """MICO's unoptimized loop is slow but must be byte-exact."""
        server = ORB(ORBConfig(scheme="loop", generic_loop=True))
        client = ORB(ORBConfig(scheme="loop", generic_loop=True))
        try:
            ref = server.activate(store_impl)
            stub = client.string_to_object(server.object_to_string(ref))
            data = bytes(range(256)) * 20
            assert stub.put_std(OctetSequence(data)) == len(data)
            assert store_impl.last.tobytes() == data
        finally:
            client.shutdown()
            server.shutdown()


class TestCollocation:
    def test_collocated_call_passes_reference(self, test_api, store_impl):
        """§2.1: local calls skip marshaling entirely — the servant sees
        the caller's very object."""
        orb = ORB(ORBConfig(scheme="loop"))
        try:
            stub = orb.activate(store_impl)
            seq = ZCOctetSequence.from_data(b"local")
            stub.put(seq)
            assert store_impl.last is seq
        finally:
            orb.shutdown()

    def test_collocation_disabled_goes_remote(self, test_api, store_impl):
        orb = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        try:
            stub = orb.activate(store_impl)
            seq = ZCOctetSequence.from_data(b"remote")
            stub.put(seq)
            assert store_impl.last is not seq
            assert store_impl.last.tobytes() == b"remote"
        finally:
            orb.shutdown()


class TestOverTCP:
    def test_full_surface_over_real_sockets(self, tcp_pair, test_api):
        stub, impl, *_ = tcp_pair
        data = bytes(range(256)) * 256
        assert stub.put(ZCOctetSequence.from_data(data)) == len(data)
        assert impl.last.tobytes() == data
        assert impl.last.is_page_aligned
        assert stub.get(4096).tobytes() == bytes(i % 256
                                                 for i in range(4096))
        assert stub.describe(test_api.Test_Header(name="t", size=1)) \
            == "t/1"
        with pytest.raises(test_api.Test_Failed):
            stub.put(ZCOctetSequence.from_data(b""))
        assert stub.total == len(data)

    def test_many_sequential_requests(self, tcp_pair):
        stub, *_ = tcp_pair
        for i in range(50):
            stub.put_std(OctetSequence(bytes([i % 256]) * 100))
        assert stub.total == 5000


class TestReferencePassing:
    def test_object_reference_parameter(self, test_api):
        """An interface-typed parameter crosses as an IOR and comes back
        as a live stub (needed by the transcoder farm)."""
        from repro.idl import compile_idl
        api2 = compile_idl("""
        interface Peer { string ping(); };
        interface Registry {
            string call_through(in Peer p);
            Peer identity(in Peer p);
        };
        """, module_name="_test_refs_idl")

        class PeerImpl(api2.Peer_skel):
            def ping(self):
                return "pong"

        class RegistryImpl(api2.Registry_skel):
            def call_through(self, p):
                return p.ping() + "!"

            def identity(self, p):
                return p

        orb_a = ORB(ORBConfig(scheme="loop"))
        orb_b = ORB(ORBConfig(scheme="loop"))
        try:
            peer_ref = orb_a.activate(PeerImpl())
            reg_ref = orb_b.activate(RegistryImpl())
            reg = orb_a.string_to_object(orb_b.object_to_string(reg_ref))
            peer_for_b = orb_a.string_to_object(
                orb_a.object_to_string(peer_ref))
            assert reg.call_through(peer_for_b) == "pong!"
            back = reg.identity(peer_for_b)
            assert back.ping() == "pong"
        finally:
            orb_a.shutdown()
            orb_b.shutdown()

    def test_nil_reference(self, test_api):
        from repro.idl import compile_idl
        api2 = compile_idl("""
        interface Sink2 { boolean is_nil(in Sink2 other); };
        """, module_name="_test_nil_idl")

        class Impl(api2.Sink2_skel):
            def is_nil(self, other):
                return other is None

        orb = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        try:
            stub = orb.activate(Impl())
            assert stub.is_nil(None) is True
        finally:
            orb.shutdown()

    def test_narrow_checks_type(self, loop_pair, test_api):
        stub, *_ = loop_pair
        again = stub._narrow(type(stub))
        assert again.ior.type_id == stub.ior.type_id
