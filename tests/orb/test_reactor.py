"""The event-loop connection engine: adoption rules, thread hygiene,
graceful shutdown, and identical failure semantics on the async path.

The reactor must only ever own plain TCP read sides (wrapped or
emulated streams keep their reader threads), every thread the ORB
starts must be joined on shutdown, an in-flight request must drain
before the server closes its connections, and a mid-call fault must
surface the *same* CORBA exception/completion mapping whether the call
was sync or awaited.
"""

import asyncio
import threading
import time

import pytest

from repro.core import OctetSequence
from repro.orb import COMM_FAILURE, NO_RETRY, ORB, ORBConfig
from repro.orb.aio import async_api
from repro.orb.reactor import get_reactor
from repro.transport import (FaultPlan, LoopbackTransport, TCPTransport,
                             faulty_registry)
from repro.transport.faulty import FaultyStream
from tests.conftest import make_store_impl


def _settle(predicate, timeout=5.0, step=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


@pytest.fixture
def tcp_stream_pair():
    transport = TCPTransport()
    accepted = []
    listener = transport.listen("127.0.0.1", 0, accepted.append)
    client = transport.connect(listener.endpoint)
    assert _settle(lambda: accepted)
    yield client, accepted[0]
    client.close()
    accepted[0].close()
    listener.close()


class TestAdoption:
    def test_tcp_stream_is_adoptable(self, tcp_stream_pair):
        client, _server = tcp_stream_pair
        reactor = get_reactor()
        assert client.reactor_safe
        assert reactor.adoptable(client)

    def test_faulty_wrapper_is_never_adopted(self, tcp_stream_pair):
        """FaultyStream delegates unknown attributes to the inner
        TCPStream; its explicit ``reactor_safe = False`` must win, or
        the loop would read the socket directly and bypass every
        injected recv fault."""
        client, _server = tcp_stream_pair
        wrapped = FaultyStream(client, FaultPlan(), 1)
        # the capability methods leak through __getattr__ by design...
        assert hasattr(wrapped, "recv_into_nb")
        # ...but the explicit gate keeps the reactor away
        assert wrapped.reactor_safe is False
        assert not get_reactor().adoptable(wrapped)

    def test_loopback_stream_is_not_adoptable(self):
        transport = LoopbackTransport()
        accepted = []
        listener = transport.listen("adopt-host", 0, accepted.append)
        client = transport.connect(listener.endpoint)
        try:
            assert getattr(client, "reactor_safe", False) is False
            assert not get_reactor().adoptable(client)
        finally:
            client.close()
            listener.close()

    def test_orb_reactor_off_means_none(self):
        orb = ORB(ORBConfig(scheme="tcp", reactor=False))
        try:
            assert orb.reactor is None
        finally:
            orb.shutdown()


class TestThreadHygiene:
    def test_active_count_returns_to_baseline(self, test_api):
        """S1: shutdown joins the demux readers, accept threads and
        worker pool — a full client/server cycle must not leave
        threads behind (the persistent reactor shard is warmed first
        so it is part of the baseline)."""

        def cycle():
            server = ORB(ORBConfig(scheme="tcp"))
            client = ORB(ORBConfig(scheme="tcp"))
            try:
                impl = make_store_impl(test_api)
                stub = client.string_to_object(
                    server.object_to_string(server.activate(impl)))
                assert stub.put_std(OctetSequence(b"x" * 64)) == 64
            finally:
                client.shutdown()
                server.shutdown()

        cycle()  # warm: reactor shard thread + default executor persist
        assert _settle(lambda: True)
        baseline = threading.active_count()
        cycle()
        assert _settle(
            lambda: threading.active_count() <= baseline), \
            [t.name for t in threading.enumerate()]

    def test_threaded_fallback_also_joins(self, test_api):
        """The same hygiene with the reactor disabled (reader threads
        per connection, like the pre-reactor ORB)."""

        def cycle():
            server = ORB(ORBConfig(scheme="tcp", reactor=False))
            client = ORB(ORBConfig(scheme="tcp", reactor=False))
            try:
                impl = make_store_impl(test_api)
                stub = client.string_to_object(
                    server.object_to_string(server.activate(impl)))
                assert stub.put_std(OctetSequence(b"y" * 8)) == 8
            finally:
                client.shutdown()
                server.shutdown()

        cycle()
        assert _settle(lambda: True)
        baseline = threading.active_count()
        cycle()
        assert _settle(
            lambda: threading.active_count() <= baseline), \
            [t.name for t in threading.enumerate()]


class TestGracefulShutdown:
    def test_shutdown_drains_inflight_request(self, test_api):
        """S3: a request already handed to a worker completes (and its
        reply reaches the client) before shutdown closes the
        connections."""
        impl = make_store_impl(test_api)
        entered = threading.Event()
        release = threading.Event()
        orig = impl.put_std

        def slow_put_std(data):
            entered.set()
            assert release.wait(10.0)
            return orig(data)

        impl.put_std = slow_put_std
        server = ORB(ORBConfig(scheme="tcp"))
        client = ORB(ORBConfig(scheme="tcp"))
        result = []
        errors = []
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(impl)))

            def call():
                try:
                    result.append(stub.put_std(OctetSequence(b"drain!")))
                except Exception as e:  # noqa: BLE001 - recorded
                    errors.append(e)

            t = threading.Thread(target=call)
            t.start()
            assert entered.wait(10.0)
            shut = threading.Thread(target=server.shutdown)
            shut.start()
            time.sleep(0.1)  # let shutdown reach its drain loop
            release.set()
            shut.join(10.0)
            t.join(10.0)
            assert not errors, errors
            assert result == [6]
        finally:
            release.set()
            client.shutdown()
            server.shutdown()


class TestAsyncFailureMapping:
    """S3 + S6: the async path surfaces the same CORBA exception and
    completion status as the sync path, and fault injection keeps
    working (faulty streams fall back to the reader thread)."""

    @staticmethod
    def _faulty_pair(plan, store_impl):
        server = ORB(ORBConfig(scheme="tcp"))
        client = ORB(ORBConfig(scheme="tcp"),
                     transports=faulty_registry(plan), policy=NO_RETRY)
        ref = server.activate(store_impl)
        stub = client.string_to_object(server.object_to_string(ref))
        return stub, client, server

    def test_mid_call_reset_maps_identically(self, test_api):
        def run_one(asynchronous):
            # recv #1 is the reply *header* (the demux blocks there
            # from the moment it starts); resetting recv #2 lands the
            # fault deterministically mid-reply, after the request is
            # on the wire — COMPLETED_MAYBE on both paths
            plan = FaultPlan().reset_on_recv(nth=2)
            stub, client, server = self._faulty_pair(
                plan, make_store_impl(test_api))
            try:
                if asynchronous:
                    async def go():
                        await async_api(stub).put_std(
                            OctetSequence(b"zap"))
                    with pytest.raises(COMM_FAILURE) as ei:
                        asyncio.run(go())
                else:
                    with pytest.raises(COMM_FAILURE) as ei:
                        stub.put_std(OctetSequence(b"zap"))
                return ei.value
            finally:
                client.shutdown()
                server.shutdown()

        sync_exc = run_one(asynchronous=False)
        async_exc = run_one(asynchronous=True)
        assert type(async_exc) is type(sync_exc)
        assert async_exc.completed == sync_exc.completed

    def test_stalled_recv_still_completes_async(self, test_api):
        plan = FaultPlan().stall_recv(nth=1, delay=0.05)
        stub, client, server = self._faulty_pair(
            plan, make_store_impl(test_api))
        try:
            async def go():
                return await async_api(stub).put_std(
                    OctetSequence(b"slow"))
            assert asyncio.run(go()) == 4
        finally:
            client.shutdown()
            server.shutdown()

    def test_partial_send_fails_async_like_sync(self, test_api):
        def run_one(asynchronous):
            plan = FaultPlan().partial_send(nth=2, fraction=0.5)
            stub, client, server = self._faulty_pair(
                plan, make_store_impl(test_api))
            try:
                stub.put_std(OctetSequence(b"warm"))  # send #1 is clean
                if asynchronous:
                    async def go():
                        await async_api(stub).put_std(
                            OctetSequence(b"torn"))
                    with pytest.raises(COMM_FAILURE) as ei:
                        asyncio.run(go())
                else:
                    with pytest.raises(COMM_FAILURE) as ei:
                        stub.put_std(OctetSequence(b"torn"))
                return ei.value
            finally:
                client.shutdown()
                server.shutdown()

        sync_exc = run_one(asynchronous=False)
        async_exc = run_one(asynchronous=True)
        assert type(async_exc) is type(sync_exc)
        assert async_exc.completed == sync_exc.completed


class TestShmUnderReactor:
    def test_shm_handshake_and_deposits_unchanged(self, test_api):
        """S6: the shm data plane is not reactor-adoptable; with the
        reactor globally on, the handshake, deposits and fallbacks
        behave exactly as before (reader threads)."""
        from repro.transport.shm import shm_available
        if not shm_available("/dev/shm"):
            pytest.skip("no usable shared-memory filesystem")
        from repro.core import ZCOctetSequence
        impl = make_store_impl(test_api)
        server = ORB(ORBConfig(scheme="shm", reactor=True))
        client = ORB(ORBConfig(scheme="shm", reactor=True,
                               collocated_calls=False))
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(impl)))
            payload = bytes(range(256)) * 256  # 64 KiB
            assert stub.put(ZCOctetSequence.from_data(payload)) \
                == len(payload)
            got = stub.get(1024)
            assert bytes(got)[:4] == bytes([0, 1, 2, 3])
        finally:
            client.shutdown()
            server.shutdown()


class TestReactorTelemetry:
    def test_loop_metrics_reach_the_registry(self, test_api):
        """S2: the heartbeat publishes loop_lag_seconds/loop_tasks
        into every attached ORB's metrics registry."""
        orb = ORB(ORBConfig(scheme="tcp"))
        server = ORB(ORBConfig(scheme="tcp"))
        try:
            orb.enable_tracing()
            impl = make_store_impl(test_api)
            stub = orb.string_to_object(
                server.object_to_string(server.activate(impl)))
            stub.put_std(OctetSequence(b"t"))

            def seen():
                names = {m["name"]
                         for m in orb.metrics.snapshot()["metrics"]}
                return "loop_lag_seconds" in names \
                    and "loop_tasks" in names
            assert _settle(seen, timeout=3.0)
        finally:
            orb.shutdown()
            server.shutdown()
