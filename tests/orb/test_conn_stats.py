"""Regression tests for ConnStats wire accounting and deposit cleanup.

Four bugs the overhead-breakdown tracing work exposed:

1. ``bytes_received`` double-counted reassembled fragments (each
   fragment's payload counted once per frame *and* once in the
   reassembled control-message size);
2. ``bytes_sent`` undercounted fragmented sends (a single
   ``GIOP_HEADER_SIZE`` even when ``_frame`` emitted N fragment
   headers);
3. a ``DepositError`` from ``DepositReceiver.prepare`` (duplicate
   descriptor id on the wire) escaped the transport-error handling,
   leaking the already-prepared pool buffer and leaving the
   connection open but byte-desynchronized;
4. a ``GIOPError`` during fragment reassembly propagated with the
   connection still open, though the stream position is undefined.

Ground truth for 1/2 is the loopback stream's own transport-level
byte counters: whatever the wire moved is what ConnStats must report.
"""

import itertools

import pytest

from repro.cdr import get_marshaller
from repro.cdr.typecode import TC_SEQ_OCTET, TC_SEQ_ZC_OCTET
from repro.core import OctetSequence, ZCOctetSequence
from repro.core.buffers import BufferPool
from repro.giop import GIOPError, GIOPHeader, MsgType, RequestHeader
from repro.orb.connection import GIOPConn
from repro.orb.exceptions import MARSHAL
from repro.transport import LoopbackTransport

_ids = itertools.count(1)


def _conn_pair(**sender_kw):
    """A raw client/server GIOPConn pair over one loopback stream."""
    transport = LoopbackTransport()
    accepted = []
    listener = transport.listen(f"stats-{next(_ids)}", 0, accepted.append)
    client_stream = transport.connect(listener.endpoint)
    listener.close()
    sender = GIOPConn(client_stream, **sender_kw)
    receiver_kw = {}
    if "pool" in sender_kw:
        receiver_kw["pool"] = sender_kw["pool"]
    receiver = GIOPConn(accepted[0], **receiver_kw)
    return sender, receiver, client_stream, accepted[0]


def _send_request(sender, data, zero_copy, request_id=1):
    tc = TC_SEQ_ZC_OCTET if zero_copy else TC_SEQ_OCTET
    value = (ZCOctetSequence.from_data(data) if zero_copy
             else OctetSequence(data))
    ctx = sender.make_marshal_context()
    enc = sender.body_encoder()
    get_marshaller(tc).marshal(enc, value, ctx)
    sender.send_message(
        RequestHeader(request_id=request_id, object_key=b"obj",
                      operation="put"),
        enc.getvalue(), ctx)
    return ctx


@pytest.mark.parametrize("fragment_size", [0, 100, 4096])
def test_send_recv_stats_agree_with_the_wire(fragment_size):
    """bytes_sent == stream truth == bytes_received, at any
    fragmentation threshold (bugs 1 and 2)."""
    sender, receiver, cstream, sstream = _conn_pair(
        fragment_size=fragment_size)
    _send_request(sender, b"\x5a" * 3000, zero_copy=False)
    rm = receiver.read_message()
    assert rm.header.msg_type is MsgType.Request

    # the loopback stream counts exactly what crossed the "wire"
    assert sender.stats.bytes_sent == cstream.bytes_sent
    assert receiver.stats.bytes_received == sstream.bytes_received
    assert sender.stats.bytes_sent == receiver.stats.bytes_received
    if fragment_size == 100:
        # N frames -> N GIOP headers must all be accounted for
        assert sender.stats.bytes_sent > 3000 + 12 * 20


def test_fragmented_zero_copy_round_trip_stats_balance():
    """Control and data path accounting split cleanly: control bytes in
    bytes_sent/received, payload bytes in the deposit counters, and
    their sums match the transport-level truth."""
    sender, receiver, cstream, sstream = _conn_pair(fragment_size=128)
    payload = bytes(range(256)) * 32  # 8 KiB on the data path
    _send_request(sender, payload, zero_copy=True)
    rm = receiver.read_message()

    assert sender.stats.deposit_bytes_sent == len(payload)
    assert receiver.stats.deposit_bytes_received == len(payload)
    assert sender.stats.bytes_sent == receiver.stats.bytes_received
    assert sender.stats.bytes_sent + len(payload) == cstream.bytes_sent
    assert receiver.stats.bytes_received + len(payload) == \
        sstream.bytes_received
    (buf,) = rm.deposits.values()
    assert buf.tobytes() == payload


def test_duplicate_deposit_descriptor_aborts_without_leaking(test_api):
    """A duplicate deposit id on the wire is a protocol violation: the
    receiver must return the prepared buffer to the pool, close the
    connection, and surface MARSHAL — not leak and stay open (bug 3)."""
    pool = BufferPool()
    sender, receiver, _, _ = _conn_pair(pool=pool)
    ctx = sender.make_marshal_context()
    enc = sender.body_encoder()
    get_marshaller(TC_SEQ_ZC_OCTET).marshal(
        enc, ZCOctetSequence.from_data(b"q" * 4096), ctx)
    # corrupt the control message: the same descriptor rides twice
    ctx.descriptors.append(ctx.descriptors[0])
    sender.send_message(
        RequestHeader(request_id=1, object_key=b"obj", operation="put"),
        enc.getvalue(), ctx)

    assert pool.cached_count == 0
    with pytest.raises(MARSHAL):
        receiver.read_message()
    assert receiver.closed
    # the one buffer prepare() acquired went back to the pool
    assert pool.cached_count == 1


def test_reassembly_error_closes_the_connection():
    """A non-Fragment continuation desynchronizes the byte stream; the
    connection must be marked closed before the error propagates, so
    no caller can keep reading garbage from it (bug 4)."""
    transport = LoopbackTransport()
    accepted = []
    listener = transport.listen(f"stats-{next(_ids)}", 0, accepted.append)
    stream = transport.connect(listener.endpoint)
    listener.close()
    receiver = GIOPConn(accepted[0])

    first = GIOPHeader(msg_type=MsgType.Request, size=16,
                       more_fragments=True)
    rogue = GIOPHeader(msg_type=MsgType.Request, size=16)  # not Fragment
    stream.sendv([first.encode(), b"\x00" * 16,
                  rogue.encode(), b"\x00" * 16])
    with pytest.raises(GIOPError):
        receiver.read_message()
    assert receiver.closed


class TestStatsSnapshot:
    """ConnStats.snapshot(): a consistent copy under the owning lock."""

    def test_snapshot_copies_every_counter_and_no_lock(self):
        from repro.orb.connection import ConnStats

        stats = ConnStats()
        stats.messages_sent = 3
        stats.shm_deposits = 2
        snap = stats.snapshot()
        assert snap["messages_sent"] == 3
        assert snap["shm_deposits"] == 2
        assert "owner_lock" not in snap
        assert set(snap) == set(ConnStats._COUNTER_FIELDS)
        # a snapshot is a copy, not a view
        stats.messages_sent = 9
        assert snap["messages_sent"] == 3

    def test_conn_adopts_stats_under_its_send_lock(self):
        sender, receiver, *_ = _conn_pair()
        assert sender.stats.owner_lock is sender._send_lock
        # adopting replacement stats rebinds the lock (proxy reconnect)
        from repro.orb.connection import ConnStats

        replacement = ConnStats()
        sender.adopt_stats(replacement)
        assert sender.stats is replacement
        assert replacement.owner_lock is sender._send_lock
        snap = receiver.stats.snapshot()
        assert snap["messages_received"] == 0
