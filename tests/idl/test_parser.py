"""IDL parser tests: grammar coverage and semantic checks."""

import pytest

from repro.cdr.typecode import TCKind
from repro.idl import ParseError, parse
from repro.idl.ast import (EnumDecl, ExceptionDecl, ModuleDecl, StructDecl,
                           TypedefDecl)
from repro.orb.signatures import ParamMode


def one(src, **kw):
    spec = parse(src, **kw)
    assert len(spec.declarations) == 1
    return spec.declarations[0]


class TestTypes:
    def test_basic_types(self):
        decl = one("""interface T {
            void f(in octet a, in boolean b, in char c, in short d,
                   in long e, in float g, in double h);
        };""")
        kinds = [p.tc.kind for p in decl.operations[0].signature.params]
        assert kinds == [TCKind.tk_octet, TCKind.tk_boolean, TCKind.tk_char,
                         TCKind.tk_short, TCKind.tk_long, TCKind.tk_float,
                         TCKind.tk_double]

    def test_unsigned_and_long_long(self):
        decl = one("""interface T {
            void f(in unsigned short a, in unsigned long b,
                   in unsigned long long c, in long long d);
        };""")
        kinds = [p.tc.kind for p in decl.operations[0].signature.params]
        assert kinds == [TCKind.tk_ushort, TCKind.tk_ulong,
                         TCKind.tk_ulonglong, TCKind.tk_longlong]

    def test_string_bounded(self):
        decl = one("interface T { void f(in string<16> s); };")
        tc = decl.operations[0].signature.params[0].tc
        assert tc.kind is TCKind.tk_string and tc.length == 16

    def test_sequence_types(self):
        decl = one("""interface T {
            void f(in sequence<long> a, in sequence<octet, 64> b);
        };""")
        a, b = [p.tc for p in decl.operations[0].signature.params]
        assert a.kind is TCKind.tk_sequence
        assert a.content.kind is TCKind.tk_long
        assert b.length == 64

    def test_zc_octet_sequence(self):
        decl = one("interface T { void f(in sequence<zc_octet> d); };")
        tc = decl.operations[0].signature.params[0].tc
        assert tc.kind is TCKind.tk_zc_sequence

    def test_zc_octet_spelling_variant(self):
        decl = one("interface T { void f(in sequence<ZC_Octet> d); };")
        assert decl.operations[0].signature.params[0].tc.is_zero_copy

    def test_zc_octet_outside_sequence_rejected(self):
        with pytest.raises(ParseError, match="zc_octet"):
            parse("interface T { void f(in zc_octet d); };")

    def test_promote_octet_sequences_flag(self):
        """The paper's compiler switch (§4.3)."""
        src = "interface T { void f(in sequence<octet> d); };"
        plain = one(src)
        promoted = one(src, promote_octet_sequences=True)
        assert plain.operations[0].signature.params[0].tc.kind \
            is TCKind.tk_sequence
        assert promoted.operations[0].signature.params[0].tc.kind \
            is TCKind.tk_zc_sequence

    def test_interface_as_type_is_objref(self):
        spec = parse("""
        interface Peer {};
        interface User { void set(in Peer p); };
        """)
        tc = spec.declarations[1].operations[0].signature.params[0].tc
        assert tc.kind is TCKind.tk_objref
        assert tc.repo_id == "IDL:Peer:1.0"

    def test_unknown_type_rejected(self):
        with pytest.raises(ParseError, match="unknown type"):
            parse("interface T { void f(in Mystery m); };")


class TestDeclarations:
    def test_module_scoping_and_repo_ids(self):
        spec = parse("""
        module A { module B {
            struct S { long x; };
        }; };
        """)
        mod = spec.declarations[0]
        assert isinstance(mod, ModuleDecl)
        struct = mod.body[0].body[0]
        assert struct.scoped == "A::B::S"
        assert struct.repo_id == "IDL:A/B/S:1.0"
        assert struct.py_name == "A_B_S"

    def test_struct_members(self):
        decl = one("struct P { double x; double y; long tag; };")
        assert isinstance(decl, StructDecl)
        assert [n for n, _ in decl.members] == ["x", "y", "tag"]

    def test_struct_multi_declarator(self):
        decl = one("struct P { long a, b; };")
        assert [n for n, _ in decl.members] == ["a", "b"]

    def test_struct_duplicate_member_rejected(self):
        with pytest.raises(ParseError, match="duplicate member"):
            parse("struct P { long a; long a; };")

    def test_enum(self):
        decl = one("enum E { one, two, three };")
        assert isinstance(decl, EnumDecl)
        assert decl.members == ["one", "two", "three"]

    def test_enumerators_usable_as_consts(self):
        spec = parse("""
        enum E { small, big };
        const long CHOICE = big;
        """)
        assert spec.declarations[1].value == 1

    def test_exception(self):
        decl = one("exception Oops { string what; };")
        assert isinstance(decl, ExceptionDecl)
        assert decl.tc.kind is TCKind.tk_except

    def test_typedef_with_array_declarator(self):
        decl = one("typedef long Matrix[3][4];")
        assert isinstance(decl, TypedefDecl)
        assert decl.tc.kind is TCKind.tk_array

    def test_typedef_referenced_later(self):
        spec = parse("""
        typedef sequence<octet> Blob;
        interface T { void f(in Blob b); };
        """)
        tc = spec.declarations[1].operations[0].signature.params[0].tc
        assert tc.kind is TCKind.tk_sequence

    def test_const_expressions(self):
        spec = parse("""
        const long A = 2 + 3 * 4;
        const long B = (2 + 3) * 4;
        const long C = A - B / 2;
        const boolean F = TRUE;
        const string NAME = "x";
        """)
        values = {d.name: d.value for d in spec.declarations}
        assert values == {"A": 14, "B": 20, "C": 4, "F": True, "NAME": "x"}

    def test_const_used_as_bound(self):
        spec = parse("""
        const long N = 8;
        interface T { void f(in sequence<octet, N * 2> d); };
        """)
        tc = spec.declarations[1].operations[0].signature.params[0].tc
        assert tc.length == 16

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse("struct S { long a; }; struct S { long b; };")


class TestInterfaces:
    def test_operations_modes_raises_oneway(self):
        decl = one("""
        interface T {
            exception Gone { long id; };
            long f(in long a, out string b, inout double c) raises (Gone);
            oneway void fire(in string msg);
        };
        """)
        sig = decl.operations[0].signature
        assert [p.mode for p in sig.params] == [ParamMode.IN, ParamMode.OUT,
                                                ParamMode.INOUT]
        assert len(sig.raises) == 1
        assert decl.operations[1].signature.oneway

    def test_oneway_with_out_param_rejected(self):
        with pytest.raises(ParseError):
            parse("interface T { oneway void f(out long x); };")

    def test_attributes(self):
        decl = one("""
        interface T {
            readonly attribute long count;
            attribute string name, nick;
        };
        """)
        assert [a.name for a in decl.attributes] == ["count", "name",
                                                     "nick"]
        assert decl.attributes[0].readonly
        assert not decl.attributes[1].readonly

    def test_inheritance(self):
        spec = parse("""
        interface A { void fa(); };
        interface B { void fb(); };
        interface C : A, B { void fc(); };
        """)
        c = spec.declarations[2]
        assert [b.name for b in c.bases] == ["A", "B"]

    def test_forward_declaration(self):
        spec = parse("""
        interface Node;
        interface Node { void link(in Node next); };
        """)
        full = spec.declarations[1]
        assert not full.forward_only
        tc = full.operations[0].signature.params[0].tc
        assert tc.kind is TCKind.tk_objref

    def test_inherit_from_forward_only_rejected(self):
        with pytest.raises(ParseError, match="forward"):
            parse("interface A; interface B : A {};")

    def test_unknown_base_rejected(self):
        with pytest.raises(ParseError, match="unknown base"):
            parse("interface B : Ghost {};")

    def test_unknown_exception_in_raises(self):
        with pytest.raises(ParseError, match="unknown exception"):
            parse("interface T { void f() raises (Ghost); };")


class TestErrors:
    @pytest.mark.parametrize("src", [
        "interface {",             # missing name
        "struct S { long; };",     # missing member name
        "enum E {};",              # empty enum
        "const long X;",           # missing initializer
        "interface T { void f(long a); };",  # missing param mode
        "module M { };",           # empty module body
    ])
    def test_syntax_errors_have_positions(self, src):
        with pytest.raises(ParseError):
            parse(src)
