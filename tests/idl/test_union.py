"""IDL union support tests (parser, marshaler, codegen, pretty)."""

import pytest

from repro.cdr import (CDRDecoder, CDREncoder, MarshalError,
                       get_marshaller)
from repro.cdr.marshal import UnionValue
from repro.cdr.typecode import TC_DOUBLE, TC_LONG, TC_STRING, union_tc
from repro.idl import ParseError, compile_idl, parse, pretty_print


class TestUnionTypeCode:
    def test_factory_validates_discriminator(self):
        with pytest.raises(ValueError):
            union_tc("U", TC_STRING, [(1, "a", TC_LONG)])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            union_tc("U", TC_LONG, [(1, "a", TC_LONG), (1, "b", TC_LONG)])

    def test_two_defaults_rejected(self):
        with pytest.raises(ValueError, match="default"):
            union_tc("U", TC_LONG,
                     [(None, "a", TC_LONG), (None, "b", TC_LONG)])


class TestUnionMarshaling:
    TC = union_tc("Mix", TC_LONG, [
        (1, "i", TC_LONG), (2, "s", TC_STRING), (None, "x", TC_DOUBLE)],
        repo_id="IDL:test/Mix_unreg:1.0")

    def _rt(self, value):
        m = get_marshaller(self.TC)
        enc = CDREncoder()
        m.marshal(enc, value)
        return m.demarshal(CDRDecoder(enc.getvalue()))

    def test_labelled_arms(self):
        out = self._rt(UnionValue(1, -7))
        assert (out.d, out.v) == (1, -7)
        out = self._rt(UnionValue(2, "text arm"))
        assert out.v == "text arm"

    def test_default_arm(self):
        out = self._rt(UnionValue(99, 2.5))
        assert (out.d, out.v) == (99, 2.5)

    def test_no_default_no_match_rejected(self):
        tc = union_tc("Strict", TC_LONG, [(1, "i", TC_LONG)],
                      repo_id="IDL:test/Strict_unreg:1.0")
        m = get_marshaller(tc)
        with pytest.raises(MarshalError, match="no arm"):
            m.marshal(CDREncoder(), UnionValue(5, 0))

    def test_non_union_value_rejected(self):
        m = get_marshaller(self.TC)
        with pytest.raises(MarshalError):
            m.marshal(CDREncoder(), "not a union")


class TestUnionThroughIDL:
    IDL = """
    enum Kind { num, text };
    union Value switch (Kind) {
      case num: long i;
      case text: string s;
    };
    interface Box { Value bounce(in Value v); };
    """

    def test_end_to_end(self):
        api = compile_idl(self.IDL, module_name="_test_union_e2e")
        from repro.orb import ORB, ORBConfig

        class Impl(api.Box_skel):
            def bounce(self, v):
                return v

        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(Impl())))
            v = api.Value(api.Kind.text, "hi")
            out = stub.bounce(v)
            assert isinstance(out, api.Value)
            assert out == v
        finally:
            client.shutdown()
            server.shutdown()

    def test_multiple_case_labels_one_arm(self):
        spec = parse("""
        union U switch (long) {
          case 1:
          case 2: long small;
          default: string other;
        };
        """)
        members = spec.declarations[0].members
        assert [(l, n) for l, n, _ in members] == [
            (1, "small"), (2, "small"), (None, "other")]

    def test_boolean_discriminator(self):
        api = compile_idl("""
        union Flag switch (boolean) {
          case TRUE: string yes;
          case FALSE: long no;
        };
        """, module_name="_test_union_bool")
        m = get_marshaller(api.Flag.TYPECODE)
        enc = CDREncoder()
        m.marshal(enc, api.Flag(True, "on"))
        out = m.demarshal(CDRDecoder(enc.getvalue()))
        assert out.v == "on"

    def test_bad_discriminator_type_rejected(self):
        with pytest.raises(ParseError):
            parse("union U switch (string) { case 1: long a; };")

    def test_duplicate_default_rejected(self):
        with pytest.raises(ParseError, match="default"):
            parse("""
            union U switch (long) {
              default: long a;
              default: long b;
            };
            """)

    def test_pretty_round_trip(self):
        from repro.idl.codegen import generate_source
        first = generate_source(parse(self.IDL))
        second = generate_source(parse(pretty_print(parse(self.IDL))))
        assert first == second
