"""Pretty-printer round-trip tests: parse -> print -> parse must yield
an equivalent specification (the compiler's own fixed point)."""

import pytest

from repro.idl import parse
from repro.idl.codegen import generate_source
from repro.idl.pretty import pretty_print

CASES = [
    "struct P { double x; double y; };",
    "enum Color { red, green, blue };",
    "exception Broke { string why; long code; };",
    "typedef sequence<octet> Blob;",
    "typedef long Grid[4][5];",
    'const string NAME = "zero\\"copy";',
    "const boolean ON = TRUE;",
    "const long N = 40 + 2;",
    """
    module M {
      struct S { long a; };
      module Inner { enum E { x, y }; };
    };
    """,
    """
    interface Base { void ping(); };
    interface Svc : Base {
      readonly attribute unsigned long total;
      attribute string name;
      exception Gone { long id; };
      long f(in long a, out string b, inout double c) raises (Gone);
      oneway void fire(in string msg);
      void bulk(in sequence<zc_octet> data);
      void math(in sequence<zc_double> v);
      void bounded(in sequence<octet, 64> d, in string<8> s);
    };
    """,
    """
    interface Node;
    interface Node { void link(in Node next); };
    """,
]


def _signature_map(spec):
    """Flatten to comparable structure: scoped name -> summary."""
    out = {}
    for decl in spec.iter_flat():
        entry = {"kind": type(decl).__name__}
        if hasattr(decl, "tc") and decl.tc is not None:
            entry["tc"] = repr(decl.tc)
        if hasattr(decl, "members"):
            entry["members"] = repr(decl.members)
        if hasattr(decl, "operations"):
            entry["ops"] = [repr(op.signature) for op in decl.operations]
            entry["bases"] = [b.scoped for b in decl.bases]
            entry["attrs"] = [(a.name, a.readonly, repr(a.tc))
                              for a in decl.attributes]
        if hasattr(decl, "value"):
            entry["value"] = decl.value
        out.setdefault(decl.scoped, entry)
    return out


@pytest.mark.parametrize("src", CASES)
def test_round_trip_equivalence(src):
    first = parse(src)
    printed = pretty_print(first)
    second = parse(printed)
    assert _signature_map(first) == _signature_map(second), printed


@pytest.mark.parametrize("src", CASES)
def test_round_trip_same_generated_code(src):
    """Stronger: the regenerated Python must be identical."""
    first = generate_source(parse(src))
    second = generate_source(parse(pretty_print(parse(src))))
    assert first == second


def test_printed_form_is_stable():
    """pretty(parse(pretty(parse(x)))) == pretty(parse(x))."""
    src = CASES[-2]
    once = pretty_print(parse(src))
    twice = pretty_print(parse(once))
    assert once == twice
