"""#include preprocessor tests."""

import pytest

from repro.idl import IncludeError, compile_idl, preprocess

LIB = {
    "types.idl": """
        typedef sequence<octet> Blob;
        struct Header { string name; unsigned long size; };
    """,
    "errors.idl": """
        exception Failed { string why; };
    """,
    "service.idl": """
        #include "types.idl"
        #include "errors.idl"
        interface Service {
            unsigned long put(in Blob data) raises (Failed);
        };
    """,
    "a.idl": '#include "b.idl"\nstruct A { long x; };',
    "b.idl": '#include "a.idl"\nstruct B { long y; };',
    "self.idl": '#include "self.idl"',
}


def loader(name: str) -> str:
    try:
        return LIB[name]
    except KeyError:
        raise IncludeError(f"no such include {name!r}") from None


class TestPreprocess:
    def test_inlines_includes(self):
        out = preprocess('#include "types.idl"\ninterface I {};',
                         loader=loader)
        assert "typedef sequence<octet> Blob;" in out
        assert "interface I {};" in out

    def test_once_only_semantics(self):
        src = '#include "types.idl"\n#include "types.idl"'
        out = preprocess(src, loader=loader)
        assert out.count("typedef sequence<octet> Blob;") == 1
        assert "already included" in out

    def test_nested_includes(self):
        out = preprocess('#include "service.idl"', loader=loader)
        assert "struct Header" in out
        assert "exception Failed" in out
        assert "interface Service" in out

    def test_cycle_detected(self):
        with pytest.raises(IncludeError, match="cycle"):
            preprocess('#include "a.idl"', loader=loader)
        with pytest.raises(IncludeError, match="cycle"):
            preprocess('#include "self.idl"', loader=loader)

    def test_missing_include(self):
        with pytest.raises(IncludeError, match="ghost"):
            preprocess('#include "ghost.idl"', loader=loader)

    def test_pragmas_dropped(self):
        out = preprocess("#pragma prefix \"acme.com\"\nstruct S{long x;};",
                         loader=loader)
        assert "#pragma" not in out.replace("// #pragma", "")

    def test_disk_loader(self, tmp_path):
        (tmp_path / "common.idl").write_text("enum E { a, b };")
        out = preprocess('#include "common.idl"\ninterface X {};',
                         include_dirs=[tmp_path])
        assert "enum E" in out

    def test_compile_through_includes(self):
        api = compile_idl('#include "service.idl"',
                          include_loader=loader,
                          module_name="_test_inc_idl")
        assert hasattr(api, "Service")
        assert hasattr(api, "Failed")
        assert api.Header(name="n", size=1).size == 1
