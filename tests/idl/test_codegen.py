"""Code-generator tests: the generated Python must be importable and
behaviourally complete."""


from repro.cdr import lookup_value_class
from repro.idl import compile_idl, idl_to_source
from repro.orb import Servant, UserException
from repro.orb.stubs import lookup_stub_class


class TestGeneratedArtifacts:
    def test_generated_source_is_readable_python(self):
        src = idl_to_source("interface Tiny { void ping(); };")
        assert "class Tiny(_ObjectStub):" in src
        assert "class Tiny_skel(_Servant):" in src
        compile(src, "<test>", "exec")  # syntactically valid

    def test_struct_class(self):
        api = compile_idl("""
        struct Point { double x; double y; };
        """, module_name="_cg_struct")
        p = api.Point(x=1.0, y=2.0)
        assert p == api.Point(1.0, 2.0)
        assert p != api.Point(0.0, 2.0)
        assert "x=1.0" in repr(p)
        assert api.Point().x == 0.0  # defaults
        assert lookup_value_class("IDL:Point:1.0") is api.Point

    def test_enum_class(self):
        api = compile_idl("enum Color { red, green, blue };",
                          module_name="_cg_enum")
        assert api.Color.green == 1
        assert api.Color(2) is api.Color.blue
        assert api.Color.TYPECODE.members == ("red", "green", "blue")

    def test_exception_class(self):
        api = compile_idl("exception Broke { string why; long code; };",
                          module_name="_cg_exc")
        exc = api.Broke(why="nope", code=3)
        assert isinstance(exc, UserException)
        assert exc.why == "nope"
        assert exc.repo_id == "IDL:Broke:1.0"

    def test_const_and_typedef(self):
        api = compile_idl("""
        const unsigned long MAX = 0x10;
        typedef sequence<octet> Blob;
        """, module_name="_cg_const")
        assert api.MAX == 16
        from repro.cdr.typecode import TCKind
        assert api.Blob.kind is TCKind.tk_sequence

    def test_stub_registered_globally(self):
        api = compile_idl("interface Reg1 { void ping(); };",
                          module_name="_cg_reg")
        assert lookup_stub_class("IDL:Reg1:1.0") is api.Reg1

    def test_interface_inheritance_in_python(self):
        api = compile_idl("""
        interface Base1 { void b(); };
        interface Derived1 : Base1 { void d(); };
        """, module_name="_cg_inherit")
        assert issubclass(api.Derived1, api.Base1)
        assert issubclass(api.Derived1_skel, api.Base1_skel)
        assert hasattr(api.Derived1, "b") and hasattr(api.Derived1, "d")
        assert api.Derived1_IFACE.find_operation("b") is not None \
            if hasattr(api, "Derived1_IFACE") else True

    def test_skeleton_is_servant(self):
        api = compile_idl("interface Srv1 { void ping(); };",
                          module_name="_cg_srv")
        assert issubclass(api.Srv1_skel, Servant)
        assert api.Srv1_skel._INTERFACE.repo_id == "IDL:Srv1:1.0"

    def test_module_names_flattened(self):
        api = compile_idl("""
        module Outer { module Inner {
            struct Deep { long v; };
            interface Svc { void go(); };
        }; };
        """, module_name="_cg_mod")
        assert api.Outer_Inner_Deep(v=1).v == 1
        assert api.Outer_Inner_Svc._INTERFACE.repo_id \
            == "IDL:Outer/Inner/Svc:1.0"

    def test_all_lists_everything(self):
        api = compile_idl("""
        const long C = 1;
        enum E2 { a, b };
        struct S2 { long x; };
        exception X2 { long y; };
        interface I2 { void f(); };
        """, module_name="_cg_all")
        for name in ("C", "E2", "S2", "X2", "I2", "I2_skel"):
            assert name in api.__all__
            assert hasattr(api, name)

    def test_zc_promotion_changes_only_typecode(self):
        """§4.3: ZC stubs 'look the same and are used the same way'."""
        src = "interface P2 { void put(in sequence<octet> d); };"
        plain = idl_to_source(src)
        promoted = idl_to_source(src, promote_octet_sequences=True)
        assert plain.replace("sequence_tc(TC_OCTET, 0)",
                             "zc_octet_sequence_tc()") == promoted
