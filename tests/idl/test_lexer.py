"""IDL lexer tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.idl import LexError, TokenKind, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_keywords_vs_identifiers(self):
        toks = kinds("interface Foo")
        assert toks == [(TokenKind.KEYWORD, "interface"),
                        (TokenKind.IDENT, "Foo")]

    def test_zc_octet_both_spellings_are_keywords(self):
        assert kinds("zc_octet")[0][0] is TokenKind.KEYWORD
        assert kinds("ZC_Octet")[0][0] is TokenKind.KEYWORD

    def test_scoped_name_punct(self):
        toks = kinds("A::B")
        assert toks == [(TokenKind.IDENT, "A"), (TokenKind.PUNCT, "::"),
                        (TokenKind.IDENT, "B")]

    def test_single_colon_distinct_from_double(self):
        assert kinds(":")[0] == (TokenKind.PUNCT, ":")
        assert kinds("::")[0] == (TokenKind.PUNCT, "::")


class TestLiterals:
    def test_int_forms(self):
        toks = tokenize("10 0x1F 0")
        assert [t.value for t in toks[:-1]] == [10, 31, 0]

    def test_float_forms(self):
        toks = tokenize("1.5 2e3 0.25 1.5e-2")
        assert [t.value for t in toks[:-1]] == [1.5, 2000.0, 0.25, 0.015]

    def test_string_literal(self):
        (tok,) = tokenize('"hi there"')[:-1]
        assert tok.kind is TokenKind.STRING
        assert tok.value == "hi there"

    def test_string_escapes(self):
        (tok,) = tokenize(r'"a\nb\"c"')[:-1]
        assert tok.value == 'a\nb"c'

    def test_char_literal(self):
        (tok,) = tokenize("'x'")[:-1]
        assert tok.kind is TokenKind.CHAR
        assert tok.value == "x"

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize('"oops')


class TestCommentsAndPosition:
    def test_line_comments_skipped(self):
        assert kinds("a // comment\nb") == [(TokenKind.IDENT, "a"),
                                            (TokenKind.IDENT, "b")]

    def test_block_comments_skipped(self):
        assert kinds("a /* multi\nline */ b") == [(TokenKind.IDENT, "a"),
                                                  (TokenKind.IDENT, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_preprocessor_lines_skipped(self):
        assert kinds('#include "x.idl"\nmodule') == [(TokenKind.KEYWORD,
                                                      "module")]

    def test_positions_tracked(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_position_after_block_comment(self):
        toks = tokenize("/* x\ny */ z")
        assert toks[0].line == 2

    def test_unexpected_character(self):
        with pytest.raises(LexError, match="unexpected"):
            tokenize("a $ b")


@given(st.lists(st.sampled_from(
    ["interface", "octet", "Foo", "x1", "42", "0x10", "1.5",
     '"s"', "{", "}", "::", ";", "<", ">", ","]), max_size=30))
def test_token_stream_never_crashes_and_ends_with_eof(parts):
    src = " ".join(parts)
    toks = tokenize(src)
    assert toks[-1].kind is TokenKind.EOF
    assert len(toks) == len(parts) + 1
