"""Adversarial-input properties: random bytes must produce typed
errors (CDRError/GIOPError/DepositError), never arbitrary crashes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import CDRDecoder, CDRError
from repro.core import DepositDescriptor, DepositError
from repro.giop import GIOPError, GIOPHeader, decode_body, decode_header


@given(st.binary(max_size=64))
def test_header_decode_never_crashes(data):
    try:
        header = decode_header(data)
    except GIOPError:
        return
    # a successful parse implies the magic and bounds were right
    assert data[:4] == b"GIOP"
    assert header.size >= 0


@given(st.binary(min_size=12, max_size=256))
def test_body_decode_never_crashes(data):
    """Force a valid header, then feed random body bytes."""
    try:
        header = decode_header(
            GIOPHeader(msg_type=__import__("repro.giop", fromlist=["MsgType"])
                       .MsgType.Request, size=len(data)).encode())
        decode_body(header, data)
    except (GIOPError, CDRError):
        pass


@given(st.binary(max_size=128), st.booleans())
def test_cdr_decoder_random_reads(data, little):
    dec = CDRDecoder(data, little_endian=little)
    for op in ("get_string", "get_octets", "get_encapsulation"):
        fresh = CDRDecoder(data, little_endian=little)
        try:
            getattr(fresh, op)()
        except CDRError:
            pass


@given(st.binary(max_size=64))
def test_deposit_descriptor_decode_never_crashes(data):
    try:
        desc = DepositDescriptor.decode(data)
    except DepositError:
        return
    assert desc.size >= 0


@settings(max_examples=50)
@given(st.lists(st.binary(min_size=0, max_size=200), min_size=1,
                max_size=5))
def test_conn_rejects_garbage_streams(chunks):
    """A GIOPConn fed arbitrary bytes raises a typed error or reports
    the connection dead — it never hangs or corrupts."""
    from repro.orb import SystemException
    from repro.orb.connection import GIOPConn
    from repro.transport import LoopbackTransport

    transport = LoopbackTransport()
    accepted = []
    listener = transport.listen(f"fuzz-{id(chunks)}", 0, accepted.append)
    try:
        client = transport.connect(listener.endpoint)
        conn = GIOPConn(accepted[0])
        for chunk in chunks:
            client.send(chunk) if chunk else None
        payload = b"".join(chunks)
        if not payload:
            return
        try:
            rm = conn.read_message()
            # parsing succeeded: the fuzz input happened to be valid GIOP
            assert payload[:4] == b"GIOP"
        except (GIOPError, SystemException):
            pass
    finally:
        listener.close()
