"""GIOP message format tests, including deposit service contexts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DepositDescriptor
from repro.giop import (GIOP_HEADER_SIZE, CancelRequestHeader, GIOPError,
                        GIOPHeader, LocateReplyHeader, LocateRequestHeader,
                        LocateStatus, MsgType, ReplyHeader, ReplyStatus,
                        RequestHeader, ServiceContext, decode_body,
                        decode_header, encode_message)


class TestGIOPHeader:
    def test_fixed_size_and_magic(self):
        h = GIOPHeader(msg_type=MsgType.Request, size=100)
        raw = h.encode()
        assert len(raw) == GIOP_HEADER_SIZE
        assert raw[:4] == b"GIOP"

    def test_round_trip_both_orders(self):
        for little in (True, False):
            h = GIOPHeader(msg_type=MsgType.Reply, size=12345,
                           little_endian=little)
            out = GIOPHeader.decode(h.encode())
            assert out.msg_type is MsgType.Reply
            assert out.size == 12345
            assert out.little_endian is little

    def test_fragment_flag(self):
        h = GIOPHeader(msg_type=MsgType.Request, size=0,
                       more_fragments=True)
        assert GIOPHeader.decode(h.encode()).more_fragments

    def test_bad_magic_rejected(self):
        with pytest.raises(GIOPError, match="magic"):
            GIOPHeader.decode(b"JUNK" + bytes(8))

    def test_bad_version_rejected(self):
        raw = bytearray(GIOPHeader(msg_type=MsgType.Request, size=0).encode())
        raw[4] = 9
        with pytest.raises(GIOPError, match="version"):
            GIOPHeader.decode(bytes(raw))

    def test_unknown_type_rejected(self):
        raw = bytearray(GIOPHeader(msg_type=MsgType.Request, size=0).encode())
        raw[7] = 200
        with pytest.raises(GIOPError, match="message type"):
            GIOPHeader.decode(bytes(raw))

    def test_short_header_rejected(self):
        with pytest.raises(GIOPError, match="short"):
            GIOPHeader.decode(b"GIOP")


def _round_trip_body(header_obj):
    msg = encode_message(header_obj)
    h = decode_header(msg[:GIOP_HEADER_SIZE])
    return decode_body(h, msg[GIOP_HEADER_SIZE:]).body_header


class TestBodyHeaders:
    def test_request_header_round_trip(self):
        req = RequestHeader(request_id=42, object_key=b"POA1/0001",
                            operation="do_it", response_expected=True,
                            principal=b"me")
        out = _round_trip_body(req)
        assert out.request_id == 42
        assert out.object_key == b"POA1/0001"
        assert out.operation == "do_it"
        assert out.response_expected
        assert out.principal == b"me"

    def test_oneway_request(self):
        req = RequestHeader(request_id=1, object_key=b"k",
                            operation="fire", response_expected=False)
        assert not _round_trip_body(req).response_expected

    def test_reply_header_statuses(self):
        for status in ReplyStatus:
            out = _round_trip_body(ReplyHeader(request_id=9,
                                               reply_status=status))
            assert out.reply_status is status

    def test_cancel_request(self):
        assert _round_trip_body(CancelRequestHeader(request_id=5)
                                ).request_id == 5

    def test_locate_request_reply(self):
        out = _round_trip_body(LocateRequestHeader(request_id=2,
                                                   object_key=b"xyz"))
        assert out.object_key == b"xyz"
        for status in LocateStatus:
            out = _round_trip_body(LocateReplyHeader(request_id=3,
                                                     locate_status=status))
            assert out.locate_status is status

    def test_close_connection_has_no_body(self):
        msg = encode_message(MsgType.CloseConnection)
        h = decode_header(msg[:GIOP_HEADER_SIZE])
        assert h.size == 0
        assert decode_body(h, b"").body_header is None


class TestServiceContexts:
    def test_deposit_descriptor_rides_service_context(self):
        desc = DepositDescriptor(deposit_id=3, size=65536)
        req = RequestHeader(
            request_id=1, object_key=b"k", operation="put",
            service_contexts=[ServiceContext.for_deposit(desc)])
        out = _round_trip_body(req)
        assert out.deposit_descriptors() == [desc]

    def test_foreign_contexts_ignored_by_deposit_scan(self):
        req = RequestHeader(
            request_id=1, object_key=b"k", operation="op",
            service_contexts=[ServiceContext(context_id=1, data=b"codeset"),
                              ServiceContext.for_deposit(
                                  DepositDescriptor(1, 10))])
        out = _round_trip_body(req)
        assert len(out.service_contexts) == 2
        assert len(out.deposit_descriptors()) == 1

    def test_multiple_deposits_preserve_order(self):
        descs = [DepositDescriptor(i, i * 100) for i in (5, 2, 9)]
        req = RequestHeader(
            request_id=1, object_key=b"k", operation="op",
            service_contexts=[ServiceContext.for_deposit(d)
                              for d in descs])
        assert _round_trip_body(req).deposit_descriptors() == descs


class TestWholeMessages:
    def test_params_follow_header_8_aligned(self):
        req = RequestHeader(request_id=1, object_key=b"key", operation="f")
        params = b"PARAMDATA"
        msg = encode_message(req, params=params)
        h = decode_header(msg[:GIOP_HEADER_SIZE])
        assert h.size == len(msg) - GIOP_HEADER_SIZE
        assert msg.endswith(params)
        body_len = h.size - len(params)
        assert body_len % 8 == 0  # 1.2-style body alignment

    def test_truncated_body_rejected(self):
        req = RequestHeader(request_id=1, object_key=b"key", operation="f")
        msg = encode_message(req)
        h = decode_header(msg[:GIOP_HEADER_SIZE])
        with pytest.raises(GIOPError, match="truncated"):
            decode_body(h, msg[GIOP_HEADER_SIZE:-2])

    @given(st.integers(0, 2**32 - 1), st.binary(min_size=1, max_size=64),
           st.text(alphabet=st.characters(codec="ascii",
                                          exclude_characters="\x00"),
                   min_size=1, max_size=32),
           st.booleans(), st.booleans())
    def test_request_round_trip_property(self, req_id, key, op, expected,
                                         little):
        req = RequestHeader(request_id=req_id, object_key=key,
                            operation=op, response_expected=expected)
        msg = encode_message(req, little_endian=little)
        h = decode_header(msg[:GIOP_HEADER_SIZE])
        out = decode_body(h, msg[GIOP_HEADER_SIZE:]).body_header
        assert (out.request_id, out.object_key, out.operation,
                out.response_expected) == (req_id, key, op, expected)
