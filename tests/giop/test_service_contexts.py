"""Trace-context codec and service-context transparency.

Two wire-level contracts of the tracing PR:

* the :data:`SVC_CTX_TRACE` payload (version + 128-bit trace id +
  64-bit span id + flags) round-trips and rejects malformed input;
* service contexts are *transparent*: tags this ORB does not know
  survive a Request/Reply codec round-trip byte-for-byte, in order —
  a foreign ORB's private contexts must never be dropped or reordered.
"""

import pytest

from repro.giop import (GIOP_HEADER_SIZE, SVC_CTX_DEPOSIT, SVC_CTX_TRACE,
                        TRACE_CTX_SIZE, GIOPError, ReplyHeader, ReplyStatus,
                        RequestHeader, ServiceContext, decode_body,
                        decode_header, decode_trace_context, encode_message,
                        encode_trace_context)

TRACE = bytes(range(16))
SPAN = bytes(range(16, 24))


def _round_trip(header_obj):
    msg = encode_message(header_obj)
    h = decode_header(msg[:GIOP_HEADER_SIZE])
    return decode_body(h, msg[GIOP_HEADER_SIZE:]).body_header


class TestTraceContextCodec:
    def test_round_trip(self):
        raw = encode_trace_context(TRACE, SPAN, sampled=True)
        assert len(raw) == TRACE_CTX_SIZE
        trace_id, span_id, sampled = decode_trace_context(raw)
        assert (trace_id, span_id, sampled) == (TRACE, SPAN, True)

    def test_unsampled_flag(self):
        raw = encode_trace_context(TRACE, SPAN, sampled=False)
        assert decode_trace_context(raw)[2] is False

    def test_version_octet_leads(self):
        assert encode_trace_context(TRACE, SPAN)[0] == 0

    @pytest.mark.parametrize("trace,span", [
        (TRACE[:8], SPAN), (TRACE + TRACE, SPAN),
        (TRACE, SPAN[:4]), (TRACE, SPAN + SPAN),
    ])
    def test_wrong_id_sizes_rejected(self, trace, span):
        with pytest.raises(GIOPError):
            encode_trace_context(trace, span)

    def test_short_payload_rejected(self):
        with pytest.raises(GIOPError, match="short"):
            decode_trace_context(b"\x00" * (TRACE_CTX_SIZE - 1))

    def test_unknown_version_rejected(self):
        raw = bytearray(encode_trace_context(TRACE, SPAN))
        raw[0] = 9
        with pytest.raises(GIOPError, match="version"):
            decode_trace_context(bytes(raw))

    def test_trailing_bytes_tolerated(self):
        """A longer future payload decodes its known prefix (forward
        compatibility, like W3C tracestate extensions)."""
        raw = encode_trace_context(TRACE, SPAN) + b"future-extension"
        assert decode_trace_context(raw)[0] == TRACE

    def test_tag_is_vendor_adjacent_to_deposit(self):
        assert SVC_CTX_TRACE == SVC_CTX_DEPOSIT + 1


class TestUnknownContextTransparency:
    UNKNOWN = [ServiceContext(0x4242, b"opaque-blob"),
               ServiceContext(0x7F00_0001, bytes(range(64)))]

    def test_request_preserves_unknown_tags(self):
        req = RequestHeader(request_id=7, object_key=b"K",
                            operation="op",
                            service_contexts=list(self.UNKNOWN))
        out = _round_trip(req)
        assert out.service_contexts == self.UNKNOWN

    def test_reply_preserves_unknown_tags(self):
        rep = ReplyHeader(request_id=7,
                          reply_status=ReplyStatus.NO_EXCEPTION,
                          service_contexts=list(self.UNKNOWN))
        out = _round_trip(rep)
        assert out.service_contexts == self.UNKNOWN

    def test_order_preserved_among_mixed_tags(self):
        """Unknown tags keep their position relative to the trace
        context — transparency means no reordering either."""
        trace_sc = ServiceContext(
            SVC_CTX_TRACE, encode_trace_context(TRACE, SPAN))
        contexts = [self.UNKNOWN[0], trace_sc, self.UNKNOWN[1]]
        req = RequestHeader(request_id=1, object_key=b"K", operation="op",
                            service_contexts=list(contexts))
        out = _round_trip(req)
        assert out.service_contexts == contexts
        assert [sc.context_id for sc in out.service_contexts] == \
            [0x4242, SVC_CTX_TRACE, 0x7F00_0001]
