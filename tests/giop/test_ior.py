"""IOR / IIOP-profile tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.giop import IOR, TAG_INTERNET_IOP, IIOPProfile, IORError


class TestIIOPProfile:
    def test_round_trip(self):
        p = IIOPProfile(host="node7", port=2809, object_key=b"POA1/0003")
        out = IIOPProfile.decode(p.encode())
        assert out == p

    def test_scheme_encoding_in_host(self):
        p = IIOPProfile(host="loop!orb3", port=9001, object_key=b"k")
        assert p.scheme == "loop"
        assert p.bare_host == "orb3"
        assert p.endpoint == ("loop", "orb3", 9001)

    def test_plain_host_is_tcp(self):
        p = IIOPProfile(host="192.168.1.5", port=1234, object_key=b"k")
        assert p.scheme == "tcp"
        assert p.endpoint == ("tcp", "192.168.1.5", 1234)

    def test_empty_profile_rejected(self):
        with pytest.raises(IORError):
            IIOPProfile.decode(b"")


class TestIOR:
    def _ior(self):
        return IOR.for_object(
            "IDL:Demo/Sink:1.0",
            IIOPProfile(host="h", port=99, object_key=b"key42"))

    def test_stringified_round_trip(self):
        ior = self._ior()
        s = ior.to_string()
        assert s.startswith("IOR:")
        out = IOR.from_string(s)
        assert out.type_id == ior.type_id
        assert out.iiop_profile() == ior.iiop_profile()

    def test_binary_round_trip_big_endian(self):
        ior = self._ior()
        out = IOR.decode(ior.encode(), little_endian=True)
        assert out.iiop_profile().object_key == b"key42"

    def test_corbaloc_parsing(self):
        ior = IOR.from_string("corbaloc::myhost:2809/Service")
        p = ior.iiop_profile()
        assert p.host == "myhost"
        assert p.port == 2809
        assert p.object_key == b"Service"

    def test_corbaloc_with_scheme(self):
        ior = IOR.from_string("corbaloc::loop!orb1:9000/POA1/0001")
        assert ior.iiop_profile().endpoint == ("loop", "orb1", 9000)
        assert ior.iiop_profile().object_key == b"POA1/0001"

    def test_bad_strings_rejected(self):
        for bad in ("NOPE:123", "IOR:zz", "corbaloc::nohost/",
                    "corbaloc::h/key", "corbaloc:rir:/x"):
            with pytest.raises(IORError):
                IOR.from_string(bad)

    def test_missing_iiop_profile(self):
        ior = IOR(type_id="IDL:X:1.0", profiles=((99, b"opaque"),))
        with pytest.raises(IORError, match="no IIOP profile"):
            ior.iiop_profile()

    def test_foreign_profiles_preserved(self):
        prof = IIOPProfile(host="h", port=1, object_key=b"k")
        ior = IOR(type_id="IDL:X:1.0",
                  profiles=((77, b"vendor"),
                            (TAG_INTERNET_IOP, prof.encode())))
        out = IOR.from_string(ior.to_string())
        assert out.profiles[0] == (77, b"vendor")
        assert out.iiop_profile() == prof

    @given(st.text(alphabet=st.characters(codec="ascii",
                                          exclude_characters="\x00!:/"),
                   min_size=1, max_size=20),
           st.integers(1, 65535), st.binary(min_size=1, max_size=64))
    def test_round_trip_property(self, host, port, key):
        ior = IOR.for_object("IDL:T:1.0",
                             IIOPProfile(host=host, port=port,
                                         object_key=key))
        out = IOR.from_string(ior.to_string())
        assert out.iiop_profile() == ior.iiop_profile()


class TestMultiProfileIOR:
    """A multi-homed server advertises one profile per transport."""

    def _profiles(self):
        return (IIOPProfile(host="198.51.100.7", port=2809,
                            object_key=b"POA1/42"),
                IIOPProfile(host="shm!127.0.0.1", port=39001,
                            object_key=b"POA1/42"))

    def test_round_trip_preserves_all_profiles(self):
        tcp, shm = self._profiles()
        ior = IOR.for_object("IDL:Demo/Sink:1.0", tcp, shm)
        out = IOR.from_string(ior.to_string())
        assert out.iiop_profiles() == (tcp, shm)
        # the primary (first) profile is unchanged by the extras
        assert out.iiop_profile() == tcp
        assert [p.scheme for p in out.iiop_profiles()] == ["tcp", "shm"]

    def test_unknown_tag_profile_survives_byte_exact(self):
        tcp, shm = self._profiles()
        opaque = bytes(range(64))
        ior = IOR(type_id="IDL:Demo/Sink:1.0",
                  profiles=((TAG_INTERNET_IOP, tcp.encode()),
                            (0x4242, opaque),
                            (TAG_INTERNET_IOP, shm.encode())))
        out = IOR.from_string(ior.to_string())
        assert out.profiles[1] == (0x4242, opaque)
        # iiop_profiles skips the foreign tag but keeps the order
        assert out.iiop_profiles() == (tcp, shm)
        assert out.iiop_profile() == tcp
        # and a second round trip is still byte-identical
        assert IOR.from_string(out.to_string()).profiles == out.profiles

    def test_for_object_requires_a_profile(self):
        with pytest.raises(IORError, match="at least one profile"):
            IOR.for_object("IDL:Demo/Sink:1.0")

    def test_binary_round_trip_both_orders(self):
        tcp, shm = self._profiles()
        ior = IOR.for_object("IDL:Demo/Sink:1.0", tcp, shm)
        for little in (True, False):
            # re-decode of our own encoding: the flag byte governs
            out = IOR.decode(ior.encode(), little_endian=True)
            assert out.iiop_profiles() == (tcp, shm)


class TestRoundTripPropertyMulti:
    @given(st.text(alphabet=st.characters(codec="ascii",
                                          exclude_characters="\x00!:/"),
                   min_size=1, max_size=20),
           st.integers(1, 65535), st.binary(min_size=1, max_size=64))
    def test_round_trip_property_multi(self, host, port, key):
        profiles = (IIOPProfile(host=host, port=port, object_key=key),
                    IIOPProfile(host=f"shm!{host}", port=port,
                                object_key=key))
        ior = IOR.for_object("IDL:T:1.0", *profiles)
        out = IOR.from_string(ior.to_string())
        assert out.iiop_profiles() == profiles

class TestIdentity:
    def _profiles(self):
        return (IIOPProfile(host="tcp!h", port=99, object_key=b"key42"),
                IIOPProfile(host="shm!h", port=99, object_key=b"key42"))

    def test_profile_order_independent(self):
        p1, p2 = self._profiles()
        a = IOR.for_object("IDL:Demo/Sink:1.0", p1, p2)
        b = IOR.for_object("IDL:Demo/Sink:1.0", p2, p1)
        assert a.identity() == b.identity()

    def test_single_vs_multi_profile_same_key(self):
        p1, p2 = self._profiles()
        single = IOR.for_object("IDL:Demo/Sink:1.0", p1)
        multi = IOR.for_object("IDL:Demo/Sink:1.0", p1, p2)
        assert single.identity() == multi.identity()

    def test_distinct_objects_differ(self):
        p1, _ = self._profiles()
        other = IIOPProfile(host="tcp!h", port=99, object_key=b"other")
        a = IOR.for_object("IDL:Demo/Sink:1.0", p1)
        b = IOR.for_object("IDL:Demo/Sink:1.0", other)
        assert a.identity() != b.identity()

    def test_type_id_distinguishes(self):
        p1, _ = self._profiles()
        a = IOR.for_object("IDL:Demo/Sink:1.0", p1)
        b = IOR.for_object("IDL:Demo/Source:1.0", p1)
        assert a.identity() != b.identity()

    def test_profile_less_ior_never_raises(self):
        bare = IOR(type_id="IDL:Demo/Sink:1.0",
                   profiles=((0x7F42, b"opaque"),))
        with pytest.raises(IORError):
            bare.iiop_profile()  # the old keying path raised here
        ident = bare.identity()
        assert ident == bare.identity()  # stable and hashable
        hash(ident)
