"""Shared-memory transport tests: arena, deposit channel, ORB wiring."""

import gc
import threading

import pytest

from repro.core.buffers import PAGE_SIZE, BufferPool, MappedBuffer
from repro.core.direct_deposit import DepositDescriptor, DepositError
from repro.transport.shm import (SHM_MAGIC, ShmArena, ShmError, ShmStream,
                                 ShmTransport)

SIZE_64K = 64 * 1024


@pytest.fixture
def arena(tmp_path):
    a = ShmArena.create(str(tmp_path), slot_size=SIZE_64K, slot_count=4)
    yield a
    a.close()


def _stream_pair(transport):
    """A connected (client, server) ShmStream pair + their listener."""
    accepted = []
    ready = threading.Event()

    def on_accept(stream):
        accepted.append(stream)
        ready.set()

    listener = transport.listen("127.0.0.1", 0, on_accept)
    client = transport.connect(listener.endpoint)
    assert ready.wait(5), "accept did not happen"
    return client, accepted[0], listener


@pytest.fixture
def pair():
    transport = ShmTransport(slot_size=SIZE_64K, slot_count=4,
                             slot_wait=0.05)
    client, server, listener = _stream_pair(transport)
    yield client, server
    client.close()
    server.close()
    listener.close()


class TestShmArena:
    def test_create_and_attach(self, arena):
        peer = ShmArena(arena.path, arena.slot_size, arena.slot_count,
                        create=False)
        try:
            assert peer.slot_size == arena.slot_size
            assert peer.slot_count == arena.slot_count
            assert arena.free_slots == 4
        finally:
            peer.close()

    def test_bad_geometry_rejected(self, tmp_path):
        with pytest.raises(ShmError, match="slot count"):
            ShmArena(str(tmp_path / "x"), SIZE_64K, 0, create=True)
        with pytest.raises(ShmError, match="page multiple"):
            ShmArena(str(tmp_path / "x"), 1000, 4, create=True)

    def test_attach_undersized_file_rejected(self, tmp_path, arena):
        with pytest.raises(ShmError, match="smaller"):
            ShmArena(arena.path, arena.slot_size, arena.slot_count + 10,
                     create=False)

    def test_alloc_post_free_lifecycle(self, arena):
        slot, waited = arena.alloc()
        assert slot == 0 and waited < 0.01
        assert arena.free_slots == 3
        arena.post(slot)
        assert arena.free_slots == 3  # POSTED, not FREE
        arena.free(slot)
        assert arena.free_slots == 4

    def test_alloc_exhaustion_times_out(self, arena):
        slots = [arena.alloc()[0] for _ in range(4)]
        assert None not in slots
        slot, waited = arena.alloc(timeout=0.02)
        assert slot is None
        assert waited >= 0.02

    def test_slots_are_page_aligned(self, arena):
        for slot in range(arena.slot_count):
            assert arena.slot_address(slot) % PAGE_SIZE == 0

    def test_acquire_returns_mapped_buffer(self, arena):
        buf = arena.acquire(5000)
        assert isinstance(buf, MappedBuffer)
        assert buf.length == 5000
        assert buf.is_page_aligned
        assert arena.free_slots == 3
        buf.release()
        assert arena.free_slots == 4

    def test_dropped_buffer_frees_slot_via_finalizer(self, arena):
        buf = arena.acquire(100)
        assert arena.free_slots == 3
        del buf  # application forgot release(): the finalizer frees
        gc.collect()
        assert arena.free_slots == 4

    def test_locate_owned_slot(self, arena):
        buf = arena.acquire(4096)
        loc = arena.locate(buf.view())
        assert loc is not None
        slot, offset = loc
        assert offset == 0
        buf.release()

    def test_locate_foreign_memory_is_none(self, arena):
        foreign = bytearray(4096)
        assert arena.locate(memoryview(foreign)) is None

    def test_locate_after_post_is_none(self, arena):
        """Posting transfers ownership: the view no longer locates."""
        buf = arena.acquire(4096)
        slot, _ = arena.locate(buf.view())
        arena.post(slot)
        assert arena.locate(buf.view()) is None
        buf.release()  # safe no-op after the transfer

    def test_creator_unlinks_on_close(self, tmp_path):
        import os
        a = ShmArena.create(str(tmp_path), SIZE_64K, 2)
        path = a.path
        assert os.path.exists(path)
        a.close()
        assert not os.path.exists(path)


class TestHandshake:
    def test_both_sides_get_channels(self, pair):
        client, server = pair
        assert client.deposit_channel is client
        assert server.deposit_channel is server
        assert client.send_arena is not None
        assert client.recv_arena is not None

    def test_control_plane_still_streams(self, pair):
        client, server = pair
        client.send(b"control bytes")
        assert server.recv_exact(13).tobytes() == b"control bytes"

    def test_degrades_without_arena(self, monkeypatch):
        """No arena on one side -> both degrade to plain streaming."""
        transport = ShmTransport(slot_size=SIZE_64K, slot_count=4)
        monkeypatch.setattr(ShmTransport, "_make_arena", lambda self: None)
        client, server, listener = _stream_pair(transport)
        try:
            assert client.deposit_channel is None
            assert server.deposit_channel is None
            client.send(b"plain")
            assert server.recv_exact(5).tobytes() == b"plain"
        finally:
            client.close()
            server.close()
            listener.close()


class TestDepositChannel:
    def _desc(self, size, deposit_id=1):
        return DepositDescriptor(deposit_id=deposit_id, size=size)

    def test_copy_path_round_trip(self, pair):
        client, server = pair
        payload = bytes(range(256)) * 64  # 16 KiB
        used_arena, _ = client.send_deposit(memoryview(payload))
        assert used_arena
        pool = BufferPool()
        buf, via_arena = server.recv_deposit(self._desc(len(payload)), pool)
        assert via_arena
        assert buf.tobytes() == payload
        assert buf.is_page_aligned
        assert client.shm_deposits_sent == 1
        assert server.shm_deposits_received == 1
        # releasing the landed buffer returns the slot to the sender
        free_before = client.send_arena.free_slots
        buf.release()
        assert client.send_arena.free_slots == free_before + 1

    def test_reference_path_zero_copy(self, pair):
        """A payload already living in the arena is sent by reference."""
        client, server = pair
        staged = client.send_arena.acquire(8192)
        staged.view()[:] = b"\xa5" * 8192
        used_arena, _ = client.send_deposit(staged.view())
        assert used_arena
        assert client.shm_references_sent == 1
        buf, via_arena = server.recv_deposit(self._desc(8192), BufferPool())
        assert via_arena
        assert buf.tobytes() == b"\xa5" * 8192
        staged.release()  # ownership moved: a safe no-op
        buf.release()

    def test_oversize_payload_falls_back_inline(self, pair):
        client, server = pair
        payload = bytes(2 * SIZE_64K)  # larger than any slot
        used_arena, _ = client.send_deposit(memoryview(payload))
        assert not used_arena
        assert client.shm_fallbacks_sent == 1
        buf, via_arena = server.recv_deposit(self._desc(len(payload)),
                                             BufferPool())
        assert not via_arena
        assert server.shm_fallbacks_received == 1
        assert buf.tobytes() == payload
        buf.release()

    def test_slot_exhaustion_falls_back_then_recovers(self, pair):
        """Receiver holding every slot forces the inline path for the
        next deposit; freeing a slot restores the arena path."""
        client, server = pair
        client.slot_wait = 0.01
        pool = BufferPool()
        payload = b"\x42" * 1024
        held = []
        for i in range(4):  # consume all 4 slots
            client.send_deposit(memoryview(payload))
            buf, via = server.recv_deposit(self._desc(1024, i + 1), pool)
            assert via
            held.append(buf)
        used_arena, waited = client.send_deposit(memoryview(payload))
        assert not used_arena  # exhausted -> inline
        assert waited > 0.0
        assert client.shm_fallbacks_sent == 1
        buf, via = server.recv_deposit(self._desc(1024, 5), pool)
        assert not via
        assert buf.tobytes() == payload
        buf.release()
        held.pop().release()  # free one slot
        used_arena, _ = client.send_deposit(memoryview(payload))
        assert used_arena  # arena path is back
        buf, via = server.recv_deposit(self._desc(1024, 6), pool)
        assert via
        buf.release()
        for b in held:
            b.release()

    def test_record_size_mismatch_rejected(self, pair):
        client, server = pair
        client.send_deposit(memoryview(b"x" * 100))
        with pytest.raises(DepositError, match="size"):
            server.recv_deposit(self._desc(999), BufferPool())

    def test_bad_record_magic_rejected(self, pair):
        import struct
        client, server = pair
        client.send(struct.pack("<IiQQ", SHM_MAGIC ^ 0xFF, 0, 0, 16))
        with pytest.raises(DepositError, match="magic"):
            server.recv_deposit(self._desc(16), BufferPool())

    def test_out_of_range_slot_rejected(self, pair):
        import struct
        client, server = pair
        client.send(struct.pack("<IiQQ", SHM_MAGIC, 99, 0, 16))
        with pytest.raises(DepositError, match="geometry"):
            server.recv_deposit(self._desc(16), BufferPool())


class TestShmORB:
    def _orbs(self, **server_kw):
        from repro.orb import ORB, ORBConfig
        server = ORB(ORBConfig(scheme="shm", **server_kw))
        client = ORB(ORBConfig(scheme="shm", collocated_calls=False))
        return server, client

    def test_zero_copy_call_uses_arena(self):
        from repro.apps.ttcp import _TTCPServant, _ttcp_api
        from repro.core import ZCOctetSequence
        _ttcp_api()
        server, client = self._orbs()
        try:
            ref = server.activate(_TTCPServant())
            stub = client.string_to_object(server.object_to_string(ref))
            data = bytes(range(256)) * 1024  # 256 KiB
            assert stub.send_zc(ZCOctetSequence.from_data(data)) == len(data)
            proxy = next(iter(client._proxies.values()))
            assert proxy.conn.stats.shm_deposits >= 1
            assert proxy.conn.stats.shm_fallbacks == 0
            assert isinstance(proxy.conn.stream, ShmStream)
        finally:
            client.shutdown()
            server.shutdown()

    def test_shm_metrics_flow_through_obs(self):
        from repro.apps.ttcp import _TTCPServant, _ttcp_api
        from repro.core import ZCOctetSequence
        from repro.obs import MetricsRegistry
        _ttcp_api()
        server, client = self._orbs()
        reg = MetricsRegistry()
        server.metrics = reg
        client.metrics = reg
        try:
            ref = server.activate(_TTCPServant())
            stub = client.string_to_object(server.object_to_string(ref))
            stub.send_zc(ZCOctetSequence.from_data(bytes(4096)))
            sent = reg.counter("shm_deposits_total", op="send").value
            landed = reg.counter("shm_deposits_total", op="recv").value
            assert sent >= 1
            assert landed >= 1
            assert reg.counter("shm_fallbacks_total", op="send").value == 0
        finally:
            client.shutdown()
            server.shutdown()

    def test_multi_profile_ior_prefers_shm(self):
        """A tcp server also advertising shm gets shm from a colocated
        client; the IOR still resolves over plain tcp elsewhere."""
        from repro.apps.ttcp import _TTCPServant, _ttcp_api
        from repro.orb import ORB, ORBConfig
        _ttcp_api()
        server = ORB(ORBConfig(scheme="tcp", extra_schemes=("shm",)))
        client = ORB(ORBConfig(scheme="tcp", collocated_calls=False))
        try:
            ref = server.activate(_TTCPServant())
            ior = ref.ior
            schemes = [p.scheme for p in ior.iiop_profiles()]
            assert schemes == ["tcp", "shm"]
            picked = client.select_profile(ior)
            assert picked.scheme == "shm"
        finally:
            client.shutdown()
            server.shutdown()
