"""Shared-memory transport tests: arena, deposit channel, ORB wiring."""

import gc
import threading

import pytest

from repro.core.buffers import PAGE_SIZE, BufferPool, MappedBuffer
from repro.core.direct_deposit import DepositDescriptor, DepositError
from repro.transport.shm import (SHM_MAGIC, ShmArena, ShmError, ShmStream,
                                 ShmTransport)

SIZE_64K = 64 * 1024


@pytest.fixture
def arena(tmp_path):
    a = ShmArena.create(str(tmp_path), slot_size=SIZE_64K, slot_count=4)
    yield a
    a.close()


def _stream_pair(transport):
    """A connected (client, server) ShmStream pair + their listener."""
    accepted = []
    ready = threading.Event()

    def on_accept(stream):
        accepted.append(stream)
        ready.set()

    listener = transport.listen("127.0.0.1", 0, on_accept)
    client = transport.connect(listener.endpoint)
    assert ready.wait(5), "accept did not happen"
    return client, accepted[0], listener


@pytest.fixture
def pair():
    transport = ShmTransport(slot_size=SIZE_64K, slot_count=4,
                             slot_wait=0.05)
    client, server, listener = _stream_pair(transport)
    yield client, server
    client.close()
    server.close()
    listener.close()


class TestShmArena:
    def test_create_and_attach(self, arena):
        peer = ShmArena(arena.path, arena.slot_size, arena.slot_count,
                        create=False)
        try:
            assert peer.slot_size == arena.slot_size
            assert peer.slot_count == arena.slot_count
            assert arena.free_slots == 4
        finally:
            peer.close()

    def test_bad_geometry_rejected(self, tmp_path):
        with pytest.raises(ShmError, match="slot count"):
            ShmArena(str(tmp_path / "x"), SIZE_64K, 0, create=True)
        with pytest.raises(ShmError, match="page multiple"):
            ShmArena(str(tmp_path / "x"), 1000, 4, create=True)

    def test_attach_undersized_file_rejected(self, tmp_path, arena):
        with pytest.raises(ShmError, match="smaller"):
            ShmArena(arena.path, arena.slot_size, arena.slot_count + 10,
                     create=False)

    def test_alloc_post_free_lifecycle(self, arena):
        slot, waited = arena.alloc()
        assert slot == 0 and waited < 0.01
        assert arena.free_slots == 3
        arena.post(slot)
        assert arena.free_slots == 3  # POSTED, not FREE
        arena.free(slot)
        assert arena.free_slots == 4

    def test_alloc_exhaustion_times_out(self, arena):
        slots = [arena.alloc()[0] for _ in range(4)]
        assert None not in slots
        slot, waited = arena.alloc(timeout=0.02)
        assert slot is None
        assert waited >= 0.02

    def test_slots_are_page_aligned(self, arena):
        for slot in range(arena.slot_count):
            assert arena.slot_address(slot) % PAGE_SIZE == 0

    def test_acquire_returns_mapped_buffer(self, arena):
        buf = arena.acquire(5000)
        assert isinstance(buf, MappedBuffer)
        assert buf.length == 5000
        assert buf.is_page_aligned
        assert arena.free_slots == 3
        buf.release()
        assert arena.free_slots == 4

    def test_dropped_buffer_frees_slot_via_finalizer(self, arena):
        buf = arena.acquire(100)
        assert arena.free_slots == 3
        del buf  # application forgot release(): the finalizer frees
        gc.collect()
        assert arena.free_slots == 4

    def test_locate_owned_slot(self, arena):
        buf = arena.acquire(4096)
        loc = arena.locate(buf.view())
        assert loc is not None
        slot, offset = loc
        assert offset == 0
        buf.release()

    def test_locate_foreign_memory_is_none(self, arena):
        foreign = bytearray(4096)
        assert arena.locate(memoryview(foreign)) is None

    def test_locate_after_post_is_none(self, arena):
        """Posting transfers ownership: the view no longer locates."""
        buf = arena.acquire(4096)
        slot, _ = arena.locate(buf.view())
        arena.post(slot)
        assert arena.locate(buf.view()) is None
        buf.release()  # safe no-op after the transfer

    def test_creator_unlinks_on_close(self, tmp_path):
        import os
        a = ShmArena.create(str(tmp_path), SIZE_64K, 2)
        path = a.path
        assert os.path.exists(path)
        a.close()
        assert not os.path.exists(path)


class TestHandshake:
    def test_both_sides_get_channels(self, pair):
        client, server = pair
        assert client.deposit_channel is client
        assert server.deposit_channel is server
        assert client.send_arena is not None
        assert client.recv_arena is not None

    def test_control_plane_still_streams(self, pair):
        client, server = pair
        client.send(b"control bytes")
        assert server.recv_exact(13).tobytes() == b"control bytes"

    def test_degrades_without_arena(self, monkeypatch):
        """No arena on one side -> both degrade to plain streaming."""
        transport = ShmTransport(slot_size=SIZE_64K, slot_count=4)
        monkeypatch.setattr(ShmTransport, "_make_arena", lambda self: None)
        client, server, listener = _stream_pair(transport)
        try:
            assert client.deposit_channel is None
            assert server.deposit_channel is None
            client.send(b"plain")
            assert server.recv_exact(5).tobytes() == b"plain"
        finally:
            client.close()
            server.close()
            listener.close()


class TestDepositChannel:
    def _desc(self, size, deposit_id=1):
        return DepositDescriptor(deposit_id=deposit_id, size=size)

    def test_copy_path_round_trip(self, pair):
        client, server = pair
        payload = bytes(range(256)) * 64  # 16 KiB
        used_arena, _ = client.send_deposit(memoryview(payload))
        assert used_arena
        pool = BufferPool()
        buf, via_arena = server.recv_deposit(self._desc(len(payload)), pool)
        assert via_arena
        assert buf.tobytes() == payload
        assert buf.is_page_aligned
        assert client.shm_deposits_sent == 1
        assert server.shm_deposits_received == 1
        # releasing the landed buffer returns the slot to the sender
        free_before = client.send_arena.free_slots
        buf.release()
        assert client.send_arena.free_slots == free_before + 1

    def test_reference_path_zero_copy(self, pair):
        """A payload already living in the arena is sent by reference."""
        client, server = pair
        staged = client.send_arena.acquire(8192)
        staged.view()[:] = b"\xa5" * 8192
        used_arena, _ = client.send_deposit(staged.view())
        assert used_arena
        assert client.shm_references_sent == 1
        buf, via_arena = server.recv_deposit(self._desc(8192), BufferPool())
        assert via_arena
        assert buf.tobytes() == b"\xa5" * 8192
        staged.release()  # ownership moved: a safe no-op
        buf.release()

    def test_oversize_payload_falls_back_inline(self, pair):
        client, server = pair
        payload = bytes(2 * SIZE_64K)  # larger than any slot
        used_arena, _ = client.send_deposit(memoryview(payload))
        assert not used_arena
        assert client.shm_fallbacks_sent == 1
        buf, via_arena = server.recv_deposit(self._desc(len(payload)),
                                             BufferPool())
        assert not via_arena
        assert server.shm_fallbacks_received == 1
        assert buf.tobytes() == payload
        buf.release()

    def test_slot_exhaustion_falls_back_then_recovers(self, pair):
        """Receiver holding every slot forces the inline path for the
        next deposit; freeing a slot restores the arena path."""
        client, server = pair
        client.slot_wait = 0.01
        pool = BufferPool()
        payload = b"\x42" * 1024
        held = []
        for i in range(4):  # consume all 4 slots
            client.send_deposit(memoryview(payload))
            buf, via = server.recv_deposit(self._desc(1024, i + 1), pool)
            assert via
            held.append(buf)
        used_arena, waited = client.send_deposit(memoryview(payload))
        assert not used_arena  # exhausted -> inline
        assert waited > 0.0
        assert client.shm_fallbacks_sent == 1
        buf, via = server.recv_deposit(self._desc(1024, 5), pool)
        assert not via
        assert buf.tobytes() == payload
        buf.release()
        held.pop().release()  # free one slot
        used_arena, _ = client.send_deposit(memoryview(payload))
        assert used_arena  # arena path is back
        buf, via = server.recv_deposit(self._desc(1024, 6), pool)
        assert via
        buf.release()
        for b in held:
            b.release()

    def test_record_size_mismatch_rejected(self, pair):
        client, server = pair
        client.send_deposit(memoryview(b"x" * 100))
        with pytest.raises(DepositError, match="size"):
            server.recv_deposit(self._desc(999), BufferPool())

    def test_bad_record_magic_rejected(self, pair):
        import struct
        client, server = pair
        client.send(struct.pack("<IiQQ", SHM_MAGIC ^ 0xFF, 0, 0, 16))
        with pytest.raises(DepositError, match="magic"):
            server.recv_deposit(self._desc(16), BufferPool())

    def test_out_of_range_slot_rejected(self, pair):
        import struct
        client, server = pair
        client.send(struct.pack("<IiQQ", SHM_MAGIC, 99, 0, 16))
        with pytest.raises(DepositError, match="geometry"):
            server.recv_deposit(self._desc(16), BufferPool())


class TestShmORB:
    def _orbs(self, **server_kw):
        from repro.orb import ORB, ORBConfig
        server = ORB(ORBConfig(scheme="shm", **server_kw))
        client = ORB(ORBConfig(scheme="shm", collocated_calls=False))
        return server, client

    def test_zero_copy_call_uses_arena(self):
        from repro.apps.ttcp import _TTCPServant, _ttcp_api
        from repro.core import ZCOctetSequence
        _ttcp_api()
        server, client = self._orbs()
        try:
            ref = server.activate(_TTCPServant())
            stub = client.string_to_object(server.object_to_string(ref))
            data = bytes(range(256)) * 1024  # 256 KiB
            assert stub.send_zc(ZCOctetSequence.from_data(data)) == len(data)
            proxy = next(iter(client._proxies.values()))
            assert proxy.conn.stats.shm_deposits >= 1
            assert proxy.conn.stats.shm_fallbacks == 0
            assert isinstance(proxy.conn.stream, ShmStream)
        finally:
            client.shutdown()
            server.shutdown()

    def test_shm_metrics_flow_through_obs(self):
        from repro.apps.ttcp import _TTCPServant, _ttcp_api
        from repro.core import ZCOctetSequence
        from repro.obs import MetricsRegistry
        _ttcp_api()
        server, client = self._orbs()
        reg = MetricsRegistry()
        server.metrics = reg
        client.metrics = reg
        try:
            ref = server.activate(_TTCPServant())
            stub = client.string_to_object(server.object_to_string(ref))
            stub.send_zc(ZCOctetSequence.from_data(bytes(4096)))
            sent = reg.counter("shm_deposits_total", op="send").value
            landed = reg.counter("shm_deposits_total", op="recv").value
            assert sent >= 1
            assert landed >= 1
            assert reg.counter("shm_fallbacks_total", op="send").value == 0
        finally:
            client.shutdown()
            server.shutdown()

    def test_multi_profile_ior_prefers_shm(self):
        """A tcp server also advertising shm gets shm from a colocated
        client; the IOR still resolves over plain tcp elsewhere."""
        from repro.apps.ttcp import _TTCPServant, _ttcp_api
        from repro.orb import ORB, ORBConfig
        _ttcp_api()
        server = ORB(ORBConfig(scheme="tcp", extra_schemes=("shm",)))
        client = ORB(ORBConfig(scheme="tcp", collocated_calls=False))
        try:
            ref = server.activate(_TTCPServant())
            ior = ref.ior
            schemes = [p.scheme for p in ior.iiop_profiles()]
            assert schemes == ["tcp", "shm"]
            picked = client.select_profile(ior)
            assert picked.scheme == "shm"
        finally:
            client.shutdown()
            server.shutdown()


class TestRefcountedSlots:
    """The v2 arena protocol: POSTED slots carry a reader refcount."""

    def test_plain_post_has_refcount_one(self, arena):
        slot, _ = arena.alloc()
        arena.post(slot)
        assert arena.refcount(slot) == 1
        arena.free(slot)
        assert arena.refcount(slot) == 0
        assert arena.free_slots == 4

    def test_shared_post_frees_on_last_release(self, arena):
        slot, _ = arena.alloc()
        arena.post_shared(slot, readers=3)
        assert arena.refcount(slot) == 3
        assert arena.free_slots == 3
        arena.free(slot)
        arena.free(slot)
        assert arena.free_slots == 3  # two of three readers released
        assert arena.refcount(slot) == 1
        arena.free(slot)  # last reader
        assert arena.free_slots == 4
        assert arena.refcount(slot) == 0

    def test_post_shared_validates_reader_count(self, arena):
        slot, _ = arena.alloc()
        with pytest.raises(ValueError, match="readers"):
            arena.post_shared(slot, readers=0)
        with pytest.raises(ValueError, match="readers"):
            arena.post_shared(slot, readers=256)
        arena.post_shared(slot, readers=255)  # the protocol ceiling
        assert arena.refcount(slot) == 255

    def test_take_shared_ref_drains_the_plan(self, arena):
        slot, _ = arena.alloc()
        arena.post_shared(slot, readers=2)
        assert arena.shared_pending(slot) == 2
        assert arena.take_shared_ref(slot)
        assert arena.take_shared_ref(slot)
        assert arena.shared_pending(slot) == 0
        assert not arena.take_shared_ref(slot)  # plan exhausted

    def test_abort_shared_ref_releases_the_planned_reader(self, arena):
        slot, _ = arena.alloc()
        arena.post_shared(slot, readers=2)
        arena.abort_shared_ref(slot)  # one planned send failed
        assert arena.refcount(slot) == 1
        arena.free(slot)  # the surviving reader releases
        assert arena.free_slots == 4

    def test_refcount_survives_peer_attach(self, arena):
        """The refcount lives in the mapped header, so an attaching
        peer sees and decrements the same byte."""
        slot, _ = arena.alloc()
        arena.post_shared(slot, readers=2)
        peer = ShmArena(arena.path, arena.slot_size, arena.slot_count,
                        create=False)
        try:
            assert peer.refcount(slot) == 2
            peer.free(slot)
            assert arena.refcount(slot) == 1
            arena.free(slot)
            assert peer.free_slots == 4
        finally:
            peer.close()

    def test_alloc_voids_stale_fanout_plan(self, arena):
        slot, _ = arena.alloc()
        arena.post_shared(slot, readers=2)
        arena.free(slot)
        arena.free(slot)  # slot fully released, plan never drained
        got, _ = arena.alloc()
        assert got == slot  # lowest free slot is reused
        assert arena.shared_pending(slot) == 0
        assert not arena.take_shared_ref(slot)

    def test_reclaim_stale_force_frees_posted_slots(self, arena):
        slot, _ = arena.alloc()
        arena.post_shared(slot, readers=5)  # readers that died mid-read
        assert arena.reclaim_stale(max_age=3600.0) == 0  # too young
        assert arena.reclaim_stale(max_age=0.0) == 1
        assert arena.free_slots == 4
        assert arena.refcount(slot) == 0
        assert arena.stale_reclaims == 1

    def test_reclaim_stale_skips_live_owned_slots(self, arena):
        buf = arena.acquire(1024)
        assert arena.reclaim_stale(max_age=0.0) == 0
        assert arena.free_slots == 3
        buf.release()

    def test_locate_matches_shared_posted_slot(self, arena):
        """marshal's stage_in_arena passes shared-posted views through
        untouched because locate() still claims them."""
        buf = arena.acquire(4096)
        view = buf.view()
        slot, _ = arena.locate(view)
        arena.post_shared(slot, readers=2)
        assert arena.locate(view) == (slot, 0)
        arena.take_shared_ref(slot)
        arena.take_shared_ref(slot)
        assert arena.locate(view) is None  # plan drained: sends are done
        arena.free(slot)
        arena.free(slot)


class TestSharedArenaFanout:
    """One ShmTransport in shared-send mode: every outbound connection
    advertises the same send arena, so one posted slot serves N links."""

    @pytest.fixture
    def fanout(self):
        transport = ShmTransport(slot_size=SIZE_64K, slot_count=4,
                                 slot_wait=0.05, shared_send_arena=True)
        c1, s1, l1 = _stream_pair(transport)
        c2, s2, l2 = _stream_pair(transport)
        yield transport, (c1, s1), (c2, s2)
        for s in (c1, s1, c2, s2):
            s.close()
        l1.close()
        l2.close()
        transport.close()

    def test_connections_share_one_send_arena(self, fanout):
        transport, (c1, _), (c2, _) = fanout
        assert c1.send_arena is not None
        assert c1.send_arena is c2.send_arena
        assert c1.send_arena is transport.shared_arena

    def test_one_post_fans_out_to_two_links(self, fanout):
        transport, (c1, s1), (c2, s2) = fanout
        arena = transport.shared_arena
        payload = b"\x5a" * 8192
        staged = arena.acquire(len(payload))
        staged.view()[:] = payload
        slot, _ = arena.locate(staged.view())
        arena.post_shared(slot, readers=2)
        assert arena.used_slots == 1

        desc = DepositDescriptor(deposit_id=1, size=len(payload))
        pool = BufferPool()
        tiers = []
        for sender in (c1, c2):
            tier, _ = sender.send_deposit(staged.view())
            tiers.append(tier)
        from repro.transport.shm import SEND_SHARED
        assert tiers == [SEND_SHARED, SEND_SHARED]
        assert c1.shm_shared_refs_sent == 1
        assert c2.shm_shared_refs_sent == 1

        bufs = []
        for receiver in (s1, s2):
            buf, via = receiver.recv_deposit(desc, pool)
            assert via
            assert buf.tobytes() == payload
            bufs.append(buf)
        assert arena.used_slots == 1  # both map the same slot
        bufs[0].release()
        assert arena.used_slots == 1  # one reader still holds it
        bufs[1].release()
        assert arena.used_slots == 0  # last release frees the slot

    def test_dropped_buffer_releases_via_finalizer(self, fanout):
        """A receiver that dies mid-read drops its MappedBuffer; the
        finalizer must still decrement the slot's refcount."""
        transport, (c1, s1), (c2, s2) = fanout
        arena = transport.shared_arena
        staged = arena.acquire(1024)
        slot, _ = arena.locate(staged.view())
        arena.post_shared(slot, readers=2)
        for sender in (c1, c2):
            sender.send_deposit(staged.view())
        desc = DepositDescriptor(deposit_id=1, size=1024)
        pool = BufferPool()
        buf1, _ = s1.recv_deposit(desc, pool)
        buf2, _ = s2.recv_deposit(desc, pool)
        buf1.release()
        del buf2  # never released explicitly — crashed reader
        gc.collect()
        assert arena.used_slots == 0

    def test_failed_send_is_compensated(self, fanout):
        """abort_shared_ref() stands in for a reader whose send failed
        before its record left, so the slot still drains to FREE."""
        transport, (c1, s1), _ = fanout
        arena = transport.shared_arena
        staged = arena.acquire(1024)
        slot, _ = arena.locate(staged.view())
        arena.post_shared(slot, readers=2)
        c1.send_deposit(staged.view())  # reader 1 sent
        arena.abort_shared_ref(slot)    # reader 2's send failed
        buf, _ = s1.recv_deposit(DepositDescriptor(deposit_id=1, size=1024),
                                 BufferPool())
        buf.release()
        assert arena.used_slots == 0

    def test_exhausted_plan_degrades_to_copy(self, fanout):
        """With the fan-out plan drained, a further send of the same
        view must not re-post the shared slot it doesn't own."""
        transport, (c1, s1), (c2, s2) = fanout
        from repro.transport.shm import SEND_COPY
        arena = transport.shared_arena
        staged = arena.acquire(1024)
        staged.view()[:] = b"\x11" * 1024
        slot, _ = arena.locate(staged.view())
        arena.post_shared(slot, readers=1)  # plan covers only c1
        tier1, _ = c1.send_deposit(staged.view())
        tier2, _ = c2.send_deposit(staged.view())
        assert tier2 == SEND_COPY  # fresh slot, not a stolen reference
        desc = DepositDescriptor(deposit_id=1, size=1024)
        pool = BufferPool()
        b1, _ = s1.recv_deposit(desc, pool)
        b2, _ = s2.recv_deposit(desc, pool)
        assert b1.tobytes() == b2.tobytes() == b"\x11" * 1024
        b1.release()
        b2.release()
        assert arena.used_slots == 0

    def test_stream_close_leaves_shared_arena_open(self, fanout):
        transport, (c1, s1), (c2, _) = fanout
        c1.close()
        s1.close()
        assert not transport.shared_arena.closed
        assert c2.send_arena is transport.shared_arena
        transport.close()
        assert transport.shared_arena is None or \
            transport.shared_arena.closed

    def test_private_mode_still_owns_per_connection_arenas(self):
        """The default (non-shared) transport is unchanged: each
        connection owns its arena and closes it with the stream."""
        transport = ShmTransport(slot_size=SIZE_64K, slot_count=4)
        client, server, listener = _stream_pair(transport)
        try:
            assert transport.shared_arena is None
            assert client.owns_send_arena
            arena = client.send_arena
            client.close()
            assert arena.closed
        finally:
            server.close()
            listener.close()
