"""Kernel zero-copy send path: TCPStream.send_file and its fallback.

The contract under test: ``send_file(fd, offset, count)`` puts exactly
the file range on the wire — via ``os.sendfile`` when the platform
cooperates (returns True), via the chunked ``os.pread`` copying loop
otherwise (returns False) — and the receiver cannot tell which tier
ran.  Plus the fd-range buffer type that rides it,
:class:`~repro.core.buffers.FileBackedBuffer`.
"""

import gc
import mmap
import os
import threading

import pytest

from repro.core.buffers import BufferError, FileBackedBuffer
from repro.transport import TCPTransport, TransportError


@pytest.fixture
def pair():
    transport = TCPTransport()
    accepted = []
    ready = threading.Event()

    def on_accept(stream):
        accepted.append(stream)
        ready.set()

    listener = transport.listen("127.0.0.1", 0, on_accept)
    client = transport.connect(listener.endpoint)
    assert ready.wait(5), "accept did not happen"
    yield client, accepted[0]
    client.close()
    accepted[0].close()
    listener.close()


@pytest.fixture
def blob_file(tmp_path):
    """An 8 MiB file of non-repeating bytes and its contents."""
    data = bytes(os.urandom(8 * 1024 * 1024))
    path = tmp_path / "blob.bin"
    path.write_bytes(data)
    return path, data


def _recv_all(stream, n, out):
    out.append(stream.recv_exact(n).tobytes())


def _send_and_collect(client, server, fd, offset, count):
    got = []
    t = threading.Thread(target=_recv_all, args=(server, count, got))
    t.start()
    used_kernel = client.send_file(fd, offset, count)
    t.join(timeout=30)
    assert not t.is_alive(), "receiver never finished"
    return used_kernel, got[0]


class TestSendFileKernel:
    def test_kernel_path_byte_identity(self, pair, blob_file):
        """8 MiB through os.sendfile arrives byte-identical."""
        client, server = pair
        path, data = blob_file
        fd = os.open(path, os.O_RDONLY)
        try:
            used_kernel, got = _send_and_collect(
                client, server, fd, 0, len(data))
            assert used_kernel is True
            assert got == data
            assert client.bytes_sent == len(data)
        finally:
            os.close(fd)

    def test_offset_and_count_honoured(self, pair, blob_file):
        client, server = pair
        path, data = blob_file
        fd = os.open(path, os.O_RDONLY)
        try:
            off, n = 12345, 100_000
            _, got = _send_and_collect(client, server, fd, off, n)
            assert got == data[off:off + n]
        finally:
            os.close(fd)

    def test_eagain_resume(self, pair, blob_file):
        """A full socket buffer (slow reader) is waited out, not fatal.

        The stream's send timeout makes the socket internally
        non-blocking, so os.sendfile hits BlockingIOError as soon as
        the kernel buffer fills; the resume loop must carry on from
        the partial-send offset."""
        client, server = pair
        path, data = blob_file
        # shrink both buffers so the 8 MiB transfer blocks many times
        import socket
        client._sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
        server._sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
        fd = os.open(path, os.O_RDONLY)
        got = []

        def slow_reader():
            chunks = []
            remaining = len(data)
            while remaining:
                step = min(64 * 1024, remaining)
                chunks.append(server.recv_exact(step).tobytes())
                remaining -= step
            got.append(b"".join(chunks))

        try:
            t = threading.Thread(target=slow_reader)
            t.start()
            client.send_file(fd, 0, len(data))
            t.join(timeout=60)
            assert not t.is_alive()
            assert got[0] == data
        finally:
            os.close(fd)

    def test_zero_count_is_noop(self, pair, blob_file):
        client, _ = pair
        path, _ = blob_file
        fd = os.open(path, os.O_RDONLY)
        try:
            assert client.send_file(fd, 0, 0) is True
            assert client.bytes_sent == 0
        finally:
            os.close(fd)


class TestSendFileFallback:
    def test_fallback_byte_identity(self, pair, blob_file):
        """The copying loop is indistinguishable on the wire."""
        client, server = pair
        path, data = blob_file
        client.sendfile_enabled = False
        fd = os.open(path, os.O_RDONLY)
        try:
            used_kernel, got = _send_and_collect(
                client, server, fd, 0, len(data))
            assert used_kernel is False
            assert got == data
            assert client.bytes_sent == len(data)
        finally:
            os.close(fd)

    def test_unsupported_errno_falls_back(self, pair, blob_file,
                                          monkeypatch):
        """EINVAL from the first os.sendfile call (e.g. the fd is not
        a regular file on this kernel) degrades to the copying loop."""
        import errno

        import repro.transport.tcp as tcp_mod
        client, server = pair
        path, data = blob_file

        def refuse(*a, **kw):
            raise OSError(errno.EINVAL, "not supported")

        monkeypatch.setattr(tcp_mod.os, "sendfile", refuse)
        fd = os.open(path, os.O_RDONLY)
        try:
            used_kernel, got = _send_and_collect(
                client, server, fd, 0, 1 << 20)
            assert used_kernel is False
            assert got == data[:1 << 20]
        finally:
            os.close(fd)

    def test_midstream_error_is_not_retried_as_copy(self, pair,
                                                    blob_file,
                                                    monkeypatch):
        """After bytes hit the wire, EINVAL must raise — silently
        restarting with the copying loop would duplicate data."""
        import errno

        import repro.transport.tcp as tcp_mod
        client, server = pair
        path, data = blob_file
        real = os.sendfile
        calls = []

        def flaky(out_fd, in_fd, offset, count):
            if calls:
                raise OSError(errno.EINVAL, "late failure")
            calls.append(1)
            return real(out_fd, in_fd, offset, min(count, 4096))

        monkeypatch.setattr(tcp_mod.os, "sendfile", flaky)
        fd = os.open(path, os.O_RDONLY)
        try:
            with pytest.raises(TransportError):
                client.send_file(fd, 0, 1 << 20)
        finally:
            os.close(fd)

    def test_truncated_file_raises(self, pair, tmp_path):
        client, _ = pair
        path = tmp_path / "short.bin"
        path.write_bytes(b"x" * 100)
        client.sendfile_enabled = False
        fd = os.open(path, os.O_RDONLY)
        try:
            with pytest.raises(TransportError, match="truncat"):
                client.send_file(fd, 0, 200)
        finally:
            os.close(fd)


class TestFileBackedBuffer:
    def test_view_matches_file(self, blob_file):
        path, data = blob_file
        buf = FileBackedBuffer.open(path)
        try:
            assert buf.nbytes == len(data)
            assert buf.view().tobytes() == data
        finally:
            buf.release()

    def test_unaligned_range(self, blob_file):
        """Offsets that are not mmap-granularity-aligned still map."""
        path, data = blob_file
        off = mmap.ALLOCATIONGRANULARITY + 123
        buf = FileBackedBuffer.open(path, offset=off, count=4567)
        try:
            assert buf.view().tobytes() == data[off:off + 4567]
        finally:
            buf.release()

    def test_read_only(self, blob_file):
        path, _ = blob_file
        buf = FileBackedBuffer.open(path)
        try:
            with pytest.raises(BufferError):
                buf.fill_from(b"nope")
            assert buf.view().readonly
        finally:
            buf.release()

    def test_release_then_use_raises(self, blob_file):
        path, _ = blob_file
        buf = FileBackedBuffer.open(path)
        buf.release()
        with pytest.raises(BufferError):
            buf.view()

    def test_finalizer_closes_fd_on_drop(self, blob_file):
        """An app that forgets release() must not leak the fd."""
        path, _ = blob_file
        buf = FileBackedBuffer.open(path)
        fd = buf.fd
        os.fstat(fd)  # open while the buffer lives
        del buf
        gc.collect()
        with pytest.raises(OSError):
            os.fstat(fd)

    def test_non_owning_leaves_fd_open(self, blob_file):
        path, _ = blob_file
        fd = os.open(path, os.O_RDONLY)
        try:
            buf = FileBackedBuffer(fd, 0, 1024)
            buf.release()
            del buf
            gc.collect()
            os.fstat(fd)  # still valid: close_fd defaulted to False
        finally:
            os.close(fd)

    def test_empty_range(self, blob_file):
        path, _ = blob_file
        buf = FileBackedBuffer.open(path, offset=0, count=0)
        try:
            assert buf.nbytes == 0
            assert buf.view().tobytes() == b""
        finally:
            buf.release()
