"""Real-socket TCP transport tests (localhost only)."""

import threading

import pytest

from repro.transport import TCPTransport, TransportError


@pytest.fixture
def pair():
    transport = TCPTransport()
    accepted = []
    ready = threading.Event()

    def on_accept(stream):
        accepted.append(stream)
        ready.set()

    listener = transport.listen("127.0.0.1", 0, on_accept)
    client = transport.connect(listener.endpoint)
    assert ready.wait(5), "accept did not happen"
    yield client, accepted[0]
    client.close()
    accepted[0].close()
    listener.close()


class TestTCP:
    def test_send_recv(self, pair):
        client, server = pair
        client.send(b"over the wire")
        assert server.recv_exact(13).tobytes() == b"over the wire"

    def test_sendv_gather(self, pair):
        client, server = pair
        chunks = [bytes([i]) * 1000 for i in range(5)]
        client.sendv(chunks)
        got = server.recv_exact(5000).tobytes()
        assert got == b"".join(chunks)

    def test_sendv_many_chunks_beyond_iov_batch(self, pair):
        client, server = pair
        chunks = [bytes([i % 256]) * 10 for i in range(200)]
        client.sendv(chunks)
        assert server.recv_exact(2000).tobytes() == b"".join(chunks)

    def test_sendv_without_sendmsg_falls_back(self, pair, monkeypatch):
        """Platforms without socket.sendmsg use the sendall loop."""
        import repro.transport.tcp as tcp_mod
        client, server = pair
        monkeypatch.setattr(tcp_mod, "_HAVE_SENDMSG", False)
        chunks = [bytes([i]) * 777 for i in range(7)]
        client.sendv(chunks)
        assert server.recv_exact(7 * 777).tobytes() == b"".join(chunks)
        assert client.bytes_sent == 7 * 777

    def test_recv_into_aligned_buffer(self, pair):
        from repro.core import ZCBuffer
        client, server = pair
        payload = bytes(range(256)) * 64
        buf = ZCBuffer(len(payload))
        client.send(payload)
        server.recv_into(buf.view())
        assert buf.tobytes() == payload
        assert buf.is_page_aligned

    def test_large_transfer(self, pair):
        client, server = pair
        payload = b"\xAB" * (4 << 20)
        done = []

        def reader():
            done.append(server.recv_exact(len(payload)).tobytes())

        t = threading.Thread(target=reader)
        t.start()
        client.send(payload)
        t.join(30)
        assert done and done[0] == payload

    def test_eof_reports_outstanding_bytes(self, pair):
        client, server = pair
        client.send(b"abc")
        client.close()
        with pytest.raises(TransportError, match="outstanding"):
            server.recv_exact(10)

    def test_connect_refused(self):
        transport = TCPTransport()
        with pytest.raises(TransportError, match="cannot connect"):
            transport.connect(("tcp", "127.0.0.1", 1))  # port 1: closed

    def test_peer_name(self, pair):
        client, _ = pair
        assert client.peer.startswith("127.0.0.1:")


class TestAcceptLoopResilience:
    def test_raising_handler_does_not_kill_accept_loop(self):
        """A handler exception is recorded; the next connect succeeds."""
        transport = TCPTransport()
        accepted = []
        second = threading.Event()

        def on_accept(stream):
            if not accepted:
                accepted.append("boom")
                raise RuntimeError("handler exploded on first connection")
            accepted.append(stream)
            second.set()

        listener = transport.listen("127.0.0.1", 0, on_accept)
        try:
            first = transport.connect(listener.endpoint)
            first.close()
            client = transport.connect(listener.endpoint)
            assert second.wait(5), "accept loop died after handler raise"
            client.send(b"still alive")
            assert accepted[1].recv_exact(11).tobytes() == b"still alive"
            assert listener.accept_errors == 1
            client.close()
            accepted[1].close()
        finally:
            listener.close()


class TestPartialReceiveAccounting:
    def test_timeout_mid_read_counts_partial_bytes(self, pair):
        from repro.transport import TransportTimeout
        client, server = pair
        client.send(b"abc")  # 3 of the 10 bytes the server wants
        server.set_timeout(0.2)
        before = server.bytes_received
        buf = bytearray(10)
        with pytest.raises(TransportTimeout):
            server.recv_into(memoryview(buf))
        assert server.bytes_received - before == 3
        assert bytes(buf[:3]) == b"abc"

    def test_reset_mid_read_counts_partial_bytes(self, pair):
        client, server = pair
        client.send(b"hello")
        client.close()
        before = server.bytes_received
        buf = bytearray(64)
        with pytest.raises(TransportError):
            server.recv_into(memoryview(buf))
        assert server.bytes_received - before == 5
