"""The fault-injection transport: deterministic, seeded wire failures.

Stream-level coverage of every FaultPlan action (connect refusal,
mid-stream reset, partial delivery, stalls, corruption), the per-
connection/nth-operation addressing, the audit log, and seeded
determinism of probabilistic rules."""

import time

import pytest

from repro.transport import (FaultPlan, FaultRule, FaultyTransport,
                             LoopbackTransport, TransportError,
                             faulty_registry)


def make_pair(plan):
    """(client stream, server stream, listener) over faulty loopback."""
    transport = FaultyTransport(LoopbackTransport(), plan)
    accepted = []
    listener = transport.listen("faulty-host", 0, accepted.append)
    client = transport.connect(listener.endpoint)
    return client, accepted[0], listener


class TestPlanBasics:
    def test_adopts_inner_scheme(self):
        assert FaultyTransport(LoopbackTransport()).scheme == "loop"

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(op="send", action="explode")

    def test_no_rules_is_transparent(self):
        client, server, listener = make_pair(FaultPlan())
        try:
            client.send(b"ping")
            assert server.recv_exact(4).tobytes() == b"ping"
            server.send(b"pong")
            assert client.recv_exact(4).tobytes() == b"pong"
        finally:
            listener.close()

    def test_builder_chaining(self):
        plan = FaultPlan(seed=3).refuse_connect(nth=1).reset_on_send(nth=2)
        assert [r.op for r in plan.rules] == ["connect", "send"]


class TestConnectFaults:
    def test_refusal_then_success(self):
        plan = FaultPlan().refuse_connect(nth=1)
        transport = FaultyTransport(LoopbackTransport(), plan)
        accepted = []
        listener = transport.listen("refuse-host", 0, accepted.append)
        try:
            with pytest.raises(TransportError, match="injected connect"):
                transport.connect(listener.endpoint)
            stream = transport.connect(listener.endpoint)
            stream.send(b"ok")
            assert accepted[0].recv_exact(2).tobytes() == b"ok"
            assert [(e.op, e.action) for e in plan.events] == \
                [("connect", "refuse")]
        finally:
            listener.close()

    def test_stall_connect_delays(self):
        plan = FaultPlan().stall_connect(nth=1, delay=0.03)
        transport = FaultyTransport(LoopbackTransport(), plan)
        listener = transport.listen("stallconn-host", 0, lambda s: None)
        try:
            t0 = time.monotonic()
            transport.connect(listener.endpoint)
            assert time.monotonic() - t0 >= 0.03
        finally:
            listener.close()


class TestSendFaults:
    def test_reset_on_nth_send(self):
        plan = FaultPlan().reset_on_send(nth=2)
        client, server, listener = make_pair(plan)
        try:
            client.send(b"first")
            assert server.recv_exact(5).tobytes() == b"first"
            with pytest.raises(TransportError, match="injected reset"):
                client.send(b"second")
            # the reset tore the stream down for good
            with pytest.raises(TransportError):
                client.send(b"third")
        finally:
            listener.close()

    def test_partial_send_delivers_prefix(self):
        plan = FaultPlan().partial_send(nth=1, fraction=0.5)
        client, server, listener = make_pair(plan)
        try:
            with pytest.raises(TransportError, match="50/100"):
                client.send(bytes(range(100)))
            assert server.available == 50
            assert server.recv_exact(50).tobytes() == bytes(range(50))
        finally:
            listener.close()

    def test_partial_respects_chunk_boundaries(self):
        """The cut point falls mid-chunk of a gather write."""
        plan = FaultPlan().partial_send(nth=1, fraction=0.25)
        client, server, listener = make_pair(plan)
        try:
            with pytest.raises(TransportError):
                client.sendv([b"A" * 30, b"B" * 30, b"C" * 60])
            assert server.recv_exact(30).tobytes() == b"A" * 30
        finally:
            listener.close()

    def test_corrupt_flips_one_byte_without_touching_source(self):
        plan = FaultPlan().corrupt_send(nth=1, byte_offset=4, xor_mask=0xFF)
        client, server, listener = make_pair(plan)
        try:
            payload = bytearray(b"GIOP\x01\x00\x00\x00")
            client.send(payload)
            got = server.recv_exact(8).tobytes()
            assert got[4] == 0x01 ^ 0xFF
            assert got[:4] == b"GIOP"
            assert payload[4] == 0x01  # the caller's buffer is sacred
        finally:
            listener.close()

    def test_stall_send_sleeps_then_delivers(self):
        plan = FaultPlan().stall_send(nth=1, delay=0.03)
        client, server, listener = make_pair(plan)
        try:
            t0 = time.monotonic()
            client.send(b"late")
            assert time.monotonic() - t0 >= 0.03
            assert server.recv_exact(4).tobytes() == b"late"
        finally:
            listener.close()


class TestRecvFaults:
    def test_reset_on_recv(self):
        plan = FaultPlan().reset_on_recv(nth=1)
        client, server, listener = make_pair(plan)
        try:
            server.send(b"data")
            with pytest.raises(TransportError, match="injected reset"):
                client.recv_exact(4)
        finally:
            listener.close()

    def test_partial_recv_lands_prefix(self):
        plan = FaultPlan().partial_recv(nth=1, fraction=0.3)
        client, server, listener = make_pair(plan)
        try:
            server.send(bytes(range(100)))
            view = memoryview(bytearray(100))
            with pytest.raises(TransportError, match="30/100"):
                client.recv_into(view)
            assert view[:30].tobytes() == bytes(range(30))
        finally:
            listener.close()


class TestAddressing:
    def test_rule_scoped_to_connection(self):
        """A conn=2 rule leaves connection 1 untouched."""
        plan = FaultPlan().reset_on_send(nth=1, conn=2)
        transport = FaultyTransport(LoopbackTransport(), plan)
        accepted = []
        listener = transport.listen("scoped-host", 0, accepted.append)
        try:
            c1 = transport.connect(listener.endpoint)
            c2 = transport.connect(listener.endpoint)
            c1.send(b"fine")
            assert accepted[0].recv_exact(4).tobytes() == b"fine"
            with pytest.raises(TransportError):
                c2.send(b"doomed")
        finally:
            listener.close()

    def test_events_record_coordinates(self):
        plan = FaultPlan().reset_on_send(nth=2)
        client, server, listener = make_pair(plan)
        try:
            client.send(b"a")
            with pytest.raises(TransportError):
                client.send(b"b")
            (ev,) = plan.events
            assert (ev.conn, ev.op, ev.nth, ev.action) == \
                (1, "send", 2, "reset")
        finally:
            listener.close()


class TestDeterminism:
    @staticmethod
    def _drive(seed):
        """20 sends through a probability-gated zero-delay stall; the
        event trace is the plan's observable fault pattern."""
        plan = FaultPlan(seed=seed)
        plan.add(FaultRule(op="send", action="stall", probability=0.5,
                           once=False, delay=0.0))
        client, server, listener = make_pair(plan)
        try:
            for _ in range(20):
                client.send(b"x")
        finally:
            listener.close()
        return [e.nth for e in plan.events]

    def test_same_seed_same_faults(self):
        assert self._drive(42) == self._drive(42)

    def test_different_seed_different_faults(self):
        assert self._drive(42) != self._drive(43)


class TestRegistryHelper:
    def test_wraps_builtin_transports(self):
        plan = FaultPlan().refuse_connect(nth=1)
        reg = faulty_registry(plan)
        assert "loop" in reg and "tcp" in reg
        loop = reg.get("loop")
        assert isinstance(loop, FaultyTransport)
        assert loop.plan is plan


class TestConnectTimeout:
    """Injected dial stalls against the caller's connect deadline."""

    def test_stall_exceeding_timeout_raises(self):
        from repro.transport import TransportTimeout
        plan = FaultPlan().stall_connect(nth=1, delay=30.0)
        transport = FaultyTransport(LoopbackTransport(), plan)
        listener = transport.listen("stall-host", 0, lambda s: None)
        try:
            t0 = time.monotonic()
            with pytest.raises(TransportTimeout, match="connect timeout"):
                transport.connect(listener.endpoint, timeout=0.05)
            # slept only the deadline, not the full injected stall
            assert time.monotonic() - t0 < 5.0
            assert plan.events[-1].action == "stall"
            assert "timed out" in plan.events[-1].detail
        finally:
            listener.close()

    def test_stall_within_timeout_connects(self):
        plan = FaultPlan().stall_connect(nth=1, delay=0.01)
        transport = FaultyTransport(LoopbackTransport(), plan)
        accepted = []
        listener = transport.listen("slow-host", 0, accepted.append)
        try:
            stream = transport.connect(listener.endpoint, timeout=5.0)
            stream.send(b"ok")
            assert accepted[0].recv_exact(2).tobytes() == b"ok"
        finally:
            listener.close()

    def test_orb_maps_dial_timeout_to_transient(self):
        """The proxy turns a dial-deadline expiry into TRANSIENT with
        COMPLETED_NO: the request was never sent, safe to retry."""
        from repro.idl import compile_idl
        from repro.orb import ORB, ORBConfig
        from repro.orb.exceptions import TRANSIENT, CompletionStatus
        from repro.transport import faulty_registry

        api = compile_idl(
            "interface Pingable { unsigned long ping(in unsigned long x); };",
            module_name="_test_dialto_idl")

        class Impl(api.Pingable_skel):
            def ping(self, x):
                return x

        plan = FaultPlan().stall_connect(nth=1, delay=30.0)
        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False,
                               connect_timeout=0.05),
                     transports=faulty_registry(plan))
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(Impl())))
            with pytest.raises(TRANSIENT, match="connect timed out") as ei:
                stub.ping(1)
            assert ei.value.completed is CompletionStatus.COMPLETED_NO
        finally:
            client.shutdown()
            server.shutdown()
