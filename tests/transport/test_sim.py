"""SimTransport tests: real ORB traffic against modelled 2003 time."""

import pytest

from repro.orb import ORB, ORBConfig
from repro.simnet import (GIGABIT_ETHERNET, PENTIUM_II_400, OrbCostConfig,
                          measure_corba_request, standard_stack,
                          zero_copy_stack)
from repro.transport.base import TransportRegistry
from repro.transport.sim import SimClock, SimTransport


def _orb_pair_over_sim(test_api, store_impl, stack, zero_copy,
                       generic_loop=False, collector=None):
    clock = SimClock(PENTIUM_II_400)
    transport = SimTransport(clock=clock, stack=stack)
    reg = TransportRegistry()
    reg.register(transport)
    cfg = ORBConfig(scheme="sim", zero_copy=zero_copy,
                    generic_loop=generic_loop, collocated_calls=False)
    server = ORB(cfg, transports=reg, on_bytes=clock.on_bytes)
    client = ORB(cfg, transports=reg, on_bytes=clock.on_bytes)
    if collector is not None:
        server.enable_tracing(distributed=True, collector=collector,
                              trace_seed=1)
        client.enable_tracing(distributed=True, collector=collector,
                              trace_seed=2)
    ref = server.activate(store_impl)
    stub = client.string_to_object(server.object_to_string(ref))
    return stub, clock, client, server


class TestSimClock:
    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100, "a")
        clock.advance(50, "a")
        clock.advance(25, "b")
        assert clock.now_ns == 175
        assert clock.charges == {"a": 150, "b": 25}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_marshal_hook_charges_loop_rate(self):
        clock = SimClock(PENTIUM_II_400)
        clock.on_bytes("marshal", 1000)
        assert clock.now_ns == int(
            1000 * PENTIUM_II_400.marshal_loop_ns_per_byte)

    def test_reference_is_free(self):
        clock = SimClock()
        clock.on_bytes("reference", 1 << 20)
        clock.on_bytes("deposit-send", 1 << 20)
        assert clock.now_ns == 0


class TestRealOrbOverSimTransport:
    """The consistency bridge: the real ORB over SimTransport must agree
    with the pure cost model (same mechanism, two code paths)."""

    SIZE = 1 << 20

    def _measure_real(self, test_api, store_impl, stack, zero_copy,
                      generic_loop=False):
        from repro.core import OctetSequence, ZCOctetSequence
        stub, clock, client, server = _orb_pair_over_sim(
            test_api, store_impl, stack, zero_copy, generic_loop)
        try:
            payload = (ZCOctetSequence.from_data(bytes(self.SIZE))
                       if zero_copy else OctetSequence(bytes(self.SIZE)))
            before = clock.now_ns
            if zero_copy:
                stub.put(payload)
            else:
                stub.put_std(payload)
            return clock.now_ns - before
        finally:
            client.shutdown()
            server.shutdown()

    def test_std_orb_matches_cost_model(self, test_api, store_impl):
        real_ns = self._measure_real(test_api, store_impl,
                                     standard_stack(), zero_copy=False,
                                     generic_loop=True)
        model = measure_corba_request(
            PENTIUM_II_400, GIGABIT_ETHERNET, self.SIZE, standard_stack(),
            OrbCostConfig(zero_copy=False))
        assert real_ns == pytest.approx(model.elapsed_ns, rel=0.25)

    def test_zc_orb_matches_cost_model(self, test_api, store_impl):
        real_ns = self._measure_real(test_api, store_impl,
                                     zero_copy_stack(), zero_copy=True)
        model = measure_corba_request(
            PENTIUM_II_400, GIGABIT_ETHERNET, self.SIZE,
            zero_copy_stack(), OrbCostConfig(zero_copy=True))
        assert real_ns == pytest.approx(model.elapsed_ns, rel=0.25)

    def test_zc_vs_std_ratio_visible_through_real_orb(self, test_api,
                                                      store_impl):
        """The 10x headline must appear with the REAL ORB running, not
        just in the closed-form model."""
        slow = self._measure_real(test_api, store_impl, standard_stack(),
                                  zero_copy=False, generic_loop=True)
        fresh_impl = type(store_impl)()
        fast = self._measure_real(test_api, fresh_impl, zero_copy_stack(),
                                  zero_copy=True)
        assert slow / fast > 6.0


class TestTracedSimTransport:
    """Distributed tracing over the modelled transport: the stage
    record must match loopback's, and observing must not change the
    modelled time (the tracer is a read-only lens on 2003)."""

    SIZE = 1 << 16

    def _run_traced(self, test_api, store_impl, collector):
        from repro.core import ZCOctetSequence
        stub, clock, client, server = _orb_pair_over_sim(
            test_api, store_impl, zero_copy_stack(), zero_copy=True,
            collector=collector)
        try:
            before = clock.now_ns
            stub.put(ZCOctetSequence.from_data(bytes(self.SIZE)))
            return clock.now_ns - before
        finally:
            client.shutdown()
            server.shutdown()

    def test_sim_client_stages_match_loopback(self, test_api,
                                              store_impl):
        """A traced simnet invocation records the same six Fig. 7
        stages, in the same order, as the loopback transport."""
        from repro.obs import SpanCollector

        sim_col = SpanCollector()
        self._run_traced(test_api, store_impl, sim_col)

        loop_col = SpanCollector()
        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        server.enable_tracing(distributed=True, collector=loop_col)
        client.enable_tracing(distributed=True, collector=loop_col)
        try:
            from repro.core import ZCOctetSequence
            impl = type(store_impl)()
            ref = server.activate(impl)
            stub = client.string_to_object(server.object_to_string(ref))
            stub.put(ZCOctetSequence.from_data(bytes(self.SIZE)))
        finally:
            client.shutdown()
            server.shutdown()

        def client_stages(col):
            span = next(s for s in col.spans if s.kind == "client")
            return [e.stage for e in span.stages]

        assert client_stages(sim_col) == client_stages(loop_col) == [
            "marshal", "control-send", "deposit-send", "server-wait",
            "deposit-recv", "demarshal"]
        sim_span = next(s for s in sim_col.spans if s.kind == "client")
        assert sim_span.deposit_bytes_sent == self.SIZE

    def test_tracing_does_not_distort_modelled_time(self, test_api,
                                                    store_impl):
        """The tracer splits one gather-write into per-path stage
        spans; the sim must still charge the cost model ONCE for the
        batch total.  The only honest cost of tracing is the ~40-byte
        service context riding the control message — if the split
        double-charged the 64 KiB deposit the delta would be tens of
        microseconds, not a handful of control bytes."""
        from repro.core import ZCOctetSequence
        from repro.obs import SpanCollector

        stub, clock, client, server = _orb_pair_over_sim(
            test_api, store_impl, zero_copy_stack(), zero_copy=True)
        try:
            before = clock.now_ns
            stub.put(ZCOctetSequence.from_data(bytes(self.SIZE)))
            plain_ns = clock.now_ns - before
        finally:
            client.shutdown()
            server.shutdown()

        traced_ns = self._run_traced(test_api, type(store_impl)(),
                                     SpanCollector())
        overhead_ns = traced_ns - plain_ns
        assert 0 <= overhead_ns < 2000
