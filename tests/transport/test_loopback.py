"""Loopback transport tests."""

import pytest

from repro.transport import LoopbackTransport, TransportError


@pytest.fixture
def pair():
    transport = LoopbackTransport()
    accepted = []
    listener = transport.listen("unit-host", 0, accepted.append)
    client = transport.connect(listener.endpoint)
    server = accepted[0]
    yield client, server
    listener.close()


class TestLoopback:
    def test_send_recv_exact(self, pair):
        client, server = pair
        client.send(b"hello")
        assert server.recv_exact(5).tobytes() == b"hello"

    def test_sendv_gathers_in_order(self, pair):
        client, server = pair
        client.sendv([b"ab", memoryview(b"cd"), bytearray(b"ef")])
        assert server.recv_exact(6).tobytes() == b"abcdef"

    def test_recv_into_lands_in_caller_buffer(self, pair):
        client, server = pair
        client.send(b"12345678")
        target = bytearray(8)
        server.recv_into(memoryview(target))
        assert target == b"12345678"

    def test_partial_chunk_consumption(self, pair):
        client, server = pair
        client.send(b"abcdef")
        assert server.recv_exact(2).tobytes() == b"ab"
        assert server.recv_exact(4).tobytes() == b"cdef"

    def test_bidirectional(self, pair):
        client, server = pair
        client.send(b"ping")
        server.recv_exact(4)
        server.send(b"pong")
        assert client.recv_exact(4).tobytes() == b"pong"

    def test_underrun_raises(self, pair):
        client, server = pair
        client.send(b"ab")
        with pytest.raises(TransportError, match="need 4"):
            server.recv_exact(4)

    def test_sender_buffer_reuse_is_safe(self, pair):
        """Socket semantics: mutating the send buffer after send()
        must not corrupt data in flight."""
        client, server = pair
        buf = bytearray(b"original")
        client.send(buf)
        buf[:] = b"clobber!"
        assert server.recv_exact(8).tobytes() == b"original"

    def test_data_handler_called_synchronously(self, pair):
        client, server = pair
        got = []
        server.set_data_handler(
            lambda: got.append(server.recv_exact(server.available)
                               .tobytes()))
        client.send(b"push")
        assert got == [b"push"]  # delivered inside send()

    def test_closed_stream_rejects_send(self, pair):
        client, server = pair
        client.close()
        with pytest.raises(TransportError):
            client.send(b"x")
        with pytest.raises(TransportError):
            server.send(b"x")

    def test_byte_counters(self, pair):
        client, server = pair
        client.send(b"12345")
        server.recv_exact(5)
        assert client.bytes_sent == 5
        assert server.bytes_received == 5


class TestListenerManagement:
    def test_connect_to_unbound_fails(self):
        transport = LoopbackTransport()
        with pytest.raises(TransportError, match="nothing listening"):
            transport.connect(("loop", "ghost-host", 1))

    def test_duplicate_bind_rejected(self):
        transport = LoopbackTransport()
        listener = transport.listen("dup-host", 7777, lambda s: None)
        try:
            with pytest.raises(TransportError, match="already bound"):
                transport.listen("dup-host", 7777, lambda s: None)
        finally:
            listener.close()

    def test_close_unbinds(self):
        transport = LoopbackTransport()
        listener = transport.listen("tmp-host", 8888, lambda s: None)
        listener.close()
        with pytest.raises(TransportError):
            transport.connect(("loop", "tmp-host", 8888))

    def test_listeners_shared_across_instances(self):
        t1, t2 = LoopbackTransport(), LoopbackTransport()
        accepted = []
        listener = t1.listen("shared-host", 0, accepted.append)
        try:
            t2.connect(listener.endpoint)
            assert len(accepted) == 1
        finally:
            listener.close()

    def test_wrong_scheme_rejected(self):
        transport = LoopbackTransport()
        with pytest.raises(TransportError, match="scheme"):
            transport.connect(("tcp", "127.0.0.1", 80))
