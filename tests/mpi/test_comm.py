"""MPI-lite communicator tests."""

import numpy as np
import pytest

from repro.mpi import MPIError, Status, World, run_world
from repro.mpi.comm import ANY_SOURCE


class TestPicklePath:
    def test_send_recv_object(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": [1, 2]}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_world(2, prog)
        assert results[1] == {"a": 7, "b": [1, 2]}

    def test_tag_matching_out_of_order(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_world(2, prog)[1] == ("first", "second")

    def test_any_source_with_status(self):
        def prog(comm):
            if comm.rank in (0, 1):
                comm.send(comm.rank, dest=2, tag=5)
                return None
            got = set()
            for _ in range(2):
                status = Status()
                got.add((comm.recv(source=ANY_SOURCE, tag=5,
                                   status=status), status.source))
            return got

        assert run_world(3, prog)[2] == {(0, 0), (1, 1)}

    def test_irecv_isend(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend([1, 2, 3], dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        assert run_world(2, prog)[1] == [1, 2, 3]


class TestBufferPath:
    def test_numpy_round_trip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(np.arange(100, dtype="u1"), dest=1, tag=7)
                return None
            buf = np.empty(100, dtype="u1")
            comm.Recv(buf, source=0, tag=7)
            return buf.copy()

        out = run_world(2, prog)[1]
        assert np.array_equal(out, np.arange(100, dtype="u1"))

    def test_status_count(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(b"12345", dest=1)
                return None
            buf = bytearray(10)
            status = Status()
            comm.Recv(buf, source=0, status=status)
            return (status.count, bytes(buf[:status.count]))

        assert run_world(2, prog)[1] == (5, b"12345")

    def test_truncation_rejected(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Send(b"too long", dest=1)
                return None
            buf = bytearray(3)
            with pytest.raises(MPIError, match="truncation"):
                comm.Recv(buf, source=0)
            return True

        assert run_world(2, prog)[1]

    def test_path_mixing_rejected(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("pickled", dest=1)
                return None
            buf = bytearray(64)
            with pytest.raises(MPIError, match="pickle-path"):
                comm.Recv(buf, source=0)
            comm.recv(source=0)  # drain... already popped
            return True

        # the failed Recv pops the envelope; just check the error fired
        world = World(2)
        world.comm(0).send("pickled", dest=1)
        with pytest.raises(MPIError, match="pickle-path"):
            world.comm(1).Recv(bytearray(8), source=0)

    def test_isend_irecv_buffer(self):
        def prog(comm):
            if comm.rank == 0:
                comm.Isend(b"async", dest=1).wait()
                return None
            buf = bytearray(5)
            status = comm.Irecv(buf, source=0).wait()
            return (bytes(buf), status.count)

        assert run_world(2, prog)[1] == (b"async", 5)


class TestCollectives:
    def test_bcast(self):
        def prog(comm):
            data = {"k": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        assert all(r == {"k": 42} for r in run_world(3, prog))

    def test_gather(self):
        def prog(comm):
            return comm.gather(comm.rank ** 2, root=0)

        results = run_world(4, prog)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_scatter(self):
        def prog(comm):
            values = [10, 20, 30] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        assert run_world(3, prog) == [10, 20, 30]

    def test_scatter_wrong_count(self):
        world = World(2)
        with pytest.raises(MPIError, match="exactly 2"):
            world.comm(0).scatter([1, 2, 3], root=0)

    def test_reduce_and_allreduce(self):
        def prog(comm):
            total = comm.reduce(comm.rank + 1, root=0)
            everywhere = comm.allreduce(comm.rank + 1)
            return (total, everywhere)

        results = run_world(4, prog)
        assert results[0] == (10, 10)
        assert all(r[1] == 10 for r in results)

    def test_barrier(self):
        import threading
        hits = []
        lock = threading.Lock()

        def prog(comm):
            with lock:
                hits.append(("before", comm.rank))
            comm.barrier()
            with lock:
                hits.append(("after", comm.rank))
            return True

        run_world(3, prog)
        before = [i for i, (phase, _) in enumerate(hits)
                  if phase == "before"]
        after = [i for i, (phase, _) in enumerate(hits) if phase == "after"]
        assert max(before) < min(after)


class TestErrors:
    def test_bad_rank(self):
        world = World(2)
        with pytest.raises(MPIError, match="rank 5"):
            world.comm(0).send("x", dest=5)

    def test_world_size_validation(self):
        with pytest.raises(MPIError):
            World(0)

    def test_recv_timeout_is_reported(self):
        world = World(2)
        with pytest.raises(MPIError, match="timed out"):
            world.comm(0)._world.mailbox(0).get(1, 0, timeout=0.05)


class TestSimCost:
    def test_mpi_matches_raw_stream_efficiency(self):
        """Fig. 2: MPI sits at the efficiency ceiling — its modelled
        throughput equals a raw stream (middleware adds ~nothing)."""
        from repro.mpi import simulate_mpi_transfer
        from repro.simnet import (GIGABIT_ETHERNET, PENTIUM_II_400,
                                  measure_stream, standard_stack)
        size = 1 << 20
        mpi = simulate_mpi_transfer(PENTIUM_II_400, GIGABIT_ETHERNET,
                                    size, standard_stack())
        raw = measure_stream(PENTIUM_II_400, GIGABIT_ETHERNET, size,
                             standard_stack())
        assert mpi.mbit_per_s == pytest.approx(raw.mbit_per_s, rel=0.05)
