"""ORBMonitor: in-band introspection over GIOP.

Includes the PR's acceptance scenario: a slow call's full span tree is
retrievable through ``recent_spans`` *without tracing ever having been
enabled* — the always-on flight recorder captured it.
"""

import json
import time

import pytest

from repro.core import ZCOctetSequence
from repro.idl import compile_idl
from repro.obs.flightrec import DEFAULT_SLOW_THRESHOLD
from repro.obs.cli import validate_dump, validate_span_dump
from repro.orb import ORB, ORBConfig
from repro.services.monitor import monitor_api, register_monitor

SLEEPY_IDL = """
interface Sleepy {
    unsigned long nap(in unsigned long millis);
    unsigned long put(in sequence<zc_octet> data);
};
"""


@pytest.fixture(scope="module")
def sleepy_api():
    return compile_idl(SLEEPY_IDL, module_name="_monitor_sleepy_idl")


def _make_impl(api):
    class Impl(api.Sleepy_skel):
        def nap(self, millis):
            time.sleep(millis / 1000.0)
            return millis

        def put(self, data):
            return len(data)

    return Impl()


@pytest.fixture
def pair(sleepy_api):
    """(stub, monitor_stub, client, server) over loopback."""
    server = ORB(ORBConfig(scheme="loop"))
    client = ORB(ORBConfig(scheme="loop"))
    ref = server.activate(_make_impl(sleepy_api))
    stub = client.string_to_object(server.object_to_string(ref))
    mon_ref = server.resolve_initial_references("ORBMonitor")
    monitor = client.string_to_object(server.object_to_string(mon_ref))
    yield stub, monitor, client, server
    client.shutdown()
    server.shutdown()


class TestRegistration:
    def test_server_orb_auto_registers_monitor(self, pair):
        _, monitor, _, server = pair
        assert server.resolve_initial_references("ORBMonitor") is not None
        assert monitor.uptime() > 0.0

    def test_monitor_false_opts_out(self, sleepy_api):
        server = ORB(ORBConfig(scheme="loop", monitor=False))
        try:
            server.activate(_make_impl(sleepy_api))
            with pytest.raises(Exception):
                server.resolve_initial_references("ORBMonitor")
            # manual registration still works on an opted-out ORB
            register_monitor(server)
            assert server.resolve_initial_references("ORBMonitor") \
                is not None
        finally:
            server.shutdown()

    def test_slow_threshold_reports_recorder_config(self, pair):
        _, monitor, _, _ = pair
        assert monitor.slow_threshold() == DEFAULT_SLOW_THRESHOLD


class TestSnapshotAndConnections:
    def test_snapshot_is_valid_v1_dump(self, pair):
        stub, monitor, _, _ = pair
        stub.nap(0)
        doc = json.loads(monitor.snapshot())
        assert validate_dump(doc) == []

    def test_connections_carry_tier_counters(self, pair):
        stub, monitor, _, _ = pair
        stub.put(ZCOctetSequence.from_data(b"x" * 8192))
        records = monitor.connections()
        api = monitor_api()
        assert records and all(
            isinstance(r, api.Monitor_ConnStatsRec) for r in records)
        server_side = [r for r in records if r.role == "server"]
        assert server_side
        # the put() and the monitor calls themselves crossed this conn
        assert sum(r.messages_received for r in server_side) >= 2
        assert sum(r.deposits_received for r in server_side) >= 1
        # tier counters are present (zero over plain loopback is fine)
        assert server_side[0].shm_deposits >= 0
        assert server_side[0].sendfile_sends >= 0


class TestFlightRecorderAcceptance:
    def test_slow_call_tree_captured_without_tracing(self, sleepy_api):
        """A call slower than the threshold is fully retained — stages
        and all — although enable_tracing was never called."""
        server = ORB(ORBConfig(scheme="loop", slow_call_threshold=0.010))
        client = ORB(ORBConfig(scheme="loop"))
        try:
            assert server.metrics is None  # tracing really is off
            ref = server.activate(_make_impl(sleepy_api))
            stub = client.string_to_object(server.object_to_string(ref))
            stub.nap(0)    # fast: header only
            stub.nap(30)   # slow: full tree sampled
            mon_ref = server.resolve_initial_references("ORBMonitor")
            monitor = client.string_to_object(
                server.object_to_string(mon_ref))
            doc = json.loads(monitor.recent_spans(0))
            assert validate_span_dump(doc) == []
            naps = [s for s in doc["spans"] if s["name"] == "nap"]
            assert len(naps) == 2
            slow = [s for s in naps if s["duration_s"] >= 0.010]
            fast = [s for s in naps if s["duration_s"] < 0.010]
            assert len(slow) == 1 and len(fast) == 1
            # the slow call kept its stage detail, the fast one did not
            assert slow[0]["stages"]
            assert fast[0]["stages"] == []
        finally:
            client.shutdown()
            server.shutdown()

    def test_recent_spans_bounds_root_count(self, pair):
        stub, monitor, _, _ = pair
        for _ in range(5):
            stub.nap(0)
        doc = json.loads(monitor.recent_spans(2))
        # monitor invocations are recorded too, so: exactly 2 roots
        assert len(doc["spans"]) == 2
