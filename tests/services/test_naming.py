"""Name Service tests: contexts, paths, cross-process trees."""

import pytest

from repro.orb import INV_OBJREF, ORB, ORBConfig
from repro.services import NameClient, naming_api, start_name_service


@pytest.fixture
def ns():
    orb = ORB(ORBConfig(scheme="loop"))
    root = start_name_service(orb)
    yield orb, root
    orb.shutdown()


class TestNamingContext:
    def test_bind_resolve(self, ns, test_api, store_impl):
        orb, root = ns
        ref = orb.activate(store_impl)
        root.bind("store", ref)
        got = root.resolve("store")
        assert got.ior.iiop_profile().object_key \
            == ref.ior.iiop_profile().object_key
        # the resolved reference is live
        assert got.total == 0

    def test_duplicate_bind_rejected(self, ns, test_api, store_impl):
        orb, root = ns
        api = naming_api()
        ref = orb.activate(store_impl)
        root.bind("x", ref)
        with pytest.raises(api.Naming_AlreadyBound):
            root.bind("x", ref)
        root.rebind("x", ref)  # rebind allowed

    def test_resolve_unknown(self, ns):
        _, root = ns
        api = naming_api()
        with pytest.raises(api.Naming_NotFound):
            root.resolve("ghost")

    def test_unbind(self, ns, test_api, store_impl):
        orb, root = ns
        api = naming_api()
        root.bind("tmp", orb.activate(store_impl))
        root.unbind("tmp")
        with pytest.raises(api.Naming_NotFound):
            root.resolve("tmp")
        with pytest.raises(api.Naming_NotFound):
            root.unbind("tmp")

    def test_invalid_names_rejected(self, ns):
        _, root = ns
        api = naming_api()
        for bad in ("", "a/b", ".", ".."):
            with pytest.raises(api.Naming_InvalidName):
                root.resolve(bad)

    def test_list_names(self, ns, test_api, store_impl):
        orb, root = ns
        ref = orb.activate(store_impl)
        for name in ("zeta", "alpha", "mid"):
            root.bind(name, ref)
        assert root.list_names() == ["alpha", "mid", "zeta"]
        assert root.n_bindings() == 3

    def test_sub_contexts(self, ns, test_api, store_impl):
        orb, root = ns
        child = root.bind_new_context("dept")
        ref = orb.activate(store_impl)
        child.bind("svc", ref)
        again = root.resolve("dept")
        assert again.resolve("svc").total == 0


class TestNameClient:
    def test_path_bind_resolve(self, ns, test_api, store_impl):
        orb, root = ns
        client = NameClient(root)
        ref = orb.activate(store_impl)
        client.bind("cluster/node3/Store", ref)
        got = client.resolve("cluster/node3/Store")
        assert got.total == 0
        assert client.list("cluster") == ["node3"]
        client.unbind("cluster/node3/Store")
        api = naming_api()
        with pytest.raises(api.Naming_NotFound):
            client.resolve("cluster/node3/Store")

    def test_missing_intermediate_context(self, ns):
        _, root = ns
        api = naming_api()
        with pytest.raises(api.Naming_NotFound):
            NameClient(root).resolve("no/such/path")


class TestCrossProcessShape:
    def test_naming_across_orbs(self, test_api, store_impl):
        """Server binds; an unrelated client ORB resolves through the
        stringified root reference — the full bootstrap story."""
        server_orb = ORB(ORBConfig(scheme="tcp"))
        client_orb = ORB(ORBConfig(scheme="tcp", collocated_calls=False))
        try:
            root = start_name_service(server_orb)
            service_ref = server_orb.activate(store_impl)
            NameClient(root).bind("video/encoders/e1", service_ref)

            root_ior = server_orb.object_to_string(root)
            remote_root = client_orb.string_to_object(root_ior)
            got = NameClient(remote_root).resolve("video/encoders/e1")
            from repro.core import OctetSequence
            assert got.put_std(OctetSequence(b"via-ns")) == 6
            assert store_impl.last.tobytes() == b"via-ns"
        finally:
            client_orb.shutdown()
            server_orb.shutdown()

    def test_initial_references(self, test_api):
        orb = ORB(ORBConfig(scheme="loop"))
        try:
            with pytest.raises(INV_OBJREF):
                orb.resolve_initial_references("NameService")
            root = start_name_service(orb)
            assert orb.resolve_initial_references("NameService") is root
        finally:
            orb.shutdown()
