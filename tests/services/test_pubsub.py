"""TopicHub tests: single-copy shm fan-out, cohorts, lifecycle."""

import time

import pytest

from repro.core import ZCOctetSequence
from repro.orb import ORB, ORBConfig
from repro.services import (CollectingSubscriber, CountingSubscriber,
                            TopicHubImpl, decode_event, encode_event,
                            pubsub_api)
from repro.transport.shm import shm_available

SIZE_64K = 64 * 1024


def _wait(cond, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.01)
    return cond()


class _Fleet:
    """Subscriber servants on their own server ORBs + teardown."""

    def __init__(self):
        self.orbs = []

    def subscriber(self, scheme="shm", impl_factory=CollectingSubscriber):
        orb = ORB(ORBConfig(scheme=scheme))
        impl = impl_factory()
        ref = orb.activate(impl)
        self.orbs.append(orb)
        return orb, impl, ref

    def close(self):
        for orb in self.orbs:
            orb.shutdown()


@pytest.fixture
def fleet():
    f = _Fleet()
    yield f
    f.close()


@pytest.fixture
def hub():
    h = TopicHubImpl(slot_size=SIZE_64K, slot_count=8, slot_wait=0.05,
                     stale_after=0.5)
    yield h
    h.destroy()


needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="no shared-memory directory")


@needs_shm
class TestFanout:
    def test_one_post_serves_every_subscriber(self, hub, fleet):
        """The acceptance property: N colocated subscribers, ONE arena
        deposit per published event."""
        subs = [fleet.subscriber() for _ in range(4)]
        for _, _, ref in subs:
            hub.subscribe("video", ref)
        assert hub.n_subscribers("video") == 4

        payload = bytes(range(256)) * 64  # 16 KiB
        for _ in range(3):
            assert hub.publish("video", payload) == 4
        assert _wait(lambda: all(i.received == 3 for _, i, _r in subs))
        for _, impl, _ in subs:
            topic, seq, data = impl.pop()
            assert (topic, seq, data) == ("video", 1, payload)

        arena = hub.shm_transport.shared_arena
        assert hub.fanout_posts == 3
        assert arena.shared_posts == 3
        assert arena.posts == 3  # one slot write per event, not per sub
        shared_refs = sum(s["shm_shared_refs"]
                          for s in hub.delivery_orb.connections_snapshot())
        assert shared_refs == 12  # 3 events x 4 record-only sends
        # every reader released: the arena drains back to baseline
        assert _wait(lambda: arena.used_slots == 0)
        assert arena.free_slots == arena.slot_count

    def test_mixed_cohorts_share_one_topic(self, hub, fleet):
        """shm subscribers fan out through the arena; a tcp subscriber
        rides its own per-link deposit — same topic, same publish."""
        _, shm1, r1 = fleet.subscriber()
        _, shm2, r2 = fleet.subscriber()
        _, far, r3 = fleet.subscriber(scheme="tcp")
        for ref in (r1, r2, r3):
            hub.subscribe("mix", ref)
        payload = b"\x3c" * 8192
        assert hub.publish("mix", payload) == 3
        assert _wait(lambda: shm1.received == shm2.received
                     == far.received == 1)
        assert far.pop()[2] == payload
        assert hub.fanout_posts == 1  # posted for the 2-reader cohort
        assert hub.shm_transport.shared_arena.shared_posts == 1

    def test_duplicate_subscribe_dedupes_on_identity(self, hub, fleet):
        sub_orb, impl, ref = fleet.subscriber()
        hub.subscribe("t", ref)
        hub.subscribe("t", ref)
        assert hub.n_subscribers("t") == 1
        hub.publish("t", b"x" * 64)
        assert _wait(lambda: impl.received == 1)

    def test_unsubscribe(self, hub, fleet):
        _, impl, ref = fleet.subscriber()
        hub.subscribe("t", ref)
        hub.unsubscribe("t", ref)
        assert hub.n_subscribers("t") == 0
        assert hub.publish("t", b"y" * 64) == 0
        assert impl.received == 0


@needs_shm
class TestBackpressure:
    def test_arena_full_degrades_to_per_link(self, hub, fleet):
        """A slow subscriber pinning every slot must not wedge
        publishing: the hub degrades to per-link deposits and the
        arena occupancy stays bounded by the slot count."""
        _, impl, ref = fleet.subscriber()
        hub.subscribe("slow", ref)
        arena = hub.shm_transport.shared_arena
        held = [arena.acquire(1024) for _ in range(arena.slot_count)]
        try:
            assert arena.free_slots == 0
            assert hub.publish("slow", b"\x7e" * 4096) == 1
            assert hub.fanout_fallbacks == 1
            assert hub.fanout_posts == 0
            assert arena.used_slots <= arena.slot_count
            assert _wait(lambda: impl.received == 1)
            assert impl.pop()[2] == b"\x7e" * 4096
        finally:
            for b in held:
                b.release()
        # slots released: the single-copy path comes straight back
        assert hub.publish("slow", b"\x7e" * 4096) == 1
        assert hub.fanout_posts == 1

    def test_stale_reclaim_unwedges_a_dead_reader(self, hub, fleet):
        """Slots POSTED to a reader that died mid-read are force-freed
        by the creator once stale_after passes — a crashed subscriber
        cannot leak the arena dry."""
        _, impl, ref = fleet.subscriber()
        hub.subscribe("crash", ref)
        arena = hub.shm_transport.shared_arena
        # simulate readers that took the slots down with them
        for _ in range(arena.slot_count):
            slot, _ = arena.alloc()
            arena.post_shared(slot, readers=1)
        assert arena.free_slots == 0
        time.sleep(hub.stale_after + 0.05)
        assert hub.publish("crash", b"\x99" * 2048) == 1
        assert hub.fanout_posts == 1  # reclaim made room: no fallback
        assert hub.fanout_fallbacks == 0
        assert arena.stale_reclaims >= 1
        assert _wait(lambda: impl.received == 1)


@needs_shm
class TestEviction:
    def test_dead_subscriber_is_evicted_without_leaking_slots(
            self, hub, fleet):
        doomed_orb, doomed, r1 = fleet.subscriber()
        _, alive, r2 = fleet.subscriber()
        hub.subscribe("t", r1)
        hub.subscribe("t", r2)
        doomed_orb.shutdown()
        delivered = hub.publish("t", b"\x42" * 4096)
        assert delivered == 1
        assert _wait(lambda: alive.received == 1)
        assert hub.subscribers_evicted == 1
        assert hub.n_subscribers("t") == 1
        st = hub.stats("t")
        assert st.dropped == 1
        assert st.delivered == 1
        # the dead reader's planned ref was compensated: no slot leaks
        arena = hub.shm_transport.shared_arena
        assert _wait(lambda: arena.used_slots == 0)


@needs_shm
class TestLifecycleAndStats:
    def test_destroy_closes_the_hub(self, fleet):
        api = pubsub_api()
        hub = TopicHubImpl(slot_size=SIZE_64K, slot_count=4)
        _, _, ref = fleet.subscriber()
        hub.subscribe("t", ref)
        hub.destroy()
        with pytest.raises(api.PubSub_HubClosed):
            hub.publish("t", b"x")
        with pytest.raises(api.PubSub_HubClosed):
            hub.subscribe("t", ref)
        hub.destroy()  # idempotent

    def test_stats_unknown_topic_raises(self, hub):
        api = pubsub_api()
        with pytest.raises(api.PubSub_NoSuchTopic):
            hub.stats("never-published")

    def test_publish_without_subscribers_is_a_noop(self, hub):
        assert hub.publish("empty", b"z" * 128) == 0
        assert hub.fanout_posts == 0


class TestTypedEvents:
    def test_round_trip_through_a_compiled_struct(self):
        api = pubsub_api()
        value = api.PubSub_TopicStats(topic="enc", subscribers=3,
                                      published=10, delivered=30, dropped=1)
        payload = encode_event(api.PubSub_TopicStats, value)
        out = decode_event(api.PubSub_TopicStats, payload)
        assert out == value

    def test_decode_accepts_memoryview(self):
        api = pubsub_api()
        value = api.PubSub_TopicStats(topic="mv", subscribers=0,
                                      published=0, delivered=0, dropped=0)
        payload = memoryview(encode_event(api.PubSub_TopicStats, value))
        assert decode_event(api.PubSub_TopicStats, payload) == value

    def test_empty_payload_rejected(self):
        api = pubsub_api()
        with pytest.raises(ValueError, match="empty"):
            decode_event(api.PubSub_TopicStats, b"")

    @needs_shm
    def test_typed_event_over_the_hub(self):
        api = pubsub_api()
        hub = TopicHubImpl(slot_size=SIZE_64K, slot_count=4)
        fleet = _Fleet()
        try:
            _, impl, ref = fleet.subscriber()
            hub.subscribe("typed", ref)
            value = api.PubSub_TopicStats(topic="typed", subscribers=1,
                                          published=1, delivered=1,
                                          dropped=0)
            hub.publish("typed", encode_event(api.PubSub_TopicStats, value))
            assert _wait(lambda: impl.received == 1)
            _, _, data = impl.pop()
            assert decode_event(api.PubSub_TopicStats, data) == value
        finally:
            hub.destroy()
            fleet.close()


@needs_shm
class TestHubOverTheWire:
    """The hub as an ordinary CORBA object: publisher talks to it
    through a stub on another ORB, like any supplier would."""

    def test_publish_through_a_stub(self, fleet):
        hub_impl = TopicHubImpl(slot_size=SIZE_64K, slot_count=8)
        host_orb = ORB(ORBConfig(scheme="loop"))
        supp_orb = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        try:
            hub_ref = host_orb.activate(hub_impl)
            hub = supp_orb.string_to_object(
                host_orb.object_to_string(hub_ref))
            subs = [fleet.subscriber() for _ in range(2)]
            for _, _, ref in subs:
                hub_impl.subscribe("wire", ref)
            payload = bytes(range(256)) * 32  # 8 KiB
            assert hub.publish(
                "wire", ZCOctetSequence.from_data(payload)) == 2
            assert _wait(lambda: all(i.received == 1 for _, i, _r in subs))
            st = hub.stats("wire")
            assert (st.subscribers, st.published, st.delivered) == (2, 1, 2)
            assert hub_impl.fanout_posts == 1
        finally:
            supp_orb.shutdown()
            host_orb.shutdown()
            hub_impl.destroy()
