"""Event channel tests: fan-out of bulk payloads by reference."""

import pytest

from repro.core import ZCOctetSequence
from repro.orb import ORB, ORBConfig
from repro.services import EventChannelImpl, QueueingConsumer, events_api


@pytest.fixture
def channel_setup():
    """channel on one ORB, two consumers on another, supplier on a third."""
    api = events_api()
    chan_orb = ORB(ORBConfig(scheme="loop"))
    cons_orb = ORB(ORBConfig(scheme="loop"))
    supp_orb = ORB(ORBConfig(scheme="loop", collocated_calls=False))

    channel_ref = chan_orb.activate(EventChannelImpl())
    channel = supp_orb.string_to_object(
        chan_orb.object_to_string(channel_ref))

    consumers = []
    for _ in range(2):
        impl = QueueingConsumer()
        ref = cons_orb.activate(impl)
        consumers.append(impl)
        channel.connect_consumer(
            chan_orb.string_to_object(cons_orb.object_to_string(ref)))

    yield channel, consumers
    supp_orb.shutdown()
    cons_orb.shutdown()
    chan_orb.shutdown()


class TestEventChannel:
    def test_fan_out_to_all_consumers(self, channel_setup):
        channel, consumers = channel_setup
        payload = bytes(range(256)) * 40
        channel.push(ZCOctetSequence.from_data(payload))
        for impl in consumers:
            assert impl.received == 1
            assert impl.pop() == payload

    def test_many_events_in_order(self, channel_setup):
        channel, consumers = channel_setup
        for i in range(10):
            channel.push(ZCOctetSequence.from_data(bytes([i]) * 100))
        for impl in consumers:
            assert impl.received == 10
            for i in range(10):
                assert impl.pop() == bytes([i]) * 100

    def test_consumer_count_and_delivery_stats(self, channel_setup):
        channel, consumers = channel_setup
        assert channel.n_consumers() == 2
        channel.push(ZCOctetSequence.from_data(b"x"))
        assert channel.events_delivered() == 2

    def test_disconnect(self, channel_setup):
        channel, consumers = channel_setup
        # reconnect bookkeeping is by object key; disconnect the first
        api = events_api()
        # rebuild a stub for consumer 0 via the channel's own records:
        # simplest path: disconnect both and verify count drops
        assert channel.n_consumers() == 2

    def test_push_without_consumers_ok(self):
        orb = ORB(ORBConfig(scheme="loop"))
        try:
            channel = orb.activate(EventChannelImpl())
            channel.push(ZCOctetSequence.from_data(b"nobody home"))
            assert channel.events_delivered() == 0
        finally:
            orb.shutdown()

    def test_bounded_consumer_queue(self):
        orb = ORB(ORBConfig(scheme="loop"))
        try:
            impl = QueueingConsumer(maxlen=2)
            channel = orb.activate(EventChannelImpl())
            channel.connect_consumer(orb.activate(impl))
            for i in range(5):
                channel.push(ZCOctetSequence.from_data(bytes([i])))
            assert impl.received == 5
            assert list(impl.events) == [bytes([3]), bytes([4])]
        finally:
            orb.shutdown()


class TestConsumerEviction:
    def test_dead_consumer_evicted_and_delivery_continues(self):
        """A consumer whose process died mid-stream must not poison the
        supplier's push: the channel auto-disconnects it, keeps
        delivering to the healthy consumers, and counts the eviction."""
        chan_orb = ORB(ORBConfig(scheme="loop"))
        doomed_orb = ORB(ORBConfig(scheme="loop"))
        healthy_orb = ORB(ORBConfig(scheme="loop"))
        supp_orb = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        try:
            channel_ref = chan_orb.activate(EventChannelImpl())
            channel = supp_orb.string_to_object(
                chan_orb.object_to_string(channel_ref))

            doomed = QueueingConsumer()
            healthy = QueueingConsumer()
            for orb, impl in ((doomed_orb, doomed), (healthy_orb, healthy)):
                ref = orb.activate(impl)
                channel.connect_consumer(
                    chan_orb.string_to_object(orb.object_to_string(ref)))

            channel.push(ZCOctetSequence.from_data(b"a" * 100))
            assert doomed.received == 1 and healthy.received == 1
            assert channel.n_consumers() == 2

            doomed_orb.shutdown()  # the consumer "process" dies

            # this push hits the dead callback, evicts it, and still
            # reaches the healthy consumer
            channel.push(ZCOctetSequence.from_data(b"b" * 100))
            assert healthy.received == 2
            assert channel.n_consumers() == 1
            assert channel.consumers_evicted() == 1

            # subsequent pushes no longer try the dead consumer
            channel.push(ZCOctetSequence.from_data(b"c" * 100))
            assert healthy.received == 3
            assert channel.consumers_evicted() == 1
        finally:
            supp_orb.shutdown()
            healthy_orb.shutdown()
            chan_orb.shutdown()


class TestIdentityKeyedDisconnect:
    def _stub(self, orb, servant_orb, ref, reverse=False):
        """Rebind ``ref`` onto ``orb``; optionally with the IOR's
        profiles in reverse order (same object, different reference)."""
        stub = orb.string_to_object(servant_orb.object_to_string(ref))
        if reverse:
            ior = stub.ior
            flipped = type(ior)(type_id=ior.type_id,
                                profiles=tuple(reversed(ior.profiles)))
            stub = type(stub)(orb, flipped)
        return stub

    def test_disconnect_matches_reordered_profiles(self):
        """Disconnecting with an equivalent reference whose profiles
        are listed in a different order must still remove the consumer
        — identity is the object, not the profile ordering."""
        chan_orb = ORB(ORBConfig(scheme="loop"))
        cons_orb = ORB(ORBConfig(scheme="tcp", extra_schemes=("shm",)))
        try:
            channel = chan_orb.activate(EventChannelImpl())
            impl = QueueingConsumer()
            ref = cons_orb.activate(impl)
            assert len(ref.ior.profiles) >= 2  # reordering is meaningful
            channel.connect_consumer(self._stub(chan_orb, cons_orb, ref))
            assert channel.n_consumers() == 1
            channel.disconnect_consumer(
                self._stub(chan_orb, cons_orb, ref, reverse=True))
            assert channel.n_consumers() == 0
        finally:
            cons_orb.shutdown()
            chan_orb.shutdown()

    def test_disconnect_leaves_other_consumers(self):
        chan_orb = ORB(ORBConfig(scheme="loop"))
        cons_orb = ORB(ORBConfig(scheme="loop"))
        try:
            channel = chan_orb.activate(EventChannelImpl())
            keep, drop = QueueingConsumer(), QueueingConsumer()
            keep_ref = cons_orb.activate(keep)
            drop_ref = cons_orb.activate(drop)
            for ref in (keep_ref, drop_ref):
                channel.connect_consumer(
                    self._stub(chan_orb, cons_orb, ref))
            channel.disconnect_consumer(
                self._stub(chan_orb, cons_orb, drop_ref))
            channel.push(ZCOctetSequence.from_data(b"still here"))
            assert keep.received == 1
            assert drop.received == 0
        finally:
            cons_orb.shutdown()
            chan_orb.shutdown()


class TestChannelLifecycle:
    def test_destroy_disconnects_and_blocks_push(self, channel_setup):
        channel, consumers = channel_setup
        api = events_api()
        channel.push(ZCOctetSequence.from_data(b"pre"))
        channel.destroy()
        assert channel.n_consumers() == 0
        with pytest.raises(api.Events_Disconnected):
            channel.push(ZCOctetSequence.from_data(b"post"))
        for impl in consumers:
            assert impl.received == 1  # nothing delivered after destroy
        assert channel.events_delivered() == 2

    def test_destroy_is_idempotent(self):
        orb = ORB(ORBConfig(scheme="loop"))
        try:
            channel = orb.activate(EventChannelImpl())
            channel.destroy()
            channel.destroy()
        finally:
            orb.shutdown()
