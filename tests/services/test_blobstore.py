"""BlobStore service tests: chunked file streaming over the ORB.

Covers the IDL surface (open/stat/read_range/close and its error
exceptions), the bounded-window ``read_all`` client helper, and the
tier routing of the file-backed replies: kernel sendfile on TCP,
arena staging on shm, plain views everywhere else.
"""

import os

import pytest

from repro.orb import ORB, ORBConfig
from repro.services import BlobStoreImpl, blob_api, read_all
from repro.transport.base import TransportRegistry
from repro.transport.loopback import LoopbackTransport
from repro.transport.shm import ShmTransport, shm_available


@pytest.fixture
def blob_root(tmp_path):
    data = bytes(os.urandom(3 * 1024 * 1024))
    (tmp_path / "movie.bin").write_bytes(data)
    (tmp_path / "small.txt").write_bytes(b"hello blob")
    return tmp_path, data


def _pair(scheme, blob_root, chunk_size=512 * 1024, **cfg):
    root, _ = blob_root
    impl = BlobStoreImpl(root, chunk_size=chunk_size)
    server = ORB(ORBConfig(scheme=scheme, **cfg))
    client = ORB(ORBConfig(scheme=scheme, collocated_calls=False, **cfg))
    ref = server.activate(impl)
    store = client.string_to_object(server.object_to_string(ref))
    return store, impl, client, server


class TestBlobStoreOps:
    def test_open_stat_read_close(self, blob_root):
        api = blob_api()
        store, impl, client, server = _pair("loop", blob_root)
        try:
            h = store.open("small.txt")
            info = store.stat(h)
            assert info.size == 10
            assert info.chunk_size == 512 * 1024
            assert store.read_range(h, 0, 100).tobytes() == b"hello blob"
            assert store.read_range(h, 6, 100).tobytes() == b"blob"
            store.close(h)
            with pytest.raises(api.Blob_BadHandle):
                store.stat(h)
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()

    def test_not_found_and_traversal_rejected(self, blob_root):
        api = blob_api()
        store, impl, client, server = _pair("loop", blob_root)
        try:
            for name in ("missing.bin", "../etc/passwd", "a/b", "", ".."):
                with pytest.raises(api.Blob_NotFound):
                    store.open(name)
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()

    def test_read_past_eof_is_empty(self, blob_root):
        store, impl, client, server = _pair("loop", blob_root)
        try:
            h = store.open("small.txt")
            assert store.read_range(h, 10, 100).tobytes() == b""
            assert store.read_range(h, 9999, 1).tobytes() == b""
            store.close(h)
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()

    def test_bad_handle(self, blob_root):
        api = blob_api()
        store, impl, client, server = _pair("loop", blob_root)
        try:
            with pytest.raises(api.Blob_BadHandle):
                store.read_range(12345, 0, 1)
            with pytest.raises(api.Blob_BadHandle):
                store.close(12345)
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()


class TestReadAll:
    def test_loopback_stream(self, blob_root):
        _, data = blob_root
        store, impl, client, server = _pair("loop", blob_root)
        try:
            assert read_all(store, "movie.bin") == data
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()

    def test_window_one_and_odd_chunk(self, blob_root):
        _, data = blob_root
        store, impl, client, server = _pair("loop", blob_root)
        try:
            got = read_all(store, "movie.bin", window=1,
                           chunk_size=999_983)  # prime: ragged tail
            assert got == data
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()

    def test_handles_released_on_error(self, blob_root):
        api = blob_api()
        store, impl, client, server = _pair("loop", blob_root)
        try:
            with pytest.raises(api.Blob_NotFound):
                read_all(store, "missing.bin")
            h = store.open("small.txt")
            store.close(h)
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()


class TestTierRouting:
    def test_tcp_rides_kernel_sendfile(self, blob_root):
        """Over real TCP every ≥threshold chunk takes os.sendfile."""
        _, data = blob_root
        store, impl, client, server = _pair("tcp", blob_root)
        try:
            assert read_all(store, "movie.bin", window=2) == data
            conn = server._server._conns[0]
            # 3 MiB / 512 KiB chunks, all above the 256 KiB threshold
            assert conn.stats.sendfile_sends == 6
            assert conn.stats.sendfile_fallbacks == 0
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()

    def test_below_threshold_skips_sendfile(self, blob_root):
        """Chunks under sendfile_min_size go out as plain views."""
        _, data = blob_root
        store, impl, client, server = _pair(
            "tcp", blob_root, chunk_size=64 * 1024,
            sendfile_min_size=1 << 20)
        try:
            assert read_all(store, "movie.bin") == data
            conn = server._server._conns[0]
            assert conn.stats.sendfile_sends == 0
            assert conn.stats.sendfile_fallbacks == 0
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()

    def test_forced_fallback_byte_identity(self, blob_root):
        """With the kernel path disabled the stream copies — and the
        client-visible bytes are identical."""
        _, data = blob_root
        store, impl, client, server = _pair("tcp", blob_root)
        try:
            # prime the connection, then disable sendfile server-side
            h = store.open("movie.bin")
            store.close(h)
            conn = server._server._conns[0]
            conn.stream.sendfile_enabled = False
            assert read_all(store, "movie.bin") == data
            assert conn.stats.sendfile_sends == 0
            assert conn.stats.sendfile_fallbacks == 6
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()

    @pytest.mark.skipif(not shm_available(), reason="no usable /dev/shm")
    def test_shm_blob_larger_than_arena_slot(self, blob_root):
        """Chunks exceeding the arena slot degrade to on-wire bytes;
        the blob still arrives intact (chunk 256 KiB > slot 64 KiB)."""
        root, data = blob_root
        impl = BlobStoreImpl(root, chunk_size=256 * 1024)

        def registry():
            reg = TransportRegistry()
            reg.register(LoopbackTransport())
            reg.register(ShmTransport(slot_size=64 * 1024, slot_count=4))
            return reg

        server = ORB(ORBConfig(scheme="shm"), transports=registry())
        client = ORB(ORBConfig(scheme="shm", collocated_calls=False),
                     transports=registry())
        try:
            ref = server.activate(impl)
            store = client.string_to_object(server.object_to_string(ref))
            assert read_all(store, "movie.bin", window=2) == data
        finally:
            impl.shutdown()
            client.shutdown()
            server.shutdown()
