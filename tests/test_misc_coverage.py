"""Cross-cutting coverage: locate, CLI mains, Fast-Ethernet claim."""



from repro.orb import ORB, ORBConfig


class TestLocate:
    def test_locate_existing_and_deactivated(self, test_api, store_impl):
        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        try:
            ref = server.activate(store_impl)
            stub = client.string_to_object(server.object_to_string(ref))
            assert client.locate(stub) is True
            server.deactivate(ref)
            assert client.locate(stub) is False
        finally:
            client.shutdown()
            server.shutdown()

    def test_locate_collocated_shortcut(self, test_api, store_impl):
        orb = ORB(ORBConfig(scheme="loop"))
        try:
            ref = orb.activate(store_impl)
            assert orb.locate(ref) is True
        finally:
            orb.shutdown()


class TestFastEthernetClaim:
    def test_corba_would_not_saturate_fast_ethernet(self):
        """§5.2: 'The achieved bandwidths would not even use a Fast
        Ethernet to its limit.'  On a modelled 100 MBit link, classic
        CORBA still cannot reach the wire; the zero-copy ORB pins it."""
        from repro.simnet import (FAST_ETHERNET, PENTIUM_II_400,
                                  OrbCostConfig, measure_corba_request,
                                  standard_stack)
        size = 4 << 20
        std = measure_corba_request(PENTIUM_II_400, FAST_ETHERNET, size,
                                    standard_stack(),
                                    OrbCostConfig(zero_copy=False))
        zc = measure_corba_request(PENTIUM_II_400, FAST_ETHERNET, size,
                                   standard_stack(),
                                   OrbCostConfig(zero_copy=True))
        assert std.mbit_per_s < 60  # CPU-bound far below the wire
        assert zc.mbit_per_s > 85  # zero-copy ORB saturates FE


class TestCLIs:
    def test_repro_idl_main(self, tmp_path, capsys):
        from repro.idl.compiler import main
        src = tmp_path / "svc.idl"
        src.write_text("interface CliSvc { void ping(); };")
        out = tmp_path / "svc.py"
        assert main([str(src), "-o", str(out)]) == 0
        text = out.read_text()
        assert "class CliSvc(_ObjectStub):" in text
        compile(text, str(out), "exec")

    def test_repro_idl_with_include(self, tmp_path):
        from repro.idl.compiler import main
        (tmp_path / "base.idl").write_text("typedef sequence<octet> B;")
        src = tmp_path / "top.idl"
        src.write_text('#include "base.idl"\n'
                       "interface Top2 { void put(in B data); };")
        out = tmp_path / "top.py"
        assert main([str(src), "-o", str(out)]) == 0
        assert "Top2" in out.read_text()

    def test_repro_ttcp_main_sim(self, capsys):
        from repro.apps.ttcp import main
        assert main(["--mode", "sim", "--versions", "raw",
                     "--max-size", "65536"]) == 0
        out = capsys.readouterr().out
        assert "raw/standard" in out

    def test_repro_transcode_main(self, capsys):
        from repro.apps.transcoder.cli import main
        assert main(["--frames", "6", "--workers", "1",
                     "--paths", "zc"]) == 0
        out = capsys.readouterr().out
        assert "zc " in out and "PSNR" in out


class TestPoolStatsVisibility:
    def test_deposit_pool_warms_across_requests(self, test_api,
                                                store_impl):
        """Steady-state requests of one size hit the pool, not malloc —
        the §2.1 allocation overhead is removed in the real ORB too."""
        from repro.core import BufferPool, ZCOctetSequence
        pool = BufferPool()
        server = ORB(ORBConfig(scheme="loop"), pool=pool)
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False),
                     pool=pool)
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(store_impl)))
            payload = bytes(64 * 1024)
            for _ in range(5):
                seq = ZCOctetSequence.from_data(payload, pool=pool)
                stub.put(seq)
                # the servant releases nothing: buffers accumulate
                # unless the app returns them — release explicitly
                store_impl.last.release()
            assert pool.hits >= 4  # first call may miss, rest reuse
        finally:
            client.shutdown()
            server.shutdown()
