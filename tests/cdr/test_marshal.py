"""Marshaler tests: TypeCode-driven value round-trips including the
zero-copy sequence (TCSeqZCOctet) fast path."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import (TC_DOUBLE, TC_LONG, TC_OCTET, TC_SEQ_OCTET,
                       TC_SEQ_ZC_OCTET, TC_STRING, TC_ULONG, CDRDecoder,
                       CDREncoder, MarshalContext, MarshalError, StructValue,
                       array_tc, enum_tc, get_marshaller, sequence_tc,
                       string_tc, struct_tc)
from repro.core import (BufferPool, DepositReceiver, DepositRegistry,
                        OctetSequence, ZCOctetSequence)


def round_trip(tc, value, ctx_out=None, ctx_in=None):
    m = get_marshaller(tc)
    enc = CDREncoder()
    m.marshal(enc, value, ctx_out or MarshalContext())
    dec = CDRDecoder(enc.getvalue())
    return m.demarshal(dec, ctx_in or MarshalContext())


class TestBasicMarshalers:
    def test_primitive(self):
        assert round_trip(TC_LONG, -7) == -7
        assert round_trip(TC_DOUBLE, 2.5) == 2.5
        assert round_trip(TC_OCTET, 200) == 200

    def test_primitive_type_error(self):
        with pytest.raises(MarshalError):
            round_trip(TC_LONG, "not an int")

    def test_string(self):
        assert round_trip(TC_STRING, "hello") == "hello"

    def test_bounded_string_enforced(self):
        tc = string_tc(3)
        with pytest.raises(MarshalError):
            round_trip(tc, "toolong")

    def test_generic_sequence_of_longs(self):
        tc = sequence_tc(TC_LONG)
        assert round_trip(tc, [1, -2, 3]) == [1, -2, 3]

    def test_bounded_sequence_enforced(self):
        tc = sequence_tc(TC_LONG, bound=2)
        with pytest.raises(MarshalError):
            round_trip(tc, [1, 2, 3])

    def test_array_exact_length(self):
        tc = array_tc(TC_ULONG, 3)
        assert round_trip(tc, [7, 8, 9]) == [7, 8, 9]
        with pytest.raises(MarshalError):
            round_trip(tc, [7, 8])

    def test_nested_sequence(self):
        tc = sequence_tc(sequence_tc(TC_LONG))
        assert round_trip(tc, [[1], [2, 3], []]) == [[1], [2, 3], []]


class TestStructEnum:
    def test_struct_round_trip_as_structvalue(self):
        tc = struct_tc("P", [("x", TC_DOUBLE), ("y", TC_DOUBLE)],
                       repo_id="IDL:test/P_unregistered:1.0")
        out = round_trip(tc, StructValue(x=1.0, y=-2.0))
        assert isinstance(out, StructValue)
        assert out.x == 1.0 and out.y == -2.0

    def test_struct_accepts_mapping(self):
        tc = struct_tc("Q", [("a", TC_LONG)],
                       repo_id="IDL:test/Q_unregistered:1.0")
        out = round_trip(tc, {"a": 5})
        assert out.a == 5

    def test_struct_missing_member(self):
        tc = struct_tc("R", [("a", TC_LONG)],
                       repo_id="IDL:test/R_unregistered:1.0")
        with pytest.raises(MarshalError, match="lacks member"):
            round_trip(tc, StructValue(b=1))

    def test_enum_round_trip(self):
        tc = enum_tc("Color", ["red", "green"],
                     repo_id="IDL:test/Color_unreg:1.0")
        assert round_trip(tc, 1) == 1

    def test_enum_range_checked(self):
        tc = enum_tc("Color2", ["red", "green"],
                     repo_id="IDL:test/Color2_unreg:1.0")
        with pytest.raises(MarshalError):
            round_trip(tc, 5)


class TestSeqOctet:
    def test_bulk_round_trip(self):
        data = bytes(range(256)) * 10
        out = round_trip(TC_SEQ_OCTET, OctetSequence(data))
        assert isinstance(out, OctetSequence)
        assert out.tobytes() == data

    def test_accepts_raw_bytes(self):
        assert round_trip(TC_SEQ_OCTET, b"raw").tobytes() == b"raw"

    def test_generic_loop_mode_equivalent(self):
        """MICO's per-element loop produces identical wire bytes for
        octets (it is only slower, §5.2)."""
        data = b"slowpath" * 100
        m = get_marshaller(TC_SEQ_OCTET)
        fast, slow = CDREncoder(), CDREncoder()
        m.marshal(fast, data, MarshalContext())
        m.marshal(slow, data, MarshalContext(generic_loop=True))
        assert fast.getvalue() == slow.getvalue()
        out = m.demarshal(CDRDecoder(slow.getvalue()),
                          MarshalContext(generic_loop=True))
        assert out.tobytes() == data

    def test_instrumentation_hook_sees_bytes(self):
        events = []
        ctx = MarshalContext(on_bytes=lambda kind, n: events.append(
            (kind, n)))
        m = get_marshaller(TC_SEQ_OCTET)
        enc = CDREncoder()
        m.marshal(enc, b"x" * 500, ctx)
        assert events == [("marshal-bulk", 500)]


class TestSeqZCOctet:
    def test_inline_fallback_without_registry(self):
        data = b"inline" * 50
        out = round_trip(TC_SEQ_ZC_OCTET, ZCOctetSequence.from_data(data))
        assert isinstance(out, ZCOctetSequence)
        assert out.tobytes() == data
        assert out.is_page_aligned

    def test_deposit_path_is_reference_only(self):
        """§4.4: with a registry, the message body carries only the
        deposit reference; the payload stays where it is."""
        data = b"big" * 10000
        reg = DepositRegistry()
        ctx = MarshalContext(registry=reg)
        m = get_marshaller(TC_SEQ_ZC_OCTET)
        enc = CDREncoder()
        m.marshal(enc, ZCOctetSequence.from_data(data), ctx)
        assert len(enc) <= 8  # magic + id, no payload
        assert len(ctx.descriptors) == 1
        assert ctx.descriptors[0].size == len(data)
        assert len(reg) == 1

    def test_deposit_demarshal_adopts_landed_buffer(self):
        data = bytes(range(256)) * 100
        reg = DepositRegistry()
        out_ctx = MarshalContext(registry=reg)
        m = get_marshaller(TC_SEQ_ZC_OCTET)
        enc = CDREncoder()
        m.marshal(enc, ZCOctetSequence.from_data(data), out_ctx)
        desc = out_ctx.descriptors[0]
        recv = DepositReceiver(BufferPool())
        buf = recv.prepare(desc)
        (_, view), = reg.drain()
        buf.view()[:] = view  # the wire
        landed = recv.complete(desc.deposit_id)
        in_ctx = MarshalContext(deposits={desc.deposit_id: landed})
        out = m.demarshal(CDRDecoder(enc.getvalue()), in_ctx)
        assert out.buffer is landed  # zero ORB copies: same storage
        assert out.tobytes() == data

    def test_missing_deposit_is_marshal_error(self):
        reg = DepositRegistry()
        ctx = MarshalContext(registry=reg)
        m = get_marshaller(TC_SEQ_ZC_OCTET)
        enc = CDREncoder()
        m.marshal(enc, ZCOctetSequence.from_data(b"x"), ctx)
        with pytest.raises(MarshalError, match="never landed"):
            m.demarshal(CDRDecoder(enc.getvalue()), MarshalContext())

    def test_bad_marker_rejected(self):
        enc = CDREncoder()
        enc.put_ulong(0xDEAD)
        with pytest.raises(MarshalError, match="marker"):
            get_marshaller(TC_SEQ_ZC_OCTET).demarshal(
                CDRDecoder(enc.getvalue()))

    def test_accepts_plain_bytes(self):
        out = round_trip(TC_SEQ_ZC_OCTET, b"plain bytes")
        assert out.tobytes() == b"plain bytes"


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=30000), st.booleans())
def test_octet_stream_round_trip_property(data, zero_copy):
    """Property: any payload survives either octet-stream type."""
    tc = TC_SEQ_ZC_OCTET if zero_copy else TC_SEQ_OCTET
    out = round_trip(tc, data)
    assert out.tobytes() == data


@given(st.lists(st.tuples(st.text(
    alphabet=st.characters(codec="utf-8"), max_size=16),
    st.integers(-2**31, 2**31 - 1)), max_size=8))
def test_struct_sequence_round_trip_property(pairs):
    """Property: sequence<struct{string,long}> round-trips exactly."""
    tc = sequence_tc(struct_tc(
        "KV", [("k", TC_STRING), ("v", TC_LONG)],
        repo_id="IDL:test/KV_prop:1.0"))
    values = [StructValue(k=k, v=v) for k, v in pairs]
    out = round_trip(tc, values)
    assert [(o.k, o.v) for o in out] == pairs
