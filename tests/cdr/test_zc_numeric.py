"""Zero-copy numeric sequences — the §4.1 generalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import (CDRDecoder, CDREncoder, MarshalContext, MarshalError,
                       get_marshaller)
from repro.cdr.marshal import FLAG_PAYLOAD_LITTLE
from repro.cdr.typecode import (TC_DOUBLE, TC_LONG, TC_STRING, TCKind,
                                zc_sequence_tc)
from repro.core import BufferPool, DepositReceiver, DepositRegistry

DOUBLES = zc_sequence_tc(TC_DOUBLE)
LONGS = zc_sequence_tc(TC_LONG)


def land(tc, value, ctx_kwargs=None):
    """Full deposit round trip through registry/receiver by hand."""
    m = get_marshaller(tc)
    reg = DepositRegistry()
    out_ctx = MarshalContext(registry=reg)
    enc = CDREncoder()
    m.marshal(enc, value, out_ctx)
    recv = DepositReceiver(BufferPool())
    flags = {}
    for desc in out_ctx.descriptors:
        recv.prepare(desc)
        flags[desc.deposit_id] = desc.flags
    deposits = {}
    for (dep_id, view), (desc, buf) in zip(reg.drain(),
                                           recv.pending_in_order()):
        buf.view()[:] = view
        deposits[dep_id] = buf
    landed = dict(deposits)  # demarshal pops from `deposits`
    for dep_id in list(deposits):
        recv.complete(dep_id)
    in_ctx = MarshalContext(deposits=deposits, deposit_flags=flags,
                            **(ctx_kwargs or {}))
    return m.demarshal(CDRDecoder(enc.getvalue()), in_ctx), landed


class TestTypeCodes:
    def test_zc_sequence_tc_validates_element(self):
        with pytest.raises(ValueError):
            zc_sequence_tc(TC_STRING)

    def test_zc_numeric_is_zero_copy_kind(self):
        assert DOUBLES.kind is TCKind.tk_zc_sequence
        assert DOUBLES.content is TC_DOUBLE


class TestDepositPath:
    def test_doubles_round_trip_aliasing(self):
        x = np.linspace(-1, 1, 5000)
        out, deposits = land(DOUBLES, x)
        assert isinstance(out, np.ndarray)
        assert out.dtype == np.float64
        assert np.array_equal(out, x)
        # the array aliases the landed buffer: mutating one shows in
        # the other (zero middleware copies)
        (buf,) = deposits.values()
        buf.view()[0:8] = np.float64(42.0).tobytes()
        assert out[0] == 42.0

    def test_longs_round_trip(self):
        x = np.arange(-500, 500, dtype=np.int32)
        out, _ = land(LONGS, x)
        assert out.dtype.itemsize == 4
        assert np.array_equal(out, x)

    def test_descriptor_records_byte_order(self):
        m = get_marshaller(DOUBLES)
        reg = DepositRegistry()
        ctx = MarshalContext(registry=reg)
        m.marshal(CDREncoder(), np.ones(4), ctx)
        import sys
        expect = FLAG_PAYLOAD_LITTLE if sys.byteorder == "little" else 0
        assert ctx.descriptors[0].flags == expect

    def test_big_endian_payload_fixed_in_place(self):
        """A big-endian sender's deposit is byteswapped once on landing
        — receiver-makes-right without abandoning zero-copy."""
        x = np.linspace(0, 9, 100).astype(">f8")
        out, _ = land(DOUBLES, x)
        assert np.allclose(out, np.linspace(0, 9, 100))

    def test_wrong_dtype_rejected(self):
        m = get_marshaller(DOUBLES)
        with pytest.raises(MarshalError, match="dtype"):
            m.marshal(CDREncoder(), np.ones(4, dtype=np.float32),
                      MarshalContext(registry=DepositRegistry()))

    def test_multidimensional_rejected(self):
        m = get_marshaller(DOUBLES)
        with pytest.raises(MarshalError, match="1-D"):
            m.marshal(CDREncoder(), np.ones((2, 2)), MarshalContext())

    def test_non_array_rejected_for_numeric(self):
        m = get_marshaller(DOUBLES)
        with pytest.raises(MarshalError, match="numpy array"):
            m.marshal(CDREncoder(), b"bytes", MarshalContext())

    def test_non_contiguous_array_handled(self):
        x = np.arange(100, dtype=np.float64)[::2]
        out, _ = land(DOUBLES, x)
        assert np.array_equal(out, x)

    def test_bound_enforced(self):
        tc = zc_sequence_tc(TC_DOUBLE, bound=8)
        m = get_marshaller(tc)
        with pytest.raises(MarshalError, match="bound"):
            m.marshal(CDREncoder(), np.ones(9),
                      MarshalContext(registry=DepositRegistry()))


class TestInlineFallback:
    def test_inline_round_trip(self):
        m = get_marshaller(DOUBLES)
        enc = CDREncoder()
        x = np.linspace(0, 1, 64)
        m.marshal(enc, x, MarshalContext())  # no registry: inline
        out = m.demarshal(CDRDecoder(enc.getvalue()), MarshalContext())
        assert np.array_equal(out, x)

    def test_inline_converts_to_stream_order(self):
        m = get_marshaller(DOUBLES)
        enc = CDREncoder(little_endian=False)  # big-endian stream
        x = np.array([1.5, -2.25])
        m.marshal(enc, x, MarshalContext())
        dec = CDRDecoder(enc.getvalue(), little_endian=False)
        out = m.demarshal(dec, MarshalContext())
        assert np.array_equal(out, x)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=64), max_size=200),
       st.booleans())
def test_numeric_zc_round_trip_property(values, big_endian_payload):
    x = np.array(values, dtype=">f8" if big_endian_payload else "<f8")
    out, _ = land(DOUBLES, x) if len(values) else (x.astype("f8"), {})
    assert np.array_equal(out.astype("f8"), np.array(values, dtype="f8"))


class TestThroughORB:
    def test_idl_to_wire_round_trip(self):
        from repro.idl import compile_idl
        from repro.orb import ORB, ORBConfig
        api = compile_idl("""
        interface Math2 {
            sequence<zc_float> scale(in sequence<zc_float> v,
                                     in float factor);
        };
        """, module_name="_test_num_zc_idl")

        class Impl(api.Math2_skel):
            def scale(self, v, factor):
                return (v * factor).astype(np.float32)

        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(Impl())))
            x = np.arange(1000, dtype=np.float32)
            out = stub.scale(x, 3.0)
            assert out.dtype == np.float32
            assert np.allclose(out, x * 3)
        finally:
            client.shutdown()
            server.shutdown()
