"""``any`` and TypeCode-marshaling tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import (TC_ANY, Any, CDRDecoder, CDREncoder, CDRError,
                       MarshalError, decode_typecode, encode_typecode,
                       get_marshaller)
from repro.cdr.typecode import (TC_BOOLEAN, TC_DOUBLE, TC_LONG, TC_OCTET,
                                TC_STRING, TypeCode, array_tc, enum_tc,
                                exception_tc, objref_tc, sequence_tc,
                                string_tc, struct_tc, union_tc,
                                zc_octet_sequence_tc, zc_sequence_tc)


def tc_round_trip(tc, little=True):
    enc = CDREncoder(little_endian=little)
    encode_typecode(enc, tc)
    return decode_typecode(CDRDecoder(enc.getvalue(),
                                      little_endian=little))


class TestTypeCodeMarshaling:
    @pytest.mark.parametrize("tc", [
        TC_LONG, TC_OCTET, TC_BOOLEAN, TC_DOUBLE, TC_ANY,
        string_tc(), string_tc(32),
        sequence_tc(TC_LONG), sequence_tc(TC_STRING, 8),
        sequence_tc(sequence_tc(TC_DOUBLE)),
        array_tc(TC_LONG, 4), array_tc(array_tc(TC_OCTET, 2), 3),
        zc_octet_sequence_tc(), zc_sequence_tc(TC_DOUBLE),
        objref_tc("IDL:X:1.0", "X"),
        struct_tc("P", [("x", TC_DOUBLE), ("y", TC_LONG)],
                  repo_id="IDL:P:1.0"),
        struct_tc("Nest", [("inner", struct_tc(
            "Q", [("a", TC_LONG)], repo_id="IDL:Q:1.0"))],
            repo_id="IDL:Nest:1.0"),
        enum_tc("E", ["a", "b", "c"], repo_id="IDL:E:1.0"),
        exception_tc("Oops", [("why", TC_STRING)], repo_id="IDL:Oops:1.0"),
        union_tc("U", TC_LONG, [(1, "i", TC_LONG), (None, "s", TC_STRING)],
                 repo_id="IDL:U:1.0"),
    ])
    def test_round_trip(self, tc):
        assert tc_round_trip(tc, True) == tc
        assert tc_round_trip(tc, False) == tc

    def test_unknown_kind_rejected(self):
        enc = CDREncoder()
        enc.put_ulong(9999)
        with pytest.raises(CDRError, match="unknown TypeCode kind"):
            decode_typecode(CDRDecoder(enc.getvalue()))


# recursive strategy: random (nested) TypeCodes
_leaf = st.sampled_from([TC_LONG, TC_DOUBLE, TC_OCTET, TC_BOOLEAN,
                         string_tc(), TC_STRING])
_ids = st.integers(0, 10**6)


def _compound(children):
    return st.one_of(
        st.tuples(children, st.integers(0, 16)).map(
            lambda t: sequence_tc(*t)),
        st.tuples(children, st.integers(1, 8)).map(
            lambda t: array_tc(*t)),
        st.tuples(_ids, st.lists(st.tuples(
            st.sampled_from(["a", "b", "c"]), children),
            min_size=1, max_size=3, unique_by=lambda kv: kv[0])).map(
            lambda t: struct_tc(f"S{t[0]}",
                                t[1], repo_id=f"IDL:S{t[0]}:1.0")),
    )


_typecodes = st.recursive(_leaf, _compound, max_leaves=8)


@settings(max_examples=60, deadline=None)
@given(_typecodes, st.booleans())
def test_typecode_round_trip_property(tc, little):
    assert tc_round_trip(tc, little) == tc


class TestAnyValues:
    def _rt(self, any_value):
        m = get_marshaller(TC_ANY)
        enc = CDREncoder()
        m.marshal(enc, any_value)
        return m.demarshal(CDRDecoder(enc.getvalue()))

    def test_primitive_any(self):
        out = self._rt(Any(TC_LONG, -77))
        assert out.tc == TC_LONG
        assert out.value == -77

    def test_string_any(self):
        assert self._rt(Any(TC_STRING, "boxed")).value == "boxed"

    def test_sequence_any(self):
        out = self._rt(Any(sequence_tc(TC_DOUBLE), [1.0, 2.5]))
        assert out.value == [1.0, 2.5]

    def test_struct_any_reconstructs(self):
        tc = struct_tc("AP", [("x", TC_LONG)], repo_id="IDL:AP_any:1.0")
        out = self._rt(Any(tc, {"x": 9}))
        assert out.value.x == 9

    def test_zc_sequence_inside_any_goes_inline(self):
        """Self-contained encoding: no deposit even with a registry."""
        from repro.cdr import MarshalContext
        from repro.core import DepositRegistry, ZCOctetSequence
        m = get_marshaller(TC_ANY)
        reg = DepositRegistry()
        ctx = MarshalContext(registry=reg)
        enc = CDREncoder()
        m.marshal(enc, Any(zc_octet_sequence_tc(),
                           ZCOctetSequence.from_data(b"inline!")), ctx)
        assert len(reg) == 0  # nothing registered: inline
        out = m.demarshal(CDRDecoder(enc.getvalue()))
        assert out.value.tobytes() == b"inline!"

    def test_non_any_value_rejected(self):
        with pytest.raises(MarshalError, match="cdr.Any"):
            self._rt("bare string")

    def test_any_through_orb(self, test_api):
        from repro.idl import compile_idl
        from repro.orb import ORB, ORBConfig
        api = compile_idl(
            "interface Box2 { any bounce(in any v); };",
            module_name="_test_any_orb")

        class Impl(api.Box2_skel):
            def bounce(self, v):
                return v

        server = ORB(ORBConfig(scheme="loop"))
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        try:
            stub = client.string_to_object(
                server.object_to_string(server.activate(Impl())))
            out = stub.bounce(Any(sequence_tc(TC_LONG), [5, 6]))
            assert out.value == [5, 6]
        finally:
            client.shutdown()
            server.shutdown()
