"""CDR encoder/decoder unit and property tests."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cdr import CDRDecoder, CDREncoder, CDRError


class TestAlignment:
    def test_primitives_align_naturally(self):
        enc = CDREncoder()
        enc.put_octet(1)
        enc.put_long(2)  # needs 3 pad bytes
        data = enc.getvalue()
        assert len(data) == 8
        assert data[1:4] == b"\x00\x00\x00"

    def test_double_aligns_to_eight(self):
        enc = CDREncoder()
        enc.put_octet(1)
        enc.put_double(2.0)
        assert len(enc) == 16

    def test_offset_shifts_alignment(self):
        enc = CDREncoder(offset=2)
        enc.put_long(7)  # 2 -> pad 2 -> write 4
        assert len(enc) == 6

    def test_no_padding_when_aligned(self):
        enc = CDREncoder()
        enc.put_long(1)
        enc.put_long(2)
        assert len(enc) == 8

    def test_decoder_mirrors_encoder_alignment(self):
        enc = CDREncoder()
        enc.put_octet(9)
        enc.put_short(-3)
        enc.put_double(1.5)
        enc.put_octet(255)
        enc.put_ulonglong(2**60)
        dec = CDRDecoder(enc.getvalue())
        assert dec.get_octet() == 9
        assert dec.get_short() == -3
        assert dec.get_double() == 1.5
        assert dec.get_octet() == 255
        assert dec.get_ulonglong() == 2**60
        assert dec.remaining == 0


class TestPrimitives:
    def test_boolean(self):
        enc = CDREncoder()
        enc.put_boolean(True)
        enc.put_boolean(False)
        dec = CDRDecoder(enc.getvalue())
        assert dec.get_boolean() is True
        assert dec.get_boolean() is False

    def test_char_round_trip(self):
        enc = CDREncoder()
        enc.put_char("A")
        assert CDRDecoder(enc.getvalue()).get_char() == "A"

    def test_char_must_be_single_byte(self):
        enc = CDREncoder()
        with pytest.raises(ValueError):
            enc.put_char("ab")
        with pytest.raises(ValueError):
            enc.put_char("€")

    def test_signed_ranges(self):
        enc = CDREncoder()
        enc.put_short(-32768)
        enc.put_long(-2**31)
        enc.put_longlong(-2**63)
        dec = CDRDecoder(enc.getvalue())
        assert dec.get_short() == -32768
        assert dec.get_long() == -2**31
        assert dec.get_longlong() == -2**63

    def test_overflow_rejected(self):
        enc = CDREncoder()
        with pytest.raises(struct.error):
            enc.put_ushort(70000)


class TestByteOrder:
    def test_big_endian_wire_format(self):
        enc = CDREncoder(little_endian=False)
        enc.put_ulong(0x01020304)
        assert enc.getvalue() == b"\x01\x02\x03\x04"

    def test_little_endian_wire_format(self):
        enc = CDREncoder(little_endian=True)
        enc.put_ulong(0x01020304)
        assert enc.getvalue() == b"\x04\x03\x02\x01"

    def test_receiver_makes_right(self):
        """Both byte orders decode correctly when declared (§2.1)."""
        for little in (True, False):
            enc = CDREncoder(little_endian=little)
            enc.put_long(-123456)
            enc.put_double(3.14159)
            dec = CDRDecoder(enc.getvalue(), little_endian=little)
            assert dec.get_long() == -123456
            assert dec.get_double() == 3.14159


class TestStrings:
    def test_string_nul_terminated_with_length(self):
        enc = CDREncoder()
        enc.put_string("hi")
        data = enc.getvalue()
        assert data[:4] == struct.pack("=I" if enc.little_endian
                                       else ">I", 3)
        assert data[4:7] == b"hi\x00"

    def test_empty_string(self):
        enc = CDREncoder()
        enc.put_string("")
        assert CDRDecoder(enc.getvalue()).get_string() == ""

    def test_utf8_payload(self):
        enc = CDREncoder()
        enc.put_string("héllo wörld")
        assert CDRDecoder(enc.getvalue()).get_string() == "héllo wörld"

    def test_missing_nul_rejected(self):
        enc = CDREncoder()
        enc.put_ulong(2)
        enc.write_raw(b"ab")  # no NUL
        with pytest.raises(CDRError):
            CDRDecoder(enc.getvalue()).get_string()

    def test_zero_length_rejected(self):
        enc = CDREncoder()
        enc.put_ulong(0)
        with pytest.raises(CDRError):
            CDRDecoder(enc.getvalue()).get_string()


class TestOctetsAndViews:
    def test_put_get_octets(self):
        enc = CDREncoder()
        enc.put_octets(b"abc123")
        assert CDRDecoder(enc.getvalue()).get_octets() == b"abc123"

    def test_get_view_is_zero_copy(self):
        storage = bytearray()
        enc = CDREncoder()
        enc.put_ulong(4)
        enc.write_raw(b"WXYZ")
        backing = bytearray(enc.getvalue())
        dec = CDRDecoder(backing)
        n = dec.get_ulong()
        view = dec.get_view(n)
        backing[-1] = ord("!")  # mutate underlying storage
        assert view.tobytes() == b"WXY!"  # view aliases, no copy

    def test_underrun_reported_with_position(self):
        dec = CDRDecoder(b"\x01")
        dec.get_octet()
        with pytest.raises(CDRError, match="underrun"):
            dec.get_ulong()


class TestEncapsulation:
    def test_nested_encapsulation_round_trip(self):
        inner = CDREncoder(little_endian=True)
        inner.put_string("nested")
        inner.put_ulong(42)
        outer = CDREncoder(little_endian=False)
        outer.put_octet(7)
        outer.put_encapsulation(inner)
        dec = CDRDecoder(outer.getvalue(), little_endian=False)
        assert dec.get_octet() == 7
        sub = dec.get_encapsulation()
        assert sub.little_endian is True
        assert sub.get_string() == "nested"
        assert sub.get_ulong() == 42

    def test_empty_encapsulation_rejected(self):
        enc = CDREncoder()
        enc.put_ulong(0)
        with pytest.raises(CDRError):
            CDRDecoder(enc.getvalue()).get_encapsulation()


class TestTellSeek:
    def test_seek_restores_position(self):
        enc = CDREncoder()
        enc.put_string("repeat")
        dec = CDRDecoder(enc.getvalue())
        mark = dec.tell()
        assert dec.get_string() == "repeat"
        dec.seek(mark)
        assert dec.get_string() == "repeat"

    def test_seek_out_of_range(self):
        dec = CDRDecoder(b"abc")
        with pytest.raises(CDRError):
            dec.seek(10)


_primitive_cases = st.one_of(
    st.tuples(st.just("octet"), st.integers(0, 255)),
    st.tuples(st.just("boolean"), st.booleans()),
    st.tuples(st.just("short"), st.integers(-2**15, 2**15 - 1)),
    st.tuples(st.just("ushort"), st.integers(0, 2**16 - 1)),
    st.tuples(st.just("long"), st.integers(-2**31, 2**31 - 1)),
    st.tuples(st.just("ulong"), st.integers(0, 2**32 - 1)),
    st.tuples(st.just("longlong"), st.integers(-2**63, 2**63 - 1)),
    st.tuples(st.just("ulonglong"), st.integers(0, 2**64 - 1)),
    st.tuples(st.just("double"), st.floats(allow_nan=False,
                                           allow_infinity=False)),
    st.tuples(st.just("string"), st.text(max_size=64)),
)


@given(st.lists(_primitive_cases, max_size=25), st.booleans())
def test_mixed_stream_round_trip(items, little):
    """Property: any interleaving of primitives round-trips exactly,
    in either byte order (the CDR core invariant)."""
    enc = CDREncoder(little_endian=little)
    for kind, value in items:
        getattr(enc, f"put_{kind}")(value)
    dec = CDRDecoder(enc.getvalue(), little_endian=little)
    for kind, value in items:
        got = getattr(dec, f"get_{kind}")()
        assert got == value
    assert dec.remaining == 0
