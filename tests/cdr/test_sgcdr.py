"""Scatter/gather CDR: chunk plans, batch numeric runs, byte identity.

The PR 6 contract in three properties:

* the chunk-plan encoder concatenates to *exactly* the bytes the old
  blob encoder produced, for arbitrary TypeCode forests and both
  stream endiannesses;
* the decoder's batched ``get_array`` path returns the same values as
  the per-element loop, again on both endiannesses;
* large bytes-like runs are *referenced* by the plan (shared memory,
  no copy), small ones are copied into sealed chunks.
"""

import struct
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdr import CDRDecoder, CDREncoder, MarshalContext, get_marshaller
from repro.cdr.encoder import BATCH_FORMATS, SG_MIN_CHUNK, _STD_SIZES
from repro.cdr.marshal import StructValue
from repro.cdr.typecode import (TC_BOOLEAN, TC_DOUBLE, TC_FLOAT, TC_LONG,
                                TC_LONGLONG, TC_OCTET, TC_SHORT, TC_STRING,
                                TC_ULONG, TC_ULONGLONG, TC_USHORT,
                                sequence_tc, struct_tc, zc_octet_sequence_tc)
from repro.core import OctetSequence, ZCOctetSequence

_FMT_TC = {"h": TC_SHORT, "H": TC_USHORT, "i": TC_LONG, "I": TC_ULONG,
           "q": TC_LONGLONG, "Q": TC_ULONGLONG, "f": TC_FLOAT,
           "d": TC_DOUBLE}
_FMT_VALUES = {
    "h": st.integers(-2 ** 15, 2 ** 15 - 1),
    "H": st.integers(0, 2 ** 16 - 1),
    "i": st.integers(-2 ** 31, 2 ** 31 - 1),
    "I": st.integers(0, 2 ** 32 - 1),
    "q": st.integers(-2 ** 63, 2 ** 63 - 1),
    "Q": st.integers(0, 2 ** 64 - 1),
    "f": st.floats(allow_nan=False, width=32),
    "d": st.floats(allow_nan=False, width=64),
}
_PRIMS = [
    (TC_OCTET, st.integers(0, 255)),
    (TC_BOOLEAN, st.booleans()),
    (TC_STRING, st.text(max_size=16)),
] + [(_FMT_TC[f], _FMT_VALUES[f]) for f in sorted(_FMT_TC)]


@st.composite
def _node(draw, depth=2):
    """One (TypeCode, value) pair; recurses into structs/sequences."""
    kind = draw(st.integers(0, 3 if depth > 0 else 0))
    if kind == 0:
        tc, values = draw(st.sampled_from(_PRIMS))
        return tc, draw(values)
    if kind == 1:  # numeric sequence: the batch encode/decode path
        fmt = draw(st.sampled_from(sorted(_FMT_VALUES)))
        vals = draw(st.lists(_FMT_VALUES[fmt], max_size=48))
        return sequence_tc(_FMT_TC[fmt]), vals
    if kind == 2:  # struct mixing nested nodes
        subs = [draw(_node(depth=depth - 1))
                for _ in range(draw(st.integers(1, 3)))]
        members = [(f"m{i}", tc) for i, (tc, _) in enumerate(subs)]
        value = StructValue(**{f"m{i}": v for i, (_, v) in enumerate(subs)})
        return struct_tc("S", members), value
    return sequence_tc(TC_STRING), draw(st.lists(st.text(max_size=8),
                                                 max_size=5))


def _encode_forest(forest, little_endian, sg_min_chunk):
    enc = CDREncoder(little_endian=little_endian,
                     sg_min_chunk=sg_min_chunk)
    for tc, value in forest:
        get_marshaller(tc).marshal(enc, value)
    return enc


class TestChunkedEqualsBlob:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_node(), min_size=1, max_size=6), st.booleans())
    def test_forest_byte_identity(self, forest, little_endian):
        """Aggressively chunked output (references from 16 bytes up)
        concatenates to the blob encoder's exact bytes."""
        blob = _encode_forest(forest, little_endian, 1 << 62)
        sg = _encode_forest(forest, little_endian, 16)
        blob_bytes = blob.getvalue()
        assert sg.getvalue() == blob_bytes
        assert b"".join(bytes(c) for c in sg.chunks()) == blob_bytes
        assert sg.nbytes == len(blob_bytes)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_node(), min_size=1, max_size=6), st.booleans())
    def test_forest_round_trips(self, forest, little_endian):
        enc = _encode_forest(forest, little_endian, 16)
        dec = CDRDecoder(enc.getvalue(), little_endian=little_endian)
        for tc, value in forest:
            assert get_marshaller(tc).demarshal(dec) == value

    def test_large_numeric_run_is_referenced(self):
        values = list(range(4096))  # 16 KiB as "i": far above SG_MIN_CHUNK
        enc = CDREncoder()
        get_marshaller(sequence_tc(TC_LONG)).marshal(enc, values)
        assert enc.referenced_nbytes >= 4096 * 4
        assert enc.getvalue() == _encode_forest(
            [(sequence_tc(TC_LONG), values)], enc.little_endian,
            1 << 62).getvalue()

    def test_small_runs_are_copied_not_referenced(self):
        enc = CDREncoder()
        get_marshaller(sequence_tc(TC_LONG)).marshal(enc, [1, 2, 3])
        assert enc.referenced_nbytes == 0
        assert len(enc.chunks()) == 1  # one growing tail, nothing sealed


class TestBatchDecode:
    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(sorted(_FMT_VALUES)), st.data(), st.booleans())
    def test_cast_path_equals_element_loop(self, fmt, data, little_endian):
        """``get_array`` and the per-element loop agree for every batch
        format on both stream endiannesses."""
        values = data.draw(st.lists(_FMT_VALUES[fmt], min_size=1,
                                    max_size=64))
        m = get_marshaller(sequence_tc(_FMT_TC[fmt]))
        enc = CDREncoder(little_endian=little_endian)
        m.marshal(enc, values)
        batch = m.demarshal(
            CDRDecoder(enc.getvalue(), little_endian=little_endian))
        loop = m.demarshal(
            CDRDecoder(enc.getvalue(), little_endian=little_endian),
            MarshalContext(generic_loop=True))
        assert batch == loop == values

    @settings(max_examples=40, deadline=None)
    @given(st.sampled_from(sorted(_FMT_VALUES)), st.data(), st.booleans())
    def test_generic_loop_encode_matches_batch_encode(self, fmt, data,
                                                      little_endian):
        values = data.draw(st.lists(_FMT_VALUES[fmt], max_size=64))
        m = get_marshaller(sequence_tc(_FMT_TC[fmt]))
        batch = CDREncoder(little_endian=little_endian)
        m.marshal(batch, values)
        loop = CDREncoder(little_endian=little_endian)
        m.marshal(loop, values, MarshalContext(generic_loop=True))
        assert batch.getvalue() == loop.getvalue()

    def test_get_array_rejects_non_batch_format(self):
        dec = CDRDecoder(b"\0" * 16)
        with pytest.raises(LookupError):
            dec.get_array("b", 4)

    def test_get_array_byteswaps_foreign_order(self):
        values = [0, 1, -1, 2 ** 30]
        for little in (True, False):
            payload = struct.pack(("<" if little else ">") + "4i", *values)
            dec = CDRDecoder(payload, little_endian=little)
            assert dec.get_array("i", 4) == values

    def test_batch_formats_have_standard_strides(self):
        for fmt in BATCH_FORMATS:
            assert struct.calcsize(fmt) == _STD_SIZES[fmt]
            assert array(fmt).itemsize == _STD_SIZES[fmt]


class TestNumericFallbacks:
    def test_bool_element_falls_back_to_element_semantics(self):
        """A bool is a valid int element; batch and loop must agree."""
        m = get_marshaller(sequence_tc(TC_LONG))
        a, b = CDREncoder(), CDREncoder()
        m.marshal(a, [True, False, 3])
        m.marshal(b, [1, 0, 3])
        assert a.getvalue() == b.getvalue()

    def test_overflow_error_still_raised(self):
        from repro.cdr.marshal import MarshalError
        m = get_marshaller(sequence_tc(TC_LONG))
        with pytest.raises((MarshalError, struct.error, OverflowError)):
            m.marshal(CDREncoder(), [2 ** 40])


class TestOctetPayloadChunks:
    def test_zc_inline_payload_is_referenced_and_shared(self):
        """The inline zero-copy octet path hands the application buffer
        to the plan: mutating the source is visible in the chunk."""
        seq = ZCOctetSequence.from_data(bytes(8 * 1024))
        enc = CDREncoder()
        get_marshaller(zc_octet_sequence_tc()).marshal(enc, seq)
        assert enc.referenced_nbytes >= 8 * 1024
        big = [c for c in enc.chunks()
               if isinstance(c, memoryview) and c.nbytes == 8 * 1024]
        assert len(big) == 1
        seq.view()[0] = 0xAB
        assert big[0][0] == 0xAB  # same memory, not a copy

    def test_std_octet_payload_still_copies(self):
        """The standard sequence<octet> is the paper's copying
        baseline: its payload never lands in the plan by reference."""
        from repro.cdr.typecode import TC_SEQ_OCTET
        enc = CDREncoder()
        get_marshaller(TC_SEQ_OCTET).marshal(
            enc, OctetSequence(bytes(8 * 1024)))
        assert enc.referenced_nbytes == 0

    def test_sg_min_chunk_respected(self):
        data = bytes(SG_MIN_CHUNK - 1)
        enc = CDREncoder()
        enc.put_octets(data)  # below threshold: copied
        assert enc.referenced_nbytes == 0
        enc2 = CDREncoder()
        enc2.put_octets_view(memoryview(bytes(SG_MIN_CHUNK)))
        assert enc2.referenced_nbytes == SG_MIN_CHUNK
