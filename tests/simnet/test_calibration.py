"""Calibration anchors: the simulated testbed must land on the paper's
published numbers for the *unoptimized* system, and the optimized
curves must then emerge (DESIGN.md §2)."""

import pytest

from repro.simnet import (GIGABIT_ETHERNET, MODERN_NODE, PENTIUM_II_400,
                          OrbCostConfig, measure_corba_request,
                          measure_stream, standard_stack, zero_copy_stack)

MB16 = 16 * 1024 * 1024


def mbit(nbytes, stack=None, corba=None, profile=PENTIUM_II_400):
    if corba is None:
        return measure_stream(profile, GIGABIT_ETHERNET, nbytes,
                              stack).mbit_per_s
    return measure_corba_request(profile, GIGABIT_ETHERNET, nbytes,
                                 stack, corba).mbit_per_s


class TestAnchors:
    """The two calibration targets from §5.2."""

    def test_raw_tcp_standard_stack_saturates_near_330(self):
        bw = mbit(MB16, standard_stack())
        assert bw == pytest.approx(330, rel=0.10)

    def test_corba_standard_saturates_near_50(self):
        bw = mbit(MB16, standard_stack(), OrbCostConfig(zero_copy=False))
        assert bw == pytest.approx(50, rel=0.10)


class TestEmergentResults:
    """Numbers the paper reports that must NOT be fitted, only emerge."""

    def test_zero_copy_stack_reaches_550(self):
        bw = mbit(MB16, zero_copy_stack())
        assert bw == pytest.approx(550, rel=0.10)

    def test_zc_orb_on_standard_stack_matches_raw_tcp(self):
        """§5.3: 'the performance of the optimized zero-copy ORB nearly
        matches the raw TCP-socket version of TTCP'."""
        raw = mbit(MB16, standard_stack())
        zc_orb = mbit(MB16, standard_stack(), OrbCostConfig(zero_copy=True))
        assert zc_orb == pytest.approx(raw, rel=0.05)

    def test_full_zero_copy_reaches_550(self):
        bw = mbit(MB16, zero_copy_stack(), OrbCostConfig(zero_copy=True))
        assert bw == pytest.approx(550, rel=0.10)

    def test_tenfold_improvement(self):
        """§6: '550 MBit/s constitute a performance improvement of
        tenfold over the 50 MBit/s'."""
        slow = mbit(MB16, standard_stack(), OrbCostConfig(zero_copy=False))
        fast = mbit(MB16, zero_copy_stack(), OrbCostConfig(zero_copy=True))
        assert 8.0 <= fast / slow <= 13.0

    def test_modern_node_full_gige_at_30_percent_cpu(self):
        """§6: newer machines reach full GigE at ~30% CPU with the
        zero-copy stack versus ~100% with the original stack."""
        std = measure_stream(MODERN_NODE, GIGABIT_ETHERNET, MB16,
                             standard_stack(app_touch=True))
        zc = measure_stream(MODERN_NODE, GIGABIT_ETHERNET, MB16,
                            zero_copy_stack(app_touch=True))
        assert std.mbit_per_s == pytest.approx(940, rel=0.05)
        assert zc.mbit_per_s == pytest.approx(940, rel=0.05)
        assert std.receiver_util > 0.85
        assert 0.2 <= zc.receiver_util <= 0.4


class TestCurveShapes:
    def test_throughput_monotone_in_block_size(self):
        sizes = [4096, 65536, 1 << 20, MB16]
        for stack in (standard_stack(), zero_copy_stack()):
            bws = [mbit(s, stack) for s in sizes]
            assert bws == sorted(bws)

    def test_corba_gap_grows_with_size(self):
        """CORBA overhead is per-byte, so the raw/CORBA ratio persists
        at large sizes (Fig. 5's diverging curves)."""
        ratio_small = (mbit(4096, standard_stack())
                       / mbit(4096, standard_stack(),
                              OrbCostConfig(zero_copy=False)))
        ratio_large = (mbit(MB16, standard_stack())
                       / mbit(MB16, standard_stack(),
                              OrbCostConfig(zero_copy=False)))
        assert ratio_large > ratio_small
        assert ratio_large > 5

    def test_zero_copy_wins_at_every_size(self):
        for size in (4096, 65536, 1 << 20, MB16):
            assert mbit(size, zero_copy_stack()) > mbit(
                size, standard_stack())


class TestCopyAccounting:
    def test_standard_stack_copy_counts(self):
        r = measure_stream(PENTIUM_II_400, GIGABIT_ETHERNET, 1 << 20,
                           standard_stack())
        # sender: one user->kernel copy; receiver: defrag + kernel->user
        assert r.sender_copies == pytest.approx(1.0)
        assert r.receiver_copies == pytest.approx(2.0)

    def test_zero_copy_stack_copy_counts(self):
        r = measure_stream(PENTIUM_II_400, GIGABIT_ETHERNET, 1 << 20,
                           zero_copy_stack())
        assert r.sender_copies == 0.0
        # only the expected 5% speculation fallback
        assert r.receiver_copies == pytest.approx(0.05, abs=0.01)

    def test_perfect_speculation_means_zero_copies(self):
        r = measure_stream(PENTIUM_II_400, GIGABIT_ETHERNET, 1 << 20,
                           zero_copy_stack(defrag_success=1.0))
        assert r.sender_copies == 0.0
        assert r.receiver_copies == 0.0

    def test_standard_corba_adds_marshal_copies(self):
        r = measure_corba_request(PENTIUM_II_400, GIGABIT_ETHERNET,
                                  1 << 20, standard_stack(),
                                  OrbCostConfig(zero_copy=False))
        # marshal + user->kernel at sender; defrag + kernel->user +
        # demarshal at receiver
        assert r.sender_copies == pytest.approx(2.0, abs=0.01)
        assert r.receiver_copies == pytest.approx(3.0, abs=0.01)

    def test_zc_corba_zc_stack_is_strict_zero_copy(self):
        """§1.1: 'zero data copies through all the involved data path
        layers'."""
        r = measure_corba_request(PENTIUM_II_400, GIGABIT_ETHERNET,
                                  1 << 20, zero_copy_stack(defrag_success=1.0),
                                  OrbCostConfig(zero_copy=True))
        assert r.sender_copies == 0.0
        assert r.receiver_copies == 0.0
