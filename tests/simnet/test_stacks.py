"""Unit tests for stack cost models, profiles and the memory ledger."""

import pytest

from repro.simnet import (GIGABIT_ETHERNET, PAGE_SIZE, PENTIUM_II_400,
                          CopyKind, MemorySystem, SimNode, Simulator,
                          standard_stack, zero_copy_stack)
from repro.simnet.profiles import FAST_ETHERNET


class TestLinkProfile:
    def test_frames_for(self):
        link = GIGABIT_ETHERNET
        assert link.frames_for(0) == 0
        assert link.frames_for(1) == 1
        assert link.frames_for(1500) == 1
        assert link.frames_for(1501) == 2
        assert link.frames_for(4096) == 3

    def test_wire_time_includes_framing(self):
        link = GIGABIT_ETHERNET
        raw = int(1500 * link.ns_per_wire_byte)
        assert link.wire_time_ns(1500) > raw

    def test_gigabit_is_8ns_per_byte(self):
        assert GIGABIT_ETHERNET.ns_per_wire_byte == pytest.approx(8.0)

    def test_fast_ethernet_ten_times_slower(self):
        assert FAST_ETHERNET.ns_per_wire_byte == pytest.approx(
            10 * GIGABIT_ETHERNET.ns_per_wire_byte)


class TestMemorySystem:
    def test_copy_kinds_classified(self):
        assert CopyKind.USER_KERNEL.is_copy
        assert CopyKind.MARSHAL.is_copy
        assert CopyKind.FALLBACK.is_copy
        assert not CopyKind.CHECKSUM.is_copy
        assert not CopyKind.DMA.is_copy
        assert not CopyKind.APP_TOUCH.is_copy

    def test_touch_accumulates(self):
        mem = MemorySystem(PENTIUM_II_400)
        c1 = mem.touch(CopyKind.USER_KERNEL, 1000)
        c2 = mem.touch(CopyKind.USER_KERNEL, 1000)
        assert c1 == c2 == 10_000  # 10 ns/B
        assert mem.bytes_by_kind[CopyKind.USER_KERNEL] == 2000
        assert mem.copied_bytes == 2000
        assert mem.copies_of(1000) == 2.0

    def test_marshal_loop_slower_than_memcpy(self):
        mem = MemorySystem(PENTIUM_II_400)
        loop = mem.cost_ns(CopyKind.MARSHAL, 4096)
        bulk = mem.cost_ns(CopyKind.MARSHAL_BULK, 4096)
        plain = mem.cost_ns(CopyKind.USER_KERNEL, 4096)
        assert loop > 3 * plain  # §5.2's unoptimized generic loop
        assert bulk < loop

    def test_dma_is_cpu_free(self):
        mem = MemorySystem(PENTIUM_II_400)
        assert mem.touch(CopyKind.DMA, 1 << 20) == 0
        assert mem.copied_bytes == 0

    def test_negative_bytes_rejected(self):
        mem = MemorySystem(PENTIUM_II_400)
        with pytest.raises(ValueError):
            mem.touch(CopyKind.CHECKSUM, -1)

    def test_reset(self):
        mem = MemorySystem(PENTIUM_II_400)
        mem.touch(CopyKind.MARSHAL, 100)
        mem.reset()
        assert mem.copied_bytes == 0
        assert mem.breakdown_ns() == {}


class TestStackCosts:
    def _node(self):
        return SimNode(Simulator(), PENTIUM_II_400, "n")

    def test_standard_rx_costlier_than_tx(self):
        tx_node, rx_node = self._node(), self._node()
        stack = standard_stack()
        tx = stack.tx_chunk_cost_ns(tx_node, PAGE_SIZE, GIGABIT_ETHERNET)
        rx = stack.rx_chunk_cost_ns(rx_node, PAGE_SIZE, GIGABIT_ETHERNET)
        assert rx > tx  # receiver has the extra defragmentation copy

    def test_zero_copy_rx_much_cheaper(self):
        std_node, zc_node = self._node(), self._node()
        std = standard_stack().rx_chunk_cost_ns(std_node, PAGE_SIZE,
                                                GIGABIT_ETHERNET)
        zc = zero_copy_stack().rx_chunk_cost_ns(zc_node, PAGE_SIZE,
                                                GIGABIT_ETHERNET)
        assert zc < std / 3

    def test_defrag_success_scales_fallback(self):
        full = zero_copy_stack(defrag_success=1.0)
        none = zero_copy_stack(defrag_success=0.0)
        n_full, n_none = self._node(), self._node()
        c_full = full.rx_chunk_cost_ns(n_full, PAGE_SIZE, GIGABIT_ETHERNET)
        c_none = none.rx_chunk_cost_ns(n_none, PAGE_SIZE, GIGABIT_ETHERNET)
        memcpy = int(PAGE_SIZE * PENTIUM_II_400.memcpy_ns_per_byte)
        assert c_none - c_full == pytest.approx(memcpy, rel=0.02)
        assert n_full.memory.copied_bytes == 0
        assert n_none.memory.copied_bytes == PAGE_SIZE

    def test_checksum_offload_removes_pass(self):
        plain = standard_stack()
        offl = standard_stack(checksum_offload=True)
        n1, n2 = self._node(), self._node()
        diff = (plain.tx_chunk_cost_ns(n1, PAGE_SIZE, GIGABIT_ETHERNET)
                - offl.tx_chunk_cost_ns(n2, PAGE_SIZE, GIGABIT_ETHERNET))
        assert diff == int(PAGE_SIZE * PENTIUM_II_400.checksum_ns_per_byte)

    def test_with_returns_modified_copy(self):
        base = zero_copy_stack()
        tweaked = base.with_(defrag_success=0.5)
        assert tweaked.defrag_success == 0.5
        assert base.defrag_success == 0.95
        assert tweaked.kind is base.kind


class TestProfileScaling:
    def test_scaled_profile_divides_costs(self):
        fast = PENTIUM_II_400.scaled(2.0)
        assert fast.memcpy_ns_per_byte == pytest.approx(
            PENTIUM_II_400.memcpy_ns_per_byte / 2)
        assert fast.syscall_ns == PENTIUM_II_400.syscall_ns // 2
        assert fast.cpu_mhz == 800

    def test_scaled_keeps_pci(self):
        fast = PENTIUM_II_400.scaled(4.0)
        assert fast.pci_mb_per_s == PENTIUM_II_400.pci_mb_per_s
