"""Shared-resource contention in the simulated testbed.

The farm of §5.4 funnels every GOP through the master's link; these
tests check the DES actually arbitrates shared stages instead of
letting transfers overlap for free.
"""

import pytest

from repro.simnet import (GIGABIT_ETHERNET, PENTIUM_II_400, SimNode,
                          Simulator, StreamStep, standard_stack,
                          zero_copy_stack)
from repro.simnet.transfer import _stream_proc

MB = 1 << 20


def _run_streams(n_streams: int, nbytes: int, shared_link: bool = True):
    """n transfers from n senders to n receivers; optionally one link."""
    sim = Simulator()
    link_res = sim.resource(1, name="link")
    procs = []
    receivers = []
    for i in range(n_streams):
        tx = SimNode(sim, PENTIUM_II_400, f"tx{i}")
        rx = SimNode(sim, PENTIUM_II_400, f"rx{i}")
        receivers.append(rx)
        res = link_res if shared_link else sim.resource(1, name=f"link{i}")
        step = StreamStep(tx, rx, GIGABIT_ETHERNET, nbytes,
                          zero_copy_stack())
        procs.append(sim.process(_stream_proc(sim, step, res)))
    sim.run()
    return sim.now


class TestLinkContention:
    def test_two_streams_on_shared_link(self):
        one = _run_streams(1, MB)
        two_shared = _run_streams(2, MB, shared_link=True)
        two_private = _run_streams(2, MB, shared_link=False)
        # private links: no slowdown (different nodes, same wall time)
        assert two_private == pytest.approx(one, rel=0.02)
        # zc streams are PCI/CPU-bound per node at ~576 Mb/s each, so two
        # of them need ~1.15 Gb/s aggregate and the shared 1 Gb/s wire
        # becomes the bottleneck: visibly slower than one stream, but far
        # better than 2x (they interleave)
        assert two_shared > one * 1.1
        assert two_shared < one * 1.7

    def test_contention_scales_with_stream_count(self):
        times = [_run_streams(n, MB) for n in (1, 2, 4)]
        assert times == sorted(times)
        # four zc streams want ~2.3 Gb/s; the shared 1 Gb/s wire
        # serializes them to ~4 MB of wire time (~2.4x the PCI-bound
        # single-stream time)
        assert times[2] > times[0] * 2.2

    def test_standard_stack_streams_fit_the_wire(self):
        """Two standard-stack streams (~318 Mb/s each) fit under
        1 Gb/s: near-zero slowdown from sharing."""
        one = _run_std(1)
        two = _run_std(2)
        assert two == pytest.approx(one, rel=0.10)


def _run_std(n_streams: int):
    sim = Simulator()
    link_res = sim.resource(1, name="link")
    for i in range(n_streams):
        tx = SimNode(sim, PENTIUM_II_400, f"tx{i}")
        rx = SimNode(sim, PENTIUM_II_400, f"rx{i}")
        step = StreamStep(tx, rx, GIGABIT_ETHERNET, MB, standard_stack())
        sim.process(_stream_proc(sim, step, link_res))
    sim.run()
    return sim.now
