"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simnet.engine import Interrupted, SimulationError, Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(100)
        yield sim.timeout(50)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert sim.now == 150
    assert p.value == 150
    assert p.triggered


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        got = yield sim.timeout(10, value="hello")
        return got

    p = sim.process(proc())
    sim.run()
    assert p.value == "hello"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_two_processes_interleave():
    sim = Simulator()
    log = []

    def proc(name, delay):
        yield sim.timeout(delay)
        log.append((name, sim.now))

    sim.process(proc("a", 30))
    sim.process(proc("b", 10))
    sim.run()
    assert log == [("b", 10), ("a", 30)]


def test_process_join():
    sim = Simulator()

    def child():
        yield sim.timeout(25)
        return 42

    def parent():
        result = yield sim.process(child())
        return result + sim.now

    p = sim.process(parent())
    sim.run()
    assert p.value == 42 + 25


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def child(d):
        yield sim.timeout(d)
        return d

    def parent():
        results = yield sim.all_of([sim.process(child(d))
                                    for d in (5, 20, 10)])
        return results

    p = sim.process(parent())
    sim.run()
    assert p.value == [5, 20, 10]
    assert sim.now == 20


def test_all_of_empty():
    sim = Simulator()

    def parent():
        got = yield sim.all_of([])
        return got

    p = sim.process(parent())
    sim.run()
    assert p.value == []


def test_resource_serializes_holders():
    sim = Simulator()
    res = sim.resource(1)
    completions = []

    def user(name):
        req = res.request()
        yield req
        yield sim.timeout(100)
        res.release(req)
        completions.append((name, sim.now))

    for name in "abc":
        sim.process(user(name))
    sim.run()
    assert completions == [("a", 100), ("b", 200), ("c", 300)]
    assert res.busy_ns == 300
    assert res.utilization(300) == 1.0


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = sim.resource(2)

    def user():
        req = res.request()
        yield req
        yield sim.timeout(100)
        res.release(req)

    for _ in range(4):
        sim.process(user())
    sim.run()
    assert sim.now == 200  # two waves of two


def test_resource_fifo_order():
    sim = Simulator()
    res = sim.resource(1)
    order = []

    def user(i, hold):
        req = res.request()
        yield req
        order.append(i)
        yield sim.timeout(hold)
        res.release(req)

    for i in range(5):
        sim.process(user(i, 10))
    sim.run()
    assert order == list(range(5))


def test_release_unheld_raises():
    sim = Simulator()
    res = sim.resource(1)

    def proc():
        req = res.request()
        yield req
        res.release(req)
        res.release(req)

    p = sim.process(proc())
    sim.run()
    assert isinstance(p.value, SimulationError) or p.value is None


def test_resource_utilization_partial():
    sim = Simulator()
    res = sim.resource(1)

    def proc():
        req = res.request()
        yield req
        yield sim.timeout(40)
        res.release(req)
        yield sim.timeout(60)

    sim.process(proc())
    sim.run()
    assert sim.now == 100
    assert res.utilization(100) == pytest.approx(0.4)


def test_interrupt_wakes_process():
    sim = Simulator()
    caught = []

    def sleeper():
        try:
            yield sim.timeout(1000)
        except Interrupted as e:
            caught.append((e.cause, sim.now))

    def interrupter(p):
        yield sim.timeout(10)
        p.interrupt("stop")

    p = sim.process(sleeper())
    sim.process(interrupter(p))
    sim.run()
    assert caught == [("stop", 10)]


def test_run_until_stops_early():
    sim = Simulator()

    def proc():
        yield sim.timeout(1000)

    sim.process(proc())
    sim.run(until=100)
    assert sim.now == 100


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield "not an event"

    p = sim.process(bad())
    sim.run()
    assert isinstance(p.value, SimulationError)


def test_queue_length_visible():
    sim = Simulator()
    res = sim.resource(1)
    seen = []

    def holder():
        req = res.request()
        yield req
        seen.append(res.queue_length)
        yield sim.timeout(10)
        res.release(req)

    def waiter():
        req = res.request()
        yield req
        res.release(req)

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert seen == [1]
