"""Stage-trace tests: the DES's pipeline structure is observable."""

import pytest

from repro.simnet import (GIGABIT_ETHERNET, PAGE_SIZE, PENTIUM_II_400,
                          Testbed, standard_stack, zero_copy_stack)
from repro.simnet.trace import STAGES, TraceRecorder


def traced_run(nbytes, stack):
    bed = Testbed(PENTIUM_II_400, GIGABIT_ETHERNET)
    trace = TraceRecorder()
    step = bed.stream(nbytes, stack)
    step.trace = trace
    rep = bed.run([step], nbytes)
    return rep, trace


class TestTraceRecorder:
    def test_invalid_event_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record(0, "tx-cpu", 100, 50)

    def test_all_stages_seen(self):
        _, trace = traced_run(8 * PAGE_SIZE, standard_stack())
        assert set(e.stage for e in trace.events) == set(STAGES)

    def test_event_count(self):
        _, trace = traced_run(8 * PAGE_SIZE, standard_stack())
        assert len(trace.events) == 8 * len(STAGES)

    def test_bottleneck_is_rx_cpu_on_standard_stack(self):
        """The receiver's copies are the standard stack's plateau."""
        _, trace = traced_run(64 * PAGE_SIZE, standard_stack())
        assert trace.bottleneck_stage() == "rx-cpu"

    def test_bottleneck_moves_to_pci_on_zero_copy(self):
        """Removing the copies exposes the PCI bus — exactly the
        mechanism behind the 550 MBit/s ceiling."""
        _, trace = traced_run(64 * PAGE_SIZE, zero_copy_stack())
        assert trace.bottleneck_stage() in ("tx-pci", "rx-pci")

    def test_trace_elapsed_matches_report(self):
        rep, trace = traced_run(16 * PAGE_SIZE, standard_stack())
        assert trace.elapsed_ns() == pytest.approx(rep.elapsed_ns,
                                                   rel=0.01)

    def test_pipeline_fill_shrinks_relative_to_large_transfers(self):
        _, small = traced_run(2 * PAGE_SIZE, standard_stack())
        _, large = traced_run(128 * PAGE_SIZE, standard_stack())
        fill_small = small.pipeline_fill_ns() / small.elapsed_ns()
        fill_large = large.pipeline_fill_ns() / large.elapsed_ns()
        assert fill_large < fill_small  # ramp-up amortizes: Fig. 5 knee

    def test_chunk_latency_positive_and_ordered(self):
        _, trace = traced_run(4 * PAGE_SIZE, standard_stack())
        latencies = [trace.chunk_latency_ns(i) for i in range(4)]
        assert all(lat > 0 for lat in latencies)
        # later chunks queue behind earlier ones at the bottleneck
        assert latencies[-1] >= latencies[0]

    def test_bottleneck_stage_has_no_bubbles_at_steady_state(self):
        _, trace = traced_run(64 * PAGE_SIZE, standard_stack())
        busy = trace.stage_busy_ns()["rx-cpu"]
        gaps = trace.stage_gaps_ns("rx-cpu")
        assert gaps < busy * 0.05  # the plateau stage stays saturated

    def test_timeline_renders(self):
        _, trace = traced_run(4 * PAGE_SIZE, standard_stack())
        art = trace.timeline(width=40)
        assert "rx-cpu" in art and "#" in art
        assert len(art.splitlines()) == len(STAGES)
