"""Tests for the isomorphic octet-sequence datatypes (§4.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (BufferPool, OctetSequence, ZCOctetSequence,
                        as_octets)


class TestOctetSequence:
    def test_construct_from_bytes(self):
        seq = OctetSequence(b"abc")
        assert seq.length() == 3
        assert seq.tobytes() == b"abc"

    def test_adopts_bytearray_without_copy(self):
        storage = bytearray(b"xyz")
        seq = OctetSequence(storage)
        seq[0] = ord("X")
        assert storage == b"Xyz"  # shared storage

    def test_length_grow_zero_fills(self):
        seq = OctetSequence(b"ab")
        seq.length(5)
        assert seq.tobytes() == b"ab\0\0\0"

    def test_length_shrink_truncates(self):
        seq = OctetSequence(b"abcdef")
        seq.length(2)
        assert seq.tobytes() == b"ab"

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            OctetSequence().length(-1)

    def test_indexing_and_slicing(self):
        seq = OctetSequence(bytes(range(10)))
        assert seq[3] == 3
        assert seq[2:5] == bytes([2, 3, 4])
        seq[0] = 99
        assert seq[0] == 99

    def test_iteration(self):
        assert list(OctetSequence(b"\x01\x02")) == [1, 2]

    def test_append(self):
        seq = OctetSequence(b"ab")
        seq.append(b"cd")
        assert seq.tobytes() == b"abcd"

    def test_equality_with_bytes_and_sequences(self):
        assert OctetSequence(b"ab") == b"ab"
        assert OctetSequence(b"ab") == OctetSequence(b"ab")
        assert OctetSequence(b"ab") != OctetSequence(b"ac")

    def test_not_zero_copy(self):
        assert not OctetSequence().is_zero_copy

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(OctetSequence(b"a"))


class TestZCOctetSequence:
    def test_from_data_is_aligned(self):
        seq = ZCOctetSequence.from_data(b"payload")
        assert seq.is_zero_copy
        assert seq.is_page_aligned
        assert seq.tobytes() == b"payload"

    def test_adopt_preserves_buffer_identity(self):
        pool = BufferPool()
        buf = pool.acquire(100)
        buf.view()[:] = b"q" * 100
        seq = ZCOctetSequence.adopt(buf)
        assert seq.buffer is buf
        assert seq.tobytes() == b"q" * 100

    def test_length_constructor_allocates(self):
        seq = ZCOctetSequence(1000)
        assert seq.length() == 1000
        assert seq.buffer is not None

    def test_empty_sequence(self):
        seq = ZCOctetSequence()
        assert seq.length() == 0
        assert seq.tobytes() == b""
        assert seq.is_page_aligned  # vacuously

    def test_length_grow_reallocates_preserving_data(self):
        pool = BufferPool()
        seq = ZCOctetSequence(10, pool=pool)
        seq.view()[:] = b"0123456789"
        seq.length(3 * 4096 + 5)
        assert seq.tobytes()[:10] == b"0123456789"
        assert seq.length() == 3 * 4096 + 5

    def test_length_shrink_keeps_buffer(self):
        seq = ZCOctetSequence(100)
        buf = seq.buffer
        seq.length(10)
        assert seq.buffer is buf

    def test_release_returns_to_pool(self):
        pool = BufferPool()
        seq = ZCOctetSequence.from_data(b"x" * 100, pool=pool)
        seq.release()
        assert seq.length() == 0
        assert pool.cached_count == 1

    def test_isomorphic_api_with_standard(self):
        """§4.3: representation and API isomorphic to the standard."""
        data = bytes(range(200))
        std, zc = OctetSequence(data), ZCOctetSequence.from_data(data)
        assert std.length() == zc.length()
        assert std[17] == zc[17]
        assert std[5:9] == zc[5:9]
        assert std.tobytes() == zc.tobytes()
        assert std == zc

    @given(st.binary(max_size=20000))
    def test_round_trip_any_payload(self, data):
        seq = ZCOctetSequence.from_data(data)
        assert seq.tobytes() == data
        assert seq.length() == len(data)


class TestAsOctets:
    def test_passthrough(self):
        seq = OctetSequence(b"a")
        assert as_octets(seq) is seq
        zc = ZCOctetSequence.from_data(b"b")
        assert as_octets(zc) is zc

    def test_wraps_bytes(self):
        seq = as_octets(b"data")
        assert isinstance(seq, OctetSequence)
        assert seq.tobytes() == b"data"

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_octets(12345)
