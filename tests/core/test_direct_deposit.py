"""Tests for the direct-deposit protocol objects (§3.2, §4.4-4.5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (PAGE_SIZE, BufferPool, DepositDescriptor,
                        DepositError, DepositReceiver, DepositRegistry,
                        ZCOctetSequence)


class TestDescriptor:
    def test_round_trip(self):
        desc = DepositDescriptor(deposit_id=7, size=123456,
                                 alignment=PAGE_SIZE, flags=3)
        assert DepositDescriptor.decode(desc.encode()) == desc

    def test_bad_magic_rejected(self):
        raw = bytearray(DepositDescriptor(1, 10).encode())
        raw[0] ^= 0xFF
        with pytest.raises(DepositError):
            DepositDescriptor.decode(bytes(raw))

    def test_short_data_rejected(self):
        with pytest.raises(DepositError):
            DepositDescriptor.decode(b"\x01\x02")

    def test_non_power_of_two_alignment_rejected(self):
        with pytest.raises(DepositError):
            DepositDescriptor(1, 10, alignment=3000).encode()

    @given(st.integers(min_value=1, max_value=2**31),
           st.integers(min_value=0, max_value=2**40),
           st.sampled_from([1, 16, 4096, 65536]))
    def test_round_trip_property(self, dep_id, size, alignment):
        desc = DepositDescriptor(dep_id, size, alignment)
        assert DepositDescriptor.decode(desc.encode()) == desc


class TestRegistry:
    def test_register_assigns_unique_ids(self):
        reg = DepositRegistry()
        d1 = reg.register(memoryview(b"aaa"))
        d2 = reg.register(memoryview(b"bbbb"))
        assert d1.deposit_id != d2.deposit_id
        assert d1.size == 3 and d2.size == 4
        assert len(reg) == 2

    def test_drain_preserves_order_and_clears(self):
        reg = DepositRegistry()
        views = [memoryview(bytes([i]) * (i + 1)) for i in range(5)]
        ids = [reg.register(v).deposit_id for v in views]
        drained = reg.drain()
        assert [i for i, _ in drained] == ids
        assert [v.tobytes() for _, v in drained] == \
            [v.tobytes() for v in views]
        assert len(reg) == 0

    def test_pop_specific(self):
        reg = DepositRegistry()
        d = reg.register(memoryview(b"xy"))
        assert reg.pop(d.deposit_id).tobytes() == b"xy"
        with pytest.raises(DepositError):
            reg.pop(d.deposit_id)

    def test_register_passes_reference_not_copy(self):
        reg = DepositRegistry()
        storage = bytearray(b"mutable")
        reg.register(memoryview(storage))
        storage[0:1] = b"M"
        (_, view), = reg.drain()
        assert view.tobytes() == b"Mutable"  # saw the mutation: no copy


class TestReceiver:
    def test_prepare_allocates_aligned_landing_buffer(self):
        recv = DepositReceiver(BufferPool())
        desc = DepositDescriptor(1, 10000)
        buf = recv.prepare(desc)
        assert buf.length == 10000
        assert buf.address % PAGE_SIZE == 0

    def test_duplicate_prepare_rejected(self):
        recv = DepositReceiver(BufferPool())
        recv.prepare(DepositDescriptor(1, 10))
        with pytest.raises(DepositError):
            recv.prepare(DepositDescriptor(1, 10))

    def test_complete_returns_same_buffer(self):
        recv = DepositReceiver(BufferPool())
        buf = recv.prepare(DepositDescriptor(5, 100))
        assert recv.complete(5) is buf
        assert recv.deposits_received == 1
        assert recv.bytes_deposited == 100

    def test_complete_unknown_rejected(self):
        recv = DepositReceiver(BufferPool())
        with pytest.raises(DepositError):
            recv.complete(99)

    def test_pending_in_order(self):
        recv = DepositReceiver(BufferPool())
        for i in (3, 1, 2):
            recv.prepare(DepositDescriptor(i, 10))
        assert [d.deposit_id for d, _ in recv.pending_in_order()] == [3, 1, 2]

    def test_abort_releases_buffers(self):
        pool = BufferPool()
        recv = DepositReceiver(pool)
        recv.prepare(DepositDescriptor(1, 100))
        recv.prepare(DepositDescriptor(2, 200))
        recv.abort()
        assert pool.cached_count == 2
        assert recv.pending_in_order() == []


class TestEndToEndDeposit:
    """Sender registry -> (simulated wire) -> receiver, zero ORB copies."""

    @given(st.lists(st.binary(min_size=1, max_size=5000),
                    min_size=1, max_size=8))
    def test_multi_deposit_order_and_integrity(self, payloads):
        reg = DepositRegistry()
        descs = [reg.register(memoryview(p)) for p in payloads]
        recv = DepositReceiver(BufferPool())
        for desc in descs:
            recv.prepare(desc)
        # the wire: land each payload in descriptor order
        drained = reg.drain()
        for (dep_id, view), (desc, buf) in zip(drained,
                                               recv.pending_in_order()):
            assert dep_id == desc.deposit_id
            buf.view()[:] = view
        landed = [recv.complete(d.deposit_id) for d in descs]
        for payload, buf in zip(payloads, landed):
            seq = ZCOctetSequence.adopt(buf)
            assert seq.tobytes() == payload
            assert seq.buffer is buf  # demarshal sets a reference
