"""Unit and property tests for page-aligned buffers and the pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (PAGE_SIZE, BufferError, BufferPool, ZCBuffer,
                        default_pool)
from repro.core.buffers import _size_class


class TestZCBuffer:
    def test_true_page_alignment(self):
        for cap in (1, 100, PAGE_SIZE, PAGE_SIZE * 3 + 17):
            buf = ZCBuffer(cap)
            assert buf.address % PAGE_SIZE == 0
            assert buf.is_page_aligned

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            ZCBuffer(0)
        with pytest.raises(ValueError):
            ZCBuffer(-5)

    def test_fill_and_read_back(self):
        buf = ZCBuffer(8192)
        buf.fill_from(b"hello world")
        assert buf.length == 11
        assert buf.tobytes() == b"hello world"

    def test_fill_overflow_rejected(self):
        buf = ZCBuffer(10)
        with pytest.raises(ValueError):
            buf.fill_from(b"x" * 11)

    def test_view_is_writable_and_shared(self):
        buf = ZCBuffer(100)
        buf.set_length(4)
        view = buf.view()
        view[:] = b"abcd"
        assert buf.tobytes() == b"abcd"
        # a second view aliases the same storage
        buf.view()[0:1] = b"Z"
        assert view[0] == ord("Z")

    def test_set_length_bounds(self):
        buf = ZCBuffer(100)
        buf.set_length(0)
        buf.set_length(100)
        with pytest.raises(ValueError):
            buf.set_length(101)
        with pytest.raises(ValueError):
            buf.set_length(-1)

    def test_use_after_release_rejected(self):
        buf = ZCBuffer(100)
        buf.release()
        assert buf.released
        with pytest.raises(BufferError):
            buf.view()
        with pytest.raises(BufferError):
            buf.fill_from(b"x")
        with pytest.raises(BufferError):
            buf.release()

    def test_len_tracks_length(self):
        buf = ZCBuffer(50)
        buf.set_length(7)
        assert len(buf) == 7


class TestSizeClass:
    def test_rounds_to_power_of_two_pages(self):
        assert _size_class(1) == PAGE_SIZE
        assert _size_class(PAGE_SIZE) == PAGE_SIZE
        assert _size_class(PAGE_SIZE + 1) == 2 * PAGE_SIZE
        assert _size_class(3 * PAGE_SIZE) == 4 * PAGE_SIZE
        assert _size_class(4 * PAGE_SIZE) == 4 * PAGE_SIZE

    @given(st.integers(min_value=1, max_value=1 << 26))
    def test_size_class_covers_request(self, n):
        cls = _size_class(n)
        assert cls >= n
        assert cls % PAGE_SIZE == 0
        pages = cls // PAGE_SIZE
        assert pages & (pages - 1) == 0  # power of two


class TestBufferPool:
    def test_acquire_release_reuses_storage(self):
        pool = BufferPool()
        a = pool.acquire(5000)
        a.release()
        b = pool.acquire(6000)  # same size class (2 pages)
        assert b is a
        assert pool.hits == 1
        assert pool.misses == 1

    def test_different_class_not_reused(self):
        pool = BufferPool()
        a = pool.acquire(PAGE_SIZE)
        a.release()
        b = pool.acquire(PAGE_SIZE * 3)
        assert b is not a

    def test_acquire_sets_requested_length(self):
        pool = BufferPool()
        buf = pool.acquire(1234)
        assert buf.length == 1234
        assert buf.capacity >= 1234

    def test_acquire_rejects_nonpositive(self):
        pool = BufferPool()
        with pytest.raises(ValueError):
            pool.acquire(0)

    def test_cache_limit_drops_excess(self):
        pool = BufferPool(max_cached_bytes=PAGE_SIZE)
        a = pool.acquire(PAGE_SIZE)
        b = pool.acquire(PAGE_SIZE)
        a.release()
        b.release()
        assert pool.cached_count == 1  # second buffer dropped

    def test_clear(self):
        pool = BufferPool()
        pool.acquire(100).release()
        assert pool.cached_count == 1
        pool.clear()
        assert pool.cached_count == 0

    def test_revived_buffer_is_live_and_aligned(self):
        pool = BufferPool()
        a = pool.acquire(100)
        a.release()
        b = pool.acquire(50)
        assert not b.released
        assert b.is_page_aligned
        b.view()[:] = b"y" * 50

    def test_default_pool_is_singleton(self):
        assert default_pool() is default_pool()

    @given(st.lists(st.integers(min_value=1, max_value=1 << 16),
                    min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_pool_invariants_under_random_traffic(self, sizes):
        """Property: whatever the acquire/release order, buffers stay
        aligned, sized correctly, and no storage is handed out twice."""
        pool = BufferPool()
        live = []
        for i, size in enumerate(sizes):
            buf = pool.acquire(size)
            assert buf.length == size
            assert buf.address % PAGE_SIZE == 0
            assert all(buf is not other for other in live)
            live.append(buf)
            if i % 3 == 2:
                live.pop(0).release()
        for buf in live:
            buf.release()
        assert pool.hits + pool.misses == len(sizes)


class TestBufferPoolConcurrency:
    """The pipelining ORB leases deposit buffers from worker and reader
    threads in parallel; hammer the pool the same way."""

    def test_hammer_concurrent_acquire_release(self):
        import threading

        pool = BufferPool()
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed):
            try:
                barrier.wait(timeout=10)
                rng = (seed * 2654435761) % (1 << 32)
                for i in range(400):
                    rng = (rng * 1103515245 + 12345) % (1 << 31)
                    size = 1 + rng % (64 * 1024)
                    buf = pool.acquire(size)
                    # stamp and verify: detects the same storage being
                    # handed to two threads at once
                    mark = (seed * 251 + i) % 256
                    buf.view()[:16 if size >= 16 else size] = \
                        bytes([mark]) * (16 if size >= 16 else size)
                    assert buf.length == size
                    assert buf.address % PAGE_SIZE == 0
                    assert bytes(buf.view()[:1]) == bytes([mark])
                    buf.release()
            except Exception as e:  # noqa: BLE001 - collected for assert
                errors.append(e)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert pool.hits + pool.misses == 8 * 400
        # every buffer was released exactly once; the free lists'
        # accounting must agree with themselves — and the identity set
        # that gives _reclaim its O(1) double-release check must mirror
        # the free lists exactly (no stale ids, none missing)
        with pool._lock:
            assert pool.cached_bytes == sum(
                b.capacity for free in pool._free.values() for b in free)
            free_ids = {id(b) for free in pool._free.values()
                        for b in free}
            assert pool._free_ids == free_ids

    def test_reacquired_buffer_can_be_released_again(self):
        """acquire() must clear the identity-set entry, or the next
        legitimate release of the same object trips the double-release
        guard."""
        pool = BufferPool()
        buf = pool.acquire(4096)
        buf.release()
        again = pool.acquire(4096)
        assert again is buf  # size-class cache returned the same object
        again.release()  # must NOT raise BufferError
        with pool._lock:
            assert id(buf) in pool._free_ids

    def test_clear_resets_identity_set(self):
        pool = BufferPool()
        buf = pool.acquire(1024)
        buf.release()
        pool.clear()
        with pool._lock:
            assert pool._free_ids == set()

    def test_concurrent_double_release_detected(self):
        import threading

        pool = BufferPool()
        for _ in range(50):
            buf = pool.acquire(1000)
            raised = []
            barrier = threading.Barrier(2)

            def racer():
                try:
                    barrier.wait(timeout=10)
                    buf.release()
                except BufferError as e:
                    raised.append(e)

            ts = [threading.Thread(target=racer) for _ in range(2)]
            for t in ts:
                t.start()
            for t in ts:
                t.join(timeout=10)
            # exactly one of the two racing releases must lose
            assert len(raised) == 1, raised
            assert pool.cached_count == 1
            pool.clear()
