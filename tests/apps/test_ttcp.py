"""TTCP benchmark tool tests (both modes)."""

import pytest

from repro.apps.ttcp import (default_sizes, format_table, run_real_ttcp,
                             run_sim_ttcp)

SIZES = [4096, 65536, 1 << 20]


class TestDefaultSizes:
    def test_paper_sweep(self):
        sizes = default_sizes()
        assert sizes[0] == 4 * 1024
        assert sizes[-1] == 16 * 1024 * 1024
        for a, b in zip(sizes, sizes[1:]):
            assert b == 2 * a

    def test_custom_bounds(self):
        assert default_sizes(lo=1024, hi=4096) == [1024, 2048, 4096]


class TestSimMode:
    def test_raw_series(self):
        s = run_sim_ttcp("raw", stack="standard", sizes=SIZES)
        assert [p.size for p in s.points] == SIZES
        assert s.label == "raw/standard"
        assert s.saturation_mbit > 300

    def test_zc_raw_alias(self):
        s = run_sim_ttcp("zc-raw", sizes=SIZES)
        assert s.label == "raw/zero-copy"

    def test_corba_versions_ordered(self):
        std = run_sim_ttcp("corba", sizes=SIZES)
        zc = run_sim_ttcp("zc-corba", sizes=SIZES)
        for p_std, p_zc in zip(std.points, zc.points):
            assert p_zc.mbit_per_s > p_std.mbit_per_s

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError, match="unknown TTCP version"):
            run_sim_ttcp("bogus", sizes=SIZES)

    def test_unknown_stack_rejected(self):
        with pytest.raises(ValueError, match="unknown stack"):
            run_sim_ttcp("raw", stack="quantum", sizes=SIZES)

    def test_series_at_lookup(self):
        s = run_sim_ttcp("raw", sizes=SIZES)
        assert s.at(65536).size == 65536
        with pytest.raises(KeyError):
            s.at(1)


class TestRealMode:
    def test_real_corba_round_trip(self):
        s = run_real_ttcp("corba", sizes=[4096, 65536], scheme="loop",
                          repeats=1)
        assert len(s.points) == 2
        assert all(p.mbit_per_s > 0 for p in s.points)

    def test_real_zc_corba(self):
        s = run_real_ttcp("zc-corba", sizes=[65536], scheme="loop",
                          repeats=1)
        assert s.points[0].elapsed_ns > 0

    def test_real_raw_unsupported(self):
        with pytest.raises(ValueError, match="real mode supports"):
            run_real_ttcp("raw", sizes=[4096])


class TestFormatting:
    def test_table_contains_all_series(self):
        a = run_sim_ttcp("raw", sizes=SIZES)
        b = run_sim_ttcp("corba", sizes=SIZES)
        table = format_table([a, b])
        assert "raw/standard" in table
        assert "corba/standard" in table
        assert table.count("\n") == len(SIZES) + 1


class TestSpanDump:
    def test_cli_span_dump_renders_as_tree(self, tmp_path, capsys):
        from repro.apps.ttcp import main
        from repro.obs.cli import main as metrics_cli

        path = tmp_path / "spans.json"
        assert main(["--mode", "real", "--scheme", "loop",
                     "--max-size", "4096", "--versions", "zc-corba",
                     "--span-dump", str(path)]) == 0
        capsys.readouterr()
        assert metrics_cli(["check", str(path)]) == 0
        assert metrics_cli(["tree", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schema 2" in out
        assert "client send_zc" in out

    def test_span_dump_requires_real_mode(self, tmp_path):
        from repro.apps.ttcp import main

        with pytest.raises(SystemExit):
            main(["--mode", "sim",
                  "--span-dump", str(tmp_path / "x.json")])
