"""repro-top: dashboard rendering and the --once CLI path."""

import pytest

from repro.apps.top import Snapshot, _normalize, fetch_snapshot, main, render
from repro.obs.httpexport import TelemetryServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import parse_exposition


def _snapshot(text, when=0.0):
    return Snapshot(parse_exposition(text), when)


EXPOSITION = """\
# TYPE invocations_total counter
invocations_total{operation="put"} 40
invocations_total{operation="get"} 10
# TYPE bytes_sent gauge
bytes_sent 2097152
deposits_sent 10
shm_deposits 6
sendfile_sends 2
arena_slots_free{dir="send"} 5
arena_slots_total{dir="send"} 8
pool_cached_bytes 65536
pool_cached_buffers 2
# TYPE invocation_seconds histogram
invocation_seconds_bucket{le="0.001"} 30
invocation_seconds_bucket{le="0.1"} 48
invocation_seconds_bucket{le="+Inf"} 50
invocation_seconds_sum 1.5
invocation_seconds_count 50
"""


class TestSnapshot:
    def test_total_sums_label_children(self):
        snap = _snapshot(EXPOSITION)
        assert snap.total("invocations_total") == 50
        assert snap.total("invocations_total", operation="put") == 40
        assert snap.total("missing_series") is None

    def test_histogram_merges_and_decumulates(self):
        snap = _snapshot(EXPOSITION)
        bounds, counts = snap.histogram("invocation_seconds")
        assert bounds == [0.001, 0.1]
        assert counts == [30, 18, 2]


class TestRender:
    def test_once_renders_totals_and_tier_mix(self):
        text = render(_snapshot(EXPOSITION))
        assert "invocations" in text
        assert "50" in text
        assert "deposit tier mix" in text
        assert "shm slots" in text and "60%" in text
        assert "sendfile" in text and "20%" in text
        assert "arena slots [send]" in text and "3/8 used" in text
        assert "invocation latency (lifetime)" in text

    def test_rates_from_scrape_deltas(self):
        prev = _snapshot(EXPOSITION, when=0.0)
        cur_text = EXPOSITION.replace(
            'invocations_total{operation="put"} 40',
            'invocations_total{operation="put"} 60')
        cur = _snapshot(cur_text, when=2.0)
        text = render(cur, prev)
        assert "10.0/s" in text  # (60-40)/2s
        assert "(window)" in text

    def test_server_side_fallbacks(self):
        text = render(_snapshot(
            "server_requests_total 7\n"
            '# TYPE server_handle_seconds histogram\n'
            'server_handle_seconds_bucket{le="0.01"} 7\n'
            'server_handle_seconds_bucket{le="+Inf"} 7\n'
            "server_handle_seconds_sum 0.01\n"
            "server_handle_seconds_count 7\n"))
        assert "requests served" in text
        assert "server handle latency" in text


class TestCLI:
    def test_once_against_live_endpoint(self, capsys):
        reg = MetricsRegistry()
        reg.counter("invocations_total", operation="put").inc(5)
        with TelemetryServer(reg) as srv:
            assert main(["--once", srv.url]) == 0
            assert main(["--once", f"{srv.host}:{srv.port}"]) == 0
        out = capsys.readouterr().out
        assert "repro-top" in out
        assert "invocations" in out

    def test_scrape_failure_is_exit_1(self, capsys):
        assert main(["--once", "127.0.0.1:1", "--timeout", "0.5"]) == 1
        assert "scrape" in capsys.readouterr().err

    @pytest.mark.parametrize("raw,normalized", [
        ("127.0.0.1:9095", "http://127.0.0.1:9095/metrics"),
        ("http://h:1/", "http://h:1/metrics"),
        ("http://h:1/metrics", "http://h:1/metrics"),
    ])
    def test_url_normalization(self, raw, normalized):
        assert _normalize(raw) == normalized

    def test_fetch_snapshot_parses_strictly(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(1)
        with TelemetryServer(reg) as srv:
            snap = fetch_snapshot(srv.url + "/metrics")
        assert snap.total("g") == 1
