"""Farm framework tests."""

import threading
import time

import pytest

from repro.apps.framework import Farm, FarmError


class TestFarm:
    def test_results_in_submission_order(self):
        farm = Farm(workers=["w0", "w1", "w2"],
                    call=lambda w, item: item * 2)
        assert farm.process(range(20)) == [i * 2 for i in range(20)]

    def test_single_worker_sequential(self):
        order = []
        farm = Farm(workers=["only"],
                    call=lambda w, item: order.append(item) or item)
        farm.process([3, 1, 2])
        assert order == [3, 1, 2]

    def test_no_workers_is_identity(self):
        farm = Farm(workers=[], call=lambda w, i: None)
        assert farm.process([1, 2]) == [1, 2]

    def test_work_actually_parallel(self):
        """Two workers with a sleeping call should halve wall time."""
        barrier = threading.Barrier(2, timeout=5)

        def call(worker, item):
            barrier.wait()  # both workers must be in-flight at once
            return item

        farm = Farm(workers=["a", "b"], call=call)
        assert farm.process([1, 2]) == [1, 2]

    def test_stats_counts(self):
        farm = Farm(workers=["a", "b"], call=lambda w, i: i)
        farm.process(range(10))
        stats = farm.stats
        assert stats.items == 10
        assert sum(stats.per_worker.values()) == 10
        assert stats.items_per_s > 0

    def test_fail_fast_raises_farm_error(self):
        def call(worker, item):
            if item == 3:
                raise ValueError("boom")
            return item

        farm = Farm(workers=["a"], call=call)
        with pytest.raises(FarmError):
            farm.process(range(6))

    def test_fail_soft_collects_errors(self):
        def call(worker, item):
            if item % 2:
                raise ValueError("odd")
            return item

        farm = Farm(workers=["a"], call=call, fail_fast=False)
        results = farm.process(range(4))
        assert results[0] == 0 and results[2] == 2
        assert results[1] is None and results[3] is None
        assert farm.stats.errors == 2

    def test_empty_work(self):
        farm = Farm(workers=["a"], call=lambda w, i: i)
        assert farm.process([]) == []
        assert farm.stats.items == 0
