"""repro-bench: the benchmark-trajectory document and its validator."""

import json

from repro.apps.bench import (BENCH_SCHEMA_VERSION, main, run_bench,
                              validate_bench)
from repro.apps.ttcp import KB
from repro.obs import MetricsRegistry


def _tiny_doc(**kw):
    kw.setdefault("max_size", 4 * KB)
    kw.setdefault("latency_size", 1 * KB)
    kw.setdefault("latency_calls", 3)
    kw.setdefault("pipeline_calls", 8)
    kw.setdefault("pipeline_inflight", 4)
    kw.setdefault("shm_size", 64 * KB)
    kw.setdefault("shm_repeats", 2)
    kw.setdefault("pubsub_size", 64 * KB)
    kw.setdefault("pubsub_events", 3)
    kw.setdefault("pubsub_subs", (1, 2))
    kw.setdefault("sendfile_sizes", (1024 * KB,))
    kw.setdefault("sendfile_repeats", 2)
    return run_bench(**kw)


class TestRunBench:
    def test_document_shape_and_self_validation(self):
        reg = MetricsRegistry()
        doc = _tiny_doc(tag="unit", registry=reg)
        assert doc["schema"] == BENCH_SCHEMA_VERSION
        assert doc["kind"] == "bench"
        assert doc["tag"] == "unit"
        assert validate_bench(doc) == []
        # all three paper figures present with the expected curves
        assert set(doc["figures"]) == {"fig5", "fig6_left", "fig6_right"}
        assert set(doc["figures"]["fig6_right"]) == \
            {"corba/std", "corba/zc", "zc-corba/std", "zc-corba/zc"}
        # latency probe covers both ORB flavours with percentiles
        for version in ("corba", "zc-corba"):
            rec = doc["latency"][version]
            assert rec["count"] == 3
            assert rec["p50"] <= rec["p95"] <= rec["p99"]
        # saturation gauges exported for trajectory dashboards
        assert reg.get("bench_saturation_mbit", figure="fig5",
                       curve="corba/std").value > 0
        # pipelining probe covers both transports on one connection
        for sch in ("loop", "tcp"):
            rec = doc["pipelining"][sch]
            assert [lv["inflight"] for lv in rec["levels"]] == [1, 4]
            assert rec["speedup"] > 1.0
            assert reg.get("bench_pipelining_speedup",
                           scheme=sch).value == rec["speedup"]
        # shm deposit probe: arena carried the payload, no fallbacks
        shm = doc["shm"]
        assert set(shm["schemes"]) == {"shm", "tcp"}
        assert shm["schemes"]["shm"]["shm_deposits_total"] > 0
        assert shm["schemes"]["shm"]["shm_fallbacks_total"] == 0
        assert reg.get("bench_shm_speedup").value == shm["speedup"]
        # pubsub probe: the shm stanza carries single-copy accounting
        ps = doc["pubsub"]
        if ps.get("skipped"):
            assert ps["reason"] and ps["degrade_path_ok"] is True
        else:
            assert [lv["subs"] for lv in ps["levels"]] == [1, 2]
            for lv in ps["levels"]:
                assert lv["shm"]["fanout_posts"] == 3  # one per event
                assert lv["shm"]["shared_refs"] == 3 * lv["subs"]
            assert reg.get("bench_pubsub_speedup_at_max").value == \
                ps["speedup_at_max"]
        # sendfile probe: rows or a visible, degrade-verified skip
        sf = doc["sendfile"]
        if sf.get("skipped"):
            assert sf["reason"] and sf["degrade_path_ok"] is True
        else:
            row = sf["sizes"][0]
            assert row["size"] == 1024 * KB
            assert row["sendfile_mb_per_s"] > 0
            assert row["copy_mb_per_s"] > 0
            assert sf["speedup_at_max"] == row["speedup"]
            assert reg.get("bench_sendfile_speedup").value == \
                sf["speedup_at_max"]

    def test_zero_copy_beats_standard_in_sim_sweep(self):
        doc = _tiny_doc()
        std = doc["figures"]["fig6_right"]["corba/std"][-1]["mbit_per_s"]
        zc = doc["figures"]["fig6_right"]["zc-corba/zc"][-1]["mbit_per_s"]
        assert zc > std


class TestValidator:
    def test_flags_missing_pieces(self):
        doc = _tiny_doc()
        bad = json.loads(json.dumps(doc))
        bad["schema"] = 99
        del bad["figures"]["fig5"]
        del bad["latency"]["corba"]["p95"]
        problems = validate_bench(bad)
        assert any("schema" in p for p in problems)
        assert any("fig5" in p for p in problems)
        assert any("latency.corba" in p for p in problems)

    def test_flags_missing_pipelining(self):
        doc = _tiny_doc()
        bad = json.loads(json.dumps(doc))
        del bad["pipelining"]
        assert any("pipelining" in p for p in validate_bench(bad))
        bad = json.loads(json.dumps(doc))
        del bad["pipelining"]["loop"]["speedup"]
        assert any("pipelining.loop" in p for p in validate_bench(bad))

    def test_flags_missing_shm(self):
        doc = _tiny_doc()
        bad = json.loads(json.dumps(doc))
        del bad["shm"]
        assert any("shm" in p for p in validate_bench(bad))
        bad = json.loads(json.dumps(doc))
        del bad["shm"]["schemes"]["shm"]["shm_deposits_total"]
        assert any("shm_deposits_total" in p for p in validate_bench(bad))

    def test_flags_missing_pubsub(self):
        doc = _tiny_doc()
        bad = json.loads(json.dumps(doc))
        del bad["pubsub"]
        assert any("pubsub" in p for p in validate_bench(bad))
        if not doc["pubsub"].get("skipped"):
            bad = json.loads(json.dumps(doc))
            del bad["pubsub"]["levels"][0]["shm"]["fanout_posts"]
            assert any("single-copy" in p for p in validate_bench(bad))

    def test_cli_check_round_trip(self, tmp_path, capsys):
        doc = _tiny_doc()
        path = tmp_path / "BENCH_t.json"
        path.write_text(json.dumps(doc))
        assert main(["--check", str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        path.write_text(json.dumps({"schema": 1}))
        assert main(["--check", str(path)]) == 1

    def test_cli_quick_writes_valid_document(self, tmp_path, capsys):
        out = tmp_path / "BENCH_q.json"
        assert main(["--quick", "--tag", "t", "--out", str(out),
                     "--max-size", "4096", "--latency-size", "1024",
                     "--latency-calls", "3",
                     "--sendfile-max-size", "1048576"]) == 0
        doc = json.loads(out.read_text())
        assert validate_bench(doc) == []
        assert "bench document written" in capsys.readouterr().out
