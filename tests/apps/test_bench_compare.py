"""The bench-regression gate: compare_bench and its CLI wiring.

These tests run on synthetic documents (no benchmarks execute), so
they pin the gate's *logic*: a real regression must fail the build, a
skipped probe must not, and the delta table must say which is which.
"""

import json

import pytest

from repro.apps.bench import (BENCH_SCHEMA_VERSION, compare_bench,
                              format_compare, main, render_figure,
                              validate_bench)

KB = 1024
MB = 1024 * KB


def _curve(*sizes, mbit=800.0):
    return [{"size": s, "mbit_per_s": mbit} for s in sizes]


def _cscale_rec(goodput, ok=True):
    return {"ok": ok, "completed": 500, "expected": 500,
            "goodput_calls_per_s": goodput, "p50_s": 0.01, "p99_s": 0.05,
            "slo_ok": True}


def _doc(**over):
    """A minimal schema-valid bench document."""
    doc = {
        "schema": BENCH_SCHEMA_VERSION, "kind": "bench", "tag": "t",
        "figures": {
            "fig5": {"corba/std": _curve(4 * KB, 64 * KB)},
            "fig6_left": {"zc-sockets": _curve(4 * KB, 64 * KB)},
            "fig6_right": {
                "corba/std": _curve(64 * KB, 256 * KB, 1 * MB, mbit=300.0),
                "zc-corba/std": _curve(64 * KB, 256 * KB, 1 * MB,
                                       mbit=900.0),
                "zc-corba/zc": _curve(64 * KB, 256 * KB, 1 * MB,
                                      mbit=2400.0),
            },
        },
        "latency": {"corba": {"size": 64 * KB, "count": 10, "p50": 1.0,
                              "p95": 2.0, "p99": 3.0}},
        "pipelining": {
            "loop": {"speedup": 6.0,
                     "levels": [{"inflight": 1, "calls_per_s": 10.0},
                                {"inflight": 8, "calls_per_s": 60.0}]},
            "tcp": {"speedup": 5.0,
                    "levels": [{"inflight": 1, "calls_per_s": 10.0},
                               {"inflight": 8, "calls_per_s": 50.0}]},
        },
        "shm": {"speedup": 4.0,
                "schemes": {
                    "shm": {"bytes_per_s": 4.0e9, "shm_deposits_total": 5,
                            "shm_fallbacks_total": 0},
                    "tcp": {"bytes_per_s": 1.0e9},
                }},
        "pubsub": {"size": 1 * MB, "events": 20,
                   "levels": [
                       {"subs": 2,
                        "shm": {"seconds": 0.02, "events_per_s": 1000.0,
                                "delivered_bytes_per_s": 2.0e9,
                                "fanout_posts": 20, "shared_refs": 40},
                        "tcp": {"seconds": 0.04, "events_per_s": 500.0,
                                "delivered_bytes_per_s": 1.0e9},
                        "speedup": 2.0},
                       {"subs": 8,
                        "shm": {"seconds": 0.02, "events_per_s": 1000.0,
                                "delivered_bytes_per_s": 8.0e9,
                                "fanout_posts": 20, "shared_refs": 160},
                        "tcp": {"seconds": 0.16, "events_per_s": 125.0,
                                "delivered_bytes_per_s": 1.0e9},
                        "speedup": 8.0}],
                   "speedup_at_max": 8.0},
        "sgcdr": {"repeats": 3,
                  "sizes": [{"size": 64 * KB, "blob_mb_per_s": 900.0,
                             "sg_mb_per_s": 2100.0, "improvement": 2.333},
                            {"size": 1 * MB, "blob_mb_per_s": 1000.0,
                             "sg_mb_per_s": 9000.0, "improvement": 9.0}],
                  "min_improvement": 2.333},
        "sendfile": {"repeats": 3,
                     "sizes": [{"size": 1 * MB,
                                "sendfile_mb_per_s": 4000.0,
                                "copy_mb_per_s": 2000.0, "speedup": 2.0},
                               {"size": 16 * MB,
                                "sendfile_mb_per_s": 5000.0,
                                "copy_mb_per_s": 2000.0,
                                "speedup": 2.5}],
                     "speedup_at_max": 2.5},
        "cscale": {"calls_per_conn": 5, "work_s": 0.0, "p99_slo_s": 0.5,
                   "levels": [
                       {"conns": 100,
                        "threaded": _cscale_rec(900.0),
                        "reactor": _cscale_rec(2100.0),
                        "speedup": 2.333},
                       {"conns": 10000, "skipped": True,
                        "reason": "fd budget too small for 10000 conns"},
                   ]},
    }
    doc.update(over)
    return doc


def _clone(doc):
    return json.loads(json.dumps(doc))


class TestCompareLogic:
    def test_identical_documents_pass(self):
        doc = _doc()
        rows = compare_bench(doc, _clone(doc))
        assert rows and all(r["ok"] for r in rows)
        assert all(r["ratio"] == 1.0 for r in rows
                   if r["ratio"] is not None)
        metrics = {r["metric"] for r in rows}
        assert "pipelining.loop.speedup" in metrics
        assert "shm.speedup" in metrics
        assert f"sgcdr@{64 * KB}.sg_mb_per_s" in metrics
        # fig6_right gated at BOTH canonical sizes when present
        assert any(f"@{256 * KB}" in m and "zc-corba/zc" in m
                   for m in metrics)
        assert any(f"@{1 * MB}" in m and "zc-corba/zc" in m
                   for m in metrics)

    def test_injected_regression_fails_the_gate(self):
        old = _doc()
        new = _clone(old)
        new["pipelining"]["loop"]["speedup"] = 2.0  # 0.33x: regression
        rows = compare_bench(old, new, tolerance=0.75)
        bad = [r for r in rows if not r["ok"]]
        assert [r["metric"] for r in bad] == ["pipelining.loop.speedup"]
        assert bad[0]["ratio"] == pytest.approx(2.0 / 6.0, abs=1e-3)

    def test_sgcdr_regression_fails_per_size(self):
        old = _doc()
        new = _clone(old)
        new["sgcdr"]["sizes"][1]["sg_mb_per_s"] = 1000.0  # 1 MiB drops 9x
        rows = compare_bench(old, new, tolerance=0.75)
        bad = {r["metric"] for r in rows if not r["ok"]}
        assert bad == {f"sgcdr@{1 * MB}.sg_mb_per_s"}

    def test_improvement_always_passes(self):
        old = _doc()
        new = _clone(old)
        new["shm"]["speedup"] = 40.0
        assert all(r["ok"] for r in compare_bench(old, new))

    def test_tolerance_is_respected(self):
        old = _doc()
        new = _clone(old)
        new["shm"]["speedup"] = 3.2  # 0.8x
        assert all(r["ok"] for r in compare_bench(old, new,
                                                  tolerance=0.75))
        bad = [r for r in compare_bench(old, new, tolerance=0.9)
               if not r["ok"]]
        assert [r["metric"] for r in bad] == ["shm.speedup"]

    def test_pubsub_gated_at_largest_common_fanout(self):
        doc = _doc()
        metrics = {r["metric"] for r in compare_bench(doc, _clone(doc))}
        assert "pubsub@8.shm_events_per_s" in metrics
        assert "pubsub@8.speedup" in metrics
        assert "pubsub@2.shm_events_per_s" not in metrics

    def test_pubsub_regression_fails_the_gate(self):
        old = _doc()
        new = _clone(old)
        new["pubsub"]["levels"][1]["shm"]["events_per_s"] = 100.0  # 10x
        rows = compare_bench(old, new, tolerance=0.75)
        bad = {r["metric"] for r in rows if not r["ok"]}
        assert bad == {"pubsub@8.shm_events_per_s"}

    def test_skipped_pubsub_is_not_punished(self):
        old = _doc()
        new = _clone(old)
        new["pubsub"] = {"skipped": True,
                         "reason": "no usable shared memory",
                         "degrade_path_ok": True, "levels": []}
        rows = compare_bench(old, new)
        assert all(r["ok"] for r in rows)
        assert not any(r["metric"].startswith("pubsub") for r in rows)

    def test_sendfile_regression_fails_per_size(self):
        old = _doc()
        new = _clone(old)
        new["sendfile"]["sizes"][1]["sendfile_mb_per_s"] = 500.0  # 10x drop
        rows = compare_bench(old, new, tolerance=0.75)
        bad = {r["metric"] for r in rows if not r["ok"]}
        assert bad == {f"sendfile@{16 * MB}.sendfile_mb_per_s"}

    def test_skipped_sendfile_is_not_punished(self):
        old = _doc()
        new = _clone(old)
        new["sendfile"] = {"skipped": True,
                           "reason": "kernel refused sendfile on TCP",
                           "degrade_path_ok": True}
        rows = compare_bench(old, new)
        assert all(r["ok"] for r in rows)
        assert not any(r["metric"].startswith("sendfile@") for r in rows)

    def test_skipped_shm_is_not_punished(self):
        old = _doc()
        new = _clone(old)
        new["shm"] = {"skipped": True, "reason": "no /dev/shm",
                      "degrade_path_ok": True}
        rows = compare_bench(old, new)
        assert all(r["ok"] for r in rows)
        assert not any(r["metric"] == "shm.speedup" for r in rows)

    def test_largest_common_size_fallback(self):
        """A quick run sweeping smaller sizes still gets gated — at the
        largest size both documents share."""
        old = _doc()
        new = _clone(old)
        for label in new["figures"]["fig6_right"]:
            new["figures"]["fig6_right"][label] = _curve(
                16 * KB, 64 * KB, mbit=500.0)
        rows = compare_bench(old, new)
        curve_rows = [r for r in rows if "fig6_right" in r["metric"]]
        assert curve_rows
        assert all(f"@{64 * KB}" in r["metric"] for r in curve_rows)

    def test_value_missing_in_one_document_never_fails(self):
        old = _doc()
        new = _clone(old)
        del new["pipelining"]["tcp"]
        new["sgcdr"]["sizes"] = new["sgcdr"]["sizes"][:1]
        rows = compare_bench(old, new)
        assert all(r["ok"] for r in rows)
        metrics = {r["metric"] for r in rows}
        assert "pipelining.tcp.speedup" not in metrics
        assert f"sgcdr@{1 * MB}.sg_mb_per_s" not in metrics

    def test_cscale_goodput_regression_fails_the_gate(self):
        old = _doc()
        new = _clone(old)
        new["cscale"]["levels"][0]["reactor"] = _cscale_rec(500.0)
        rows = compare_bench(old, new, tolerance=0.75)
        bad = {r["metric"] for r in rows if not r["ok"]}
        assert bad == {"cscale@100.reactor_goodput_calls_per_s"}

    def test_skipped_cscale_level_is_not_punished(self):
        """The 10k row is skipped in the synthetic doc (fd budget) and
        a failed threaded baseline must not gate either — only reactor
        goodput at levels BOTH documents completed is compared."""
        old = _doc()
        new = _clone(old)
        new["cscale"]["levels"][0]["threaded"] = _cscale_rec(0.0, ok=False)
        rows = compare_bench(old, new)
        assert all(r["ok"] for r in rows)
        metrics = {r["metric"] for r in rows}
        assert "cscale@100.reactor_goodput_calls_per_s" in metrics
        assert not any("cscale@10000" in m for m in metrics)

    def test_cscale_gates_only_the_largest_common_level(self):
        """Small levels have sub-second timed windows — the gate
        anchors on the largest level both documents completed, the
        scale claim."""
        old = _doc()
        old["cscale"]["levels"].insert(
            1, {"conns": 1000, "threaded": _cscale_rec(1500.0),
                "reactor": _cscale_rec(2800.0), "speedup": 1.867})
        new = _clone(old)
        new["cscale"]["levels"][0]["reactor"] = _cscale_rec(100.0)
        rows = compare_bench(new, _clone(new), tolerance=0.75)
        metrics = {r["metric"] for r in rows}
        assert "cscale@1000.reactor_goodput_calls_per_s" in metrics
        assert "cscale@100.reactor_goodput_calls_per_s" not in metrics
        # the regression at the small level does not trip the gate...
        assert all(r["ok"] for r in compare_bench(old, new))
        # ...but one at the anchor level does
        new["cscale"]["levels"][1]["reactor"] = _cscale_rec(700.0)
        bad = {r["metric"] for r in compare_bench(old, new)
               if not r["ok"]}
        assert bad == {"cscale@1000.reactor_goodput_calls_per_s"}

    def test_cscale_level_failed_in_one_document_never_fails(self):
        old = _doc()
        new = _clone(old)
        new["cscale"]["levels"][0]["reactor"] = _cscale_rec(0.0, ok=False)
        rows = compare_bench(old, new)
        assert all(r["ok"] for r in rows)
        assert not any(r["metric"].startswith("cscale@") for r in rows)

    def test_format_compare_marks_failures(self):
        old = _doc()
        new = _clone(old)
        new["pipelining"]["loop"]["speedup"] = 1.0
        table = format_compare(compare_bench(old, new), 0.75)
        assert "FAIL" in table and "OK" in table
        assert "pipelining.loop.speedup" in table


class TestCompareCLI:
    def _write(self, tmp_path, name, doc):
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_cli_pass(self, tmp_path, capsys):
        a = self._write(tmp_path, "old.json", _doc())
        b = self._write(tmp_path, "new.json", _doc())
        assert main(["--compare", a, b]) == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out
        assert "metric" in out  # the delta table printed

    def test_cli_fails_on_regression(self, tmp_path, capsys):
        old = _doc()
        new = _clone(old)
        new["sgcdr"]["sizes"][0]["sg_mb_per_s"] = 100.0
        a = self._write(tmp_path, "old.json", old)
        b = self._write(tmp_path, "new.json", new)
        assert main(["--compare", a, b, "--tolerance", "0.75"]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "FAIL" in captured.out

    def test_cli_unreadable_document(self, tmp_path, capsys):
        a = self._write(tmp_path, "old.json", _doc())
        assert main(["--compare", a, str(tmp_path / "missing.json")]) == 1
        assert "cannot read" in capsys.readouterr().err

    def test_cli_render(self, tmp_path, capsys):
        a = self._write(tmp_path, "doc.json", _doc())
        assert main(["--render", a]) == 0
        out = capsys.readouterr().out
        assert "corba/std" in out and "Mb/s" in out


class TestSchema4Validation:
    def test_synthetic_document_is_valid(self):
        assert validate_bench(_doc()) == []

    def test_skipped_shm_stanza_valid(self):
        doc = _doc(shm={"skipped": True, "reason": "no shm",
                        "degrade_path_ok": True})
        assert validate_bench(doc) == []

    def test_skipped_shm_requires_reason_and_degrade_proof(self):
        doc = _doc(shm={"skipped": True, "degrade_path_ok": True})
        assert any("reason" in p for p in validate_bench(doc))
        doc = _doc(shm={"skipped": True, "reason": "no shm",
                        "degrade_path_ok": False})
        assert any("degrade" in p for p in validate_bench(doc))

    def test_skipped_sendfile_stanza_valid(self):
        doc = _doc(sendfile={"skipped": True, "reason": "no os.sendfile",
                             "degrade_path_ok": True})
        assert validate_bench(doc) == []

    def test_skipped_sendfile_requires_reason_and_degrade_proof(self):
        doc = _doc(sendfile={"skipped": True, "degrade_path_ok": True})
        assert any("reason" in p for p in validate_bench(doc))
        doc = _doc(sendfile={"skipped": True, "reason": "no os.sendfile",
                             "degrade_path_ok": False})
        assert any("degrade" in p for p in validate_bench(doc))

    def test_missing_sendfile_flagged(self):
        doc = _doc()
        del doc["sendfile"]
        assert any("sendfile" in p for p in validate_bench(doc))
        doc = _doc()
        del doc["sendfile"]["sizes"][0]["sendfile_mb_per_s"]
        assert any("sendfile.sizes" in p for p in validate_bench(doc))

    def test_missing_sgcdr_flagged(self):
        doc = _doc()
        del doc["sgcdr"]
        assert any("sgcdr" in p for p in validate_bench(doc))
        doc = _doc()
        del doc["sgcdr"]["sizes"][0]["sg_mb_per_s"]
        assert any("sgcdr.sizes" in p for p in validate_bench(doc))

    def test_missing_cscale_flagged(self):
        doc = _doc()
        del doc["cscale"]
        assert any("cscale" in p for p in validate_bench(doc))

    def test_cscale_skipped_level_requires_reason(self):
        doc = _doc()
        doc["cscale"]["levels"][1] = {"conns": 10000, "skipped": True}
        assert any("skipped without a reason" in p
                   for p in validate_bench(doc))

    def test_cscale_ok_record_requires_quantiles(self):
        doc = _doc()
        del doc["cscale"]["levels"][0]["reactor"]["p99_s"]
        assert any("missing quantiles" in p for p in validate_bench(doc))
        doc = _doc()
        del doc["cscale"]["levels"][0]["speedup"]
        assert any("missing speedup" in p for p in validate_bench(doc))

    def test_render_figure_handles_missing_figure(self):
        assert "no fig5" in render_figure({"figures": {}})
