"""Transcoder substrate tests: frames, codecs, pipeline."""

import numpy as np
import pytest

from repro.apps.transcoder import (CodecError, DistributedTranscoder,
                                   FrameSource, Mpeg2Stream, Mpeg4Decoder,
                                   Mpeg4Encoder, Mpeg4Stream, TranscoderWorker,
                                   VideoFrame, decode_plane, encode_plane,
                                   estimate_cluster_fps)
from repro.apps.transcoder.dct import (blockize, forward, inverse,
                                       unblockize, zigzag_indices)


class TestFrames:
    def test_source_is_deterministic(self):
        a = FrameSource(176, 144, seed=5).frame(3)
        b = FrameSource(176, 144, seed=5).frame(3)
        assert np.array_equal(a.y, b.y)

    def test_different_seeds_differ(self):
        a = FrameSource(176, 144, seed=1).frame(0)
        b = FrameSource(176, 144, seed=2).frame(0)
        assert not np.array_equal(a.y, b.y)

    def test_temporal_coherence(self):
        """Adjacent frames are much closer than distant ones."""
        src = FrameSource(176, 144)
        f0, f1, f30 = src.frame(0), src.frame(1), src.frame(30)
        near = np.mean(np.abs(f0.y.astype(int) - f1.y.astype(int)))
        far = np.mean(np.abs(f0.y.astype(int) - f30.y.astype(int)))
        assert near < far / 2

    def test_wire_round_trip(self):
        frame = FrameSource(176, 144).frame(7)
        out = VideoFrame.from_bytes(frame.to_bytes())
        assert out.frame_no == 7
        assert np.array_equal(out.y, frame.y)
        assert np.array_equal(out.cb, frame.cb)

    def test_bad_wire_data_rejected(self):
        with pytest.raises(ValueError):
            VideoFrame.from_bytes(b"JUNKJUNKJUNK")
        frame = FrameSource(176, 144).frame(0)
        with pytest.raises(ValueError, match="truncated"):
            VideoFrame.from_bytes(frame.to_bytes()[:-10])

    def test_dimension_validation(self):
        with pytest.raises(ValueError, match="macroblock"):
            FrameSource(100, 100)
        with pytest.raises(ValueError):
            VideoFrame(0, np.zeros((144, 176), np.uint8),
                       np.zeros((10, 10), np.uint8),
                       np.zeros((10, 10), np.uint8))

    def test_psnr_identity_is_inf(self):
        f = FrameSource(176, 144).frame(0)
        assert f.psnr(f) == float("inf")


class TestDCT:
    def test_block_round_trip_exact(self):
        rng = np.random.default_rng(0)
        plane = rng.integers(0, 256, (64, 48)).astype(np.float64)
        blocks, shape = blockize(plane)
        assert unblockize(blocks, shape) == pytest.approx(plane)

    def test_blockize_pads_odd_shapes(self):
        plane = np.ones((10, 13))
        blocks, shape = blockize(plane)
        assert shape == (10, 13)
        assert blocks.shape == (2 * 2, 8, 8)
        assert unblockize(blocks, shape).shape == (10, 13)

    def test_quantization_roundtrip_error_bounded(self):
        rng = np.random.default_rng(1)
        blocks = rng.uniform(0, 255, (10, 8, 8))
        out = inverse(forward(blocks, quality=90), quality=90)
        assert np.max(np.abs(out - blocks)) < 20

    def test_lower_quality_more_zeros(self):
        rng = np.random.default_rng(2)
        blocks = rng.uniform(0, 255, (10, 8, 8))
        hi = np.count_nonzero(forward(blocks, 90))
        lo = np.count_nonzero(forward(blocks, 10))
        assert lo < hi

    def test_zigzag_is_permutation(self):
        z = zigzag_indices()
        assert sorted(z) == list(range(64))
        assert list(z[:4]) == [0, 1, 8, 16]  # standard scan start

    def test_plane_codec_round_trip(self):
        plane = FrameSource(176, 144).frame(0).y
        out = decode_plane(encode_plane(plane, quality=95))
        assert out.shape == plane.shape
        mse = np.mean((out.astype(float) - plane.astype(float)) ** 2)
        assert mse < 30

    def test_plane_codec_compresses_smooth_content(self):
        # a uniform plane codes to one DC token per block: 256 blocks
        # x 6 bytes/token + headers, ~10x smaller than raw
        plane = np.full((128, 128), 77, np.uint8)
        coded = encode_plane(plane, quality=50)
        assert len(coded) < plane.nbytes / 8

    def test_truncated_plane_rejected(self):
        coded = encode_plane(np.zeros((16, 16), np.uint8), 50)
        with pytest.raises(CodecError):
            decode_plane(coded[:8])

    def test_quality_range_checked(self):
        with pytest.raises(ValueError):
            encode_plane(np.zeros((8, 8), np.uint8), 0)
        with pytest.raises(ValueError):
            encode_plane(np.zeros((8, 8), np.uint8), 101)


class TestMpeg2:
    def test_stream_round_trip(self):
        frames = list(FrameSource(176, 144).frames(4))
        stream = Mpeg2Stream.from_frames(frames)
        out = Mpeg2Stream.from_bytes(stream.to_bytes())
        decoded = out.decode()
        assert len(decoded) == 4
        assert frames[2].psnr(decoded[2]) > 35

    def test_corrupt_stream_rejected(self):
        with pytest.raises(CodecError):
            Mpeg2Stream.from_bytes(b"NOPE" + bytes(20))


class TestMpeg4:
    def test_p_frames_smaller_than_i(self):
        frames = list(FrameSource(176, 144, noise=0.5).frames(6))
        enc = Mpeg4Encoder(gop=6)
        coded = [enc.encode(f) for f in frames]
        i_size = len(coded[0])
        p_sizes = [len(c) for c in coded[1:]]
        assert max(p_sizes) < i_size  # prediction pays off

    def test_decoder_tracks_reference(self):
        frames = list(FrameSource(176, 144).frames(8))
        stream = Mpeg4Stream.from_frames(frames, gop=4)
        decoded = stream.decode()
        for orig, out in zip(frames, decoded):
            assert orig.psnr(out) > 28

    def test_p_frame_without_reference_rejected(self):
        frames = list(FrameSource(176, 144).frames(2))
        enc = Mpeg4Encoder(gop=8)
        enc.encode(frames[0])
        p_frame = enc.encode(frames[1])
        dec = Mpeg4Decoder()
        with pytest.raises(CodecError, match="P-frame"):
            dec.decode(p_frame)

    def test_gop_restarts_intra(self):
        frames = list(FrameSource(176, 144).frames(5))
        enc = Mpeg4Encoder(gop=2)
        sizes = [len(enc.encode(f)) for f in frames]
        # pattern I P I P I: the I frames are the big ones
        assert sizes[0] > sizes[1] and sizes[2] > sizes[1]

    def test_mpeg4_smaller_than_mpeg2(self):
        frames = list(FrameSource(176, 144, noise=1.0).frames(12))
        mp2 = Mpeg2Stream.from_frames(frames)
        mp4 = Mpeg4Stream.from_frames(frames)
        assert mp4.nbytes < mp2.nbytes

    def test_stream_container_round_trip(self):
        frames = list(FrameSource(176, 144).frames(3))
        stream = Mpeg4Stream.from_frames(frames, gop=3)
        out = Mpeg4Stream.from_bytes(stream.to_bytes())
        assert out.gop == 3
        assert len(out.pictures) == 3


class TestPipeline:
    def test_local_farm_transcode(self):
        """Workers invoked collocated (no wire) still produce valid
        output — the framework is transport-agnostic."""
        from repro.orb import ORB, ORBConfig
        orb = ORB(ORBConfig(scheme="loop"))
        try:
            stub = orb.activate(TranscoderWorker())
            frames = list(FrameSource(176, 144).frames(6))
            mp2 = Mpeg2Stream.from_frames(frames)
            t = DistributedTranscoder([stub], gop=3)
            mp4 = t.transcode(mp2)
            assert len(mp4.pictures) == 6
            assert frames[4].psnr(mp4.decode()[4]) > 28
            assert t.last_report.compression_gain > 1.0
        finally:
            orb.shutdown()

    def test_chunking_respects_gop(self):
        frames = list(FrameSource(176, 144).frames(7))
        mp2 = Mpeg2Stream.from_frames(frames)
        t = DistributedTranscoder([], gop=3)
        chunks = t.chunks_of(mp2)
        assert len(chunks) == 3  # 3 + 3 + 1
        assert len(Mpeg2Stream.from_bytes(chunks[-1]).pictures) == 1

    def test_estimate_monotone_in_workers(self):
        from repro.simnet import PENTIUM_II_400, zero_copy_stack
        fps = [estimate_cluster_fps(100_000, 10**8, w, True,
                                    zero_copy_stack(),
                                    PENTIUM_II_400).fps
               for w in (1, 2, 4)]
        assert fps == sorted(fps)

    def test_invalid_gop(self):
        with pytest.raises(ValueError):
            DistributedTranscoder([], gop=0)
