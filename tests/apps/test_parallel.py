"""Data-parallel scatter/gather tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.parallel import (ScatterGather, partition_array,
                                 partition_bytes)
from repro.core import PAGE_SIZE, ZCOctetSequence


class TestPartitioning:
    def test_bytes_parts_cover_exactly(self):
        data = bytes(range(256)) * 100
        parts = partition_bytes(data, 4)
        assert b"".join(p.tobytes() for p in parts) == data

    def test_parts_are_views_not_copies(self):
        storage = bytearray(b"x" * 10000)
        parts = partition_bytes(storage, 3)
        storage[0:1] = b"Y"
        assert parts[0][0] == ord("Y")

    def test_page_aligned_cut_points(self):
        data = bytes(40 * PAGE_SIZE + 123)
        parts = partition_bytes(data, 4)
        offset = 0
        for p in parts[:-1]:
            offset += p.nbytes
            assert offset % PAGE_SIZE == 0

    def test_small_payload_no_alignment_forced(self):
        parts = partition_bytes(b"abcdef", 3)
        assert b"".join(p.tobytes() for p in parts) == b"abcdef"

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            partition_bytes(b"x", 0)

    def test_array_partition(self):
        x = np.arange(101)
        parts = partition_array(x, 4)
        assert np.array_equal(np.concatenate(parts), x)

    def test_array_must_be_1d(self):
        with pytest.raises(ValueError):
            partition_array(np.ones((2, 2)), 2)

    @given(st.integers(0, 100_000), st.integers(1, 16))
    def test_partition_property(self, n, parts):
        data = bytes(n)
        got = partition_bytes(data, parts)
        assert len(got) == parts
        assert sum(p.nbytes for p in got) == n


class TestScatterGather:
    def test_gather_in_member_order(self):
        sg = ScatterGather(members=["a", "b", "c"],
                           call=lambda m, p: (m, p.nbytes))
        out = sg.invoke(bytes(3 * PAGE_SIZE))
        assert [m for m, _ in out] == ["a", "b", "c"]
        assert sum(n for _, n in out) == 3 * PAGE_SIZE

    def test_combine_function(self):
        sg = ScatterGather(members=[1, 2, 3, 4],
                           call=lambda m, p: len(p),
                           combine=sum)
        assert sg.invoke(bytes(1000)) == 1000

    def test_numpy_payload(self):
        sg = ScatterGather(members=["a", "b"],
                           call=lambda m, p: float(p.sum()),
                           combine=sum)
        assert sg.invoke(np.ones(1000)) == 1000.0

    def test_member_error_propagates(self):
        def call(m, p):
            raise RuntimeError("member down")

        sg = ScatterGather(members=["a", "b"], call=call)
        with pytest.raises(RuntimeError, match="member down"):
            sg.invoke(bytes(100))

    def test_no_members_rejected(self):
        sg = ScatterGather(members=[], call=lambda m, p: p)
        with pytest.raises(ValueError):
            sg.invoke(b"x")

    def test_over_real_orb_members(self, test_api):
        """A distributed sum: one payload scattered to CORBA objects."""
        from tests.conftest import make_store_impl
        from repro.orb import ORB, ORBConfig

        orbs, stubs, impls = [], [], []
        client = ORB(ORBConfig(scheme="loop", collocated_calls=False))
        for _ in range(3):
            orb = ORB(ORBConfig(scheme="loop"))
            impl = make_store_impl(test_api)
            stubs.append(client.string_to_object(
                orb.object_to_string(orb.activate(impl))))
            orbs.append(orb)
            impls.append(impl)
        try:
            data = bytes(range(256)) * 48  # 12 KiB
            sg = ScatterGather(
                members=stubs,
                call=lambda m, p: m.put(ZCOctetSequence.from_data(p)),
                combine=sum)
            total = sg.invoke(data)
            assert total == len(data)  # each member counted its part
            received = b"".join(i.last.tobytes() for i in impls)
            assert received == data
        finally:
            client.shutdown()
            for orb in orbs:
                orb.shutdown()
