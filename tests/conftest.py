"""Shared fixtures: a compiled IDL test service and ORB pairs."""

import pytest

from repro.idl import compile_idl
from repro.orb import ORB, ORBConfig

TEST_IDL = """
module Test {
  exception Failed { string reason; long code; };
  struct Header { string name; unsigned long size; };

  interface Store {
    readonly attribute unsigned long total;
    unsigned long put(in sequence<zc_octet> data) raises (Failed);
    unsigned long put_std(in sequence<octet> data);
    sequence<zc_octet> get(in unsigned long n);
    sequence<octet> get_std(in unsigned long n);
    string describe(in Header h);
    string swap(inout string s);
    oneway void reset();
  };
};
"""


@pytest.fixture(scope="session")
def test_api():
    """The generated Python module for TEST_IDL (stubs, skeletons...)."""
    return compile_idl(TEST_IDL, module_name="_test_store_idl")


def make_store_impl(api):
    from repro.core import OctetSequence, ZCOctetSequence

    import threading

    class StoreImpl(api.Test_Store_skel):
        def __init__(self):
            self._total = 0
            # the server dispatches pipelined requests concurrently, so
            # the accumulator must be atomic for deposit-total checks
            self._mutate = threading.Lock()
            self.last = None
            self.resets = 0

        def _get_total(self):
            return self._total

        def put(self, data):
            if len(data) == 0:
                raise api.Test_Failed(reason="empty", code=7)
            with self._mutate:
                self.last = data
                self._total += len(data)
                return self._total

        def put_std(self, data):
            with self._mutate:
                self.last = data
                self._total += len(data)
                return self._total

        def get(self, n):
            return ZCOctetSequence.from_data(bytes(i % 256
                                                   for i in range(n)))

        def get_std(self, n):
            return OctetSequence(bytes(i % 256 for i in range(n)))

        def describe(self, h):
            return f"{h.name}/{h.size}"

        def swap(self, s):
            return (s.upper(), s[::-1])

        def reset(self):
            self._total = 0
            self.resets += 1

    return StoreImpl()


@pytest.fixture
def store_impl(test_api):
    return make_store_impl(test_api)


@pytest.fixture
def loop_pair(test_api, store_impl):
    """(client_stub, servant, client_orb, server_orb) over loopback."""
    server = ORB(ORBConfig(scheme="loop"))
    client = ORB(ORBConfig(scheme="loop"))
    ref = server.activate(store_impl)
    stub = client.string_to_object(server.object_to_string(ref))
    yield stub, store_impl, client, server
    client.shutdown()
    server.shutdown()


@pytest.fixture
def tcp_pair(test_api, store_impl):
    """Same service over real TCP sockets."""
    server = ORB(ORBConfig(scheme="tcp"))
    client = ORB(ORBConfig(scheme="tcp"))
    ref = server.activate(store_impl)
    stub = client.string_to_object(server.object_to_string(ref))
    yield stub, store_impl, client, server
    client.shutdown()
    server.shutdown()
