"""Smoke tests: every example must run to completion as shipped."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, (
        f"{name} failed:\n{proc.stdout}\n{proc.stderr}")
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "zero-copy upload: 1048576 bytes" in out
    assert "quota enforced across the wire" in out
    assert "done." in out


def test_video_farm_small():
    out = run_example("video_farm.py", "--workers", "2", "--frames", "12")
    assert "zero-copy ORB" in out
    assert "PSNR" in out
    assert "done." in out


def test_cluster_simulation():
    out = run_example("cluster_simulation.py")
    assert "Figure 5" in out
    assert "Figure 6 right" in out
    assert "30% CPU" in out or "CPU" in out
    # the headline numbers appear in the printed tables
    assert "317." in out  # raw TCP saturation
    assert " 51." in out  # CORBA saturation


def test_dynamic_ttcp_loop():
    out = run_example("dynamic_ttcp.py", "--scheme", "loop",
                      "--max-mb", "1")
    assert "real-corba/loop" in out
    assert "zero-copy is" in out


def test_streaming_pipeline():
    out = run_example("streaming_pipeline.py", "--frames", "8")
    assert "name service up" in out
    assert "transcoded to MPEG-4" in out
    assert "done." in out


def test_blob_server():
    out = run_example("blob_server.py", "--size-mb", "4")
    assert "kernel sendfile" in out
    assert "done." in out


def test_telemetry_quickstart():
    out = run_example("telemetry_quickstart.py")
    assert "telemetry: http://" in out
    assert "healthz: ok" in out
    assert "tracing never enabled" in out
    assert "repro-top" in out
    assert "done." in out


def test_pubsub_quickstart():
    out = run_example("pubsub_quickstart.py", "--subs", "3",
                      "--frames", "4")
    assert "subscribed 3 colocated + 1 tcp subscriber" in out
    assert "single-copy fan-out:" in out
    assert "typed event round trip:" in out
    assert "done." in out
