"""TelemetryServer + RuntimeSampler against a bare registry.

ORB-level integration (enable_telemetry, the probe set against live
connections) lives in tests/services/test_monitor.py; this file pins
the HTTP surface and the sampler's failure containment in isolation.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.flightrec import FlightRecorder
from repro.obs.httpexport import RuntimeSampler, TelemetryServer
from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import parse_exposition, samples_by_name


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.headers.get("Content-Type"), resp.read().decode()


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("widgets_total").inc(5)
    return reg


class TestTelemetryServer:
    def test_metrics_endpoint_serves_strict_exposition(self, registry):
        with TelemetryServer(registry) as srv:
            assert srv.port != 0
            ctype, text = _get(srv.url + "/metrics")
            assert "version=0.0.4" in ctype
            by_name = samples_by_name(parse_exposition(text))
            assert by_name["widgets_total"][0].value == 5
            assert srv.scrapes == 1

    def test_healthz_and_custom_document(self, registry):
        with TelemetryServer(registry,
                             health=lambda: {"status": "ok",
                                             "role": "test"}) as srv:
            ctype, text = _get(srv.url + "/healthz")
            assert ctype == "application/json"
            assert json.loads(text) == {"status": "ok", "role": "test"}

    def test_spans_endpoint_serves_schema_v2(self, registry):
        rec = FlightRecorder(slow_threshold=0.0)
        scope = rec.begin_invocation()
        rec.finish(rec.start_client_span("op", scope))
        with TelemetryServer(registry, recorder=rec) as srv:
            _, text = _get(srv.url + "/spans?n=10")
            doc = json.loads(text)
            assert doc["schema"] == 2
            assert [s["name"] for s in doc["spans"]] == ["op"]

    def test_unknown_path_is_404(self, registry):
        with TelemetryServer(registry) as srv:
            with pytest.raises(urllib.error.HTTPError) as exc:
                _get(srv.url + "/nope")
            assert exc.value.code == 404

    def test_scrape_runs_sampler_first(self, registry):
        ticks = []
        sampler = RuntimeSampler(
            registry, [lambda reg: ticks.append(1)], interval=3600)
        with TelemetryServer(registry, sampler=sampler) as srv:
            _get(srv.url + "/metrics")
            _get(srv.url + "/metrics")
        assert len(ticks) == 2  # once per scrape, thread never fired


class TestRuntimeSampler:
    def test_failing_probe_is_quarantined_not_fatal(self, registry):
        calls = []

        def good(reg):
            calls.append("good")
            reg.gauge("fine").set(1)

        def bad(reg):
            calls.append("bad")
            raise RuntimeError("probe exploded")

        sampler = RuntimeSampler(registry, [bad, good], interval=3600)
        sampler.sample()
        sampler.sample()
        # bad ran once, was benched; good kept running
        assert calls == ["bad", "good", "good"]
        assert registry.gauge("sampler_probe_errors").value == 1
        assert registry.gauge("fine").value == 1

    def test_rejects_nonpositive_interval(self, registry):
        with pytest.raises(ValueError):
            RuntimeSampler(registry, [], interval=0)
