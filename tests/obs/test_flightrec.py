"""FlightRecorder: ring/slow-sampling semantics, driven by FakeClock."""

import threading

from repro.obs.events import StageEvent
from repro.obs.flightrec import DEFAULT_SLOW_THRESHOLD, FlightRecorder


def _call(rec, clock, name="op", seconds=0.001, stages=0,
          status=None):
    """Drive one client call of ``seconds`` through the recorder."""
    scope = rec.begin_invocation()
    active = rec.start_client_span(name, scope)
    for i in range(stages):
        rec.emit(StageEvent(stage=f"s{i}", duration_s=0.0001))
    clock.advance(seconds)
    return rec.finish(active, status=status)


class TestRecording:
    def test_fast_call_keeps_header_drops_detail(self, clock):
        rec = FlightRecorder(slow_threshold=0.050, clock=clock)
        span = _call(rec, clock, seconds=0.001, stages=3)
        assert span.duration_s == 0.001
        assert span.stages == []              # detail stripped
        assert rec.counters() == {
            "recorded_total": 1, "slow_sampled": 0,
            "detail_dropped": 1, "ring_spans": 1, "slow_trees": 0}

    def test_slow_call_keeps_full_detail(self, clock):
        rec = FlightRecorder(slow_threshold=0.050, clock=clock)
        span = _call(rec, clock, seconds=0.200, stages=2)
        assert [e.stage for e in span.stages] == ["s0", "s1"]
        (tree,) = rec.slow_trees()
        assert tree == [span]
        assert rec.counters()["slow_sampled"] == 1

    def test_ring_is_bounded(self, clock):
        rec = FlightRecorder(keep=4, clock=clock)
        for i in range(10):
            _call(rec, clock, name=f"op{i}")
        recent = rec.recent()
        assert len(recent) == 4
        assert [s.name for s in recent] == ["op6", "op7", "op8", "op9"]
        assert rec.counters()["recorded_total"] == 10

    def test_nested_spans_travel_with_their_root(self, clock):
        """A server span opened under a live client span (synchronous
        loopback) lands in the same trace and is delivered with the
        root when the root finishes slow."""
        rec = FlightRecorder(slow_threshold=0.050, clock=clock)
        scope = rec.begin_invocation()
        outer = rec.start_client_span("outer", scope)
        inner = rec.start_server_span("handle", request_id=7)
        assert inner.span.trace_id == outer.span.trace_id
        assert inner.span.parent_id == outer.span.span_id
        clock.advance(0.010)
        rec.finish(inner)
        clock.advance(0.100)
        root = rec.finish(outer)
        (tree,) = rec.slow_trees()
        assert {s.name for s in tree} == {"outer", "handle"}
        assert tree[-1] is root
        assert rec.spans()[0].name in ("outer", "handle")

    def test_status_recorded(self, clock):
        rec = FlightRecorder(clock=clock)
        span = _call(rec, clock, status="COMM_FAILURE")
        assert span.status == "COMM_FAILURE"

    def test_disable_stops_stage_capture(self, clock):
        rec = FlightRecorder(slow_threshold=0.0, clock=clock)
        rec.disable()
        assert not rec.enabled
        scope = rec.begin_invocation()
        active = rec.start_client_span("op", scope)
        rec.emit(StageEvent(stage="s", duration_s=0.1))
        assert active.span.stages == []
        rec.enable()
        rec.emit(StageEvent(stage="s", duration_s=0.1))
        assert [e.stage for e in active.span.stages] == ["s"]

    def test_threads_record_independent_traces(self, clock):
        rec = FlightRecorder(clock=clock)
        done = threading.Barrier(2)
        traces = {}

        def run(name):
            scope = rec.begin_invocation()
            active = rec.start_client_span(name, scope)
            done.wait(timeout=2.0)  # both spans open at once
            traces[name] = active.span.trace_id
            rec.finish(active)

        threads = [threading.Thread(target=run, args=(f"t{i}",))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=2.0)
        assert traces["t0"] != traces["t1"]  # no cross-thread nesting
        assert rec.counters()["recorded_total"] == 2

    def test_spans_reader_merges_slow_trees_and_roots(self, clock):
        rec = FlightRecorder(slow_threshold=0.050, clock=clock)
        _call(rec, clock, name="fast", seconds=0.001)
        scope = rec.begin_invocation()
        outer = rec.start_client_span("slow", scope)
        inner = rec.start_server_span("inner")
        clock.advance(0.010)
        rec.finish(inner)
        clock.advance(0.100)
        rec.finish(outer)
        names = [s.name for s in rec.spans()]
        # inner is not a root, but rides in via the slow tree
        assert names == ["fast", "slow", "inner"] or \
            names == ["fast", "inner", "slow"]
        # bounding by root count keeps the matching tree members
        assert {s.name for s in rec.spans(1)} == {"slow", "inner"}

    def test_wire_stages_declined(self):
        """The always-on recorder must never request the split
        control/deposit send path (wire geometry stays untouched)."""
        assert FlightRecorder.wire_stages is False
        assert DEFAULT_SLOW_THRESHOLD == 0.050

    def test_clear(self, clock):
        rec = FlightRecorder(slow_threshold=0.0, clock=clock)
        _call(rec, clock)
        rec.clear()
        assert rec.recent() == []
        assert rec.slow_trees() == []
        assert rec.counters()["recorded_total"] == 1  # lifetime stays
