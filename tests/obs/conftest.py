"""Shared helpers for the observability tests."""

import pytest


class FakeClock:
    """A manually advanced clock, injectable wherever perf_counter goes."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()
