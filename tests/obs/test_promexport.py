"""Prometheus text exposition: renderer and strict parser.

The renderer must emit what a stock Prometheus server accepts; the
parser must reject what it would reject.  The two are exercised
against each other (round-trip) and the parser additionally against
hand-written violations, including the histogram invariants
(cumulative buckets, ``+Inf`` == ``_count``) and label escaping.
"""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import (CONTENT_TYPE, ExpositionError,
                                  parse_exposition, render,
                                  samples_by_name)


def _sample_map(text):
    return samples_by_name(parse_exposition(text))


class TestRender:
    def test_counter_gauge_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", help="total requests",
                    op="put").inc(3)
        reg.counter("requests_total", op="get").inc(1)
        reg.gauge("occupancy").set(0.5)
        text = render(reg)
        assert "# HELP requests_total total requests" in text
        assert "# TYPE requests_total counter" in text
        by_name = _sample_map(text)
        vals = {s.labels_dict["op"]: s.value
                for s in by_name["requests_total"]}
        assert vals == {"put": 3.0, "get": 1.0}
        assert by_name["occupancy"][0].value == 0.5

    def test_histogram_buckets_cumulative_and_terminated(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=[0.01, 0.1, 1.0])
        for v in (0.005, 0.05, 0.05, 5.0):
            h.observe(v)
        by_name = _sample_map(render(reg))
        buckets = {s.labels_dict["le"]: s.value
                   for s in by_name["lat_seconds_bucket"]}
        assert buckets == {"0.01": 1, "0.1": 3, "1": 3, "+Inf": 4}
        assert by_name["lat_seconds_count"][0].value == 4
        assert by_name["lat_seconds_sum"][0].value == pytest.approx(5.105)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        nasty = 'a"b\\c\nd'
        reg.counter("c_total", path=nasty).inc()
        (sample,) = parse_exposition(render(reg))
        assert sample.labels_dict["path"] == nasty

    def test_metric_name_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("weird-name.total").inc()
        (sample,) = parse_exposition(render(reg))
        assert sample.name == "weird_name_total"

    def test_empty_registry_renders_empty(self):
        assert render(MetricsRegistry()) == ""
        assert parse_exposition("") == []

    def test_content_type_pins_format_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestParserRejections:
    @pytest.mark.parametrize("text", [
        "1bad_name 1\n",                       # name starts with digit
        'ok{1bad="x"} 1\n',                    # bad label name
        "ok notanumber\n",                     # bad value lexeme
        'ok{a="b} 1\n',                        # unterminated label value
        "# TYPE ok counter\n# TYPE ok counter\nok 1\n",   # repeated TYPE
        "ok 1\n# TYPE ok counter\nok 2\n",     # TYPE after samples
        "a 1\nb 2\na 3\n",                     # interleaved family
        "# TYPE h histogram\n"                 # missing +Inf bucket
        'h_bucket{le="1"} 1\nh_sum 1\nh_count 1\n',
        "# TYPE h histogram\n"                 # non-cumulative buckets
        'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
        "h_sum 1\nh_count 3\n",
        "# TYPE h histogram\n"                 # +Inf != _count
        'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 4\n'
        "h_sum 1\nh_count 9\n",
    ])
    def test_rejects(self, text):
        with pytest.raises(ExpositionError):
            parse_exposition(text)

    def test_accepts_special_values_and_timestamps(self):
        samples = parse_exposition(
            "a +Inf\nb -Inf\nc NaN\nd 1.5 1700000000000\n")
        assert [s.name for s in samples] == ["a", "b", "c", "d"]


class TestScrapeUnderLoad:
    def test_concurrent_writers_never_break_a_scrape(self):
        """Satellite: writer threads hammer the registry while render()
        loops — every intermediate scrape parses, and counters only
        ever move forward between scrapes."""
        reg = MetricsRegistry()
        reg.counter("hammered_total", op="seed").inc()  # never empty
        stop = threading.Event()
        errors = []

        def writer(tid):
            i = 0
            while not stop.is_set():
                reg.counter("hammered_total", op=f"w{tid}").inc()
                reg.gauge("level", op=f"w{tid}").set(i)
                reg.histogram("lat", op=f"w{tid}",
                              buckets=[0.1, 1.0]).observe(i % 2)
                i += 1

        threads = [threading.Thread(target=writer, args=(t,), daemon=True)
                   for t in range(4)]
        for t in threads:
            t.start()
        try:
            last = {}
            for _ in range(50):
                try:
                    by_name = _sample_map(render(reg))
                except ExpositionError as e:  # pragma: no cover
                    errors.append(e)
                    break
                for s in by_name.get("hammered_total", []):
                    key = s.labels_dict["op"]
                    assert s.value >= last.get(key, 0), \
                        "counter moved backwards between scrapes"
                    last[key] = s.value
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=2.0)
        assert not errors
        assert sum(last.values()) > 1  # the writers actually ran
