"""Distributed tracing end-to-end through the real ORB.

The acceptance scenarios of the tracing PR:

* a two-hop call (client -> frontend servant -> nested naming lookup
  and backend invoke) produces ONE trace whose span tree mirrors the
  call graph — over loopback and over real TCP sockets;
* per-span control/deposit byte attribution agrees with the
  connection-level :class:`ConnStats` totals;
* with tracing disabled (the default) no service context is added to
  the wire — checked at the codec level, on the decoded request;
* unknown service-context tags in a Request are echoed on the Reply
  unmodified (wire-level transparency).
"""

import time

import pytest

from repro.core import OctetSequence, ZCOctetSequence
from repro.giop import (SVC_CTX_TRACE, TRACE_CTX_SIZE, RequestHeader,
                        ServiceContext)
from repro.idl import compile_idl
from repro.obs import SpanCollector, build_span_tree, dump_spans
from repro.obs.cli import main as metrics_cli
from repro.orb import ORB, ORBConfig
from repro.orb.dispatcher import MethodDispatcher
from repro.services.naming import NameClient, start_name_service

FRONT_IDL = """
interface Front {
    unsigned long fetch(in string path, in unsigned long n);
};
"""

_front_api = None


def _front():
    global _front_api
    if _front_api is None:
        _front_api = compile_idl(FRONT_IDL, module_name="_dtrace_front_idl")
    return _front_api


def _wait_spans(collector, n, timeout=5.0):
    """Server spans finish on pump threads; wait for them to land."""
    deadline = time.monotonic() + timeout
    while len(collector) < n and time.monotonic() < deadline:
        time.sleep(0.005)
    return collector.spans


def _traced_orb(scheme, collector, seed, server=True):
    cfg = ORBConfig(scheme=scheme) if server else \
        ORBConfig(scheme=scheme, collocated_calls=False)
    orb = ORB(cfg)
    orb.enable_tracing(distributed=True, collector=collector,
                       trace_seed=seed)
    return orb


@pytest.fixture
def traced_pair(test_api, store_impl):
    orbs = []

    def make(scheme="loop", collector=None):
        collector = collector or SpanCollector()
        server = _traced_orb(scheme, collector, seed=1)
        client = _traced_orb(scheme, collector, seed=2, server=False)
        orbs.extend([client, server])
        ref = server.activate(store_impl)
        stub = client.string_to_object(server.object_to_string(ref))
        return stub, collector, client, server

    yield make
    for orb in orbs:
        orb.shutdown()


class TestSingleHop:
    @pytest.mark.parametrize("scheme", ["loop", "tcp"])
    def test_client_server_span_pair(self, traced_pair, scheme):
        stub, collector, client, server = traced_pair(scheme)
        stub.put_std(OctetSequence(b"hello"))
        spans = _wait_spans(collector, 2)
        assert {s.kind for s in spans} == {"client", "server"}
        assert len({s.trace_id for s in spans}) == 1
        srv = next(s for s in spans if s.kind == "server")
        cli = next(s for s in spans if s.kind == "client")
        assert srv.parent_id == cli.span_id
        assert srv.request_id == cli.request_id
        assert cli.status == "NO_EXCEPTION"
        assert srv.status == "NO_EXCEPTION"
        assert cli.node == f"orb{client.orb_id}"
        assert srv.node == f"orb{server.orb_id}"
        # the client span saw all six Fig. 7 stages
        stages = [e.stage for e in cli.stages]
        assert stages == ["marshal", "control-send", "deposit-send",
                          "server-wait", "deposit-recv", "demarshal"]

    def test_user_exception_status(self, traced_pair, test_api):
        stub, collector, _, _ = traced_pair("loop")
        with pytest.raises(test_api.Test_Failed):
            stub.put(ZCOctetSequence.from_data(b""))
        srv = next(s for s in collector.spans if s.kind == "server")
        cli = next(s for s in collector.spans if s.kind == "client")
        assert srv.status == "USER_EXCEPTION"
        assert cli.status == "Test_Failed"

    def test_separate_calls_get_separate_traces(self, traced_pair):
        stub, collector, _, _ = traced_pair("loop")
        stub.put_std(OctetSequence(b"a"))
        stub.put_std(OctetSequence(b"b"))
        assert len(collector.trace_ids()) == 2


class TestTwoHop:
    """client C -> Front servant on M -> naming + Store on backend B."""

    @pytest.mark.parametrize("scheme", ["loop", "tcp"])
    def test_one_trace_spanning_three_orbs(self, test_api, store_impl,
                                           scheme, tmp_path):
        front_api = _front()
        collector = SpanCollector()
        backend = _traced_orb(scheme, collector, seed=11)
        middle = _traced_orb(scheme, collector, seed=12)
        client = _traced_orb(scheme, collector, seed=13, server=False)
        try:
            root = start_name_service(backend)
            store_ref = backend.activate(store_impl)
            NameClient(root).bind("store", store_ref)
            root_at_m = middle.string_to_object(
                backend.object_to_string(root))

            class FrontImpl(front_api.Front_skel):
                def fetch(self, path, n):
                    ref = NameClient(root_at_m).resolve(path)
                    store = ref._narrow(test_api.Test_Store)
                    return len(store.get_std(n))

            front_ref = middle.activate(FrontImpl())
            stub = client.string_to_object(
                middle.object_to_string(front_ref))

            assert stub.fetch("store", 64) == 64

            spans = _wait_spans(collector, 6)
            assert len(spans) == 6
            trace_ids = {s.trace_id for s in spans}
            assert len(trace_ids) == 1, "one logical call => one trace"
            forest = build_span_tree(spans)
            roots = forest[trace_ids.pop()]
            assert len(roots) == 1
            root_node = roots[0]
            assert (root_node.span.kind, root_node.span.name) == \
                ("client", "fetch")
            assert root_node.span.node == f"orb{client.orb_id}"

            (srv_fetch,) = root_node.children
            assert (srv_fetch.span.kind, srv_fetch.span.name) == \
                ("server", "fetch")
            assert srv_fetch.span.node == f"orb{middle.orb_id}"

            # the servant's nested calls parent under its server span
            nested = [(c.span.kind, c.span.name)
                      for c in srv_fetch.children]
            assert ("client", "resolve") in nested
            assert ("client", "get_std") in nested
            for child in srv_fetch.children:
                (grand,) = child.children
                assert grand.span.kind == "server"
                assert grand.span.name == child.span.name
                assert grand.span.node == f"orb{backend.orb_id}"

            # the dump round-trips through the CLI: check + tree render
            dump_path = str(tmp_path / f"spans-{scheme}.json")
            dump_spans(collector, dump_path)
            assert metrics_cli(["check", dump_path]) == 0
            assert metrics_cli(["tree", dump_path]) == 0
        finally:
            client.shutdown()
            middle.shutdown()
            backend.shutdown()


class TestByteAttribution:
    def test_client_span_totals_match_connstats(self, traced_pair):
        """Per-span control/deposit byte split, summed over every
        client span, must equal the connection-level ConnStats —
        the two accountings observe the same wire."""
        stub, collector, client, _ = traced_pair("loop")
        stub.put(ZCOctetSequence.from_data(bytes(32 * 1024)))
        stub.put_std(OctetSequence(bytes(4 * 1024)))
        assert len(bytes(stub.get(16 * 1024))) == 16 * 1024
        assert stub.total == 36 * 1024

        proxy = next(iter(client._proxies.values()))
        stats = proxy.stats
        cli_spans = [s for s in collector.spans if s.kind == "client"]
        assert len(cli_spans) == 4
        assert sum(s.control_bytes_sent for s in cli_spans) == \
            stats.bytes_sent
        assert sum(s.control_bytes_recv for s in cli_spans) == \
            stats.bytes_received
        assert sum(s.deposit_bytes_sent for s in cli_spans) == \
            stats.deposit_bytes_sent == 32 * 1024
        assert sum(s.deposit_bytes_recv for s in cli_spans) == \
            stats.deposit_bytes_received == 16 * 1024
        # time was attributed to both paths
        assert all(s.control_seconds > 0 for s in cli_spans)


class TestWireHygiene:
    @pytest.fixture
    def dispatch_spy(self, monkeypatch):
        """Captures the service contexts of every DECODED request —
        i.e. exactly what the wire carried, after the codec."""
        seen = []
        orig = MethodDispatcher.dispatch

        def spy(self, conn, rm):
            seen.append(list(rm.msg.body_header.service_contexts))
            return orig(self, conn, rm)

        monkeypatch.setattr(MethodDispatcher, "dispatch", spy)
        return seen

    def test_disabled_tracing_adds_zero_contexts(self, dispatch_spy,
                                                 loop_pair):
        stub, _, _, _ = loop_pair
        stub.put_std(OctetSequence(b"quiet"))
        assert dispatch_spy[-1] == []

    def test_enabled_tracing_adds_exactly_one_context(self, dispatch_spy,
                                                      traced_pair):
        stub, _, _, _ = traced_pair("loop")
        stub.put_std(OctetSequence(b"traced"))
        contexts = dispatch_spy[-1]
        assert [sc.context_id for sc in contexts] == [SVC_CTX_TRACE]
        assert len(contexts[0].data) == TRACE_CTX_SIZE

    def test_unknown_request_context_echoed_on_reply(self, loop_pair):
        """A tag the server does not understand must come back on the
        Reply byte-identical (wire-level interop contract)."""
        from repro.giop import MsgType, ReplyStatus
        from repro.orb.connection import GIOPConn
        from repro.transport.base import registry as default_registry

        stub, _, _, server = loop_pair
        key = stub.ior.iiop_profile().object_key
        stream = default_registry().get("loop").connect(server.endpoint)
        conn = GIOPConn(stream)
        try:
            foreign = ServiceContext(0x4242, b"opaque-blob")
            req = RequestHeader(request_id=conn.next_request_id(),
                                object_key=key,
                                operation="_non_existent",
                                service_contexts=[foreign])
            conn.send_message(req)
            # the reply leaves the server's worker pool asynchronously;
            # loopback reads never block, so wait for it to be queued
            deadline = time.monotonic() + 5.0
            while stream.available == 0 and time.monotonic() < deadline:
                time.sleep(0.001)
            rm = conn.read_message()
            assert rm.header.msg_type is MsgType.Reply
            reply = rm.msg.body_header
            assert reply.request_id == req.request_id
            assert reply.reply_status is ReplyStatus.NO_EXCEPTION
            assert foreign in reply.service_contexts
            # the server adds nothing of its own when untraced
            assert [sc.context_id for sc in reply.service_contexts] == \
                [0x4242]
        finally:
            conn.close()
