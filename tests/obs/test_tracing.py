"""TracingInterceptor + WireTracer: unit behaviour and the live
six-stage breakdown of a real loopback invocation (paper Fig. 7)."""

import pytest

from repro.core import ZCOctetSequence
from repro.obs import (CLIENT_STAGES, STAGE_DEPOSIT_RECV, STAGE_DEPOSIT_SEND,
                       STAGE_MARSHAL, StageEvent, TracingInterceptor,
                       WireEvent, WireTracer, format_wire_event)
from repro.orb.interceptors import RequestInfo


def _info(op="put", **kw):
    return RequestInfo(operation=op, object_key=b"k", **kw)


# -- unit: the interceptor drives timer + registry ---------------------------

def test_client_points_commit_a_breakdown_into_metrics(clock):
    tracer = TracingInterceptor(clock=clock)
    tracer.send_request(_info())
    tracer.timer.emit(StageEvent(stage=STAGE_MARSHAL, duration_s=0.002,
                                 nbytes=64))
    info = _info(request_id=5)
    info.reply_status = "NO_EXCEPTION"
    tracer.receive_reply(info)

    rec = tracer.last
    assert rec.request_id == 5
    assert rec.duration_s(STAGE_MARSHAL) == 0.002
    reg = tracer.registry
    assert reg.get("invocations_total", operation="put").value == 1
    assert reg.get("invocation_errors_total", operation="put") is None
    assert reg.get("stage_seconds", stage=STAGE_MARSHAL).count == 1
    assert reg.get("stage_bytes_total", stage=STAGE_MARSHAL).value == 64
    assert reg.get("stage_payload_bytes", stage=STAGE_MARSHAL).count == 1


def test_error_replies_count_separately(clock):
    tracer = TracingInterceptor(clock=clock)
    tracer.send_request(_info())
    info = _info()
    info.reply_status = "SYSTEM_EXCEPTION"
    tracer.receive_reply(info)
    reg = tracer.registry
    assert reg.get("invocations_total", operation="put").value == 1
    assert reg.get("invocation_errors_total", operation="put").value == 1


def test_server_points_time_the_upcall(clock):
    tracer = TracingInterceptor(clock=clock)
    info = _info("get")
    tracer.receive_request(info)
    clock.advance(0.125)
    info.reply_status = "NO_EXCEPTION"
    tracer.send_reply(info)
    reg = tracer.registry
    assert reg.get("server_requests_total", operation="get").value == 1
    hist = reg.get("server_handle_seconds", operation="get")
    assert hist.count == 1
    assert hist.sum == pytest.approx(0.125)
    assert reg.get("server_errors_total", operation="get") is None


def test_wire_tracer_keeps_only_wire_events():
    wt = WireTracer(keep=2)
    wt.emit(StageEvent(stage=STAGE_MARSHAL, duration_s=0.0))
    for i in range(3):
        wt.emit(WireEvent(direction="send", msg_type="Request", size=i,
                          request_id=i))
    assert [e.size for e in wt.records] == [1, 2]  # bounded ring
    assert all("Request" in line for line in wt.lines())


def test_format_wire_event_shows_fragments_and_deposits():
    line = format_wire_event(WireEvent(
        direction="send", msg_type="Request", size=80, request_id=1,
        fragments=3, deposits=((1, 4096), (2, 8192))))
    assert "send" in line and "Request" in line
    assert "id=1" in line and "size=80" in line
    assert "frags=3" in line
    assert "deposits=[1:4096,2:8192]" in line
    plain = format_wire_event(WireEvent(direction="recv", msg_type="Reply",
                                        size=12))
    assert "id=-" in plain
    assert "frags" not in plain and "deposits" not in plain


# -- live: a real loopback round trip produces the paper's stages ------------

def test_live_breakdown_has_all_six_stages(loop_pair):
    stub, impl, client, server = loop_pair
    tracer = client.enable_tracing(wire=True)
    server.enable_tracing()
    client.config.collocated_calls = False

    payload = bytes(range(256)) * 64  # 16 KiB
    total = stub.put(ZCOctetSequence.from_data(payload))
    assert total == len(payload)

    rec = tracer.last
    assert rec is not None
    assert rec.operation == "put"
    assert rec.reply_status == "NO_EXCEPTION"
    # all six Fig. 7 stages, in wire order, non-negative durations
    assert rec.stage_order() == list(CLIENT_STAGES)
    assert rec.in_paper_order
    assert all(e.duration_s >= 0.0 for e in rec.stages)
    # the data path carried exactly the zero-copy payload
    assert rec.nbytes(STAGE_DEPOSIT_SEND) == len(payload)
    assert rec.nbytes(STAGE_DEPOSIT_RECV) == 0  # ulong reply, no deposit

    # the wire log saw the request's deposit descriptor
    send_lines = [ln for ln in tracer.wire.lines() if "Request" in ln]
    assert any(f"deposits=[1:{len(payload)}]" in ln for ln in send_lines)

    reg = tracer.registry
    assert reg.get("invocations_total", operation="put").value == 1
    assert reg.get("stage_bytes_total",
                   stage=STAGE_DEPOSIT_SEND).value == len(payload)


def test_live_breakdown_reply_deposits(loop_pair):
    stub, impl, client, server = loop_pair
    tracer = client.enable_tracing()
    client.config.collocated_calls = False

    n = 8192
    data = stub.get(n)
    assert len(data) == n
    rec = tracer.last
    assert rec.operation == "get"
    # the reply's zero-copy result landed on the data path
    assert rec.nbytes(STAGE_DEPOSIT_RECV) == n
    assert rec.nbytes(STAGE_DEPOSIT_SEND) == 0


def test_live_breakdown_under_fragmentation(loop_pair):
    stub, impl, client, server = loop_pair
    client.config.fragment_size = 64
    tracer = client.enable_tracing(wire=True)
    client.config.collocated_calls = False

    payload = b"\xab" * 4096
    stub.put(ZCOctetSequence.from_data(payload))
    rec = tracer.last
    assert rec.stage_order() == list(CLIENT_STAGES)
    assert rec.nbytes(STAGE_DEPOSIT_SEND) == len(payload)
    sends = [e for e in tracer.wire.records
             if e.direction == "send" and e.msg_type == "Request"]
    assert sends and sends[0].fragments > 1


def test_server_side_metrics_from_live_call(loop_pair):
    stub, impl, client, server = loop_pair
    client.enable_tracing()
    srv_tracer = server.enable_tracing()
    client.config.collocated_calls = False

    stub.put(ZCOctetSequence.from_data(b"x" * 1024))
    reg = srv_tracer.registry
    assert reg.get("server_requests_total", operation="put").value == 1
    assert reg.get("server_handle_seconds", operation="put").count == 1
