"""Event sinks and stage spans: the structured on_bytes replacement."""

import pytest

from repro.obs import (ByteEvent, CallbackSink, CompositeSink, EventSink,
                       NullSink, RecordingSink, StageEvent, WireEvent,
                       stage_span)
from repro.obs.events import _NULL_SPAN


def test_stage_span_measures_with_injected_clock(clock):
    sink = RecordingSink(clock=clock)
    with sink.stage("marshal") as span:
        clock.advance(0.25)
        span.add_bytes(100)
        span.add_bytes(28)
    (event,) = sink.events
    assert event == StageEvent(stage="marshal", duration_s=0.25, nbytes=128)


def test_stage_span_emits_even_on_error(clock):
    sink = RecordingSink(clock=clock)
    with pytest.raises(RuntimeError):
        with sink.stage("control-send") as span:
            clock.advance(0.5)
            span.add_bytes(7)
            raise RuntimeError("wire died")
    (event,) = sink.events
    assert event.stage == "control-send"
    assert event.duration_s == 0.5
    assert event.nbytes == 7


def test_stage_span_without_sink_is_shared_noop():
    # the hot path must not allocate per message
    a = stage_span(None, "marshal")
    b = stage_span(None, "demarshal")
    assert a is b is _NULL_SPAN
    with a as span:
        span.add_bytes(10)  # swallowed


def test_on_bytes_adapter_emits_byte_events():
    sink = RecordingSink()
    sink.on_bytes("marshal", 42)
    sink.on_bytes("deposit-send", 4096)
    assert sink.events == [ByteEvent(kind="marshal", nbytes=42),
                           ByteEvent(kind="deposit-send", nbytes=4096)]


def test_recording_sink_filters_and_clears():
    sink = RecordingSink()
    sink.emit(ByteEvent(kind="marshal", nbytes=1))
    sink.emit(StageEvent(stage="marshal", duration_s=0.0))
    sink.emit(WireEvent(direction="send", msg_type="Request", size=10))
    assert len(sink.of_type(StageEvent)) == 1
    assert len(sink.of_type(ByteEvent)) == 1
    sink.clear()
    assert sink.events == []


def test_composite_sink_fans_out_and_uses_first_clock(clock):
    a = RecordingSink(clock=clock)
    b = RecordingSink()
    combo = CompositeSink([a, b])
    assert combo.clock is clock
    combo.emit(ByteEvent(kind="marshal", nbytes=3))
    assert a.events == b.events == [ByteEvent(kind="marshal", nbytes=3)]
    with combo.stage("marshal"):
        clock.advance(1.0)
    assert a.of_type(StageEvent)[0].duration_s == 1.0
    assert b.of_type(StageEvent)[0].duration_s == 1.0


def test_callback_sink_forwards_only_byte_events():
    calls = []
    sink = CallbackSink(lambda kind, n: calls.append((kind, n)))
    sink.emit(ByteEvent(kind="marshal-bulk", nbytes=9))
    sink.emit(StageEvent(stage="marshal", duration_s=0.1, nbytes=5))
    sink.emit(WireEvent(direction="recv", msg_type="Reply", size=1))
    assert calls == [("marshal-bulk", 9)]


def test_null_and_base_sinks_discard():
    for sink in (NullSink(), EventSink()):
        sink.emit(ByteEvent(kind="marshal", nbytes=1))
        sink.on_bytes("marshal", 1)  # no error, no state


def test_wire_stages_defaults_true_composes_any():
    """wire_stages governs whether the connection layer splits the
    control/deposit gather-write; a composite wants the split iff any
    member does, and the flight recorder never does."""
    from repro.obs import FlightRecorder

    assert EventSink().wire_stages is True
    assert NullSink().wire_stages is True
    rec = FlightRecorder()
    assert rec.wire_stages is False
    assert CompositeSink([rec]).wire_stages is False
    assert CompositeSink([rec, NullSink()]).wire_stages is True
    assert CompositeSink([]).wire_stages is False
