"""Unit tests for repro.obs.dtrace: contexts, spans, trees, tracer."""

import pytest

from repro.giop import SVC_CTX_TRACE, ServiceContext
from repro.obs import (STAGE_CONTROL_SEND, STAGE_DEPOSIT_RECV,
                       STAGE_DEPOSIT_SEND, STAGE_MARSHAL, STAGE_SERVER_WAIT,
                       MetricsRegistry, Span, SpanCollector, StageEvent,
                       TraceContext, build_span_tree, extract_trace_context,
                       render_span_tree, spans_to_dict)
from repro.obs.cli import validate_span_dump
from repro.obs.dtrace import DistributedTracer, InvocationScope

T1 = "0123456789abcdef0123456789abcdef"
S1 = "00000000000000aa"
S2 = "00000000000000bb"


def _span(trace=T1, span=S1, parent=None, name="op", kind="client",
          start=0.0, end=1.0, stages=()):
    s = Span(trace_id=trace, span_id=span, parent_id=parent, name=name,
             kind=kind, start_s=start)
    s.end_s = end
    s.stages = list(stages)
    return s


class TestTraceContext:
    def test_encode_decode_round_trip(self):
        ctx = TraceContext(trace_id=T1, span_id=S1, sampled=True)
        assert TraceContext.decode(ctx.encode()) == ctx

    def test_service_context_tag(self):
        sc = TraceContext(trace_id=T1, span_id=S1).to_service_context()
        assert sc.context_id == SVC_CTX_TRACE
        assert extract_trace_context([sc]).trace_id == T1

    def test_extract_absent(self):
        assert extract_trace_context([]) is None
        assert extract_trace_context(
            [ServiceContext(0x4242, b"other")]) is None

    def test_extract_malformed_is_absent(self):
        """A colliding foreign tag must not break dispatch."""
        bad = ServiceContext(SVC_CTX_TRACE, b"not a trace context")
        assert extract_trace_context([bad]) is None


class TestSpan:
    def test_control_deposit_byte_split(self):
        s = _span(stages=[
            StageEvent(stage=STAGE_MARSHAL, duration_s=0.1, nbytes=100),
            StageEvent(stage=STAGE_CONTROL_SEND, duration_s=0.2, nbytes=60),
            StageEvent(stage=STAGE_DEPOSIT_SEND, duration_s=0.3,
                       nbytes=4096),
            StageEvent(stage=STAGE_SERVER_WAIT, duration_s=0.4, nbytes=30),
            StageEvent(stage=STAGE_DEPOSIT_RECV, duration_s=0.5, nbytes=512),
        ])
        assert s.control_bytes_sent == 60
        assert s.control_bytes_recv == 30
        assert s.deposit_bytes_sent == 4096
        assert s.deposit_bytes_recv == 512
        assert s.control_seconds == pytest.approx(0.6)
        assert s.deposit_seconds == pytest.approx(0.8)
        assert s.stage_s(STAGE_MARSHAL) == pytest.approx(0.1)
        assert s.stage_bytes(STAGE_MARSHAL) == 100

    def test_dict_round_trip(self):
        s = _span(parent=S2, start=2.0, end=2.5, stages=[
            StageEvent(stage=STAGE_CONTROL_SEND, duration_s=0.1, nbytes=40)])
        s.status = "NO_EXCEPTION"
        s.request_id = 17
        out = Span.from_dict(s.as_dict())
        assert out.as_dict() == s.as_dict()
        assert out.duration_s == pytest.approx(0.5)

    def test_dump_validates_as_schema_v2(self):
        doc = spans_to_dict([_span(), _span(span=S2, kind="server",
                                            parent=S1)])
        assert doc["schema"] == 2
        assert validate_span_dump(doc) == []

    def test_validator_rejects_malformed(self):
        doc = spans_to_dict([_span()])
        doc["spans"][0]["trace_id"] = "zz"
        assert any("trace_id" in p for p in validate_span_dump(doc))
        assert any("schema" in p
                   for p in validate_span_dump({"schema": 1, "spans": []}))


class TestSpanCollector:
    def test_bounded_keep(self):
        col = SpanCollector(keep=3)
        for i in range(5):
            col.add(_span(span=f"{i:016x}"))
        assert len(col) == 3
        assert [s.span_id for s in col.spans] == \
            [f"{i:016x}" for i in (2, 3, 4)]

    def test_for_trace_and_trace_ids(self):
        col = SpanCollector()
        other = "f" * 32
        col.add(_span())
        col.add(_span(trace=other, span=S2))
        col.add(_span(span=S2))
        assert len(col.for_trace(T1)) == 2
        assert col.trace_ids() == [T1, other]
        col.clear()
        assert len(col) == 0


class TestDistributedTracer:
    def test_ids_are_seeded_and_nonzero(self):
        a = DistributedTracer(seed=5)
        b = DistributedTracer(seed=5)
        assert a.new_trace_id() == b.new_trace_id()
        assert int(a.new_span_id(), 16) != 0

    def test_top_level_scope_roots_new_trace(self):
        tracer = DistributedTracer(seed=1)
        scope = tracer.begin_invocation()
        assert scope.parent_id is None
        assert scope.sampled is True

    def test_nested_scope_joins_active_span(self):
        tracer = DistributedTracer(seed=1)
        scope = tracer.begin_invocation()
        active = tracer.start_client_span("outer", scope)
        inner = tracer.begin_invocation()
        assert inner.trace_id == scope.trace_id
        assert inner.parent_id == active.span.span_id
        tracer.finish(active)
        assert tracer.current_context() is None

    def test_retry_keeps_trace_id_fresh_span_id(self):
        tracer = DistributedTracer(seed=1)
        scope = tracer.begin_invocation()
        first = tracer.start_client_span("op", scope)
        tracer.finish(first, status="COMM_FAILURE")
        second = tracer.start_client_span("op", scope)
        tracer.finish(second, status="NO_EXCEPTION")
        spans = tracer.collector.spans
        assert [s.trace_id for s in spans] == [scope.trace_id] * 2
        assert spans[0].span_id != spans[1].span_id
        assert [s.status for s in spans] == ["COMM_FAILURE", "NO_EXCEPTION"]

    def test_server_span_joins_incoming_context(self):
        tracer = DistributedTracer(seed=2)
        ctx = TraceContext(trace_id=T1, span_id=S1)
        active = tracer.start_server_span("op", ctx, request_id=4)
        span = tracer.finish(active)
        assert span.trace_id == T1
        assert span.parent_id == S1
        assert span.kind == "server"
        assert span.request_id == 4

    def test_server_span_without_context_roots_trace(self):
        tracer = DistributedTracer(seed=2)
        span = tracer.finish(tracer.start_server_span("op", None))
        assert span.parent_id is None

    def test_stage_events_go_to_innermost_span(self):
        tracer = DistributedTracer(seed=3)
        outer = tracer.start_client_span("outer",
                                         tracer.begin_invocation())
        inner = tracer.start_client_span("inner",
                                         tracer.begin_invocation())
        tracer.emit(StageEvent(stage=STAGE_MARSHAL, duration_s=0.1,
                               nbytes=8))
        tracer.finish(inner)
        tracer.emit(StageEvent(stage=STAGE_MARSHAL, duration_s=0.2,
                               nbytes=9))
        tracer.finish(outer)
        assert [e.nbytes for e in inner.span.stages] == [8]
        assert [e.nbytes for e in outer.span.stages] == [9]

    def test_unsampled_trace_not_recorded_but_propagated(self):
        tracer = DistributedTracer(seed=4, sample_rate=0.0)
        scope = tracer.begin_invocation()
        assert scope.sampled is False
        active = tracer.start_client_span("op", scope)
        assert active.context.sampled is False  # flag rides the wire
        assert tracer.finish(active) is None
        assert len(tracer.collector) == 0

    def test_bad_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            DistributedTracer(sample_rate=1.5)

    def test_finish_tolerates_corrupted_stack(self):
        tracer = DistributedTracer(seed=5)
        outer = tracer.start_client_span("outer",
                                         tracer.begin_invocation())
        tracer.start_client_span("leaked", tracer.begin_invocation())
        tracer.finish(outer)  # leaked span above it is discarded
        assert tracer.current_context() is None

    def test_metrics_recorded_on_finish(self):
        reg = MetricsRegistry()
        tracer = DistributedTracer(seed=6, registry=reg)
        active = tracer.start_client_span("op", tracer.begin_invocation())
        tracer.emit(StageEvent(stage=STAGE_CONTROL_SEND, duration_s=0.1,
                               nbytes=64))
        tracer.finish(active)
        assert reg.get("spans_total", kind="client",
                       operation="op").value == 1
        assert reg.get("span_control_bytes_total",
                       kind="client").value == 64
        assert reg.get("span_seconds", kind="client").count == 1


class TestSpanTree:
    def _family(self):
        root = _span(span=S1, name="fetch", start=0.0)
        child = _span(span=S2, parent=S1, name="resolve", kind="server",
                      start=0.2)
        grand = _span(span="00000000000000cc", parent=S2, name="get",
                      start=0.4)
        return [child, grand, root]  # deliberately out of order

    def test_build_parents_and_sorts(self):
        forest = build_span_tree(self._family())
        roots = forest[T1]
        assert [r.span.name for r in roots] == ["fetch"]
        assert roots[0].children[0].span.name == "resolve"
        assert roots[0].children[0].children[0].span.name == "get"

    def test_orphan_becomes_root(self):
        orphan = _span(span=S2, parent="dead0000dead0000")
        forest = build_span_tree([orphan])
        assert forest[T1][0].span is orphan

    def test_render_shows_hierarchy_and_byte_split(self):
        spans = self._family()
        spans[0].stages = [StageEvent(stage=STAGE_CONTROL_SEND,
                                      duration_s=0.1, nbytes=2048)]
        text = render_span_tree(spans)
        assert f"trace {T1}" in text
        assert "(3 spans" in text
        assert "`-- client fetch" in text
        assert "|" not in text.split("\n")[1][0]  # single root
        assert "ctl 2.0KiB/0B" in text
        # nesting depth encoded in indentation
        lines = text.splitlines()
        assert lines[2].startswith("    `-- server resolve")
        assert lines[3].startswith("        `-- client get")

    def test_render_empty(self):
        assert render_span_tree([]) == ""


class TestInvocationScope:
    def test_frozen(self):
        scope = InvocationScope(trace_id=T1, parent_id=None, sampled=True)
        with pytest.raises(AttributeError):
            scope.trace_id = "x"
