"""StageTimer grouping and the per-invocation breakdown record."""

import pytest

from repro.obs import (CLIENT_STAGES, STAGE_CONTROL_SEND, STAGE_DEMARSHAL,
                       STAGE_DEPOSIT_RECV, STAGE_DEPOSIT_SEND, STAGE_MARSHAL,
                       STAGE_RECV_WAIT, STAGE_SERVER_WAIT, ByteEvent,
                       InvocationBreakdown, StageEvent, StageTimer)


def _ev(stage, dur=0.0, nbytes=0):
    return StageEvent(stage=stage, duration_s=dur, nbytes=nbytes)


def test_client_stages_are_the_papers_six_in_wire_order():
    assert CLIENT_STAGES == ("marshal", "control-send", "deposit-send",
                             "server-wait", "deposit-recv", "demarshal")


def test_timer_groups_stages_between_begin_and_commit(clock):
    timer = StageTimer(clock=clock)
    timer.begin("put")
    for stage in CLIENT_STAGES:
        timer.emit(_ev(stage, dur=0.1, nbytes=10))
    rec = timer.commit(request_id=7, reply_status="NO_EXCEPTION")
    assert rec is timer.last
    assert rec.operation == "put"
    assert rec.request_id == 7
    assert rec.reply_status == "NO_EXCEPTION"
    assert rec.stage_order() == list(CLIENT_STAGES)
    assert rec.in_paper_order
    assert rec.total_s == sum(e.duration_s for e in rec.stages)


def test_events_outside_an_invocation_go_loose(clock):
    timer = StageTimer(clock=clock)
    timer.emit(_ev(STAGE_RECV_WAIT, dur=0.2))  # server-side wait
    timer.begin("get")
    timer.emit(_ev(STAGE_MARSHAL))
    rec = timer.commit()
    assert [e.stage for e in rec.stages] == [STAGE_MARSHAL]
    loose = timer.take_loose()
    assert [e.stage for e in loose] == [STAGE_RECV_WAIT]
    assert timer.take_loose() == []


def test_commit_without_begin_returns_none(clock):
    timer = StageTimer(clock=clock)
    assert timer.commit() is None
    assert timer.last is None


def test_abandon_drops_the_open_record(clock):
    timer = StageTimer(clock=clock)
    timer.begin("put")
    timer.emit(_ev(STAGE_MARSHAL))
    timer.abandon()
    assert timer.commit() is None
    assert timer.last is None


def test_timer_ignores_non_stage_events(clock):
    timer = StageTimer(clock=clock)
    timer.begin("put")
    timer.emit(ByteEvent(kind="marshal", nbytes=4))
    rec = timer.commit()
    assert rec.stages == []


def test_records_ring_is_bounded(clock):
    timer = StageTimer(clock=clock, keep=3)
    for i in range(5):
        timer.begin(f"op{i}")
        timer.commit()
    assert [r.operation for r in timer.records] == ["op2", "op3", "op4"]


def test_breakdown_aggregates_repeated_stages():
    rec = InvocationBreakdown(operation="put", stages=[
        _ev(STAGE_CONTROL_SEND, dur=0.1, nbytes=50),
        _ev(STAGE_CONTROL_SEND, dur=0.2, nbytes=30),
        _ev(STAGE_DEPOSIT_SEND, dur=0.3, nbytes=4096),
    ])
    assert rec.duration_s(STAGE_CONTROL_SEND) == pytest.approx(0.3)
    assert rec.nbytes(STAGE_CONTROL_SEND) == 80
    assert rec.nbytes(STAGE_DEPOSIT_SEND) == 4096
    assert rec.duration_s(STAGE_DEMARSHAL) == 0.0


def test_paper_order_check_detects_inversions():
    ok = InvocationBreakdown(operation="x", stages=[
        _ev(STAGE_MARSHAL), _ev(STAGE_SERVER_WAIT), _ev(STAGE_DEMARSHAL)])
    assert ok.in_paper_order
    bad = InvocationBreakdown(operation="x", stages=[
        _ev(STAGE_DEMARSHAL), _ev(STAGE_MARSHAL)])
    assert not bad.in_paper_order
    # non-client stages never affect the check
    mixed = InvocationBreakdown(operation="x", stages=[
        _ev(STAGE_RECV_WAIT), _ev(STAGE_MARSHAL), _ev(STAGE_DEPOSIT_RECV)])
    assert mixed.in_paper_order


def test_as_dict_is_json_shaped():
    rec = InvocationBreakdown(operation="put", request_id=3,
                              reply_status="NO_EXCEPTION",
                              stages=[_ev(STAGE_MARSHAL, 0.5, 8)])
    d = rec.as_dict()
    assert d["operation"] == "put"
    assert d["request_id"] == 3
    assert d["total_s"] == 0.5
    assert d["stages"] == [{"stage": "marshal", "duration_s": 0.5,
                            "nbytes": 8}]
