"""repro-metrics diff + the shared table renderer."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import to_dict
from repro.obs.metrics import MetricsRegistry
from repro.obs.tables import format_table


def _dump(path, build):
    reg = MetricsRegistry()
    build(reg)
    path.write_text(json.dumps(to_dict(reg)))
    return str(path)


class TestFormatTable:
    def test_widths_follow_content(self):
        text = format_table(["name", "v"],
                            [["a_very_long_series_name", "1"],
                             ["b", "12345"]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
        assert lines[2].endswith("    1")   # right-aligned number
        assert lines[3].startswith("b ")    # left-aligned name

    def test_rejects_ragged_rows_and_bad_align(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
        with pytest.raises(ValueError):
            format_table(["a"], [], align="x")


class TestDiff:
    def test_counter_gauge_histogram_deltas(self, tmp_path, capsys):
        a = _dump(tmp_path / "a.json", lambda r: (
            r.counter("calls_total", op="put").inc(10),
            r.gauge("occupancy").set(3),
            r.histogram("lat", buckets=[1.0]).observe(0.5)))
        b = _dump(tmp_path / "b.json", lambda r: (
            r.counter("calls_total", op="put").inc(25),
            r.gauge("occupancy").set(7),
            [r.histogram("lat", buckets=[1.0]).observe(0.5)
             for _ in range(3)]))
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "calls_total{op=put}" in out and "+15" in out
        assert "3 -> 7" in out                  # gauge old -> new
        assert "lat count" in out and "+2" in out
        assert "lat sum" in out and "+1" in out
        assert "changed" in out

    def test_added_removed_and_unchanged(self, tmp_path, capsys):
        a = _dump(tmp_path / "a.json", lambda r: (
            r.counter("stays").inc(4), r.counter("goes").inc(1)))
        b = _dump(tmp_path / "b.json", lambda r: (
            r.counter("stays").inc(4), r.counter("comes").inc(2)))
        assert main(["diff", a, b]) == 0
        out = capsys.readouterr().out
        assert "added" in out and "comes" in out
        assert "removed" in out and "goes" in out
        assert "1 unchanged" in out

    def test_identical_dumps_report_no_changes(self, tmp_path, capsys):
        a = _dump(tmp_path / "a.json", lambda r: r.counter("c").inc(1))
        b = _dump(tmp_path / "b.json", lambda r: r.counter("c").inc(1))
        assert main(["diff", a, b]) == 0
        assert "0 series changed" in capsys.readouterr().out

    def test_diff_needs_exactly_two_paths(self, tmp_path, capsys):
        a = _dump(tmp_path / "a.json", lambda r: r.counter("c").inc())
        assert main(["diff", a]) == 1
        assert "exactly 2" in capsys.readouterr().err
        assert main(["check", a, a]) == 1

    def test_diff_rejects_span_dumps(self, tmp_path, capsys):
        a = _dump(tmp_path / "a.json", lambda r: r.counter("c").inc())
        spans = tmp_path / "spans.json"
        spans.write_text(json.dumps({"schema": 2, "spans": []}))
        assert main(["diff", a, str(spans)]) == 1
        assert "span dump" in capsys.readouterr().err
