"""Exporters: JSON and Prometheus-style text dumps."""

import io
import json

import pytest

from repro.obs import MetricsRegistry, dump_metrics, render_text, to_dict
from repro.obs.export import SCHEMA_VERSION, to_json


def _sample_registry():
    reg = MetricsRegistry()
    reg.counter("invocations_total", operation="put").inc(3)
    reg.gauge("pool_buffers").set(2)
    h = reg.histogram("stage_seconds", buckets=(0.01, 1.0), stage="marshal")
    h.observe(0.005)
    h.observe(0.5)
    return reg


def test_to_dict_carries_schema_and_meta():
    d = to_dict(_sample_registry(), mode="real", payload=2048)
    assert d["schema"] == SCHEMA_VERSION
    assert d["mode"] == "real"
    assert d["payload"] == 2048
    assert len(d["metrics"]) == 3


def test_to_json_round_trips():
    d = json.loads(to_json(_sample_registry()))
    by_name = {m["name"]: m for m in d["metrics"]}
    assert by_name["invocations_total"]["value"] == 3
    assert by_name["invocations_total"]["labels"] == {"operation": "put"}
    hist = by_name["stage_seconds"]
    assert hist["count"] == 2
    assert hist["buckets"][-1] == {"le": "+Inf", "count": 2}


def test_render_text_exposition_format():
    text = render_text(_sample_registry())
    lines = text.splitlines()
    assert 'invocations_total{operation="put"} 3' in lines
    assert "pool_buffers 2" in lines
    assert 'stage_seconds_bucket{le="0.01",stage="marshal"} 1' in lines
    assert 'stage_seconds_bucket{le="+Inf",stage="marshal"} 2' in lines
    assert 'stage_seconds_sum{stage="marshal"} 0.505' in lines
    assert 'stage_seconds_count{stage="marshal"} 2' in lines
    assert text.endswith("\n")


def test_render_text_empty_registry():
    assert render_text(MetricsRegistry()) == ""


def test_dump_metrics_to_path_is_parseable_json(tmp_path):
    path = tmp_path / "metrics.json"
    dump_metrics(_sample_registry(), str(path), mode="smoke")
    data = json.loads(path.read_text())
    assert data["schema"] == SCHEMA_VERSION
    assert data["mode"] == "smoke"
    assert any(m["name"] == "invocations_total" for m in data["metrics"])


def test_dump_metrics_to_file_object_as_text():
    buf = io.StringIO()
    dump_metrics(_sample_registry(), buf, fmt="text")
    assert "invocations_total" in buf.getvalue()


def test_dump_metrics_rejects_unknown_format(tmp_path):
    with pytest.raises(ValueError):
        dump_metrics(_sample_registry(), str(tmp_path / "x"), fmt="xml")
