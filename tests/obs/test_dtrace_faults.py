"""Tracing under fault injection.

A retried invocation is ONE logical call: every attempt must share the
trace id fixed at invoke() time, while each attempt gets its own span
id — so a span tree shows the failed attempt next to the one that
succeeded, both under the same trace.
"""

from repro.core import OctetSequence
from repro.obs import SpanCollector
from repro.orb import ORB, InvocationPolicy, ORBConfig
from repro.transport import FaultPlan, faulty_registry


def _traced_faulty_pair(plan, store_impl, orbs):
    collector = SpanCollector()
    pol = InvocationPolicy(max_retries=3, seed=7, sleep=lambda s: None)
    server = ORB(ORBConfig(scheme="loop"))
    client = ORB(ORBConfig(scheme="loop", collocated_calls=False),
                 transports=faulty_registry(plan), policy=pol)
    server.enable_tracing(distributed=True, collector=collector,
                          trace_seed=21)
    client.enable_tracing(distributed=True, collector=collector,
                          trace_seed=22)
    orbs.extend([client, server])
    ref = server.activate(store_impl)
    stub = client.string_to_object(server.object_to_string(ref))
    return stub, collector


class TestRetryTraceIdentity:
    def test_reset_midcall_retry_reuses_trace_id(self, test_api,
                                                 store_impl):
        """Connection reset on the first send: the retry must carry the
        SAME trace id but a FRESH span id (satellite contract)."""
        orbs = []
        try:
            plan = FaultPlan().reset_on_send(nth=1)
            stub, collector = _traced_faulty_pair(plan, store_impl, orbs)
            stub.put_std(OctetSequence(b"retried-payload"))

            cli = [s for s in collector.spans if s.kind == "client"]
            assert len(cli) == 2, "failed attempt + successful retry"
            first, second = cli
            assert first.trace_id == second.trace_id
            assert first.span_id != second.span_id
            assert first.status == "COMM_FAILURE"
            assert second.status == "NO_EXCEPTION"

            # only the successful attempt reached the server, and its
            # span parents under the retry's span, not the first's
            srv = [s for s in collector.spans if s.kind == "server"]
            assert len(srv) == 1
            assert srv[0].trace_id == second.trace_id
            assert srv[0].parent_id == second.span_id
        finally:
            for orb in orbs:
                orb.shutdown()

    def test_clean_call_is_single_attempt(self, test_api, store_impl):
        orbs = []
        try:
            stub, collector = _traced_faulty_pair(FaultPlan(), store_impl,
                                                  orbs)
            stub.put_std(OctetSequence(b"clean"))
            cli = [s for s in collector.spans if s.kind == "client"]
            assert len(cli) == 1
            assert cli[0].status == "NO_EXCEPTION"
        finally:
            for orb in orbs:
                orb.shutdown()
