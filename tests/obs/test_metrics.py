"""MetricsRegistry: counters, gauges and fixed-bucket histograms."""

import pytest

from repro.obs import (DEFAULT_SIZE_BUCKETS, Counter, Gauge, Histogram,
                       MetricsRegistry, quantile_from_buckets)


def test_counter_counts_and_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("invocations_total", operation="put")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5


def test_gauge_moves_both_ways():
    g = MetricsRegistry().gauge("pool_buffers")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7


def test_registry_is_get_or_create_per_label_set():
    reg = MetricsRegistry()
    a = reg.counter("invocations_total", operation="put")
    b = reg.counter("invocations_total", operation="put")
    c = reg.counter("invocations_total", operation="get")
    assert a is b
    assert a is not c
    assert len(reg) == 2
    assert reg.get("invocations_total", operation="get") is c
    assert reg.get("missing") is None
    assert len(reg) == 2  # get() never creates


def test_registry_rejects_type_mismatch():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_histogram_fixed_buckets_and_overflow():
    h = Histogram("stage_seconds", {}, buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.001, 0.005, 0.05, 99.0):
        h.observe(v)
    # per-bucket counts are non-cumulative; the last entry is +Inf
    assert h.bucket_counts() == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(0.0005 + 0.001 + 0.005 + 0.05 + 99.0)


def test_histogram_snapshot_is_cumulative():
    h = Histogram("stage_seconds", {"stage": "marshal"},
                  buckets=(1.0, 2.0))
    for v in (0.5, 1.5, 3.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["type"] == "histogram"
    assert snap["labels"] == {"stage": "marshal"}
    assert snap["buckets"] == [
        {"le": 1.0, "count": 1},
        {"le": 2.0, "count": 2},
        {"le": "+Inf", "count": 3},
    ]


def test_histogram_validates_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", {}, buckets=())
    with pytest.raises(ValueError):
        Histogram("bad", {}, buckets=(2.0, 1.0))


def test_histogram_time_uses_registry_clock(clock):
    reg = MetricsRegistry(clock=clock)
    h = reg.histogram("stage_seconds", buckets=(1.0, 10.0), stage="wait")
    with h.time():
        clock.advance(5.0)
    assert h.count == 1
    assert h.sum == 5.0
    assert h.bucket_counts() == [0, 1, 0]


def test_size_bucket_ladder_covers_paper_payloads():
    # 64 B .. 64 MiB in powers of four: every ttcp block size has a home
    assert DEFAULT_SIZE_BUCKETS[0] == 64
    assert DEFAULT_SIZE_BUCKETS[-1] == 64 * 1024 * 1024
    h = Histogram("stage_payload_bytes", {}, buckets=DEFAULT_SIZE_BUCKETS)
    h.observe(2 * 1024 * 1024)
    assert h.count == 1


def test_series_sorted_and_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("b_total")
    reg.gauge("a_gauge")
    names = [m.name for m in reg.series()]
    assert names == ["a_gauge", "b_total"]
    snap = reg.snapshot()
    assert {m["name"] for m in snap["metrics"]} == {"a_gauge", "b_total"}
    for m in snap["metrics"]:
        assert m["type"] in ("counter", "gauge", "histogram")


def test_counter_and_gauge_classes_export_meta():
    c = Counter("n", {"k": "v"})
    g = Gauge("m", {})
    assert c.snapshot() == {"name": "n", "type": "counter",
                            "labels": {"k": "v"}, "value": 0}
    assert g.snapshot() == {"name": "m", "type": "gauge", "value": 0.0}


class TestPercentiles:
    """Quantile estimation from fixed buckets (histogram_quantile
    style linear interpolation within the covering bucket)."""

    def test_quantile_interpolates_within_bucket(self):
        # 100 samples uniformly in one (0, 10] bucket
        bounds = [10.0, 20.0]
        counts = [100, 0, 0]  # non-cumulative, +Inf last
        assert quantile_from_buckets(bounds, counts, 0.5) == \
            pytest.approx(5.0)
        assert quantile_from_buckets(bounds, counts, 0.95) == \
            pytest.approx(9.5)

    def test_quantile_crosses_buckets(self):
        bounds = [1.0, 2.0, 4.0]
        counts = [50, 30, 20, 0]
        # p50 sits exactly at the first bucket's upper bound
        assert quantile_from_buckets(bounds, counts, 0.5) == \
            pytest.approx(1.0)
        # p90: 80 below 2.0, need 10 of the 20 in (2, 4]
        assert quantile_from_buckets(bounds, counts, 0.9) == \
            pytest.approx(3.0)

    def test_quantile_in_overflow_clamps_to_last_bound(self):
        bounds = [1.0]
        counts = [1, 9]  # 9 samples beyond the last finite bound
        assert quantile_from_buckets(bounds, counts, 0.99) == 1.0

    def test_quantile_empty_is_none(self):
        assert quantile_from_buckets([1.0], [0, 0], 0.5) is None

    def test_quantile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            quantile_from_buckets([1.0], [1, 0], 1.5)

    def test_histogram_percentiles(self):
        h = Histogram("lat", {}, buckets=[0.001, 0.01, 0.1])
        for _ in range(90):
            h.observe(0.0005)
        for _ in range(10):
            h.observe(0.05)
        p = h.percentiles()
        assert set(p) == {"p50", "p95", "p99"}
        assert p["p50"] <= 0.001
        assert 0.01 < p["p95"] <= 0.1
        assert h.quantile(0.5) == pytest.approx(p["p50"])

    def test_histogram_percentiles_empty(self):
        assert Histogram("lat", {}, buckets=[1.0]).percentiles() is None
