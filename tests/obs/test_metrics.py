"""MetricsRegistry: counters, gauges and fixed-bucket histograms."""

import pytest

from repro.obs import (DEFAULT_SIZE_BUCKETS, Counter, Gauge, Histogram,
                       MetricsRegistry)


def test_counter_counts_and_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("invocations_total", operation="put")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 5


def test_gauge_moves_both_ways():
    g = MetricsRegistry().gauge("pool_buffers")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7


def test_registry_is_get_or_create_per_label_set():
    reg = MetricsRegistry()
    a = reg.counter("invocations_total", operation="put")
    b = reg.counter("invocations_total", operation="put")
    c = reg.counter("invocations_total", operation="get")
    assert a is b
    assert a is not c
    assert len(reg) == 2
    assert reg.get("invocations_total", operation="get") is c
    assert reg.get("missing") is None
    assert len(reg) == 2  # get() never creates


def test_registry_rejects_type_mismatch():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_histogram_fixed_buckets_and_overflow():
    h = Histogram("stage_seconds", {}, buckets=(0.001, 0.01, 0.1))
    for v in (0.0005, 0.001, 0.005, 0.05, 99.0):
        h.observe(v)
    # per-bucket counts are non-cumulative; the last entry is +Inf
    assert h.bucket_counts() == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(0.0005 + 0.001 + 0.005 + 0.05 + 99.0)


def test_histogram_snapshot_is_cumulative():
    h = Histogram("stage_seconds", {"stage": "marshal"},
                  buckets=(1.0, 2.0))
    for v in (0.5, 1.5, 3.0):
        h.observe(v)
    snap = h.snapshot()
    assert snap["type"] == "histogram"
    assert snap["labels"] == {"stage": "marshal"}
    assert snap["buckets"] == [
        {"le": 1.0, "count": 1},
        {"le": 2.0, "count": 2},
        {"le": "+Inf", "count": 3},
    ]


def test_histogram_validates_buckets():
    with pytest.raises(ValueError):
        Histogram("bad", {}, buckets=())
    with pytest.raises(ValueError):
        Histogram("bad", {}, buckets=(2.0, 1.0))


def test_histogram_time_uses_registry_clock(clock):
    reg = MetricsRegistry(clock=clock)
    h = reg.histogram("stage_seconds", buckets=(1.0, 10.0), stage="wait")
    with h.time():
        clock.advance(5.0)
    assert h.count == 1
    assert h.sum == 5.0
    assert h.bucket_counts() == [0, 1, 0]


def test_size_bucket_ladder_covers_paper_payloads():
    # 64 B .. 64 MiB in powers of four: every ttcp block size has a home
    assert DEFAULT_SIZE_BUCKETS[0] == 64
    assert DEFAULT_SIZE_BUCKETS[-1] == 64 * 1024 * 1024
    h = Histogram("stage_payload_bytes", {}, buckets=DEFAULT_SIZE_BUCKETS)
    h.observe(2 * 1024 * 1024)
    assert h.count == 1


def test_series_sorted_and_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("b_total")
    reg.gauge("a_gauge")
    names = [m.name for m in reg.series()]
    assert names == ["a_gauge", "b_total"]
    snap = reg.snapshot()
    assert {m["name"] for m in snap["metrics"]} == {"a_gauge", "b_total"}
    for m in snap["metrics"]:
        assert m["type"] in ("counter", "gauge", "histogram")


def test_counter_and_gauge_classes_export_meta():
    c = Counter("n", {"k": "v"})
    g = Gauge("m", {})
    assert c.snapshot() == {"name": "n", "type": "counter",
                            "labels": {"k": "v"}, "value": 0}
    assert g.snapshot() == {"name": "m", "type": "gauge", "value": 0.0}
