"""Zero-Copy for CORBA — a Python reproduction.

Reproduces Kurmann & Stricker, *"Zero-Copy for CORBA — Efficient
Communication for Distributed Object Middleware"* (HPDC 2003): a
CORBA-compliant ORB whose bulk data path runs under a strict zero-copy
regime by separating control- and data transfers (direct deposit) and
by bypassing marshaling for ``sequence<octet>`` payloads between
homogeneous endpoints.

Subpackages
-----------
``repro.core``
    The paper's contribution: page-aligned buffers, the
    ``ZC_Octet``-sequence datatype and the direct-deposit protocol.
``repro.idl`` / ``repro.cdr`` / ``repro.giop`` / ``repro.orb``
    The CORBA substrate built from scratch: IDL compiler, CDR
    marshaling, GIOP/IIOP protocol, and the ORB runtime.
``repro.transport``
    Pluggable byte transports: in-process loopback, real TCP sockets,
    and the simulated testbed transport.
``repro.simnet``
    Discrete-event model of the paper's 2003 hardware testbed.
``repro.mpi``
    A small message-passing library used as the efficiency baseline of
    the paper's Fig. 2 discussion.
``repro.apps``
    TTCP (the paper's benchmark tool, §5.1) and the MPEG transcoder
    farm application (§5.4).
"""

__version__ = "1.0.0"
