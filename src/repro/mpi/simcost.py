"""Simulated-testbed cost of an MPI transfer (for the Fig. 2 bench).

An MPI buffer-path transfer on the modelled hardware is a rendezvous
(small control message round-trip, the decoupled synchronization of
[19]) followed by one pipelined stream with *no middleware per-byte
cost* — the receiver posted the destination buffer, so data lands
directly (direct deposit in its original message-passing form).  That
is the efficiency ceiling the paper pushes its CORBA toward.
"""

from __future__ import annotations

from ..simnet import (LinkProfile, MachineProfile, StackConfig, Testbed,
                      TransferReport)

__all__ = ["simulate_mpi_transfer"]


def simulate_mpi_transfer(profile: MachineProfile, link: LinkProfile,
                          nbytes: int, stack: StackConfig,
                          rendezvous: bool = True) -> TransferReport:
    """Model one ``Send``/``Recv`` pair of ``nbytes``."""
    bed = Testbed(profile, link)
    steps = []
    if rendezvous:
        # ready-to-receive handshake: one small message each way
        steps.append(bed.stream(64, stack))
        steps.append(bed.reverse_stream(64, stack))
    steps.append(bed.stream(nbytes, stack))
    return bed.run(steps, nbytes)
