"""In-process MPI-lite communicator.

Ranks are threads; each pair of ranks shares an ordered message queue
per direction, with tag matching.  The buffer path (uppercase methods)
moves ``memoryview`` references between ranks and copies once into the
receiver's buffer — the same "one wire touch" discipline as the ORB's
direct deposit, which is exactly why the paper calls MPI the
efficiency reference point (§1.2).
"""

from __future__ import annotations

import pickle
import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

__all__ = ["MPIError", "Status", "Request", "Comm", "Intracomm", "World",
           "run_world", "ANY_TAG", "ANY_SOURCE"]

ANY_TAG = -1
ANY_SOURCE = -1


class MPIError(RuntimeError):
    """Communicator misuse (bad rank, truncation, double wait)."""


@dataclass
class Status:
    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    count: int = 0


@dataclass
class _Envelope:
    source: int
    tag: int
    payload: Any  #: bytes (pickle path) or memoryview (buffer path)
    pickled: bool


class Request:
    """Handle for a non-blocking operation."""

    def __init__(self):
        self._done = threading.Event()
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    def _complete(self, value: Any = None,
                  exc: Optional[BaseException] = None) -> None:
        self._value = value
        self._exc = exc
        self._done.set()

    def test(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = 30.0) -> Any:
        if not self._done.wait(timeout):
            raise MPIError("request did not complete (deadlock?)")
        if self._exc is not None:
            raise self._exc
        return self._value


class _Mailbox:
    """Tag-matched, source-ordered message store for one receiver."""

    def __init__(self):
        self._lock = threading.Condition()
        self._messages: List[_Envelope] = []

    def put(self, env: _Envelope) -> None:
        with self._lock:
            self._messages.append(env)
            self._lock.notify_all()

    def get(self, source: int, tag: int,
            timeout: Optional[float] = 30.0) -> _Envelope:
        def match() -> Optional[int]:
            for i, env in enumerate(self._messages):
                if source != ANY_SOURCE and env.source != source:
                    continue
                if tag != ANY_TAG and env.tag != tag:
                    continue
                return i
            return None

        with self._lock:
            deadline_hit = self._lock.wait_for(
                lambda: match() is not None, timeout)
            if not deadline_hit:
                raise MPIError(
                    f"recv(source={source}, tag={tag}) timed out")
            return self._messages.pop(match())


class Comm:
    """Point-to-point + collective surface for one rank."""

    def __init__(self, world: "World", rank: int):
        self._world = world
        self.rank = rank

    # -- mpi4py-style accessors -------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self._world.size

    @property
    def size(self) -> int:
        return self._world.size

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self._world.size:
            raise MPIError(f"rank {rank} outside world of "
                           f"{self._world.size}")

    # -- pickle path ----------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._check_rank(dest)
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._world.mailbox(dest).put(
            _Envelope(self.rank, tag, data, pickled=True))

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None) -> Any:
        env = self._world.mailbox(self.rank).get(source, tag)
        if not env.pickled:
            raise MPIError("recv() got a buffer-path message; use Recv()")
        if status is not None:
            status.source, status.tag = env.source, env.tag
            status.count = len(env.payload)
        return pickle.loads(env.payload)

    # -- buffer path ----------------------------------------------------------
    def Send(self, buf, dest: int, tag: int = 0) -> None:
        """Reference hand-off: no serialization, no staging copy."""
        self._check_rank(dest)
        view = memoryview(buf)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        self._world.mailbox(dest).put(
            _Envelope(self.rank, tag, view, pickled=False))

    def Recv(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Optional[Status] = None) -> None:
        """One copy into the caller's buffer — the wire touch."""
        env = self._world.mailbox(self.rank).get(source, tag)
        if env.pickled:
            raise MPIError("Recv() got a pickle-path message; use recv()")
        view = memoryview(buf)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        src: memoryview = env.payload
        if src.nbytes > view.nbytes:
            raise MPIError(
                f"Recv buffer of {view.nbytes} bytes too small for "
                f"{src.nbytes}-byte message (truncation)")
        view[:src.nbytes] = src
        if status is not None:
            status.source, status.tag = env.source, env.tag
            status.count = src.nbytes

    # -- non-blocking -----------------------------------------------------------
    def Isend(self, buf, dest: int, tag: int = 0) -> Request:
        req = Request()
        try:
            self.Send(buf, dest, tag)
            req._complete()
        except MPIError as e:
            req._complete(exc=e)
        return req

    def Irecv(self, buf, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        req = Request()

        def worker():
            try:
                status = Status()
                self.Recv(buf, source, tag, status)
                req._complete(status)
            except MPIError as e:
                req._complete(exc=e)

        threading.Thread(target=worker, daemon=True).start()
        return req

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        req = Request()
        try:
            self.send(obj, dest, tag)
            req._complete()
        except MPIError as e:
            req._complete(exc=e)
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        req = Request()

        def worker():
            try:
                req._complete(self.recv(source, tag))
            except MPIError as e:
                req._complete(exc=e)

        threading.Thread(target=worker, daemon=True).start()
        return req

    # -- collectives -----------------------------------------------------------
    # Each collective call consumes one sequence number; since SPMD code
    # must issue collectives in the same order on every rank, the
    # per-call tag keeps back-to-back collectives from stealing each
    # other's messages.
    _COLL_TAG = -1000  #: reserved tag band for collectives

    def _coll_tag(self, kind: int) -> int:
        seq = getattr(self, "_coll_seq", 0)
        self._coll_seq = seq + 1
        return self._COLL_TAG - seq * 4 - kind

    def barrier(self) -> None:
        self._world.barrier.wait()

    def bcast(self, obj: Any, root: int = 0) -> Any:
        tag = self._coll_tag(0)
        if self.rank == root:
            for dest in range(self.size):
                if dest != root:
                    self.send(obj, dest, tag=tag)
            return obj
        return self.recv(source=root, tag=tag)

    def gather(self, obj: Any, root: int = 0) -> Optional[List[Any]]:
        tag = self._coll_tag(1)
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                status = Status()
                value = self.recv(tag=tag, status=status)
                out[status.source] = value
            return out
        self.send(obj, root, tag=tag)
        return None

    def scatter(self, values: Optional[Sequence[Any]],
                root: int = 0) -> Any:
        tag = self._coll_tag(2)
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise MPIError(
                    f"scatter needs exactly {self.size} values at root")
            for dest in range(self.size):
                if dest != root:
                    self.send(values[dest], dest, tag=tag)
            return values[root]
        return self.recv(source=root, tag=tag)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any] = None,
               root: int = 0) -> Optional[Any]:
        import operator
        op = op or operator.add
        gathered = self.gather(value, root)
        if gathered is None:
            return None
        acc = gathered[0]
        for item in gathered[1:]:
            acc = op(acc, item)
        return acc

    def allreduce(self, value: Any,
                  op: Callable[[Any, Any], Any] = None) -> Any:
        total = self.reduce(value, op, root=0)
        return self.bcast(total, root=0)


#: mpi4py naming compatibility
Intracomm = Comm


class World:
    """A set of ranks sharing mailboxes and a barrier."""

    def __init__(self, size: int):
        if size < 1:
            raise MPIError(f"world size must be >= 1, got {size}")
        self.size = size
        self._mailboxes = [_Mailbox() for _ in range(size)]
        self.barrier = threading.Barrier(size)

    def mailbox(self, rank: int) -> _Mailbox:
        return self._mailboxes[rank]

    def comm(self, rank: int) -> Comm:
        if not 0 <= rank < self.size:
            raise MPIError(f"no rank {rank} in world of {self.size}")
        return Comm(self, rank)


def run_world(size: int, fn: Callable[[Comm], Any],
              timeout: float = 60.0) -> List[Any]:
    """SPMD driver: run ``fn(comm)`` on ``size`` rank threads; return
    each rank's result (exceptions re-raised at the caller)."""
    world = World(size)
    results: List[Any] = [None] * size
    errors: List[Optional[BaseException]] = [None] * size

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(world.comm(rank))
        except BaseException as e:  # noqa: BLE001 - reported to caller
            errors[rank] = e

    threads = [threading.Thread(target=runner, args=(r,), daemon=True)
               for r in range(size)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout)
        if t.is_alive():
            raise MPIError("rank thread did not finish (deadlock?)")
    for e in errors:
        if e is not None:
            raise e
    return results
