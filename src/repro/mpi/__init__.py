"""MPI-lite: the message-passing baseline of the paper's Fig. 2.

Figure 2 places middleware on a functionality/efficiency plane: MPI is
efficient but fixed-function, CORBA is rich but inefficient, and the
paper's contribution moves CORBA toward MPI's efficiency.  To measure
that plane we need an MPI to compare against, so this package provides
a small in-process message-passing library in the mpi4py mold:

* lowercase ``send``/``recv`` — the *pickle path* (arbitrary objects,
  copies and serialization);
* uppercase ``Send``/``Recv`` — the *buffer path* (buffer-protocol
  objects moved without serialization), plus non-blocking ``Isend`` /
  ``Irecv`` and the collectives ``bcast``/``barrier``/``gather``/
  ``scatter``/``reduce``.

Ranks are threads inside one process connected by queues; the simulated
efficiency comparison charges the same :mod:`repro.simnet` cost model
as the ORB benches (an MPI transfer = one pipelined stream plus a
rendezvous control message, no middleware per-byte costs).
"""

from .comm import (Comm, Intracomm, MPIError, Request, Status, World,
                   run_world)
from .simcost import simulate_mpi_transfer

__all__ = ["Comm", "Intracomm", "World", "run_world", "Request", "Status",
           "MPIError", "simulate_mpi_transfer"]
