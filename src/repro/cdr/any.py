"""The ``any`` type: self-describing values (TypeCode + value).

``any`` is CORBA's escape hatch — a parameter that carries its own
TypeCode so receivers can demarshal values they were not compiled
against.  Implementing it requires marshaling TypeCodes themselves,
which this module does following the CDR TypeCode encoding: simple
kinds as a bare kind word, complex kinds as kind + a parameter
encapsulation (so unknown complex TypeCodes can be skipped whole).

Our extension kind ``tk_zc_sequence`` encodes like a sequence; an
``any`` carrying a zero-copy sequence falls back to the inline
representation (deposits describe a *connection-level* payload and an
``any`` must stay self-contained).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any as PyAny

from .decoder import CDRDecoder, CDRError
from .encoder import CDREncoder
from .typecode import TCKind, TypeCode

__all__ = ["Any", "TC_ANY", "encode_typecode", "decode_typecode"]

TC_ANY = TypeCode(TCKind.tk_any)

_SIMPLE = frozenset({
    TCKind.tk_null, TCKind.tk_void, TCKind.tk_short, TCKind.tk_long,
    TCKind.tk_ushort, TCKind.tk_ulong, TCKind.tk_float, TCKind.tk_double,
    TCKind.tk_boolean, TCKind.tk_char, TCKind.tk_octet, TCKind.tk_any,
    TCKind.tk_longlong, TCKind.tk_ulonglong,
})


@dataclass(frozen=True)
class Any:
    """A typed value: the pair the ``any`` carries on the wire."""

    tc: TypeCode
    value: PyAny

    def __repr__(self) -> str:
        return f"Any({self.tc.kind.name}, {self.value!r})"


# ---------------------------------------------------------------------------
# TypeCode encoding
# ---------------------------------------------------------------------------

def encode_typecode(enc: CDREncoder, tc: TypeCode) -> None:
    kind = tc.kind
    enc.put_ulong(int(kind))
    if kind in _SIMPLE:
        return
    if kind is TCKind.tk_string:
        enc.put_ulong(tc.length)
        return
    body = CDREncoder(little_endian=enc.little_endian)
    if kind is TCKind.tk_objref:
        body.put_string(tc.repo_id)
        body.put_string(tc.name)
    elif kind in (TCKind.tk_struct, TCKind.tk_except):
        body.put_string(tc.repo_id)
        body.put_string(tc.name)
        body.put_ulong(len(tc.members))
        for name, member_tc in tc.members:
            body.put_string(name)
            encode_typecode(body, member_tc)
    elif kind is TCKind.tk_enum:
        body.put_string(tc.repo_id)
        body.put_string(tc.name)
        body.put_ulong(len(tc.members))
        for name in tc.members:
            body.put_string(name)
    elif kind is TCKind.tk_union:
        body.put_string(tc.repo_id)
        body.put_string(tc.name)
        encode_typecode(body, tc.content)
        default_index = -1
        for i, (label, _, _) in enumerate(tc.members):
            if label is None:
                default_index = i
        body.put_long(default_index)
        body.put_ulong(len(tc.members))
        from .marshal import get_marshaller
        disc_m = get_marshaller(tc.content)
        for label, name, member_tc in tc.members:
            # the default arm's label is an arbitrary discriminator value
            disc_m.marshal(body, 0 if label is None else label)
            body.put_string(name)
            encode_typecode(body, member_tc)
    elif kind in (TCKind.tk_sequence, TCKind.tk_zc_sequence,
                  TCKind.tk_array):
        encode_typecode(body, tc.content)
        body.put_ulong(tc.length)
    else:
        raise CDRError(f"cannot encode TypeCode kind {kind.name}")
    enc.put_encapsulation(body)


def decode_typecode(dec: CDRDecoder) -> TypeCode:
    raw_kind = dec.get_ulong()
    try:
        kind = TCKind(raw_kind)
    except ValueError:
        raise CDRError(f"unknown TypeCode kind {raw_kind}") from None
    if kind in _SIMPLE:
        return TypeCode(kind)
    if kind is TCKind.tk_string:
        return TypeCode(kind, length=dec.get_ulong())
    body = dec.get_encapsulation()
    if kind is TCKind.tk_objref:
        repo_id = body.get_string()
        name = body.get_string()
        return TypeCode(kind, name=name, repo_id=repo_id)
    if kind in (TCKind.tk_struct, TCKind.tk_except):
        repo_id = body.get_string()
        name = body.get_string()
        count = body.get_ulong()
        members = tuple((body.get_string(), decode_typecode(body))
                        for _ in range(count))
        return TypeCode(kind, name=name, repo_id=repo_id, members=members)
    if kind is TCKind.tk_enum:
        repo_id = body.get_string()
        name = body.get_string()
        count = body.get_ulong()
        members = tuple(body.get_string() for _ in range(count))
        return TypeCode(kind, name=name, repo_id=repo_id, members=members)
    if kind is TCKind.tk_union:
        repo_id = body.get_string()
        name = body.get_string()
        disc = decode_typecode(body)
        default_index = body.get_long()
        count = body.get_ulong()
        from .marshal import get_marshaller
        disc_m = get_marshaller(disc)
        members = []
        for i in range(count):
            label = disc_m.demarshal(body)
            member_name = body.get_string()
            member_tc = decode_typecode(body)
            members.append((None if i == default_index else label,
                            member_name, member_tc))
        return TypeCode(kind, name=name, repo_id=repo_id, content=disc,
                        members=tuple(members))
    if kind in (TCKind.tk_sequence, TCKind.tk_zc_sequence,
                TCKind.tk_array):
        content = decode_typecode(body)
        length = body.get_ulong()
        return TypeCode(kind, content=content, length=length)
    raise CDRError(f"cannot decode TypeCode kind {kind.name}")
