"""Marshalers: TypeCode-driven conversion between values and CDR.

Mirrors MICO's structure (§4.2): a virtual base with ``marshal`` /
``demarshal``, one concrete subclass per parameter type, selected
statically by TID.  Three of them matter to the paper:

* :class:`TCGeneric` sequences — "a very general unoptimized copy loop
  that is able to handle all different data types correctly" (§5.2);
  this per-element path is what the real MICO used even for octets.
* :class:`TCSeqOctet` — the specialized bulk path for
  ``sequence<octet>`` (one contiguous copy instead of a loop).
* :class:`TCSeqZCOctet` — the zero-copy path (§4.4): the payload is
  *registered* with the connection's :class:`DepositRegistry` and only
  a deposit-id reference enters the message body; the descriptor
  travels in the GIOP service context so the receiver can prepare the
  landing buffer before the data arrives.

A :class:`MarshalContext` carries the per-message deposit state and an
optional instrumentation hook (used by the simulated testbed to charge
modelled per-byte costs, and by the §5.2-style overhead breakdown).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..core.buffers import FileBackedBuffer, ZCBuffer
from ..core.direct_deposit import DEPOSIT_MAGIC, DepositRegistry
from ..core.sequences import OctetSequence, ZCOctetSequence
from .decoder import CDRDecoder
from .encoder import _STD_SIZES, BATCH_FORMATS, NATIVE_LITTLE, CDREncoder
from .typecode import TCKind, TypeCode

__all__ = [
    "MarshalContext", "MarshalError", "Marshaller",
    "TCPrimitive", "TCString", "TCSeqOctet", "TCSeqZCOctet",
    "TCGenericSequence", "TCNumericSequence", "TCArray", "TCStruct",
    "TCEnum", "TCExcept",
    "get_marshaller", "register_value_class", "lookup_value_class",
    "StructValue",
]

_INLINE_MARKER = 0  #: zc payload carried inline (no deposit channel)


class MarshalError(ValueError):
    """Value does not fit its TypeCode, or the stream is inconsistent."""


@dataclass
class MarshalContext:
    """Per-message marshaling state.

    Sender side: ``registry`` collects zero-copy payloads and
    ``descriptors`` the matching wire descriptors (the connection copies
    them into the request's service context).  Receiver side:
    ``deposits`` maps deposit-id to the already-landed aligned buffer.
    ``on_bytes`` is an instrumentation callback ``(kind, nbytes)`` with
    kind one of ``"marshal"``, ``"marshal-bulk"``, ``"reference"``.
    """

    registry: Optional[DepositRegistry] = None
    descriptors: list = field(default_factory=list)
    deposits: Dict[int, ZCBuffer] = field(default_factory=dict)
    on_bytes: Optional[Callable[[str, int], None]] = None
    #: force MICO's per-element loop even for plain octet sequences
    #: (the unoptimized behaviour §5.2 profiles; used by ablations)
    generic_loop: bool = False
    #: the local ORB, needed to turn demarshaled IORs into live stubs
    orb: Any = None
    #: deposit-id -> descriptor flags (payload byte order, §4.1 numeric
    #: zero-copy sequences); populated by the connection layer
    deposit_flags: Dict[int, int] = field(default_factory=dict)
    #: the connection's shared-memory send arena (a
    #: :class:`repro.transport.shm.ShmArena`), when the transport has
    #: one: zero-copy payloads are staged *into a slot at encode time*
    #: so the send is a pure slot reference — the paper's marshaling
    #: bypass carried one layer further
    arena: Any = None
    #: arena buffers leased during marshal; the connection releases
    #: them after the send (posted slots make release a no-op, an
    #: aborted send returns the slot to the arena)
    staged: list = field(default_factory=list)

    def note(self, kind: str, nbytes: int) -> None:
        if self.on_bytes is not None:
            self.on_bytes(kind, nbytes)

    def stage_in_arena(self, view: memoryview) -> Optional[memoryview]:
        """Copy ``view`` into a freshly leased arena slot, or ``None``.

        Returns the slot view to register in place of the caller's
        buffer.  ``None`` (no arena, payload oversize/empty, already
        arena-resident, slots exhausted) keeps the original view — the
        send-time path then copies or falls back inline as before.
        The copy performed here is the same single producer-side copy
        the send path would otherwise perform inside ``send_deposit``;
        staging merely moves it into the marshal stage so the send
        becomes a reference post.
        """
        arena = self.arena
        if arena is None or getattr(arena, "closed", True) \
                or not 0 < view.nbytes <= arena.slot_size:
            return None
        if arena.locate(view) is not None:
            return None  # already staged by the application
        buf = arena.try_acquire(view.nbytes)
        if buf is None:
            return None
        buf.view()[:] = view
        self.staged.append(buf)
        return buf.view()

    def release_staged(self) -> None:
        """Release every leased slot (no-op for slots the send posted)."""
        staged, self.staged = self.staged, []
        for buf in staged:
            try:
                buf.release()
            except Exception:
                pass  # already released (e.g. a retry reusing the ctx)


_EMPTY_CTX = MarshalContext()


class Marshaller:
    """Abstract marshal/demarshal pair for one TypeCode."""

    def __init__(self, tc: TypeCode):
        self.tc = tc

    def marshal(self, enc: CDREncoder, value: Any,
                ctx: MarshalContext = _EMPTY_CTX) -> None:
        raise NotImplementedError

    def demarshal(self, dec: CDRDecoder,
                  ctx: MarshalContext = _EMPTY_CTX) -> Any:
        raise NotImplementedError


class TCPrimitive(Marshaller):
    """All fixed-size basic types, dispatched by kind."""

    _PUT = {
        TCKind.tk_boolean: CDREncoder.put_boolean,
        TCKind.tk_char: CDREncoder.put_char,
        TCKind.tk_octet: CDREncoder.put_octet,
        TCKind.tk_short: CDREncoder.put_short,
        TCKind.tk_ushort: CDREncoder.put_ushort,
        TCKind.tk_long: CDREncoder.put_long,
        TCKind.tk_ulong: CDREncoder.put_ulong,
        TCKind.tk_longlong: CDREncoder.put_longlong,
        TCKind.tk_ulonglong: CDREncoder.put_ulonglong,
        TCKind.tk_float: CDREncoder.put_float,
        TCKind.tk_double: CDREncoder.put_double,
    }
    _GET = {
        TCKind.tk_boolean: CDRDecoder.get_boolean,
        TCKind.tk_char: CDRDecoder.get_char,
        TCKind.tk_octet: CDRDecoder.get_octet,
        TCKind.tk_short: CDRDecoder.get_short,
        TCKind.tk_ushort: CDRDecoder.get_ushort,
        TCKind.tk_long: CDRDecoder.get_long,
        TCKind.tk_ulong: CDRDecoder.get_ulong,
        TCKind.tk_longlong: CDRDecoder.get_longlong,
        TCKind.tk_ulonglong: CDRDecoder.get_ulonglong,
        TCKind.tk_float: CDRDecoder.get_float,
        TCKind.tk_double: CDRDecoder.get_double,
    }

    def __init__(self, tc: TypeCode):
        super().__init__(tc)
        try:
            self._put = self._PUT[tc.kind]
            self._get = self._GET[tc.kind]
        except KeyError:
            raise MarshalError(f"not a primitive TypeCode: {tc}") from None

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        import struct as _struct
        try:
            self._put(enc, value)
        except (TypeError, ValueError, _struct.error) as e:
            raise MarshalError(
                f"cannot marshal {value!r} as {self.tc.kind.name}: {e}") from e

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        return self._get(dec)


class TCString(Marshaller):
    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        if not isinstance(value, str):
            raise MarshalError(f"expected str, got {type(value).__name__}")
        if self.tc.length and len(value) > self.tc.length:
            raise MarshalError(
                f"string of {len(value)} exceeds bound {self.tc.length}")
        enc.put_string(value)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        s = dec.get_string()
        if self.tc.length and len(s) > self.tc.length:
            raise MarshalError(
                f"string of {len(s)} exceeds bound {self.tc.length}")
        return s


def _as_byte_view(value) -> memoryview:
    if isinstance(value, (OctetSequence, ZCOctetSequence)):
        return value.view()
    if isinstance(value, (bytes, bytearray, memoryview)):
        view = memoryview(value)
        return view if view.format == "B" and view.ndim == 1 else view.cast("B")
    raise MarshalError(
        f"expected bytes-like or octet sequence, got {type(value).__name__}")


class TCSeqOctet(Marshaller):
    """``sequence<octet>``: bulk copy in and out of the message buffer.

    This is the *optimized-but-still-copying* path.  With
    ``ctx.generic_loop`` it degrades to MICO's authentic per-element
    loop, which is what the paper's §5.2 profiling blames for the
    50 MBit/s ceiling.
    """

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        view = _as_byte_view(value)
        if self.tc.length and view.nbytes > self.tc.length:
            raise MarshalError(
                f"sequence of {view.nbytes} exceeds bound {self.tc.length}")
        if ctx.generic_loop:
            enc.put_ulong(view.nbytes)
            for b in view:  # the "very general unoptimized copy loop"
                enc.put_octet(b)
            ctx.note("marshal", view.nbytes)
        else:
            enc.put_octets(view)
            ctx.note("marshal-bulk", view.nbytes)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        n = dec.get_ulong()
        if self.tc.length and n > self.tc.length:
            raise MarshalError(f"sequence of {n} exceeds bound {self.tc.length}")
        if ctx.generic_loop:
            data = bytearray(n)
            for i in range(n):
                data[i] = dec.get_octet()
            ctx.note("marshal", n)
            return OctetSequence(data)
        view = dec.get_view(n)
        ctx.note("marshal-bulk", n)
        return OctetSequence(bytearray(view))  # copy: std sequence owns data


#: descriptor flag bit: the deposited payload is little-endian
FLAG_PAYLOAD_LITTLE = 0x0001

#: numpy dtype (native order) per zero-copy element kind
_ZC_DTYPES = {
    TCKind.tk_octet: "u1", TCKind.tk_short: "i2", TCKind.tk_ushort: "u2",
    TCKind.tk_long: "i4", TCKind.tk_ulong: "u4",
    TCKind.tk_longlong: "i8", TCKind.tk_ulonglong: "u8",
    TCKind.tk_float: "f4", TCKind.tk_double: "f8",
}


class TCSeqZCOctet(Marshaller):
    """Zero-copy sequences: pass-by-reference direct deposit (§4.4).

    Covers ``sequence<ZC_Octet>`` and its numeric generalization
    (§4.1).  With a deposit registry in the context, marshaling writes
    only ``(DEPOSIT_MAGIC, deposit_id)`` and registers the payload
    view; without one (local calls, transports without a data path)
    the payload is carried inline, flagged by an ``_INLINE_MARKER``.

    Numeric elements: values are 1-D numpy arrays.  The descriptor
    records the payload's byte order; a receiver of the opposite
    architecture fixes the landed buffer up *in place* (one pass —
    receiver-makes-right without abandoning the deposit).  Demarshaled
    arrays alias the landed buffer: zero middleware copies.
    """

    def __init__(self, tc: TypeCode):
        super().__init__(tc)
        elem = tc.content.kind if tc.content is not None else TCKind.tk_octet
        self._elem_kind = elem
        try:
            self._dtype = np.dtype(_ZC_DTYPES[elem])
        except KeyError:
            raise MarshalError(
                f"{elem.name} is not a zero-copy element type") from None
        self._is_octet = elem is TCKind.tk_octet

    # -- value coercion ----------------------------------------------------
    def _as_view(self, value) -> tuple:
        """-> (byte view, payload_little_endian)."""
        if isinstance(value, np.ndarray):
            if value.ndim != 1:
                raise MarshalError(
                    f"zero-copy sequences are 1-D, got shape {value.shape}")
            if value.dtype.itemsize != self._dtype.itemsize or \
                    value.dtype.kind != self._dtype.kind:
                raise MarshalError(
                    f"array dtype {value.dtype} does not match element "
                    f"type {self._elem_kind.name}")
            if not value.flags.c_contiguous:
                value = np.ascontiguousarray(value)
            byteorder = value.dtype.byteorder
            little = (byteorder == "<" or
                      (byteorder in ("=", "|") and NATIVE_LITTLE))
            return memoryview(value).cast("B"), little
        if self._is_octet:
            return _as_byte_view(value), NATIVE_LITTLE
        raise MarshalError(
            f"expected a numpy array for sequence<zc_"
            f"{self._elem_kind.name[3:]}>, got {type(value).__name__}")

    def _element_count(self, nbytes: int) -> int:
        if nbytes % self._dtype.itemsize:
            raise MarshalError(
                f"payload of {nbytes} bytes is not a whole number of "
                f"{self._dtype.itemsize}-byte elements")
        return nbytes // self._dtype.itemsize

    def _check_bound(self, nbytes: int) -> None:
        if self.tc.length and self._element_count(nbytes) > self.tc.length:
            raise MarshalError(
                f"sequence of {self._element_count(nbytes)} exceeds "
                f"bound {self.tc.length}")

    # -- marshal -----------------------------------------------------------
    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        if isinstance(value, FileBackedBuffer):
            return self._marshal_file(enc, value, ctx)
        view, little = self._as_view(value)
        self._check_bound(view.nbytes)
        if ctx.registry is not None:
            staged = ctx.stage_in_arena(view)
            if staged is not None:
                # encode-into-arena: the deposit now references a
                # posted-to-be slot; send_deposit's locate() hits the
                # reference path and no further copy happens
                view = staged
            flags = FLAG_PAYLOAD_LITTLE if little else 0
            desc = ctx.registry.register(view, flags=flags)
            ctx.descriptors.append(desc)
            enc.put_ulong(DEPOSIT_MAGIC)
            enc.put_ulong(desc.deposit_id)
            ctx.note("reference", view.nbytes)
        else:
            enc.put_ulong(_INLINE_MARKER)
            if little != enc.little_endian and self._dtype.itemsize > 1:
                # inline fallback converts to the stream's byte order
                arr = np.frombuffer(view, dtype=self._dtype).byteswap()
                view = memoryview(arr).cast("B")
            # by reference into the chunk plan (the gather-send writes
            # straight from the payload); the byte-kind stays
            # "marshal-bulk" — it feeds the modelled 2003 cost, where
            # inline carriage means a copy on the modelled machine
            enc.put_octets_view(view)
            ctx.note("marshal-bulk", view.nbytes)

    def _marshal_file(self, enc, value: FileBackedBuffer, ctx) -> None:
        """A file-backed payload: register the buffer *object* so the
        connection can route it by tier — kernel sendfile on TCP,
        arena staging on shm, mapped-view copy everywhere else.  Octet
        element kind only: a file range has no element byte order."""
        if not self._is_octet:
            raise MarshalError(
                "file-backed payloads are sequence<zc_octet> only, not "
                f"sequence<zc_{self._elem_kind.name[3:]}>")
        self._check_bound(value.nbytes)
        flags = FLAG_PAYLOAD_LITTLE if NATIVE_LITTLE else 0
        if ctx.registry is not None:
            staged = ctx.stage_in_arena(value.view()) \
                if value.nbytes else None
            payload = staged if staged is not None else value
            desc = ctx.registry.register(payload, flags=flags)
            ctx.descriptors.append(desc)
            enc.put_ulong(DEPOSIT_MAGIC)
            enc.put_ulong(desc.deposit_id)
            ctx.note("reference", value.nbytes)
        else:
            # no deposit path (local call, force_copy retry): the file
            # range travels inline as a mapped view
            enc.put_ulong(_INLINE_MARKER)
            enc.put_octets_view(value.view())
            ctx.note("marshal-bulk", value.nbytes)

    # -- demarshal -----------------------------------------------------------
    def _wrap(self, buf: ZCBuffer, payload_little: bool):
        """Alias the landed buffer as the right value type."""
        if self._is_octet:
            return ZCOctetSequence.adopt(buf)
        arr = np.frombuffer(buf.view(), dtype=self._dtype)
        if payload_little != NATIVE_LITTLE:
            # heterogeneous peer: one in-place pass fixes the order
            arr.byteswap(inplace=True)
        return arr

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        marker = dec.get_ulong()
        if marker == DEPOSIT_MAGIC:
            dep_id = dec.get_ulong()
            try:
                buf = ctx.deposits.pop(dep_id)
            except KeyError:
                raise MarshalError(
                    f"deposit {dep_id} referenced but never landed") from None
            self._check_bound(buf.length)
            flags = ctx.deposit_flags.get(dep_id,
                                          FLAG_PAYLOAD_LITTLE if NATIVE_LITTLE
                                          else 0)
            ctx.note("reference", buf.length)
            return self._wrap(buf, bool(flags & FLAG_PAYLOAD_LITTLE))
        if marker == _INLINE_MARKER:
            n = dec.get_ulong()
            view = dec.get_view(n)
            self._check_bound(n)
            ctx.note("marshal-bulk", n)
            if self._is_octet:
                return ZCOctetSequence.from_data(view)
            arr = np.frombuffer(bytes(view), dtype=self._dtype).copy()
            if dec.little_endian != NATIVE_LITTLE:
                arr.byteswap(inplace=True)
            return arr
        raise MarshalError(f"bad zc-sequence marker 0x{marker:08x}")


class TCAny(Marshaller):
    """``any``: a TypeCode followed by the value it describes.

    Values are :class:`repro.cdr.any.Any` pairs.  Zero-copy sequences
    inside an ``any`` are carried inline (self-contained encoding), so
    the deposit registry is deliberately not offered to the nested
    marshal.
    """

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        from .any import Any, encode_typecode
        if not isinstance(value, Any):
            raise MarshalError(
                f"expected cdr.Any, got {type(value).__name__}")
        encode_typecode(enc, value.tc)
        inner_ctx = MarshalContext(on_bytes=ctx.on_bytes,
                                   generic_loop=ctx.generic_loop,
                                   orb=ctx.orb)
        get_marshaller(value.tc).marshal(enc, value.value, inner_ctx)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        from .any import Any, decode_typecode
        tc = decode_typecode(dec)
        inner_ctx = MarshalContext(on_bytes=ctx.on_bytes,
                                   generic_loop=ctx.generic_loop,
                                   orb=ctx.orb)
        value = get_marshaller(tc).demarshal(dec, inner_ctx)
        return Any(tc, value)


class TCObjRef(Marshaller):
    """Object references: an inline IOR on the wire; nil is the empty
    IOR (type id "" with zero profiles)."""

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        if value is None:
            enc.put_string("")
            enc.put_ulong(0)
            return
        ior = getattr(value, "ior", None) or getattr(value, "_ior", None)
        if ior is None:
            raise MarshalError(
                f"cannot marshal {type(value).__name__} as an object "
                f"reference (no IOR; pass a stub, not a servant)")
        enc.put_string(ior.type_id)
        enc.put_ulong(len(ior.profiles))
        for tag, data in ior.profiles:
            enc.put_ulong(tag)
            enc.put_octets(data)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        type_id = dec.get_string()
        n = dec.get_ulong()
        profiles = tuple((dec.get_ulong(), dec.get_octets())
                         for _ in range(n))
        if not type_id and not profiles:
            return None
        if ctx.orb is None:
            raise MarshalError(
                f"demarshaled reference to {type_id!r} but no ORB in "
                f"context to bind it")
        from ..giop.ior import IOR
        return ctx.orb._stub_for(IOR(type_id=type_id, profiles=profiles),
                                 None)


class TCGenericSequence(Marshaller):
    """Unbounded/bounded sequences of any element type (element loop)."""

    def __init__(self, tc: TypeCode):
        super().__init__(tc)
        assert tc.content is not None
        self._elem = get_marshaller(tc.content)

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        items = list(value)
        if self.tc.length and len(items) > self.tc.length:
            raise MarshalError(
                f"sequence of {len(items)} exceeds bound {self.tc.length}")
        enc.put_ulong(len(items))
        for item in items:
            self._elem.marshal(enc, item, ctx)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        n = dec.get_ulong()
        if self.tc.length and n > self.tc.length:
            raise MarshalError(f"sequence of {n} exceeds bound {self.tc.length}")
        return [self._elem.demarshal(dec, ctx) for _ in range(n)]


#: struct format per batchable numeric element kind (fixed CDR stride)
_NUMERIC_FMTS = {
    TCKind.tk_short: "h", TCKind.tk_ushort: "H",
    TCKind.tk_long: "i", TCKind.tk_ulong: "I",
    TCKind.tk_longlong: "q", TCKind.tk_ulonglong: "Q",
    TCKind.tk_float: "f", TCKind.tk_double: "d",
}


class TCNumericSequence(TCGenericSequence):
    """Fixed-stride numeric sequences batched in one C-level pass.

    Same wire bytes as the generic element loop (the per-element align
    is a no-op after the first element of a fixed-stride run), but the
    whole run converts via one ``array`` build on encode and one
    ``memoryview.cast``/``byteswap`` on decode.  Any value the batch
    path cannot express (a bool where an int belongs, an overflowing
    element, a platform without the batch format) falls back to the
    inherited loop so error semantics stay identical.
    """

    def __init__(self, tc: TypeCode):
        super().__init__(tc)
        self._fmt = _NUMERIC_FMTS[tc.content.kind]

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        if ctx.generic_loop:
            super().marshal(enc, value, ctx)
            return
        items = value
        if isinstance(value, np.ndarray):
            if value.ndim != 1:
                raise MarshalError(
                    f"sequence value must be 1-D, got shape {value.shape}")
            items = value.tolist()  # exact per-element semantics (bounds!)
        else:
            items = list(value)
        if self.tc.length and len(items) > self.tc.length:
            raise MarshalError(
                f"sequence of {len(items)} exceeds bound {self.tc.length}")
        # build the run *before* the count hits the stream, so a bad
        # element can still fall back without corrupting the output
        try:
            arr = array(self._fmt, items)
        except (LookupError, TypeError, ValueError, OverflowError):
            super().marshal(enc, items, ctx)
            return
        if self._fmt not in BATCH_FORMATS:
            super().marshal(enc, items, ctx)
            return
        if enc.little_endian != NATIVE_LITTLE:
            arr.byteswap()
        enc.put_ulong(len(items))
        if items:
            # the element loop only aligns when there is an element;
            # an empty run must not emit padding after the count
            enc.align(_STD_SIZES[self._fmt])
            enc.put_view(memoryview(arr).cast("B"))

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        if ctx.generic_loop:
            return super().demarshal(dec, ctx)
        n = dec.get_ulong()
        if self.tc.length and n > self.tc.length:
            raise MarshalError(f"sequence of {n} exceeds bound {self.tc.length}")
        try:
            return dec.get_array(self._fmt, n)
        except LookupError:
            return [self._elem.demarshal(dec, ctx) for _ in range(n)]


class TCArray(Marshaller):
    """Fixed-length arrays: no count on the wire."""

    def __init__(self, tc: TypeCode):
        super().__init__(tc)
        assert tc.content is not None
        self._elem = get_marshaller(tc.content)

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        items = list(value)
        if len(items) != self.tc.length:
            raise MarshalError(
                f"array needs exactly {self.tc.length} elements, "
                f"got {len(items)}")
        for item in items:
            self._elem.marshal(enc, item, ctx)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        return [self._elem.demarshal(dec, ctx) for _ in range(self.tc.length)]


class StructValue:
    """Fallback value for structs with no registered Python class."""

    def __init__(self, **fields):
        self.__dict__.update(fields)

    def __eq__(self, other):
        return isinstance(other, StructValue) and self.__dict__ == other.__dict__

    def __repr__(self):
        inner = ", ".join(f"{k}={v!r}" for k, v in self.__dict__.items())
        return f"StructValue({inner})"


#: repo-id -> Python class (populated by the IDL code generator)
_VALUE_CLASSES: Dict[str, type] = {}


def register_value_class(repo_id: str, cls: type) -> None:
    _VALUE_CLASSES[repo_id] = cls


def lookup_value_class(repo_id: str) -> Optional[type]:
    return _VALUE_CLASSES.get(repo_id)


class TCStruct(Marshaller):
    def __init__(self, tc: TypeCode):
        super().__init__(tc)
        self._members = [(name, get_marshaller(mtc))
                         for name, mtc in tc.members]

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        for name, m in self._members:
            try:
                field_val = getattr(value, name)
            except AttributeError:
                try:
                    field_val = value[name]
                except (TypeError, KeyError):
                    raise MarshalError(
                        f"struct {self.tc.name}: value lacks member "
                        f"{name!r}") from None
            m.marshal(enc, field_val, ctx)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        fields = {name: m.demarshal(dec, ctx) for name, m in self._members}
        cls = lookup_value_class(self.tc.repo_id)
        if cls is not None:
            return cls(**fields)
        return StructValue(**fields)


class UnionValue:
    """Generic union value: a (discriminator, value) pair.

    Generated union classes subclass this, adding TYPECODE; ``d`` is
    the discriminator, ``v`` the active member's value.
    """

    TYPECODE = None

    def __init__(self, d, v):
        self.d = d
        self.v = v

    def __eq__(self, other):
        if not isinstance(other, UnionValue):
            return NotImplemented
        return (self.d, self.v) == (other.d, other.v)

    def __repr__(self):
        return f"{type(self).__name__}(d={self.d!r}, v={self.v!r})"


class TCUnion(Marshaller):
    """Discriminated unions: discriminator, then the selected arm."""

    def __init__(self, tc: TypeCode):
        super().__init__(tc)
        self._disc = get_marshaller(tc.content)
        self._by_label = {}
        self._default = None
        for label, name, member_tc in tc.members:
            m = (name, get_marshaller(member_tc))
            if label is None:
                self._default = m
            else:
                self._by_label[label] = m

    def _arm_for(self, d):
        arm = self._by_label.get(self._normalize(d))
        if arm is None:
            arm = self._default
        if arm is None:
            raise MarshalError(
                f"union {self.tc.name}: no arm for discriminator {d!r} "
                f"and no default")
        return arm

    @staticmethod
    def _normalize(d):
        # enums/ints compare by value; char/bool compare directly
        return int(d) if isinstance(d, (bool, int)) else d

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        d = getattr(value, "d", None)
        v = getattr(value, "v", None)
        if d is None and not isinstance(value, UnionValue):
            raise MarshalError(
                f"expected a union value for {self.tc.name}, got "
                f"{type(value).__name__}")
        self._disc.marshal(enc, d, ctx)
        _, member = self._arm_for(d)
        member.marshal(enc, v, ctx)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        d = self._disc.demarshal(dec, ctx)
        _, member = self._arm_for(d)
        v = member.demarshal(dec, ctx)
        cls = lookup_value_class(self.tc.repo_id)
        return cls(d, v) if cls is not None else UnionValue(d, v)


class TCEnum(Marshaller):
    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        idx = int(value)
        if not 0 <= idx < len(self.tc.members):
            raise MarshalError(
                f"enum {self.tc.name}: ordinal {idx} out of range")
        enc.put_ulong(idx)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        idx = dec.get_ulong()
        if not 0 <= idx < len(self.tc.members):
            raise MarshalError(
                f"enum {self.tc.name}: ordinal {idx} out of range")
        cls = lookup_value_class(self.tc.repo_id)
        return cls(idx) if cls is not None else idx


class TCExcept(TCStruct):
    """User exceptions: repository id string, then members."""

    def marshal(self, enc, value, ctx=_EMPTY_CTX):
        enc.put_string(self.tc.repo_id)
        super().marshal(enc, value, ctx)

    def demarshal(self, dec, ctx=_EMPTY_CTX):
        repo_id = dec.get_string()
        if repo_id != self.tc.repo_id:
            raise MarshalError(
                f"exception id mismatch: {repo_id} != {self.tc.repo_id}")
        return super().demarshal(dec, ctx)


_CACHE: Dict[TypeCode, Marshaller] = {}


def get_marshaller(tc: TypeCode) -> Marshaller:
    """Resolve (and cache) the concrete marshaler for ``tc`` by TID."""
    m = _CACHE.get(tc)
    if m is not None:
        return m
    if tc.is_primitive:
        m = TCPrimitive(tc)
    elif tc.kind is TCKind.tk_string:
        m = TCString(tc)
    elif tc.kind is TCKind.tk_zc_sequence:
        m = TCSeqZCOctet(tc)
    elif tc.kind is TCKind.tk_sequence:
        if tc.content is not None and tc.content.kind is TCKind.tk_octet:
            m = TCSeqOctet(tc)
        elif tc.content is not None and tc.content.kind in _NUMERIC_FMTS:
            m = TCNumericSequence(tc)
        else:
            m = TCGenericSequence(tc)
    elif tc.kind is TCKind.tk_array:
        m = TCArray(tc)
    elif tc.kind is TCKind.tk_struct:
        m = TCStruct(tc)
    elif tc.kind is TCKind.tk_enum:
        m = TCEnum(tc)
    elif tc.kind is TCKind.tk_objref:
        m = TCObjRef(tc)
    elif tc.kind is TCKind.tk_union:
        m = TCUnion(tc)
    elif tc.kind is TCKind.tk_any:
        m = TCAny(tc)
    elif tc.kind is TCKind.tk_except:
        m = TCExcept(tc)
    else:
        raise MarshalError(f"no marshaler for TypeCode kind {tc.kind.name}")
    _CACHE[tc] = m
    return m
