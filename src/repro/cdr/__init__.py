"""CDR marshaling: GIOP's Common Data Representation, TypeCodes/TIDs,
and the TID-selected marshalers including the zero-copy ``TCSeqZCOctet``
(§4.1, §4.4)."""

from .any import TC_ANY, Any, decode_typecode, encode_typecode
from .decoder import CDRDecoder, CDRError
from .encoder import NATIVE_LITTLE, CDREncoder
from .marshal import (MarshalContext, MarshalError, Marshaller, StructValue,
                      TCSeqOctet, TCSeqZCOctet, get_marshaller,
                      lookup_value_class, register_value_class)
from .typecode import (TC_BOOLEAN, TC_CHAR, TC_DOUBLE, TC_FLOAT, TC_LONG,
                       TC_LONGLONG, TC_NULL, TC_OCTET, TC_SEQ_OCTET,
                       TC_SEQ_ZC_OCTET, TC_SHORT, TC_STRING, TC_ULONG,
                       TC_ULONGLONG, TC_USHORT, TC_VOID, TCKind, TypeCode,
                       array_tc, enum_tc, exception_tc, sequence_tc,
                       string_tc, struct_tc, zc_octet_sequence_tc)

__all__ = [
    "CDREncoder", "CDRDecoder", "CDRError", "NATIVE_LITTLE",
    "Any", "TC_ANY", "encode_typecode", "decode_typecode",
    "MarshalContext", "MarshalError", "Marshaller", "StructValue",
    "TCSeqOctet", "TCSeqZCOctet", "get_marshaller",
    "register_value_class", "lookup_value_class",
    "TCKind", "TypeCode",
    "TC_NULL", "TC_VOID", "TC_BOOLEAN", "TC_OCTET", "TC_CHAR", "TC_SHORT",
    "TC_USHORT", "TC_LONG", "TC_ULONG", "TC_LONGLONG", "TC_ULONGLONG",
    "TC_FLOAT", "TC_DOUBLE", "TC_STRING", "TC_SEQ_OCTET", "TC_SEQ_ZC_OCTET",
    "sequence_tc", "zc_octet_sequence_tc", "string_tc", "array_tc",
    "struct_tc", "enum_tc", "exception_tc",
]
