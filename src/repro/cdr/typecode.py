"""CORBA TypeCodes and MICO-style type identifiers (TIDs).

§4.1: "All the datatypes that can be defined in CORBA IDL are
represented by a C++-class in MICO.  To internally identify these
types MICO allocates a unique key to each of them ... an integer value
called Type Identifier (TID)."  §4.3 adds ``MICO_TID_ZC_OCTET`` for the
zero-copy octet type.

A :class:`TypeCode` describes one IDL type; marshalers are selected by
TID (see :mod:`repro.cdr.marshal`), which is how MICO "statically
instantiates methods for marshaling and demarshaling depending on the
TID of the CORBA datatype used in the stub" (§4.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

__all__ = [
    "TCKind", "TypeCode",
    "TC_NULL", "TC_VOID", "TC_BOOLEAN", "TC_OCTET", "TC_CHAR",
    "TC_SHORT", "TC_USHORT", "TC_LONG", "TC_ULONG",
    "TC_LONGLONG", "TC_ULONGLONG", "TC_FLOAT", "TC_DOUBLE", "TC_STRING",
    "TC_SEQ_OCTET", "TC_SEQ_ZC_OCTET",
    "sequence_tc", "zc_octet_sequence_tc", "zc_sequence_tc",
    "ZC_ELEMENT_KINDS", "string_tc", "array_tc",
    "struct_tc", "enum_tc", "exception_tc", "objref_tc",
    "union_tc", "UNION_DISC_KINDS",
]


class TCKind(enum.IntEnum):
    """TypeCode kinds; values double as the MICO-style TID."""

    tk_null = 0
    tk_void = 1
    tk_short = 2
    tk_long = 3
    tk_ushort = 4
    tk_ulong = 5
    tk_float = 6
    tk_double = 7
    tk_boolean = 8
    tk_char = 9
    tk_octet = 10
    tk_any = 11
    tk_string = 18
    tk_sequence = 19
    tk_array = 20
    tk_struct = 15
    tk_union = 16
    tk_enum = 17
    tk_except = 22
    tk_objref = 14
    tk_longlong = 23
    tk_ulonglong = 24
    #: the paper's extension type (MICO_TID_ZC_OCTET sequences, §4.3)
    tk_zc_sequence = 0x5A43


@dataclass(frozen=True)
class TypeCode:
    """An immutable description of one IDL type.

    ``members`` holds ``(name, TypeCode)`` pairs for structs and
    exceptions, and member names for enums; ``content`` is the element
    type of sequences/arrays; ``length`` is the bound of a bounded
    sequence (0 = unbounded), the fixed length of an array, or the
    bound of a bounded string.
    """

    kind: TCKind
    name: str = ""
    repo_id: str = ""
    content: Optional["TypeCode"] = None
    length: int = 0
    members: Tuple = ()

    @property
    def tid(self) -> int:
        """The MICO-style integer type identifier."""
        return int(self.kind)

    # -- classification ------------------------------------------------------
    @property
    def is_primitive(self) -> bool:
        return self.kind in _PRIMITIVE_SIZES

    @property
    def primitive_size(self) -> int:
        return _PRIMITIVE_SIZES[self.kind]

    @property
    def is_octet_stream(self) -> bool:
        """True for the two bulk types the paper's fast path handles."""
        return (self.kind is TCKind.tk_zc_sequence or
                (self.kind is TCKind.tk_sequence and
                 self.content is not None and
                 self.content.kind is TCKind.tk_octet))

    @property
    def is_zero_copy(self) -> bool:
        return self.kind is TCKind.tk_zc_sequence

    def member_names(self) -> list[str]:
        if self.kind is TCKind.tk_enum:
            return list(self.members)
        return [name for name, _ in self.members]

    def member_types(self) -> list["TypeCode"]:
        return [tc for _, tc in self.members]

    def __repr__(self) -> str:
        inner = f" {self.name}" if self.name else ""
        if self.content is not None:
            inner += f"<{self.content.kind.name}>"
        return f"TypeCode({self.kind.name}{inner})"


_PRIMITIVE_SIZES = {
    TCKind.tk_boolean: 1,
    TCKind.tk_char: 1,
    TCKind.tk_octet: 1,
    TCKind.tk_short: 2,
    TCKind.tk_ushort: 2,
    TCKind.tk_long: 4,
    TCKind.tk_ulong: 4,
    TCKind.tk_float: 4,
    TCKind.tk_longlong: 8,
    TCKind.tk_ulonglong: 8,
    TCKind.tk_double: 8,
}

TC_NULL = TypeCode(TCKind.tk_null)
TC_VOID = TypeCode(TCKind.tk_void)
TC_BOOLEAN = TypeCode(TCKind.tk_boolean)
TC_OCTET = TypeCode(TCKind.tk_octet)
TC_CHAR = TypeCode(TCKind.tk_char)
TC_SHORT = TypeCode(TCKind.tk_short)
TC_USHORT = TypeCode(TCKind.tk_ushort)
TC_LONG = TypeCode(TCKind.tk_long)
TC_ULONG = TypeCode(TCKind.tk_ulong)
TC_LONGLONG = TypeCode(TCKind.tk_longlong)
TC_ULONGLONG = TypeCode(TCKind.tk_ulonglong)
TC_FLOAT = TypeCode(TCKind.tk_float)
TC_DOUBLE = TypeCode(TCKind.tk_double)
TC_STRING = TypeCode(TCKind.tk_string)


def string_tc(bound: int = 0) -> TypeCode:
    return TypeCode(TCKind.tk_string, length=bound)


def sequence_tc(content: TypeCode, bound: int = 0) -> TypeCode:
    return TypeCode(TCKind.tk_sequence, content=content, length=bound)


def zc_octet_sequence_tc(bound: int = 0) -> TypeCode:
    """``sequence<ZC_Octet>`` — marshaled by reference (§4.3)."""
    return TypeCode(TCKind.tk_zc_sequence, content=TC_OCTET, length=bound)


#: primitive kinds that may be zero-copy sequence elements (§4.1: "other
#: data types, but mostly sequences or arrays of basic types, might
#: become viable candidates for zero-copy as well")
ZC_ELEMENT_KINDS = frozenset({
    TCKind.tk_octet, TCKind.tk_short, TCKind.tk_ushort, TCKind.tk_long,
    TCKind.tk_ulong, TCKind.tk_longlong, TCKind.tk_ulonglong,
    TCKind.tk_float, TCKind.tk_double,
})


def zc_sequence_tc(content: TypeCode, bound: int = 0) -> TypeCode:
    """A zero-copy sequence of any basic numeric type.

    The generalization the paper sketches in §4.1: the deposit
    machinery is element-type agnostic (raw aligned memory); only the
    endianness fix-up on heterogeneous peers depends on the element
    width.  Values are 1-D numpy arrays; demarshaled arrays alias the
    landed deposit buffer.
    """
    if content.kind not in ZC_ELEMENT_KINDS:
        raise ValueError(
            f"{content.kind.name} cannot be a zero-copy sequence element")
    return TypeCode(TCKind.tk_zc_sequence, content=content, length=bound)


def array_tc(content: TypeCode, length: int) -> TypeCode:
    if length <= 0:
        raise ValueError(f"array length must be positive, got {length}")
    return TypeCode(TCKind.tk_array, content=content, length=length)


def struct_tc(name: str, members: Sequence[Tuple[str, TypeCode]],
              repo_id: str = "") -> TypeCode:
    return TypeCode(TCKind.tk_struct, name=name,
                    repo_id=repo_id or f"IDL:{name}:1.0",
                    members=tuple(members))


def enum_tc(name: str, members: Sequence[str], repo_id: str = "") -> TypeCode:
    return TypeCode(TCKind.tk_enum, name=name,
                    repo_id=repo_id or f"IDL:{name}:1.0",
                    members=tuple(members))


def exception_tc(name: str, members: Sequence[Tuple[str, TypeCode]],
                 repo_id: str = "") -> TypeCode:
    return TypeCode(TCKind.tk_except, name=name,
                    repo_id=repo_id or f"IDL:{name}:1.0",
                    members=tuple(members))


def objref_tc(repo_id: str, name: str = "") -> TypeCode:
    """An object reference (interface type): marshals as an IOR."""
    return TypeCode(TCKind.tk_objref, name=name, repo_id=repo_id)


#: TypeCode kinds legal as a union discriminator
UNION_DISC_KINDS = frozenset({
    TCKind.tk_short, TCKind.tk_ushort, TCKind.tk_long, TCKind.tk_ulong,
    TCKind.tk_longlong, TCKind.tk_ulonglong, TCKind.tk_boolean,
    TCKind.tk_char, TCKind.tk_enum,
})


def union_tc(name: str, discriminator: TypeCode,
             members: Sequence[Tuple],  # (label | None, member_name, tc)
             repo_id: str = "") -> TypeCode:
    """A discriminated union.  ``members`` holds
    ``(label_value, member_name, member_tc)`` triples; a label of
    ``None`` marks the ``default`` arm (at most one)."""
    if discriminator.kind not in UNION_DISC_KINDS:
        raise ValueError(
            f"{discriminator.kind.name} cannot discriminate a union")
    members = tuple(tuple(m) for m in members)
    if sum(1 for label, _, _ in members if label is None) > 1:
        raise ValueError(f"union {name!r} has multiple default arms")
    labels = [label for label, _, _ in members if label is not None]
    if len(labels) != len(set(labels)):
        raise ValueError(f"union {name!r} has duplicate case labels")
    return TypeCode(TCKind.tk_union, name=name,
                    repo_id=repo_id or f"IDL:{name}:1.0",
                    content=discriminator, members=members)


TC_SEQ_OCTET = sequence_tc(TC_OCTET)
TC_SEQ_ZC_OCTET = zc_octet_sequence_tc()
