"""CDR decoder (receiver-makes-right).

Reads the wire format produced by :class:`repro.cdr.encoder.CDREncoder`.
The decoder works over a :class:`memoryview`, so demarshaling an octet
stream can return a *slice* of the receive buffer instead of a copy —
see :meth:`CDRDecoder.get_view` — which the zero-copy demarshaler uses
when the payload was already landed in its final buffer (§4.5).

Fixed-stride runs (homogeneous numeric sequences) batch-decode via
:meth:`CDRDecoder.get_array`: when the wire byte order matches the
native one, a single ``memoryview.cast`` converts the whole run at C
speed; on mismatch one ``array.byteswap`` pass fixes the order — either
way the per-element ``unpack_from`` loop (and its per-element align)
disappears from the hot path.
"""

from __future__ import annotations

from array import array
from typing import List

from .encoder import _STD_SIZES, _STRUCTS, BATCH_FORMATS, NATIVE_LITTLE, \
    compiled_struct

__all__ = ["CDRDecoder", "CDRError"]


class CDRError(ValueError):
    """Malformed CDR data (truncation, bad length, bad char)."""


class CDRDecoder:
    """Sequential reader over one CDR-encoded message body."""

    def __init__(self, data, little_endian: bool = NATIVE_LITTLE,
                 offset: int = 0):
        self._view = memoryview(data)
        if self._view.format != "B":
            self._view = self._view.cast("B")
        self.little_endian = little_endian
        self._prefix = "<" if little_endian else ">"
        self._structs = _STRUCTS[self._prefix]
        self._pos = 0
        self._offset = offset

    # -- low level ------------------------------------------------------------
    def align(self, n: int) -> None:
        pad = (-(self._offset + self._pos)) % n
        self._advance(pad)

    def _advance(self, n: int) -> int:
        if self._pos + n > len(self._view):
            raise CDRError(
                f"CDR underrun: need {n} bytes at {self._pos}, "
                f"have {len(self._view) - self._pos}")
        pos = self._pos
        self._pos += n
        return pos

    def _unpack(self, fmt: str, size: int):
        pos = self._advance(size)
        s = self._structs.get(fmt) or compiled_struct(self._prefix, fmt)
        return s.unpack_from(self._view, pos)[0]

    @property
    def remaining(self) -> int:
        return len(self._view) - self._pos

    @property
    def pos(self) -> int:
        return self._offset + self._pos

    def tell(self) -> int:
        """Raw cursor for save/restore (pairs with :meth:`seek`)."""
        return self._pos

    def seek(self, raw_pos: int) -> None:
        if not 0 <= raw_pos <= len(self._view):
            raise CDRError(f"seek to {raw_pos} outside buffer")
        self._pos = raw_pos

    # -- primitives ------------------------------------------------------------
    def get_octet(self) -> int:
        return self._unpack("B", 1)

    def get_boolean(self) -> bool:
        return bool(self._unpack("B", 1))

    def get_char(self) -> str:
        return chr(self._unpack("B", 1))

    def get_short(self) -> int:
        self.align(2)
        return self._unpack("h", 2)

    def get_ushort(self) -> int:
        self.align(2)
        return self._unpack("H", 2)

    def get_long(self) -> int:
        self.align(4)
        return self._unpack("i", 4)

    def get_ulong(self) -> int:
        self.align(4)
        return self._unpack("I", 4)

    def get_longlong(self) -> int:
        self.align(8)
        return self._unpack("q", 8)

    def get_ulonglong(self) -> int:
        self.align(8)
        return self._unpack("Q", 8)

    def get_float(self) -> float:
        self.align(4)
        return self._unpack("f", 4)

    def get_double(self) -> float:
        self.align(8)
        return self._unpack("d", 8)

    # -- composite helpers ------------------------------------------------------
    def get_string(self) -> str:
        n = self.get_ulong()
        if n == 0:
            raise CDRError("CDR string with zero length (missing NUL)")
        pos = self._advance(n)
        raw = self._view[pos:pos + n]
        if raw[-1] != 0:
            raise CDRError("CDR string not NUL-terminated")
        return bytes(raw[:-1]).decode("utf-8")

    def get_octets(self) -> bytes:
        """Length-prefixed octet run, copied out as ``bytes``."""
        n = self.get_ulong()
        pos = self._advance(n)
        return bytes(self._view[pos:pos + n])

    def get_view(self, n: int) -> memoryview:
        """A zero-copy window of ``n`` raw bytes at the current position."""
        pos = self._advance(n)
        return self._view[pos:pos + n]

    def get_array(self, fmt: str, count: int) -> List:
        """Batch-read ``count`` fixed-stride primitives as a list.

        ``fmt`` is a CDR numeric struct format (hHiIqQfd).  Alignment,
        wire bytes, and returned values are identical to ``count``
        single-element reads; only the per-element Python loop is gone.
        Raises ``LookupError`` when this platform cannot batch the
        format — callers fall back to the element loop.
        """
        if fmt not in BATCH_FORMATS:
            raise LookupError(f"no batch path for format {fmt!r}")
        if count == 0:
            # an empty run reads nothing — aligning here would skip
            # bytes the element loop never wrote
            return []
        size = _STD_SIZES[fmt]
        self.align(size)
        view = self.get_view(size * count)
        if self.little_endian == NATIVE_LITTLE:
            # matching order: one cast converts the run at C speed
            return view.cast(fmt).tolist()
        a = array(fmt)
        a.frombytes(view)
        a.byteswap()
        return a.tolist()

    def get_encapsulation(self) -> "CDRDecoder":
        """Enter a CDR encapsulation; returns a fresh decoder for it."""
        n = self.get_ulong()
        if n < 1:
            raise CDRError("empty CDR encapsulation")
        pos = self._advance(n)
        body = self._view[pos:pos + n]
        little = bool(body[0])
        return CDRDecoder(body[1:], little_endian=little)
