"""CDR (Common Data Representation) encoder.

Implements GIOP's on-the-wire data representation: primitive types at
their natural alignment (relative to the start of the message body),
strings as length-prefixed NUL-terminated byte runs, sequences as a
``ulong`` count followed by elements, and encapsulations whose first
octet is the byte-order flag.

Byte-order negotiation matters to the paper: GIOP messages declare the
sender's endianness and a *receiver-makes-right* reader converts only
on mismatch, which is what lets homogeneous clusters skip conversion
entirely (§2.1 "Bypass of Marshaling/Demarshaling").
"""

from __future__ import annotations

import struct
import sys

__all__ = ["CDREncoder", "NATIVE_LITTLE", "compiled_struct"]

NATIVE_LITTLE = sys.byteorder == "little"

_PAD = b"\x00" * 8

#: every CDR primitive format, pre-compiled per byte order — a
#: ``struct.Struct`` skips the format-string parse that dominates
#: ``struct.pack``/``unpack_from`` for one-value formats
_PRIMITIVE_FMTS = "BhHiIqQfd"
_STRUCTS = {
    prefix: {fmt: struct.Struct(prefix + fmt) for fmt in _PRIMITIVE_FMTS}
    for prefix in ("<", ">")
}


def compiled_struct(prefix: str, fmt: str) -> struct.Struct:
    """The cached compiled ``Struct`` for ``prefix + fmt`` (compiling
    and caching on first use for formats beyond the CDR primitives)."""
    table = _STRUCTS[prefix]
    s = table.get(fmt)
    if s is None:
        s = table[fmt] = struct.Struct(prefix + fmt)
    return s


class CDREncoder:
    """Append-only CDR output buffer.

    ``little_endian`` selects the wire byte order (defaults to the
    native order, the homogeneous-cluster fast path).  ``offset`` is
    where this body starts within the enclosing GIOP message, so that
    alignment is computed relative to the message, not the buffer.
    """

    def __init__(self, little_endian: bool = NATIVE_LITTLE, offset: int = 0):
        self.little_endian = little_endian
        self._prefix = "<" if little_endian else ">"
        self._structs = _STRUCTS[self._prefix]
        self._buf = bytearray()
        self._offset = offset

    # -- low level ------------------------------------------------------------
    def align(self, n: int) -> None:
        """Pad so the next write lands on an ``n``-byte boundary."""
        pos = self._offset + len(self._buf)
        pad = (-pos) % n
        if pad:
            self._buf += _PAD[:pad]

    def write_raw(self, data) -> None:
        self._buf += data

    def _pack(self, fmt: str, value) -> None:
        s = self._structs.get(fmt) or compiled_struct(self._prefix, fmt)
        self._buf += s.pack(value)

    # -- primitives ------------------------------------------------------------
    def put_octet(self, v: int) -> None:
        self._pack("B", v)

    def put_boolean(self, v: bool) -> None:
        self._pack("B", 1 if v else 0)

    def put_char(self, v: str) -> None:
        b = v.encode("latin-1")
        if len(b) != 1:
            raise ValueError(f"char must be a single byte, got {v!r}")
        self._buf += b

    def put_short(self, v: int) -> None:
        self.align(2)
        self._pack("h", v)

    def put_ushort(self, v: int) -> None:
        self.align(2)
        self._pack("H", v)

    def put_long(self, v: int) -> None:
        self.align(4)
        self._pack("i", v)

    def put_ulong(self, v: int) -> None:
        self.align(4)
        self._pack("I", v)

    def put_longlong(self, v: int) -> None:
        self.align(8)
        self._pack("q", v)

    def put_ulonglong(self, v: int) -> None:
        self.align(8)
        self._pack("Q", v)

    def put_float(self, v: float) -> None:
        self.align(4)
        self._pack("f", v)

    def put_double(self, v: float) -> None:
        self.align(8)
        self._pack("d", v)

    # -- composite helpers ------------------------------------------------------
    def put_string(self, v: str) -> None:
        data = v.encode("utf-8")
        self.put_ulong(len(data) + 1)
        self._buf += data
        self._buf += b"\x00"

    def put_octets(self, data) -> None:
        """Length-prefixed octet run (``sequence<octet>`` body)."""
        view = memoryview(data).cast("B") if not isinstance(data, bytes) else data
        self.put_ulong(len(view))
        self._buf += view

    def put_encapsulation(self, inner: "CDREncoder") -> None:
        """Emit ``inner`` as a CDR encapsulation octet sequence."""
        body = bytearray([1 if inner.little_endian else 0])
        body += inner.getvalue()
        self.put_octets(bytes(body))

    # -- results -----------------------------------------------------------------
    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def view(self) -> memoryview:
        return memoryview(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def pos(self) -> int:
        """Current position relative to the message start."""
        return self._offset + len(self._buf)
