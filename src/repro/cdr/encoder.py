"""CDR (Common Data Representation) encoder.

Implements GIOP's on-the-wire data representation: primitive types at
their natural alignment (relative to the start of the message body),
strings as length-prefixed NUL-terminated byte runs, sequences as a
``ulong`` count followed by elements, and encapsulations whose first
octet is the byte-order flag.

Byte-order negotiation matters to the paper: GIOP messages declare the
sender's endianness and a *receiver-makes-right* reader converts only
on mismatch, which is what lets homogeneous clusters skip conversion
entirely (§2.1 "Bypass of Marshaling/Demarshaling").

Scatter/gather mode
-------------------

The encoder's output is a **chunk plan**, not a single buffer: an
ordered list of byte runs that concatenate to the CDR body.  Small
writes accumulate in a growing tail ``bytearray`` exactly as before;
:meth:`CDREncoder.put_view` *seals* the tail and appends the caller's
``memoryview`` by reference, so a large payload (a zero-copy sequence
carried inline, a fixed-stride numeric run) enters the plan without
ever being copied into the encoder.  :meth:`CDREncoder.chunks` hands
the plan to a gather-send (``Stream.sendv`` / ``socket.sendmsg``) with
no join; :meth:`CDREncoder.getvalue` joins for callers that need one
contiguous buffer (encapsulations, IORs, tests).

Referenced views must stay valid until the send completes — the GIOP
connection sends inside the same call stack that marshaled, so the
window is the synchronous ``send_message`` call.  Views smaller than
``sg_min_chunk`` are copied into the tail instead: a dozen 8-byte
iovec entries would cost more than the memcpy they avoid.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import List

__all__ = ["CDREncoder", "NATIVE_LITTLE", "compiled_struct",
           "SG_MIN_CHUNK", "BATCH_FORMATS"]

NATIVE_LITTLE = sys.byteorder == "little"

_PAD = b"\x00" * 8

#: views at least this large enter the chunk plan by reference;
#: smaller ones are copied into the tail (one big memcpy beats many
#: tiny iovec entries, and small bodies keep their pre-chunking shape)
SG_MIN_CHUNK = 2048

#: every CDR primitive format, pre-compiled per byte order — a
#: ``struct.Struct`` skips the format-string parse that dominates
#: ``struct.pack``/``unpack_from`` for one-value formats
_PRIMITIVE_FMTS = "BhHiIqQfd"
_STRUCTS = {
    prefix: {fmt: struct.Struct(prefix + fmt) for fmt in _PRIMITIVE_FMTS}
    for prefix in ("<", ">")
}

#: CDR sizes of the fixed-stride formats (these are also the standard
#: '<'/'>'-prefix struct sizes, by definition)
_STD_SIZES = {"h": 2, "H": 2, "i": 4, "I": 4, "q": 8, "Q": 8,
              "f": 4, "d": 8}

#: formats whose native ``array``/``memoryview.cast`` width matches the
#: CDR wire width, so whole runs batch-convert without a struct loop.
#: (True on every mainstream platform; the guard keeps exotic ABIs on
#: the per-element path instead of writing wrong widths.)
BATCH_FORMATS = frozenset(
    fmt for fmt, size in _STD_SIZES.items()
    if struct.calcsize(fmt) == size and array(fmt).itemsize == size)


def compiled_struct(prefix: str, fmt: str) -> struct.Struct:
    """The cached compiled ``Struct`` for ``prefix + fmt`` (compiling
    and caching on first use for formats beyond the CDR primitives)."""
    table = _STRUCTS[prefix]
    s = table.get(fmt)
    if s is None:
        s = table[fmt] = struct.Struct(prefix + fmt)
    return s


class CDREncoder:
    """Append-only CDR output producing a scatter/gather chunk plan.

    ``little_endian`` selects the wire byte order (defaults to the
    native order, the homogeneous-cluster fast path).  ``offset`` is
    where this body starts within the enclosing GIOP message, so that
    alignment is computed relative to the message, not the buffer.
    ``sg_min_chunk`` tunes the reference-vs-copy threshold of
    :meth:`put_view`; a very large value degrades to the pre-chunking
    single-buffer behaviour (used by the bench's blob baseline).
    """

    def __init__(self, little_endian: bool = NATIVE_LITTLE, offset: int = 0,
                 sg_min_chunk: int = SG_MIN_CHUNK):
        self.little_endian = little_endian
        self._prefix = "<" if little_endian else ">"
        self._structs = _STRUCTS[self._prefix]
        self._chunks: List = []   # sealed chunks (bytearray | memoryview)
        self._sealed = 0          # total bytes across sealed chunks
        self._buf = bytearray()   # growing tail
        self._offset = offset
        self._sg_min = sg_min_chunk
        #: bytes that entered the plan by reference (never copied here)
        self.referenced_nbytes = 0

    # -- low level ------------------------------------------------------------
    def align(self, n: int) -> None:
        """Pad so the next write lands on an ``n``-byte boundary."""
        pos = self._offset + self._sealed + len(self._buf)
        pad = (-pos) % n
        if pad:
            self._buf += _PAD[:pad]

    def write_raw(self, data) -> None:
        self._buf += data

    def put_view(self, view) -> None:
        """Append a byte run; large runs by reference (no copy).

        The zero-copy entry point of the chunk plan: at or above the
        ``sg_min_chunk`` threshold the view itself becomes a chunk and
        the caller's buffer must stay alive and unmodified until the
        plan is consumed.  Below it, the bytes are copied into the
        tail — byte-for-byte the same wire output either way.
        """
        if not isinstance(view, memoryview):
            view = memoryview(view)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        if view.nbytes < self._sg_min:
            self._buf += view
            return
        if self._buf:
            self._chunks.append(self._buf)
            self._sealed += len(self._buf)
            self._buf = bytearray()
        self._chunks.append(view)
        self._sealed += view.nbytes
        self.referenced_nbytes += view.nbytes

    def put_array(self, fmt: str, values) -> None:
        """A fixed-stride run: align once, convert in one C-level pass.

        ``fmt`` is one of the CDR numeric struct formats (hHiIqQfd).
        Raises ``LookupError`` when this platform cannot batch the
        format (caller falls back to the per-element loop), and
        whatever ``array`` raises for non-numeric/overflowing values —
        identical wire bytes to the per-element path otherwise.
        """
        if fmt not in BATCH_FORMATS:
            raise LookupError(f"no batch path for format {fmt!r}")
        arr = array(fmt, values)
        if self.little_endian != NATIVE_LITTLE:
            arr.byteswap()
        self.align(_STD_SIZES[fmt])
        self.put_view(memoryview(arr).cast("B"))

    def _pack(self, fmt: str, value) -> None:
        s = self._structs.get(fmt) or compiled_struct(self._prefix, fmt)
        self._buf += s.pack(value)

    # -- primitives ------------------------------------------------------------
    def put_octet(self, v: int) -> None:
        self._pack("B", v)

    def put_boolean(self, v: bool) -> None:
        self._pack("B", 1 if v else 0)

    def put_char(self, v: str) -> None:
        b = v.encode("latin-1")
        if len(b) != 1:
            raise ValueError(f"char must be a single byte, got {v!r}")
        self._buf += b

    def put_short(self, v: int) -> None:
        self.align(2)
        self._pack("h", v)

    def put_ushort(self, v: int) -> None:
        self.align(2)
        self._pack("H", v)

    def put_long(self, v: int) -> None:
        self.align(4)
        self._pack("i", v)

    def put_ulong(self, v: int) -> None:
        self.align(4)
        self._pack("I", v)

    def put_longlong(self, v: int) -> None:
        self.align(8)
        self._pack("q", v)

    def put_ulonglong(self, v: int) -> None:
        self.align(8)
        self._pack("Q", v)

    def put_float(self, v: float) -> None:
        self.align(4)
        self._pack("f", v)

    def put_double(self, v: float) -> None:
        self.align(8)
        self._pack("d", v)

    # -- composite helpers ------------------------------------------------------
    def put_string(self, v: str) -> None:
        data = v.encode("utf-8")
        self.put_ulong(len(data) + 1)
        self._buf += data
        self._buf += b"\x00"

    def put_octets(self, data) -> None:
        """Length-prefixed octet run (``sequence<octet>`` body), copied
        into the tail — the *standard* (copying) sequence path."""
        view = memoryview(data).cast("B") if not isinstance(data, bytes) \
            else data
        self.put_ulong(len(view))
        self._buf += view

    def put_octets_view(self, view) -> None:
        """Length-prefixed octet run entering the plan by reference —
        the scatter/gather path for payloads that must not be copied."""
        if not isinstance(view, memoryview):
            view = memoryview(view)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        self.put_ulong(view.nbytes)
        self.put_view(view)

    def put_encapsulation(self, inner: "CDREncoder") -> None:
        """Emit ``inner`` as a CDR encapsulation octet sequence."""
        body = bytearray([1 if inner.little_endian else 0])
        body += inner.getvalue()
        self.put_octets(bytes(body))

    # -- results -----------------------------------------------------------------
    def chunks(self) -> List:
        """The chunk plan: byte runs concatenating to the CDR body.

        The returned list is a snapshot; sealed chunks are shared (not
        copied), so the plan must be consumed before any referenced
        application buffer is mutated.
        """
        out = list(self._chunks)
        if self._buf:
            out.append(self._buf)
        return out

    def getvalue(self) -> bytes:
        """The body as one contiguous buffer (joins the chunk plan)."""
        if not self._chunks:
            return bytes(self._buf)
        return b"".join(self.chunks())

    def view(self) -> memoryview:
        return memoryview(self.getvalue())

    def __len__(self) -> int:
        return self._sealed + len(self._buf)

    @property
    def nbytes(self) -> int:
        """Total body bytes across the whole chunk plan."""
        return self._sealed + len(self._buf)

    @property
    def copied_nbytes(self) -> int:
        """Bytes that passed through the encoder's own buffers."""
        return self.nbytes - self.referenced_nbytes

    @property
    def pos(self) -> int:
        """Current position relative to the message start."""
        return self._offset + self._sealed + len(self._buf)
