"""ORBMonitor: in-band introspection of a running ORB, over GIOP.

The telemetry plane's HTTP endpoint (:mod:`repro.obs.httpexport`)
speaks Prometheus; this service speaks CORBA — the ORB eats its own
dogfood.  Every server ORB auto-registers one ``ORBMonitor`` servant
(initial reference ``"ORBMonitor"``, switch off with
``ORBConfig(monitor=False)``), so any client that can invoke the ORB
at all — over tcp, shm, sim or loopback — can also ask it what it is
doing right now:

* ``snapshot()`` — the metrics registry as a schema-v1 JSON dump
  (validate/render with ``repro-metrics``);
* ``connections()`` — one ``ConnStatsRec`` per live connection,
  copied under the owning send locks (:meth:`ConnStats.snapshot`),
  including the shm/sendfile tier counters;
* ``recent_spans(n)`` — the flight recorder's contents as a schema-v2
  JSON span dump: recent roots plus the full trees of slow calls,
  captured without tracing ever having been enabled;
* ``uptime()`` / ``slow_threshold()`` — liveness and configuration.

The monitor's own invocations go through the ordinary dispatch path,
so they are themselves metered and recorded — the observer is part of
the observed system, which is exactly how a long-running deployment
sees it.
"""

from __future__ import annotations

import json

from ..idl import compile_idl

__all__ = ["MONITOR_IDL", "monitor_api", "ORBMonitorImpl",
           "register_monitor"]

MONITOR_IDL = """
module Monitor {
    // one live GIOP connection's counters, copied consistently
    struct ConnStatsRec {
        string peer;                // endpoint or stream peer name
        string role;                // "client" or "server"
        unsigned long long messages_sent;
        unsigned long long messages_received;
        unsigned long long bytes_sent;
        unsigned long long bytes_received;
        unsigned long long deposits_sent;
        unsigned long long deposits_received;
        unsigned long long deposit_bytes_sent;
        unsigned long long deposit_bytes_received;
        unsigned long reconnects;
        unsigned long retries;
        unsigned long deposit_fallbacks;
        unsigned long timeouts;
        unsigned long shm_deposits;
        unsigned long shm_fallbacks;
        unsigned long shm_shared_refs;
        unsigned long sendfile_sends;
        unsigned long sendfile_fallbacks;
    };

    typedef sequence<ConnStatsRec> ConnStatsSeq;

    interface ORBMonitor {
        // metrics registry as a schema-v1 JSON metrics dump
        string snapshot();
        // per-connection counters (shm/sendfile tiers included)
        ConnStatsSeq connections();
        // flight-recorder contents (last n roots + slow trees) as a
        // schema-v2 JSON span dump; n = 0 returns everything retained
        string recent_spans(in unsigned long n);
        // seconds since the monitored ORB was constructed
        double uptime();
        // the flight recorder's slow-call threshold (seconds; < 0
        // when the recorder is disabled)
        double slow_threshold();
    };
};
"""

_api = None


def monitor_api():
    global _api
    if _api is None:
        _api = compile_idl(MONITOR_IDL, module_name="_repro_monitor_idl")
    return _api


def _conn_records(orb):
    api = monitor_api()
    out = []
    for snap in orb.connections_snapshot():
        fields = {k: v for k, v in snap.items()
                  if k in api.Monitor_ConnStatsRec._FIELDS}
        out.append(api.Monitor_ConnStatsRec(**fields))
    return out


class ORBMonitorImpl:
    """Servant factory: an ``ORBMonitor`` bound to one ORB."""

    def __new__(cls, orb):
        api = monitor_api()

        class Impl(api.Monitor_ORBMonitor_skel):
            def __init__(self):
                self._orb = orb

            def snapshot(self):
                from ..obs.export import to_dict
                from ..obs.metrics import MetricsRegistry
                registry = self._orb.metrics
                if registry is None:
                    registry = MetricsRegistry()  # valid, empty dump
                return json.dumps(to_dict(registry))

            def connections(self):
                return _conn_records(self._orb)

            def recent_spans(self, n):
                from ..obs.export import spans_to_dict
                rec = self._orb.flightrec
                spans = rec.spans(n) if rec is not None else []
                return json.dumps(spans_to_dict(spans))

            def uptime(self):
                return self._orb.uptime()

            def slow_threshold(self):
                rec = self._orb.flightrec
                return rec.slow_threshold if rec is not None else -1.0

        return Impl()


def register_monitor(orb):
    """Activate an ORBMonitor for ``orb`` and expose it as the
    ``"ORBMonitor"`` initial reference.  Returns the stub.

    Called automatically by the ORB on first server creation (the
    caller holds no ORB lock); safe to call manually on an ORB
    configured with ``monitor=False``.
    """
    ref = orb.activate(ORBMonitorImpl(orb))
    orb.register_initial_reference("ORBMonitor", ref)
    return ref
