"""Common Object Services built on this ORB: a CosNaming-style Name
Service and a CosEvents-style push Event Channel — both ordinary CORBA
objects defined in this package's own IDL."""

from .blobstore import BLOB_IDL, BlobStoreImpl, blob_api, read_all
from .events import EVENTS_IDL, EventChannelImpl, QueueingConsumer, events_api
from .naming import (NAMING_IDL, NameClient, NamingContextImpl, naming_api,
                     start_name_service)
from .pubsub import (PUBSUB_IDL, CollectingSubscriber, CountingSubscriber,
                     TopicHubImpl, decode_event, encode_event, pubsub_api)

__all__ = [
    "NAMING_IDL", "naming_api", "NamingContextImpl", "NameClient",
    "start_name_service",
    "EVENTS_IDL", "events_api", "EventChannelImpl", "QueueingConsumer",
    "BLOB_IDL", "blob_api", "BlobStoreImpl", "read_all",
    "PUBSUB_IDL", "pubsub_api", "TopicHubImpl", "CollectingSubscriber",
    "CountingSubscriber", "encode_event", "decode_event",
]
