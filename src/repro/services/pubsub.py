"""Topic-based pub/sub with single-copy shared-memory fan-out.

The Event Channel (:mod:`repro.services.events`) fans a payload out by
*reference* within one process, but across connections it still
re-deposits the same bytes once per consumer — fan-out scales copies
linearly with subscribers, exactly what the paper's one-crossing
discipline forbids.  This service closes that gap: the ``TopicHub``
keeps per-topic subscriber registries and delivers through its own
*delivery ORB* whose shm transport runs in shared-send-arena mode
(``ShmTransport(shared_send_arena=True)``).  A published payload is
written into one arena slot, posted with
:meth:`~repro.transport.shm.ShmArena.post_shared` at ``readers=N``,
and every colocated subscriber's connection sends only a 24-byte
record naming that slot — the payload crosses once no matter how many
subscribers map it, and the slot frees when the last reader releases
(refcounted ``POSTED(n)`` lifecycle, crash-safe via the
``MappedBuffer`` finalizer plus the creator's stale-slot reclaim).

Subscribers that cannot share the arena — remote processes, tcp-only
ORBs — degrade per link: each gets an ordinary direct deposit on its
own connection, the pre-PR behaviour.  The two cohorts coexist on one
topic.

Typed events ride on the IDL compiler: any compiled struct (or raw
TypeCode) encapsulates into the octet payload with
:func:`encode_event` / :func:`decode_event`, so suppliers and
consumers exchange typed values while the hub stays payload-agnostic.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..cdr import CDRDecoder, CDREncoder, get_marshaller
from ..idl import compile_idl
from ..orb import ORB, ORBConfig
from ..orb.exceptions import SystemException
from ..transport.base import registry as transport_registry
from ..transport.shm import ShmTransport

__all__ = ["PUBSUB_IDL", "pubsub_api", "TopicHubImpl",
           "CollectingSubscriber", "CountingSubscriber",
           "encode_event", "decode_event"]

PUBSUB_IDL = """
module PubSub {
    exception HubClosed { string why; };
    exception NoSuchTopic { string topic; };

    struct TopicStats {
        string topic;
        unsigned long subscribers;
        unsigned long long published;
        unsigned long long delivered;
        // deliveries lost to evicted (dead) subscribers
        unsigned long long dropped;
    };

    // implemented by subscribers; the hub calls back into these
    interface Subscriber {
        oneway void deliver(in string topic, in unsigned long long seq,
                            in sequence<zc_octet> payload);
    };

    interface TopicHub {
        void subscribe(in string topic, in Subscriber sub)
            raises (HubClosed);
        void unsubscribe(in string topic, in Subscriber sub);
        // supplier side: one publish fans out to every subscriber;
        // returns the number of deliveries attempted successfully
        unsigned long publish(in string topic,
                              in sequence<zc_octet> payload)
            raises (HubClosed);
        TopicStats stats(in string topic) raises (NoSuchTopic);
        unsigned long n_subscribers(in string topic);
        // disconnect everyone and shut the delivery plane down;
        // later publishes and subscribes raise HubClosed
        void destroy();
    };
};
"""

_api = None


def pubsub_api():
    global _api
    if _api is None:
        _api = compile_idl(PUBSUB_IDL, module_name="_repro_pubsub_idl")
    return _api


# -- typed events -------------------------------------------------------------

def _typecode(event_type):
    return getattr(event_type, "TYPECODE", event_type)


def encode_event(event_type, value) -> bytes:
    """CDR-encapsulate a typed value into an octet event payload.

    ``event_type`` is a compiled IDL struct class (or any TypeCode).
    Layout follows CDR encapsulation: one byte-order octet, then the
    value, aligned relative to the encapsulation start.
    """
    enc = CDREncoder()
    enc.put_octet(1 if enc.little_endian else 0)
    get_marshaller(_typecode(event_type)).marshal(enc, value)
    return enc.getvalue()


def decode_event(event_type, payload) -> Any:
    """Inverse of :func:`encode_event` (accepts any bytes-like)."""
    if hasattr(payload, "view"):  # an octet-sequence object
        payload = payload.view()
    data = bytes(memoryview(payload).cast("B")) \
        if not isinstance(payload, (bytes, bytearray)) else bytes(payload)
    if not data:
        raise ValueError("empty event payload")
    dec = CDRDecoder(data, little_endian=bool(data[0]))
    dec.get_octet()  # the byte-order flag, keeps alignment in step
    return get_marshaller(_typecode(event_type)).demarshal(dec)


# -- registry internals -------------------------------------------------------

@dataclass
class _Sub:
    stub: Any          # rebound onto the hub's delivery ORB
    identity: Tuple    # IOR.identity(): type id + object keys
    shm: bool          # shares the delivery arena (fan-out cohort)


@dataclass
class _Topic:
    name: str
    subs: List[_Sub] = field(default_factory=list)
    seq: int = 0
    published: int = 0
    delivered: int = 0
    dropped: int = 0


class TopicHubImpl:
    """Servant factory for the ``TopicHub``.

    The hub owns a client-only *delivery ORB* with a fresh transport
    registry whose ``shm`` transport shares one send arena across
    every subscriber connection — the other ORBs in the process are
    untouched.  ``slot_size``/``slot_count``/``slot_wait`` shape that
    arena; ``stale_after`` is the crash-safety valve (slots POSTED
    longer than this are force-freed when allocation starves, so a
    hard-killed subscriber cannot leak the arena dry).

    Instances expose (beyond the IDL surface) ``delivery_orb``,
    ``shm_transport``, and the counters ``fanout_posts`` /
    ``fanout_fallbacks`` / ``subscribers_evicted``.
    """

    def __new__(cls, slot_size: int = 1 << 20, slot_count: int = 32,
                slot_wait: float = 0.05, stale_after: float = 30.0,
                directory: Optional[str] = None):
        api = pubsub_api()

        class Impl(api.PubSub_TopicHub_skel):
            def __init__(self):
                self._lock = threading.Lock()
                self._topics: Dict[str, _Topic] = {}
                self._closed = False
                self.stale_after = stale_after
                #: single-copy fan-out posts (one slot, N readers)
                self.fanout_posts = 0
                #: publishes that degraded to per-link deposits because
                #: every slot was busy (slow-subscriber backpressure)
                self.fanout_fallbacks = 0
                self.subscribers_evicted = 0
                self.shm_transport = ShmTransport(
                    slot_size=slot_size, slot_count=slot_count,
                    slot_wait=slot_wait, directory=directory,
                    shared_send_arena=True)
                reg = transport_registry()
                reg.register(self.shm_transport)  # replaces default shm
                self.delivery_orb = ORB(ORBConfig(zero_copy=True),
                                        transports=reg)

            # -- subscription ------------------------------------------------
            def subscribe(self, topic, sub):
                with self._lock:
                    if self._closed:
                        raise api.PubSub_HubClosed(why="hub destroyed")
                # rebind the reference onto the delivery ORB so the
                # callback takes the hub's transport plane (and its
                # shared arena), not the hosting ORB's
                stub = type(sub)(self.delivery_orb, sub.ior)
                entry = _Sub(stub=stub, identity=sub.ior.identity(),
                             shm=self._classify(stub))
                with self._lock:
                    if self._closed:
                        raise api.PubSub_HubClosed(why="hub destroyed")
                    t = self._topics.setdefault(topic, _Topic(topic))
                    t.subs = [s for s in t.subs
                              if s.identity != entry.identity]
                    t.subs.append(entry)

            def unsubscribe(self, topic, sub):
                gone = sub.ior.identity()
                with self._lock:
                    t = self._topics.get(topic)
                    if t is not None:
                        t.subs = [s for s in t.subs if s.identity != gone]

            def _classify(self, stub) -> bool:
                """Whether this subscriber's best route shares the
                delivery arena (the single-copy fan-out cohort)."""
                arena = self.shm_transport.shared_arena
                orb = self.delivery_orb
                profile = orb.select_profile(stub.ior)
                if profile.scheme != "shm":
                    return False
                # dial now (subscribe-time failure beats publish-time
                # surprise) and check the handshake actually yielded
                # the shared arena rather than a degraded plain stream
                # (_non_existent always goes to the wire; _is_a would
                # answer locally from the interface graph)
                if stub._non_existent():
                    return False
                arena = self.shm_transport.shared_arena
                proxy = orb._proxy_for(profile.endpoint)
                stream = getattr(getattr(proxy, "_conn", None), "stream",
                                 None)
                return (arena is not None
                        and getattr(stream, "deposit_channel", None)
                        is not None
                        and getattr(stream, "send_arena", None) is arena)

            # -- publication -------------------------------------------------
            def publish(self, topic, payload):
                with self._lock:
                    if self._closed:
                        raise api.PubSub_HubClosed(why="hub destroyed")
                    t = self._topics.get(topic)
                    if t is None or not t.subs:
                        return 0
                    subs = list(t.subs)
                    t.published += 1
                    t.seq += 1
                    seq = t.seq
                # a wire-side supplier hands the skel a ZCOctetSequence
                # (the landed deposit); a direct caller hands bytes
                view = payload.view() if hasattr(payload, "view") \
                    else (payload if isinstance(payload, memoryview)
                          else memoryview(payload))
                if view.format != "B" or view.ndim != 1:
                    view = view.cast("B")
                cohort = [s for s in subs if s.shm]
                rest = [s for s in subs if not s.shm]
                slot, shared_view = self._stage_fanout(view, len(cohort))
                delivered = 0
                dead = []
                arena = self.shm_transport.shared_arena
                for s in cohort:
                    pending_before = arena.shared_pending(slot) \
                        if slot is not None else 0
                    try:
                        s.stub.deliver(topic, seq,
                                       shared_view if shared_view is not None
                                       else view)
                        delivered += 1
                    except SystemException:
                        if slot is not None and pending_before > 0 \
                                and arena.shared_pending(slot) \
                                == pending_before:
                            # the record never left: release this
                            # reader's share of the refcount, or the
                            # slot would wait for a reader that will
                            # never map it
                            arena.abort_shared_ref(slot)
                        dead.append(s)
                for s in rest:
                    try:
                        s.stub.deliver(topic, seq, view)
                        delivered += 1
                    except SystemException:
                        dead.append(s)
                with self._lock:
                    t.delivered += delivered
                if dead:
                    self._evict(t, dead)
                return delivered

            def _stage_fanout(self, view, readers: int):
                """Write the payload into one shared slot posted at
                ``readers``; ``(None, None)`` degrades to per-link
                deposits (no cohort, oversize, or arena full — the
                slow-subscriber backpressure bound)."""
                arena = self.shm_transport.shared_arena
                if readers == 0 or arena is None or arena.closed \
                        or not 0 < view.nbytes <= arena.slot_size:
                    return None, None
                buf = arena.try_acquire(view.nbytes)
                if buf is None and self.stale_after > 0 \
                        and arena.reclaim_stale(self.stale_after):
                    buf = arena.try_acquire(view.nbytes)
                if buf is None:
                    self.fanout_fallbacks += 1
                    return None, None
                shared_view = buf.view()
                shared_view[:] = view
                loc = arena.locate(shared_view)
                if loc is None:
                    buf.release()
                    return None, None
                arena.post_shared(loc[0], readers=readers)
                self.fanout_posts += 1
                return loc[0], shared_view

            def _evict(self, t: _Topic, dead) -> None:
                gone = {s.identity for s in dead}
                with self._lock:
                    before = len(t.subs)
                    t.subs = [s for s in t.subs if s.identity not in gone]
                    evicted = before - len(t.subs)
                    t.dropped += evicted
                    self.subscribers_evicted += evicted

            # -- introspection -----------------------------------------------
            def stats(self, topic):
                with self._lock:
                    t = self._topics.get(topic)
                    if t is None:
                        raise api.PubSub_NoSuchTopic(topic=topic)
                    return api.PubSub_TopicStats(
                        topic=t.name, subscribers=len(t.subs),
                        published=t.published, delivered=t.delivered,
                        dropped=t.dropped)

            def n_subscribers(self, topic):
                with self._lock:
                    t = self._topics.get(topic)
                    return len(t.subs) if t is not None else 0

            # -- lifecycle ---------------------------------------------------
            def destroy(self):
                with self._lock:
                    if self._closed:
                        return
                    self._closed = True
                    self._topics.clear()
                self.delivery_orb.shutdown()
                self.shm_transport.close()

        return Impl()


class CollectingSubscriber:
    """A subscriber servant that queues ``(topic, seq, bytes)``."""

    def __new__(cls, maxlen: Optional[int] = None):
        api = pubsub_api()

        class Impl(api.PubSub_Subscriber_skel):
            def __init__(self):
                self.events: Deque = deque(maxlen=maxlen)
                self.received = 0
                self._lock = threading.Lock()

            def deliver(self, topic, seq, payload):
                # copy out: the deposit buffer belongs to the request
                data = payload.tobytes() if hasattr(payload, "tobytes") \
                    else bytes(payload)
                with self._lock:
                    self.events.append((topic, seq, data))
                    self.received += 1

            def pop(self):
                with self._lock:
                    try:
                        return self.events.popleft()
                    except IndexError:
                        return None

        return Impl()


class CountingSubscriber:
    """A subscriber servant that only counts — the bench consumer.

    It never copies the payload, so a mapped fan-out slot is released
    (and its refcount decremented) the moment dispatch returns.
    """

    def __new__(cls):
        api = pubsub_api()

        class Impl(api.PubSub_Subscriber_skel):
            def __init__(self):
                self.received = 0
                self.bytes = 0
                self.last_seq = 0

            def deliver(self, topic, seq, payload):
                self.received += 1
                self.bytes += len(payload)
                self.last_seq = seq

        return Impl()
