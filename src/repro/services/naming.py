"""A CosNaming-style Name Service, built on this ORB's own IDL.

Distributed CORBA deployments of the paper's era bootstrapped through
the OMG Naming Service: servers ``bind`` object references under
hierarchical names, clients ``resolve`` them — no IOR strings change
hands out of band.  The transcoder farm example uses it to discover
its encoder objects.

The service is itself an ordinary CORBA object defined in IDL and
served by this package's ORB — the whole middleware stack eats its own
dog food, object references included (contexts return sub-context
*references*, so a naming tree can span processes).

Names are ``/``-separated paths of simple strings, e.g.
``"encoders/node3/Transcoder"``.
"""

from __future__ import annotations

from typing import List

from ..idl import compile_idl
from ..orb import ORB, ObjectStub

__all__ = ["NAMING_IDL", "naming_api", "NamingContextImpl",
           "start_name_service", "NameClient"]

NAMING_IDL = """
module Naming {
    exception NotFound { string rest_of_name; };
    exception AlreadyBound { string name; };
    exception InvalidName { string why; };

    interface NamingContext {
        // bind an object (or context) under a simple name
        void bind(in string name, in Object obj)
            raises (AlreadyBound, InvalidName);
        void rebind(in string name, in Object obj) raises (InvalidName);
        Object resolve(in string name) raises (NotFound, InvalidName);
        void unbind(in string name) raises (NotFound, InvalidName);
        // create (or fetch) a child context
        NamingContext bind_new_context(in string name)
            raises (AlreadyBound, InvalidName);
        // simple-name listing of this context
        sequence<string> list_names();
        unsigned long n_bindings();
    };
};
"""

_api = None


def naming_api():
    global _api
    if _api is None:
        _api = compile_idl(NAMING_IDL, module_name="_repro_naming_idl")
    return _api


def _check_simple(api, name: str) -> None:
    if not name or "/" in name or name in (".", ".."):
        raise api.Naming_InvalidName(why=f"bad simple name {name!r}")


class NamingContextImpl:
    """One node of the naming tree (a servant factory)."""

    def __new__(cls, orb: ORB):
        api = naming_api()

        class Impl(api.Naming_NamingContext_skel):
            def __init__(self):
                self._bindings: dict = {}

            # -- leaf bindings ------------------------------------------
            def bind(self, name, obj):
                _check_simple(api, name)
                if name in self._bindings:
                    raise api.Naming_AlreadyBound(name=name)
                self._bindings[name] = obj

            def rebind(self, name, obj):
                _check_simple(api, name)
                self._bindings[name] = obj

            def resolve(self, name):
                _check_simple(api, name)
                try:
                    return self._bindings[name]
                except KeyError:
                    raise api.Naming_NotFound(rest_of_name=name) from None

            def unbind(self, name):
                _check_simple(api, name)
                if name not in self._bindings:
                    raise api.Naming_NotFound(rest_of_name=name)
                del self._bindings[name]

            # -- sub-contexts --------------------------------------------
            def bind_new_context(self, name):
                _check_simple(api, name)
                if name in self._bindings:
                    raise api.Naming_AlreadyBound(name=name)
                child = NamingContextImpl(orb)
                ref = orb.activate(child)
                self._bindings[name] = ref
                return ref

            # -- introspection ---------------------------------------------
            def list_names(self):
                return sorted(self._bindings)

            def n_bindings(self):
                return len(self._bindings)

        return Impl()


def start_name_service(orb: ORB) -> ObjectStub:
    """Activate a root naming context on ``orb`` and register it as the
    ORB's ``NameService`` initial reference.  Returns the root stub."""
    root = orb.activate(NamingContextImpl(orb))
    orb.register_initial_reference("NameService", root)
    return root


class NameClient:
    """Path-walking convenience over NamingContext references.

    ``NameClient(root).bind("a/b/Service", ref)`` creates intermediate
    contexts as needed; ``resolve`` walks them; every hop is a real
    CORBA invocation on (possibly remote) context objects.
    """

    def __init__(self, root: ObjectStub):
        self.api = naming_api()
        self.root = root

    def _split(self, path: str) -> List[str]:
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise self.api.Naming_InvalidName(why=f"empty path {path!r}")
        return parts

    def _walk(self, parts: List[str], create: bool):
        ctx = self.root
        for i, part in enumerate(parts):
            try:
                nxt = ctx.resolve(part)
            except self.api.Naming_NotFound:
                if not create:
                    raise self.api.Naming_NotFound(
                        rest_of_name="/".join(parts[i:])) from None
                nxt = ctx.bind_new_context(part)
            ctx = nxt._narrow(self.api.Naming_NamingContext) \
                if not isinstance(nxt, self.api.Naming_NamingContext) \
                else nxt
        return ctx

    def bind(self, path: str, ref, rebind: bool = False) -> None:
        *dirs, leaf = self._split(path)
        ctx = self._walk(dirs, create=True)
        if rebind:
            ctx.rebind(leaf, ref)
        else:
            ctx.bind(leaf, ref)

    def resolve(self, path: str):
        *dirs, leaf = self._split(path)
        ctx = self._walk(dirs, create=False)
        return ctx.resolve(leaf)

    def unbind(self, path: str) -> None:
        *dirs, leaf = self._split(path)
        ctx = self._walk(dirs, create=False)
        ctx.unbind(leaf)

    def list(self, path: str = "") -> List[str]:
        parts = [p for p in path.split("/") if p]
        ctx = self._walk(parts, create=False) if parts else self.root
        return list(ctx.list_names())
