"""A push-model Event Channel (CosEventChannel-lite) for bulk streams.

The transcoder pipeline of §5.4 moves video as request parameters;
CORBA deployments of the era often decoupled producers from consumers
with the Event Service instead.  This channel carries *octet payloads*
(the zero-copy type), so it is another bulk-data workload for the ORB:
a supplier pushes a frame once, the channel fans it out to every
connected consumer by reference.

Everything is ordinary CORBA: the channel, suppliers' proxy and the
consumers are objects defined in IDL below; consumers register their
own object references with the channel (callbacks across the ORB).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, List, Optional

from ..idl import compile_idl
from ..orb import ORB
from ..orb.exceptions import SystemException

__all__ = ["EVENTS_IDL", "events_api", "EventChannelImpl",
           "QueueingConsumer"]

EVENTS_IDL = """
module Events {
    exception Disconnected { string why; };

    // implemented by consumers; the channel calls back into these
    interface PushConsumer {
        oneway void push(in sequence<zc_octet> event);
    };

    interface EventChannel {
        void connect_consumer(in PushConsumer consumer);
        void disconnect_consumer(in PushConsumer consumer);
        // supplier side: one push fans out to all consumers
        void push(in sequence<zc_octet> event) raises (Disconnected);
        unsigned long n_consumers();
        unsigned long long events_delivered();
        // dead consumers auto-disconnected by a failing push
        unsigned long consumers_evicted();
        // disconnect everyone; later pushes raise Disconnected
        void destroy();
    };
};
"""

_api = None


def events_api():
    global _api
    if _api is None:
        _api = compile_idl(EVENTS_IDL, module_name="_repro_events_idl")
    return _api


class EventChannelImpl:
    """Channel servant factory: fan-out by reference.

    The payload arrives once (direct deposit) and the same landed
    buffer is pushed to every consumer — within one process that is
    zero additional copies per consumer; across processes each consumer
    link carries one deposit.
    """

    def __new__(cls):
        api = events_api()

        class Impl(api.Events_EventChannel_skel):
            def __init__(self):
                self._consumers: List = []
                self._lock = threading.Lock()
                self._delivered = 0
                self._closed = False
                #: consumers auto-disconnected after a failed push
                self.events_consumers_evicted = 0

            def connect_consumer(self, consumer):
                with self._lock:
                    self._consumers.append(consumer)

            def disconnect_consumer(self, consumer):
                # key on full object identity (type id + object keys,
                # profile-order independent) — matching on the first
                # IIOP profile alone misses multi-profile references
                # and raises for profile-less ones
                gone = consumer.ior.identity()
                with self._lock:
                    self._consumers = [
                        c for c in self._consumers
                        if c.ior.identity() != gone]

            def push(self, event):
                with self._lock:
                    if self._closed:
                        raise api.Events_Disconnected(why="channel closed")
                    consumers = list(self._consumers)
                dead = []
                delivered = 0
                for consumer in consumers:
                    try:
                        consumer.push(event)
                    except SystemException:
                        # one dead consumer (COMM_FAILURE/TIMEOUT on
                        # its callback) must not poison the supplier's
                        # push or starve the consumers behind it:
                        # auto-disconnect it and keep delivering
                        dead.append(consumer)
                        continue
                    delivered += 1
                with self._lock:
                    # concurrent pushes both mutate the counter; an
                    # unserialized += would lose updates
                    self._delivered += delivered
                if dead:
                    self._evict(dead)

            def _evict(self, dead) -> None:
                gone = {c.ior.identity() for c in dead}
                with self._lock:
                    before = len(self._consumers)
                    self._consumers = [
                        c for c in self._consumers
                        if c.ior.identity() not in gone]
                    self.events_consumers_evicted += \
                        before - len(self._consumers)

            def destroy(self):
                with self._lock:
                    self._closed = True
                    self._consumers = []

            def n_consumers(self):
                with self._lock:
                    return len(self._consumers)

            def events_delivered(self):
                with self._lock:
                    return self._delivered

            def consumers_evicted(self):
                return self.events_consumers_evicted

        return Impl()


class QueueingConsumer:
    """A consumer servant that queues received events for the app."""

    def __new__(cls, maxlen: Optional[int] = None):
        api = events_api()

        class Impl(api.Events_PushConsumer_skel):
            def __init__(self):
                self.events: Deque[bytes] = deque(maxlen=maxlen)
                self.received = 0

            def push(self, event):
                # copy out: the deposit buffer belongs to the request
                self.events.append(event.tobytes())
                self.received += 1

            def pop(self) -> Optional[bytes]:
                try:
                    return self.events.popleft()
                except IndexError:
                    return None

        return Impl()
