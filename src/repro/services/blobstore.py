"""A chunked large-object store (BlobStore) for file-backed payloads.

The paper's bulk-data workloads (§5) move multi-megabyte payloads as
request parameters.  This service is the disk-resident variant: blobs
live as ordinary files under a served root, and clients read them over
GIOP in bounded chunks.  Each ``read_range`` reply carries a
:class:`~repro.core.buffers.FileBackedBuffer`, so on a real TCP link
the server hands the kernel the file region directly
(``os.sendfile``) — the blob bytes never enter Python on the send
side.  On shm links the range is staged into the arena; everywhere
else it falls back to a plain copy.  One service, three tiers.

The client helper streams a whole blob with a bounded window of
in-flight ``read_range`` requests riding the ORB's GIOP pipelining
(PR 4): chunk ``k+window`` is requested before chunk ``k``'s reply
has landed, hiding the request round-trip behind the data transfer.
"""

from __future__ import annotations

import itertools
import os
import threading
from typing import Dict, Optional

from ..core.buffers import FileBackedBuffer
from ..idl import compile_idl
from ..orb.async_invoke import AsyncInvoker

__all__ = ["BLOB_IDL", "blob_api", "BlobStoreImpl", "read_all"]

BLOB_IDL = """
module Blob {
    exception NotFound { string name; };
    exception BadHandle { unsigned long handle; };
    exception IOFailed { string why; };

    struct BlobInfo {
        unsigned long long size;
        unsigned long chunk_size;   // server-preferred read granule
    };

    interface BlobStore {
        // open a named blob for reading; returns a handle
        unsigned long open(in string name) raises (NotFound);
        BlobInfo stat(in unsigned long handle) raises (BadHandle);
        // read up to `count` bytes at `offset` (short reads at EOF)
        sequence<zc_octet> read_range(in unsigned long handle,
                                      in unsigned long long offset,
                                      in unsigned long count)
            raises (BadHandle, IOFailed);
        void close(in unsigned long handle) raises (BadHandle);
    };
};
"""

_api = None


def blob_api():
    global _api
    if _api is None:
        _api = compile_idl(BLOB_IDL, module_name="_repro_blob_idl")
    return _api


class BlobStoreImpl:
    """Servant factory serving the files under ``root`` (read-only).

    Blob names are simple file names — no path separators, no parent
    references — so a client cannot escape the served directory.
    """

    def __new__(cls, root, chunk_size: int = 1024 * 1024):
        api = blob_api()
        root = os.fspath(root)

        class Impl(api.Blob_BlobStore_skel):
            def __init__(self):
                self._root = root
                self._chunk = chunk_size
                self._handles: Dict[int, int] = {}  # handle -> fd
                self._next = itertools.count(1)
                self._lock = threading.Lock()

            # -- handle table -------------------------------------------
            def _fd(self, handle):
                with self._lock:
                    try:
                        return self._handles[handle]
                    except KeyError:
                        raise api.Blob_BadHandle(handle=handle) from None

            # -- operations ---------------------------------------------
            def open(self, name):
                if (not name or "/" in name or os.sep in name
                        or name in (".", "..")):
                    raise api.Blob_NotFound(name=name)
                try:
                    fd = os.open(os.path.join(self._root, name),
                                 os.O_RDONLY)
                except OSError:
                    raise api.Blob_NotFound(name=name) from None
                handle = next(self._next)
                with self._lock:
                    self._handles[handle] = fd
                return handle

            def stat(self, handle):
                fd = self._fd(handle)
                return api.Blob_BlobInfo(size=os.fstat(fd).st_size,
                                         chunk_size=self._chunk)

            def read_range(self, handle, offset, count):
                fd = self._fd(handle)
                try:
                    size = os.fstat(fd).st_size
                except OSError as e:
                    raise api.Blob_IOFailed(why=str(e)) from None
                n = min(count, max(size - offset, 0))
                if n <= 0:
                    return b""
                # non-owning range over the handle's fd: the reply
                # rides the sendfile tier on TCP, the arena on shm
                return FileBackedBuffer(fd, offset, n)

            def close(self, handle):
                with self._lock:
                    fd = self._handles.pop(handle, None)
                if fd is None:
                    raise api.Blob_BadHandle(handle=handle)
                os.close(fd)

            # -- local lifecycle (not an IDL operation) -----------------
            def shutdown(self):
                with self._lock:
                    fds, self._handles = list(self._handles.values()), {}
                for fd in fds:
                    os.close(fd)

        return Impl()


def read_all(store, name: str, *, window: int = 4,
             chunk_size: Optional[int] = None,
             invoker: Optional[AsyncInvoker] = None) -> bytes:
    """Stream the whole blob ``name`` from ``store``; returns its bytes.

    Keeps up to ``window`` ``read_range`` requests in flight on the
    connection (GIOP pipelining), reassembling replies in offset
    order.  ``chunk_size`` defaults to the server's preferred granule.
    """
    if window <= 0:
        raise ValueError(f"window must be positive: {window}")
    handle = store.open(name)
    own_invoker = invoker is None
    if own_invoker:
        invoker = AsyncInvoker(max_workers_per_endpoint=window)
    try:
        info = store.stat(handle)
        chunk = chunk_size if chunk_size is not None else info.chunk_size
        if chunk <= 0:
            raise ValueError(f"chunk_size must be positive: {chunk}")
        offsets = list(range(0, info.size, chunk))
        parts = []
        pending = {}  # offset -> Future, at most `window` entries
        nxt = 0
        for off in offsets:
            while len(pending) >= window:
                head = offsets[nxt]
                parts.append(bytes(pending.pop(head).result()))
                nxt += 1
            pending[off] = invoker.submit(
                store, "read_range", (handle, off, chunk))
        while nxt < len(offsets):
            parts.append(bytes(pending.pop(offsets[nxt]).result()))
            nxt += 1
        return b"".join(parts)
    finally:
        store.close(handle)
        if own_invoker:
            invoker.shutdown()
