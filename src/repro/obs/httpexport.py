"""The ``/metrics`` scrape endpoint and the runtime gauge sampler.

:class:`TelemetryServer` is a stdlib ``http.server`` running on a
daemon thread — deliberately boring: it serves three read-only paths
and holds no state beyond references to the objects it exposes:

* ``/metrics`` — the attached :class:`MetricsRegistry` in Prometheus
  text format 0.0.4 (:mod:`repro.obs.promexport`);
* ``/healthz`` — a tiny JSON liveness document;
* ``/spans``   — the flight recorder's current contents as a
  span-schema-v2 JSON dump (loadable by ``repro-metrics tree``).

:class:`RuntimeSampler` refreshes the gauges that have no natural
update site in the hot path — process RSS, GC tallies, thread count,
buffer-pool occupancy, shm-arena slot occupancy, worker-pool depth,
per-connection tier counters — by polling a list of *probe* callables
on its own thread at a fixed cadence, and once more synchronously on
every scrape so the numbers are never staler than the request.

``ORB.enable_telemetry()`` composes the two around the ORB's registry
and flight recorder; :func:`orb_probes` is the ORB-shaped probe set.
"""

from __future__ import annotations

import gc
import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, List, Optional
from urllib.parse import parse_qs, urlparse

from .export import spans_to_dict
from .metrics import MetricsRegistry
from .promexport import CONTENT_TYPE, render

__all__ = ["TelemetryServer", "RuntimeSampler", "orb_probes",
           "start_telemetry"]

#: a probe mutates gauges on the registry it is handed
Probe = Callable[[MetricsRegistry], None]


# ---------------------------------------------------------------------------
# process-level probes
# ---------------------------------------------------------------------------

def _rss_bytes() -> Optional[int]:
    """Resident set size: /proc on Linux, peak-RSS rusage elsewhere."""
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; both are close enough for a
        # fallback gauge and Linux rarely reaches this path at all
        return rss * 1024 if rss < 1 << 32 else rss
    except Exception:
        return None


def process_probe(registry: MetricsRegistry) -> None:
    """RSS, GC collection tallies, live thread count."""
    rss = _rss_bytes()
    if rss is not None:
        registry.gauge("process_resident_memory_bytes",
                       help="resident set size").set(rss)
    registry.gauge("process_threads",
                   help="live Python threads").set(threading.active_count())
    for gen, stats in enumerate(gc.get_stats()):
        registry.gauge("python_gc_collections", generation=str(gen),
                       help="GC runs per generation").set(
                           stats.get("collections", 0))


# ---------------------------------------------------------------------------
# ORB-shaped probes
# ---------------------------------------------------------------------------

#: ConnStats counters aggregated across connections onto gauges of the
#: same name — the tier mix a scrape sees (shm_deposits,
#: sendfile_sends, ...), kept nameable without enable_tracing
_CONN_FIELDS = (
    "messages_sent", "messages_received", "bytes_sent", "bytes_received",
    "deposits_sent", "deposits_received", "deposit_bytes_sent",
    "deposit_bytes_received", "reconnects", "retries",
    "deposit_fallbacks", "timeouts", "shm_deposits", "shm_fallbacks",
    "sendfile_sends", "sendfile_fallbacks",
)


def _pool_probe(orb) -> Probe:
    def probe(registry: MetricsRegistry) -> None:
        stats = orb.pool.stats()
        registry.gauge("pool_cached_bytes",
                       help="BufferPool bytes parked").set(
                           stats["cached_bytes"])
        registry.gauge("pool_cached_buffers",
                       help="BufferPool buffers parked").set(
                           stats["cached_count"])
        for key in ("hits", "misses", "reclaims"):
            registry.gauge(f"pool_{key}",
                           help=f"BufferPool {key} so far").set(stats[key])
    return probe


def _conn_probe(orb) -> Probe:
    def probe(registry: MetricsRegistry) -> None:
        totals = dict.fromkeys(_CONN_FIELDS, 0)
        count = {"client": 0, "server": 0}
        for snap in orb.connections_snapshot():
            count[snap["role"]] = count.get(snap["role"], 0) + 1
            for f in _CONN_FIELDS:
                totals[f] += snap.get(f, 0)
        for role, n in count.items():
            registry.gauge("orb_connections", role=role,
                           help="live GIOP connections").set(n)
        for f in _CONN_FIELDS:
            registry.gauge(f, help=f"ConnStats.{f} over all "
                                   f"connections").set(totals[f])
    return probe


def _arena_probe(orb) -> Probe:
    def probe(registry: MetricsRegistry) -> None:
        free = {"send": 0, "recv": 0}
        total = {"send": 0, "recv": 0}
        for stream in orb._iter_streams():
            for direction in ("send", "recv"):
                arena = getattr(stream, f"{direction}_arena", None)
                if arena is None or arena.closed:
                    continue
                free[direction] += arena.free_slots
                total[direction] += arena.slot_count
        for direction in ("send", "recv"):
            registry.gauge("arena_slots_free", dir=direction,
                           help="FREE shm arena slots").set(free[direction])
            registry.gauge("arena_slots_total", dir=direction,
                           help="shm arena slots").set(total[direction])
    return probe


def _server_probe(orb) -> Probe:
    def probe(registry: MetricsRegistry) -> None:
        server = orb._server
        pool = getattr(server, "workers", None) if server is not None \
            else None
        if pool is None:
            return
        registry.gauge("server_worker_inflight",
                       help="requests queued or executing").set(
                           pool.inflight)
        registry.gauge("server_worker_queue",
                       help="requests waiting in the queue").set(
                           pool.queue_size)
    return probe


def _flightrec_probe(orb) -> Probe:
    def probe(registry: MetricsRegistry) -> None:
        rec = orb.flightrec
        if rec is None:
            return
        for key, value in rec.counters().items():
            registry.gauge(f"flightrec_{key}",
                           help=f"flight recorder {key}").set(value)
    return probe


def _uptime_probe(orb) -> Probe:
    def probe(registry: MetricsRegistry) -> None:
        registry.gauge("process_uptime_seconds",
                       help="seconds since the ORB was created").set(
                           orb.uptime())
    return probe


def orb_probes(orb) -> List[Probe]:
    """The standard probe set for one ORB."""
    return [process_probe, _uptime_probe(orb), _pool_probe(orb),
            _conn_probe(orb), _arena_probe(orb), _server_probe(orb),
            _flightrec_probe(orb)]


# ---------------------------------------------------------------------------
# the sampler thread
# ---------------------------------------------------------------------------

class RuntimeSampler:
    """Runs every probe against ``registry`` at ``interval`` seconds.

    A failing probe is disabled for the sampler's lifetime (and counted
    on the ``sampler_probe_errors`` gauge) instead of killing the
    thread — telemetry must never take the ORB down with it.
    """

    def __init__(self, registry: MetricsRegistry, probes: List[Probe],
                 interval: float = 1.0):
        if interval <= 0:
            raise ValueError(f"interval must be positive: {interval}")
        self.registry = registry
        self.interval = interval
        self._probes = list(probes)
        self._dead: List[Probe] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.samples = 0

    def sample(self) -> None:
        """Run every live probe once, synchronously."""
        with self._lock:
            probes = list(self._probes)
        for probe in probes:
            try:
                probe(self.registry)
            except Exception:
                with self._lock:
                    if probe in self._probes:
                        self._probes.remove(probe)
                        self._dead.append(probe)
                self.registry.gauge(
                    "sampler_probe_errors",
                    help="probes disabled after raising").set(
                        len(self._dead))
        self.samples += 1

    def start(self) -> "RuntimeSampler":
        if self._thread is None:
            self._thread = threading.Thread(target=self._run,
                                            name="repro-sampler",
                                            daemon=True)
            self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None


# ---------------------------------------------------------------------------
# the HTTP endpoint
# ---------------------------------------------------------------------------

class TelemetryServer:
    """Serves ``/metrics``, ``/healthz`` and ``/spans`` on a thread.

    ``port=0`` picks a free port (see :attr:`port` / :attr:`url`).
    ``health`` is a zero-arg callable returning the ``/healthz`` JSON
    document; ``recorder`` (a :class:`~repro.obs.flightrec
    .FlightRecorder`) backs ``/spans``; ``sampler`` (if any) is run
    synchronously before each ``/metrics`` render and closed with the
    server.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 recorder=None, sampler: Optional[RuntimeSampler] = None,
                 health: Optional[Callable[[], dict]] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.registry = registry
        self.recorder = recorder
        self.sampler = sampler
        self._health = health or (lambda: {"status": "ok"})
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib handler API)
                outer._handle(self)

            def log_message(self, *args):  # silence per-request stderr
                pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.scrapes = 0
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="repro-telemetry",
                                        daemon=True)
        self._thread.start()

    # -- addressing ----------------------------------------------------------
    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------------
    def _handle(self, req: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(req.path)
        try:
            if parsed.path == "/metrics":
                if self.sampler is not None:
                    self.sampler.sample()
                body = render(self.registry).encode("utf-8")
                ctype = CONTENT_TYPE
                self.scrapes += 1
            elif parsed.path == "/healthz":
                body = (json.dumps(self._health()) + "\n").encode("utf-8")
                ctype = "application/json"
            elif parsed.path == "/spans":
                body = self._spans_body(parsed)
                ctype = "application/json"
            else:
                req.send_error(404, "unknown path")
                return
        except Exception as e:  # pragma: no cover - defensive
            req.send_error(500, f"{type(e).__name__}: {e}")
            return
        req.send_response(200)
        req.send_header("Content-Type", ctype)
        req.send_header("Content-Length", str(len(body)))
        req.end_headers()
        req.wfile.write(body)

    def _spans_body(self, parsed) -> bytes:
        n = 0
        qs = parse_qs(parsed.query)
        if "n" in qs:
            try:
                n = max(0, int(qs["n"][0]))
            except ValueError:
                n = 0
        spans = self.recorder.spans(n) if self.recorder is not None else []
        doc = spans_to_dict(spans)
        return (json.dumps(doc) + "\n").encode("utf-8")

    # -- lifecycle -----------------------------------------------------------
    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)
        if self.sampler is not None:
            self.sampler.close()

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_telemetry(orb, *, port: int = 0, host: str = "127.0.0.1",
                    interval: float = 1.0) -> TelemetryServer:
    """Build the ORB-shaped telemetry plane: sampler + HTTP endpoint.

    Called by :meth:`repro.orb.ORB.enable_telemetry`; requires the ORB
    to have a metrics registry already (enable_telemetry installs one).
    """
    sampler = RuntimeSampler(orb.metrics, orb_probes(orb),
                             interval=interval)
    sampler.sample()  # gauges exist before the first scrape
    sampler.start()

    def health() -> dict:
        return {
            "status": "ok",
            "orb": f"orb{orb.orb_id}",
            "uptime_s": round(orb.uptime(), 3),
            "scheme": orb.config.scheme,
            "pid": os.getpid(),
        }

    return TelemetryServer(orb.metrics, recorder=orb.flightrec,
                           sampler=sampler, health=health,
                           host=host, port=port)
