"""Built-in tracing: the interceptor that produces live breakdowns.

Two consumers of the structured event stream:

* :class:`TracingInterceptor` rides the existing
  :class:`repro.orb.interceptors.InterceptorRegistry`.  On the client
  side it brackets each invocation (``send_request`` opens a
  :class:`~repro.obs.stages.StageTimer` record, ``receive_reply``
  commits it) and folds the result into a
  :class:`~repro.obs.metrics.MetricsRegistry`; on the server side it
  counts and times servant upcalls.  Install with
  ``orb.enable_tracing()`` (which also wires the timer in as the ORB's
  event sink) or register it manually and assign ``orb.sink``.

* :class:`WireTracer` logs every GIOP message the connection layer
  reports — type, request id, control size, fragment count and deposit
  descriptors — to the ``repro.obs.wire`` logger and a bounded ring.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional

from ..orb.interceptors import RequestInfo, RequestInterceptor
from .events import EventSink, WireEvent
from .metrics import (DEFAULT_SIZE_BUCKETS, MetricsRegistry)
from .stages import InvocationBreakdown, StageTimer

__all__ = ["TracingInterceptor", "WireTracer", "format_wire_event"]

_SLOT_T0 = "obs.server_t0"


class TracingInterceptor(RequestInterceptor):
    """Per-request stage breakdown + metrics, as an interceptor.

    Owns a :attr:`timer` (the :class:`StageTimer` the ORB layers feed
    stage events into) and a :attr:`registry` (shared or private).
    All durations are measured with the injected ``clock``.
    """

    name = "tracing"

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 keep: int = 128):
        self.clock = clock
        self.registry = registry if registry is not None \
            else MetricsRegistry(clock=clock)
        self.timer = StageTimer(clock=clock, keep=keep)
        #: optionally attached by ORB.enable_tracing(wire=True)
        self.wire: Optional["WireTracer"] = None
        #: SpanCollector, attached by ORB.enable_tracing(distributed=True)
        self.spans = None

    # -- client side ---------------------------------------------------------
    def send_request(self, info: RequestInfo) -> None:
        self.timer.begin(info.operation)

    def receive_reply(self, info: RequestInfo) -> None:
        rec = self.timer.commit(request_id=info.request_id,
                                reply_status=info.reply_status)
        if rec is not None:
            self._record(rec)

    def _record(self, rec: InvocationBreakdown) -> None:
        reg = self.registry
        reg.counter("invocations_total", operation=rec.operation).inc()
        if rec.reply_status not in (None, "NO_EXCEPTION"):
            reg.counter("invocation_errors_total",
                        operation=rec.operation).inc()
        reg.histogram("invocation_seconds",
                      operation=rec.operation).observe(rec.total_s)
        for stage in rec.stage_order():
            reg.histogram("stage_seconds",
                          stage=stage).observe(rec.duration_s(stage))
            nbytes = rec.nbytes(stage)
            if nbytes:
                reg.counter("stage_bytes_total", stage=stage).inc(nbytes)
                reg.histogram("stage_payload_bytes",
                              buckets=DEFAULT_SIZE_BUCKETS,
                              stage=stage).observe(nbytes)

    # -- server side ---------------------------------------------------------
    def receive_request(self, info: RequestInfo) -> None:
        info.slots[_SLOT_T0] = self.clock()

    def send_reply(self, info: RequestInfo) -> None:
        t0 = info.slots.pop(_SLOT_T0, None)
        reg = self.registry
        reg.counter("server_requests_total",
                    operation=info.operation).inc()
        if info.reply_status not in (None, "NO_EXCEPTION"):
            reg.counter("server_errors_total",
                        operation=info.operation).inc()
        if t0 is not None:
            reg.histogram("server_handle_seconds",
                          operation=info.operation).observe(
                max(0.0, self.clock() - t0))

    # -- convenience ---------------------------------------------------------
    @property
    def last(self) -> Optional[InvocationBreakdown]:
        """The most recent committed invocation breakdown."""
        return self.timer.last


def format_wire_event(ev: WireEvent) -> str:
    """One human-readable line per GIOP message."""
    rid = "-" if ev.request_id is None else str(ev.request_id)
    out = (f"{ev.direction:<4} {ev.msg_type:<15} id={rid:<6} "
           f"size={ev.size}")
    if ev.fragments > 1:
        out += f" frags={ev.fragments}"
    if ev.deposits:
        descs = ",".join(f"{i}:{n}" for i, n in ev.deposits)
        out += f" deposits=[{descs}]"
    return out


class WireTracer(EventSink):
    """GIOP wire log: every message's type, id, sizes and deposits."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 keep: int = 256,
                 logger: Optional[logging.Logger] = None):
        super().__init__(clock=clock)
        self.records: Deque[WireEvent] = deque(maxlen=keep)
        self.log = logger if logger is not None \
            else logging.getLogger("repro.obs.wire")
        self._lock = threading.Lock()

    def emit(self, event) -> None:
        if not isinstance(event, WireEvent):
            return
        with self._lock:
            self.records.append(event)
        self.log.debug("%s", format_wire_event(event))

    def lines(self) -> List[str]:
        with self._lock:
            return [format_wire_event(e) for e in self.records]
