"""Exporters: render a MetricsRegistry or a span set as text or JSON.

The text form is a Prometheus-flavoured line format (stable, greppable,
shows up well in CI logs); the JSON form is the machine interface the
benchmark harness and the CI smoke step parse.  Both read one
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, so an export is
internally consistent even while the ORB keeps counting.

Two dump schemas coexist, distinguished by their ``schema`` field:

* **v1** — metrics dumps (``{"schema": 1, "metrics": [...]}``);
* **v2** — span dumps from :mod:`repro.obs.dtrace`
  (``{"schema": 2, "spans": [...]}``), one object per finished span
  with its parentage, stage record, and the control/deposit byte split.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Union

from .metrics import MetricsRegistry

__all__ = ["to_dict", "to_json", "render_text", "dump_metrics",
           "spans_to_dict", "dump_spans",
           "SCHEMA_VERSION", "SPAN_SCHEMA_VERSION"]

#: bumped when the metrics snapshot shape changes; parsers check it
SCHEMA_VERSION = 1

#: the span-dump schema, versioned alongside (and distinct from) v1
SPAN_SCHEMA_VERSION = 2


def to_dict(registry: MetricsRegistry, **meta) -> dict:
    """JSON-ready dict: ``{"schema": 1, "metrics": [...], **meta}``."""
    out = {"schema": SCHEMA_VERSION}
    out.update(meta)
    out.update(registry.snapshot())
    return out


def to_json(registry: MetricsRegistry, indent: Optional[int] = 2,
            **meta) -> str:
    return json.dumps(to_dict(registry, **meta), indent=indent,
                      sort_keys=False)


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _fmt_value(v) -> str:
    if isinstance(v, float) and v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v) if not isinstance(v, float) else f"{v:.9g}"


def render_text(registry: MetricsRegistry) -> str:
    """Prometheus-style exposition lines (one series per line;
    histograms expand to ``_bucket``/``_sum``/``_count``)."""
    lines: List[str] = []
    for snap in registry.snapshot()["metrics"]:
        name = snap["name"]
        labels = snap.get("labels", {})
        if snap["type"] == "histogram":
            for bucket in snap["buckets"]:
                lab = dict(labels)
                lab["le"] = bucket["le"]
                lines.append(f"{name}_bucket{_fmt_labels(lab)} "
                             f"{bucket['count']}")
            lines.append(f"{name}_sum{_fmt_labels(labels)} "
                         f"{_fmt_value(snap['sum'])}")
            lines.append(f"{name}_count{_fmt_labels(labels)} "
                         f"{snap['count']}")
        else:
            lines.append(f"{name}{_fmt_labels(labels)} "
                         f"{_fmt_value(snap['value'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_dict(spans: Iterable, **meta) -> dict:
    """JSON-ready span dump (schema v2).

    ``spans`` is an iterable of :class:`repro.obs.dtrace.Span` or a
    :class:`~repro.obs.dtrace.SpanCollector`.
    """
    members = getattr(spans, "spans", spans)
    out = {"schema": SPAN_SCHEMA_VERSION}
    out.update(meta)
    out["spans"] = [s.as_dict() for s in members]
    return out


def dump_spans(spans: Iterable, target: Union[str, IO[str]],
               indent: Optional[int] = 2, **meta) -> None:
    """Write a schema-v2 span dump to a path or open text file."""
    payload = json.dumps(spans_to_dict(spans, **meta), indent=indent) + "\n"
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        target.write(payload)


def dump_metrics(registry: MetricsRegistry,
                 target: Union[str, IO[str]], fmt: str = "json",
                 **meta) -> None:
    """Write the registry to a path or open text file.

    ``fmt`` is ``"json"`` (the parseable dump the CI smoke step
    asserts on) or ``"text"`` (the Prometheus-style lines).
    """
    if fmt == "json":
        payload = to_json(registry, **meta) + "\n"
    elif fmt == "text":
        payload = render_text(registry)
    else:
        raise ValueError(f"unknown metrics format {fmt!r}")
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            fh.write(payload)
    else:
        target.write(payload)
