"""Prometheus text exposition (format 0.0.4) for a MetricsRegistry.

The existing :func:`repro.obs.export.render_text` is a debugging
renderer: no HELP/TYPE metadata, no label escaping, histograms as
pre-digested percentiles.  This module is the *interoperable* one — the
``/metrics`` endpoint of :mod:`repro.obs.httpexport` serves exactly
what a stock Prometheus server scrapes:

* one ``# HELP`` / ``# TYPE`` header per metric family, samples of all
  label children grouped under it;
* histograms as cumulative ``_bucket{le="..."}`` series with the
  terminal ``le="+Inf"`` plus ``_sum`` and ``_count``;
* label values escaped per the spec (``\\``, ``\"``, ``\n``).

The module also carries the *strict* line-grammar parser
(:func:`parse_exposition`) used by the tests, the CI smoke step and
``repro-top``: it validates names, label syntax, escapes, value
lexemes and histogram invariants (cumulative buckets, ``+Inf`` ==
``_count``) and raises :class:`ExpositionError` on the first
violation, so a scrape that parses is a scrape Prometheus would accept.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CONTENT_TYPE", "ExpositionError", "Sample", "render",
    "parse_exposition", "samples_by_name",
]

#: the content type Prometheus expects for text format 0.0.4
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")

_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class ExpositionError(ValueError):
    """A line of exposition text violates the 0.0.4 grammar."""


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _sanitize_name(name: str) -> str:
    name = _SANITIZE_RE.sub("_", name)
    if not name or name[0].isdigit():
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r"\""))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _fmt_value(v) -> str:
    if isinstance(v, bool):
        return "1" if v else "0"
    if isinstance(v, int):
        return str(v)
    v = float(v)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _fmt_le(bound) -> str:
    if bound == "+Inf":
        return "+Inf"
    return _fmt_value(float(bound))


def _label_str(labels: Dict[str, str],
               extra: Optional[Tuple[str, str]] = None) -> str:
    items = [(k, str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    inner = ",".join(f'{_sanitize_name(k)}="{_escape_label(v)}"'
                     for k, v in items)
    return "{" + inner + "}"


def render(registry) -> str:
    """The registry in text exposition format 0.0.4.

    Families (series sharing a name) are rendered contiguously under
    one HELP/TYPE header; the first series' help string wins.  A name
    registered with conflicting metric types (possible per label set)
    degrades to ``untyped`` raw values rather than lying about shape.
    """
    families: Dict[str, List] = {}
    order: List[str] = []
    for metric in registry.series():
        name = _sanitize_name(metric.name)
        if name not in families:
            families[name] = []
            order.append(name)
        families[name].append(metric)

    out: List[str] = []
    for name in order:
        members = families[name]
        types = {m.type_name for m in members}
        ftype = members[0].type_name if len(types) == 1 else "untyped"
        help_text = next((m.help for m in members if m.help), "")
        if help_text:
            out.append(f"# HELP {name} {_escape_help(help_text)}")
        out.append(f"# TYPE {name} {ftype}")
        for m in members:
            snap = m.snapshot()
            if ftype == "histogram":
                for bucket in snap["buckets"]:
                    out.append(
                        f"{name}_bucket"
                        f"{_label_str(m.labels, ('le', _fmt_le(bucket['le'])))}"
                        f" {_fmt_value(bucket['count'])}")
                out.append(f"{name}_sum{_label_str(m.labels)} "
                           f"{_fmt_value(snap['sum'])}")
                out.append(f"{name}_count{_label_str(m.labels)} "
                           f"{_fmt_value(snap['count'])}")
            else:
                out.append(f"{name}{_label_str(m.labels)} "
                           f"{_fmt_value(snap['value'])}")
    return "\n".join(out) + ("\n" if out else "")


# ---------------------------------------------------------------------------
# strict parsing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Sample:
    """One parsed sample line."""

    name: str
    labels: Tuple[Tuple[str, str], ...]
    value: float

    @property
    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)


@dataclass
class _Family:
    type: Optional[str] = None
    closed: bool = False  #: a later family started; reopening is an error
    samples: List[Sample] = field(default_factory=list)


def _parse_value(text: str, where: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"{where}: bad value {text!r}") from None


def _unescape_label(raw: str, where: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch == "\\":
            if i + 1 >= len(raw):
                raise ExpositionError(f"{where}: dangling escape")
            nxt = raw[i + 1]
            if nxt == "\\":
                out.append("\\")
            elif nxt == "n":
                out.append("\n")
            elif nxt == '"':
                out.append('"')
            else:
                raise ExpositionError(f"{where}: bad escape \\{nxt}")
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(raw: str, where: str) -> Tuple[Tuple[str, str], ...]:
    """``name="value",...`` (no surrounding braces)."""
    labels: List[Tuple[str, str]] = []
    i, n = 0, len(raw)
    while i < n:
        j = raw.find("=", i)
        if j < 0:
            raise ExpositionError(f"{where}: label without '='")
        lname = raw[i:j].strip()
        if not _LABEL_RE.match(lname):
            raise ExpositionError(f"{where}: bad label name {lname!r}")
        if j + 1 >= n or raw[j + 1] != '"':
            raise ExpositionError(f"{where}: label value not quoted")
        # find the closing quote, honouring backslash escapes
        k = j + 2
        while k < n:
            if raw[k] == "\\":
                k += 2
                continue
            if raw[k] == '"':
                break
            k += 1
        if k >= n:
            raise ExpositionError(f"{where}: unterminated label value")
        labels.append((lname, _unescape_label(raw[j + 2:k], where)))
        i = k + 1
        if i < n:
            if raw[i] != ",":
                raise ExpositionError(f"{where}: expected ',' after label")
            i += 1
    if len(dict(labels)) != len(labels):
        raise ExpositionError(f"{where}: duplicate label name")
    return tuple(labels)


def _parse_sample(line: str, where: str) -> Sample:
    if "{" in line:
        brace = line.index("{")
        name = line[:brace]
        close = line.rfind("}")
        if close < brace:
            raise ExpositionError(f"{where}: unbalanced braces")
        labels = _parse_labels(line[brace + 1:close], where)
        rest = line[close + 1:].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ExpositionError(f"{where}: sample without value")
        name, rest = parts
        labels = ()
    if not _NAME_RE.match(name):
        raise ExpositionError(f"{where}: bad metric name {name!r}")
    fields = rest.split()
    if len(fields) not in (1, 2):  # optional trailing timestamp
        raise ExpositionError(f"{where}: trailing garbage {rest!r}")
    if len(fields) == 2:
        try:
            int(fields[1])
        except ValueError:
            raise ExpositionError(
                f"{where}: bad timestamp {fields[1]!r}") from None
    return Sample(name=name, labels=labels,
                  value=_parse_value(fields[0], where))


def _base_family(name: str, families: Dict[str, _Family]) -> str:
    """Histogram sample names resolve to their TYPEd base family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[:-len(suffix)]
            fam = families.get(base)
            if fam is not None and fam.type == "histogram":
                return base
    return name


def _check_histogram(name: str, fam: _Family) -> None:
    """Cumulative-bucket and sum/count invariants of one family."""
    by_child: Dict[Tuple, Dict] = {}
    for s in fam.samples:
        labels = dict(s.labels)
        le = labels.pop("le", None)
        child = by_child.setdefault(tuple(sorted(labels.items())),
                                    {"buckets": [], "sum": None,
                                     "count": None})
        if s.name == name + "_bucket":
            if le is None:
                raise ExpositionError(
                    f"histogram {name}: _bucket without le")
            child["buckets"].append((_parse_value(le, name), s.value))
        elif s.name == name + "_sum":
            child["sum"] = s.value
        elif s.name == name + "_count":
            child["count"] = s.value
        else:
            raise ExpositionError(
                f"histogram {name}: stray sample {s.name}")
    for key, child in by_child.items():
        buckets = sorted(child["buckets"])
        if not buckets or not math.isinf(buckets[-1][0]):
            raise ExpositionError(
                f"histogram {name}{dict(key)}: no +Inf bucket")
        counts = [c for _, c in buckets]
        if counts != sorted(counts):
            raise ExpositionError(
                f"histogram {name}{dict(key)}: buckets not cumulative")
        if child["sum"] is None or child["count"] is None:
            raise ExpositionError(
                f"histogram {name}{dict(key)}: missing _sum/_count")
        if counts[-1] != child["count"]:
            raise ExpositionError(
                f"histogram {name}{dict(key)}: +Inf bucket "
                f"({counts[-1]:g}) != _count ({child['count']:g})")


def parse_exposition(text: str) -> List[Sample]:
    """Parse (and validate) text exposition format 0.0.4.

    Returns every sample in document order.  Raises
    :class:`ExpositionError` on any grammar or invariant violation:
    malformed names/labels/escapes/values, a ``TYPE`` repeated or
    declared after its samples, an interleaved (non-contiguous)
    family, or a histogram family whose buckets are non-cumulative or
    inconsistent with ``_count``.
    """
    families: Dict[str, _Family] = {}
    current: Optional[str] = None
    samples: List[Sample] = []

    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.rstrip("\r")
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise ExpositionError(
                        f"{where}: malformed # {parts[1]} line")
                name = parts[2]
                fam = families.setdefault(name, _Family())
                if parts[1] == "TYPE":
                    mtype = parts[3].strip() if len(parts) == 4 else ""
                    if mtype not in _TYPES:
                        raise ExpositionError(
                            f"{where}: unknown type {mtype!r}")
                    if fam.type is not None:
                        raise ExpositionError(
                            f"{where}: duplicate TYPE for {name}")
                    if fam.samples:
                        raise ExpositionError(
                            f"{where}: TYPE for {name} after its samples")
                    fam.type = mtype
            continue  # other comment lines are legal and ignored
        sample = _parse_sample(line, where)
        base = _base_family(sample.name, families)
        fam = families.setdefault(base, _Family())
        if current is not None and base != current:
            families[current].closed = True
        if fam.closed:
            raise ExpositionError(
                f"{where}: family {base} reappears after other families")
        current = base
        fam.samples.append(sample)
        samples.append(sample)

    for name, fam in families.items():
        if fam.type == "histogram" and fam.samples:
            _check_histogram(name, fam)
    return samples


def samples_by_name(samples: List[Sample]) -> Dict[str, List[Sample]]:
    """Group parsed samples: ``{sample_name: [samples...]}``."""
    out: Dict[str, List[Sample]] = {}
    for s in samples:
        out.setdefault(s.name, []).append(s)
    return out
