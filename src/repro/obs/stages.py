"""The paper's invocation stages and the per-call StageTimer.

§5.2 / Fig. 7 split one CORBA invocation into the costs of the control
path and the data path.  The live ORB reports the same six stages, in
wire order, for every traced request:

=================  ======================================================
stage              what it covers (client view)
=================  ======================================================
``marshal``        building the parameter chunk plan (non-bulk
                   encoding; registering zero-copy payloads with the
                   deposit registry; any encode-into-arena staging
                   copy).  Its byte count is the *logical* body size —
                   the sum of the plan's chunks, the same number the
                   pre-scatter/gather blob had — not the (smaller)
                   bytes the encoder actually copied.
``control-send``   gather-writing the GIOP control message (header +
                   request header + body chunk plan, all fragments);
                   bytes = the true control-path wire bytes
``deposit-send``   writing the raw zero-copy payloads on the data path
                   (for arena-staged payloads this is a pure slot
                   reference: bytes are the payload size, the copy
                   already happened under ``marshal``)
``server-wait``    blocked until the reply's control message arrived —
                   covers wire latency plus the server's demarshal /
                   dispatch / servant / reply-marshal work
``deposit-recv``   landing reply payloads into page-aligned pool buffers
``demarshal``      decoding the reply body (zero-copy results only set
                   references)
=================  ======================================================

The server side uses the same vocabulary where it applies
(``recv-wait`` instead of ``server-wait`` — a server waits for clients,
not for a server).

:class:`StageTimer` is the sink that groups the stage events of one
invocation into an :class:`InvocationBreakdown` — the live counterpart
of the offline model in ``benchmarks/test_overhead_breakdown.py``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from .events import EventSink, StageEvent

__all__ = [
    "STAGE_MARSHAL", "STAGE_CONTROL_SEND", "STAGE_DEPOSIT_SEND",
    "STAGE_SERVER_WAIT", "STAGE_DEPOSIT_RECV", "STAGE_DEMARSHAL",
    "STAGE_RECV_WAIT", "CLIENT_STAGES",
    "InvocationBreakdown", "StageTimer",
]

STAGE_MARSHAL = "marshal"
STAGE_CONTROL_SEND = "control-send"
STAGE_DEPOSIT_SEND = "deposit-send"
STAGE_SERVER_WAIT = "server-wait"
STAGE_DEPOSIT_RECV = "deposit-recv"
STAGE_DEMARSHAL = "demarshal"
#: server-side name for the blocking read (not an invocation stage)
STAGE_RECV_WAIT = "recv-wait"

#: the six client stages in paper/wire order (Fig. 7's categories)
CLIENT_STAGES: Tuple[str, ...] = (
    STAGE_MARSHAL, STAGE_CONTROL_SEND, STAGE_DEPOSIT_SEND,
    STAGE_SERVER_WAIT, STAGE_DEPOSIT_RECV, STAGE_DEMARSHAL,
)


@dataclass
class InvocationBreakdown:
    """The stage record of one invocation, in arrival order."""

    operation: str
    request_id: int = 0
    stages: List[StageEvent] = field(default_factory=list)
    reply_status: Optional[str] = None

    def duration_s(self, stage: str) -> float:
        return sum(e.duration_s for e in self.stages if e.stage == stage)

    def nbytes(self, stage: str) -> int:
        return sum(e.nbytes for e in self.stages if e.stage == stage)

    @property
    def total_s(self) -> float:
        return sum(e.duration_s for e in self.stages)

    def stage_order(self) -> List[str]:
        """Distinct stage names in first-seen order."""
        seen: List[str] = []
        for e in self.stages:
            if e.stage not in seen:
                seen.append(e.stage)
        return seen

    @property
    def in_paper_order(self) -> bool:
        """Do the observed client stages respect Fig. 7's wire order?"""
        ranks = [CLIENT_STAGES.index(s) for s in self.stage_order()
                 if s in CLIENT_STAGES]
        return ranks == sorted(ranks)

    def as_dict(self) -> dict:
        return {
            "operation": self.operation,
            "request_id": self.request_id,
            "reply_status": self.reply_status,
            "total_s": self.total_s,
            "stages": [
                {"stage": e.stage, "duration_s": e.duration_s,
                 "nbytes": e.nbytes}
                for e in self.stages
            ],
        }


class StageTimer(EventSink):
    """Groups stage events into per-invocation breakdowns.

    The client proxy serializes invocations per connection, so one
    timer per ORB sees a clean begin → stages → commit sequence; a
    lock still guards the pending list for the threaded-server case.
    Stage events arriving outside an invocation (e.g. server-side
    ``recv-wait``) accumulate in :attr:`loose` and never pollute the
    per-call records.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter,
                 keep: int = 128):
        super().__init__(clock=clock)
        self.records: Deque[InvocationBreakdown] = deque(maxlen=keep)
        self.loose: Deque[StageEvent] = deque(maxlen=keep)
        self._pending: Optional[InvocationBreakdown] = None
        self._lock = threading.Lock()

    # -- sink interface ------------------------------------------------------
    def emit(self, event) -> None:
        if not isinstance(event, StageEvent):
            return
        with self._lock:
            if self._pending is not None:
                self._pending.stages.append(event)
            else:
                self.loose.append(event)

    # -- invocation grouping -------------------------------------------------
    def begin(self, operation: str) -> None:
        """Open a record; subsequent stage events belong to it."""
        with self._lock:
            self._pending = InvocationBreakdown(operation=operation)

    def commit(self, request_id: int = 0,
               reply_status: Optional[str] = None
               ) -> Optional[InvocationBreakdown]:
        """Close the open record and archive it (None if none open)."""
        with self._lock:
            rec = self._pending
            self._pending = None
            if rec is None:
                return None
            rec.request_id = request_id
            rec.reply_status = reply_status
            self.records.append(rec)
            return rec

    def abandon(self) -> None:
        """Drop the open record (failed attempt about to be retried)."""
        with self._lock:
            self._pending = None

    @property
    def last(self) -> Optional[InvocationBreakdown]:
        with self._lock:
            return self.records[-1] if self.records else None

    def take_loose(self) -> List[StageEvent]:
        """Drain the out-of-invocation stage events."""
        with self._lock:
            out = list(self.loose)
            self.loose.clear()
            return out
