"""MetricsRegistry: counters, gauges and fixed-bucket histograms.

The runtime face of the paper's instrumentation: whatever the ORB
measures (stage durations, wire bytes, invocation counts) lands in one
of three metric types and is exported by :mod:`repro.obs.export`.

Design constraints, mirroring :mod:`repro.orb.policy`:

* **injectable clock** — nothing here reads wall time unless asked;
  ``Histogram.time()`` measures with the registry's clock, which tests
  replace with a fake;
* **fixed buckets** — histograms use a static upper-bound ladder
  chosen at creation, so concurrent observers never rebalance and the
  export is stable across runs;
* **labels** — a metric family (one name) may carry label sets; each
  distinct label combination is its own child series, like Prometheus.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS", "DEFAULT_SIZE_BUCKETS",
    "quantile_from_buckets", "PERCENTILES",
]

#: the percentiles surfaced by ``Histogram.percentiles`` and the
#: ``repro-metrics summary`` command
PERCENTILES: Tuple[float, ...] = (0.50, 0.95, 0.99)


def quantile_from_buckets(bounds: Sequence[float], counts: Sequence[int],
                          q: float) -> Optional[float]:
    """Estimate the ``q``-quantile of a fixed-bucket histogram.

    ``bounds`` are the finite upper bucket bounds, ``counts`` the
    per-bucket (non-cumulative) observation counts with the implicit
    ``+Inf`` bucket last (``len(counts) == len(bounds) + 1``).  The
    estimate interpolates linearly within the bucket holding the rank —
    the same estimator as Prometheus's ``histogram_quantile`` — and
    clamps ranks falling in the ``+Inf`` bucket to the last finite
    bound.  Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cum = 0.0
    lower = 0.0
    for bound, n in zip(bounds, counts):
        if n and cum + n >= rank:
            if rank <= cum:
                return lower
            return lower + (bound - lower) * ((rank - cum) / n)
        cum += n
        lower = bound
    return float(bounds[-1]) if bounds else None

#: seconds ladder: 1 µs .. 10 s, a decade-and-thirds ladder that
#: resolves both loopback (~µs) and cross-network (~ms) stages
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)

#: bytes ladder: 64 B .. 64 MiB in powers of four
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = tuple(
    64 * 4 ** i for i in range(11))

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Common shape: name, labels, a lock, and a snapshot method."""

    type_name = "metric"

    def __init__(self, name: str, labels: Dict[str, str], help: str = ""):
        self.name = name
        self.labels = dict(labels)
        self.help = help
        self._lock = threading.Lock()

    def snapshot(self) -> dict:
        raise NotImplementedError

    def _meta(self) -> dict:
        out = {"name": self.name, "type": self.type_name}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Counter(_Metric):
    """Monotonically increasing count."""

    type_name = "counter"

    def __init__(self, name: str, labels: Dict[str, str], help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {n}")
        with self._lock:
            self._value += n

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {**self._meta(), "value": self.value}


class Gauge(_Metric):
    """A value that goes up and down (pool occupancy, live conns...)."""

    type_name = "gauge"

    def __init__(self, name: str, labels: Dict[str, str], help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, v) -> None:
        with self._lock:
            self._value = v

    def inc(self, n=1) -> None:
        with self._lock:
            self._value += n

    def dec(self, n=1) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self):
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {**self._meta(), "value": self.value}


class Histogram(_Metric):
    """Fixed-bucket histogram (cumulative-at-export, like Prometheus).

    ``buckets`` are the inclusive upper bounds; an implicit ``+Inf``
    bucket catches everything beyond the last bound.
    """

    type_name = "histogram"

    def __init__(self, name: str, labels: Dict[str, str],
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 help: str = "",
                 clock: Callable[[], float] = time.perf_counter):
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name} buckets must be sorted")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # [+Inf] last
        self._sum = 0.0
        self._count = 0
        self._clock = clock

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def time(self) -> "_HistogramTimer":
        """Context manager observing its elapsed (registry-clock) time."""
        return _HistogramTimer(self)

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated quantile estimate (None when empty)."""
        with self._lock:
            counts = list(self._counts)
        return quantile_from_buckets(self.bounds, counts, q)

    def percentiles(self) -> Optional[Dict[str, float]]:
        """p50/p95/p99 estimates, or None for an empty histogram."""
        if self.count == 0:
            return None
        return {f"p{int(q * 100)}": self.quantile(q) for q in PERCENTILES}

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is +Inf."""
        with self._lock:
            return list(self._counts)

    def snapshot(self) -> dict:
        with self._lock:
            cumulative = []
            running = 0
            for bound, n in zip(self.bounds, self._counts):
                running += n
                cumulative.append({"le": bound, "count": running})
            cumulative.append({"le": "+Inf", "count": self._count})
            return {**self._meta(), "sum": self._sum,
                    "count": self._count, "buckets": cumulative}


class _HistogramTimer:
    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: Histogram):
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._t0 = self._hist._clock()
        return self

    def __exit__(self, *exc) -> bool:
        self._hist.observe(max(0.0, self._hist._clock() - self._t0))
        return False


class MetricsRegistry:
    """Get-or-create registry of metric series, keyed by name + labels.

    One registry per observed entity (typically per ORB, or one shared
    process-wide).  Lookups are idempotent: asking twice for the same
    (name, labels) returns the same series, so call sites never cache.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock
        self._series: Dict[Tuple[str, _LabelKey], _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels: Dict[str, str],
                       factory) -> _Metric:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._series.get(key)
            if metric is None:
                metric = factory()
                self._series[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{metric.type_name}, not {cls.type_name}")
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get_or_create(
            Counter, name, labels, lambda: Counter(name, labels, help))

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get_or_create(
            Gauge, name, labels, lambda: Gauge(name, labels, help))

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                  help: str = "", **labels) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels,
            lambda: Histogram(name, labels, buckets=buckets, help=help,
                              clock=self.clock))

    def get(self, name: str, **labels) -> Optional[_Metric]:
        """The existing series, or None (never creates)."""
        with self._lock:
            return self._series.get((name, _label_key(labels)))

    def series(self) -> List[_Metric]:
        """Every registered series, sorted by (name, labels)."""
        with self._lock:
            return [self._series[k] for k in sorted(self._series)]

    def snapshot(self) -> dict:
        """JSON-ready dump of every series (the exporters' input)."""
        return {"metrics": [m.snapshot() for m in self.series()]}

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)
