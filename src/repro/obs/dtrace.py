"""Distributed tracing across the control/data split (``repro.obs.dtrace``).

The Fig. 7 stage timers of :mod:`repro.obs.stages` see one process at a
time.  This module follows a single invocation *across* processes: a
W3C-traceparent-style context — 128-bit trace id, 64-bit span id, a
sampled flag — rides every GIOP Request in a dedicated service context
(:data:`repro.giop.SVC_CTX_TRACE`), is extracted by the server
dispatcher, and is re-injected on any nested outbound call the servant
makes (a naming lookup, a backend invoke...).  The result is one span
tree per trace, spanning client, wire and server.

Each :class:`Span` carries the six Fig. 7 stages of its invocation as
sub-spans and splits its byte accounting along the paper's central
boundary: control-path bytes (GIOP headers + marshaled bodies) vs
deposit-path bytes (the zero-copy payloads).  Spans flow into a
:class:`SpanCollector` — shareable between ORBs of one process, or
dumped as JSON (span schema v2, see :mod:`repro.obs.export`) and merged
offline by trace id for genuinely distributed runs.

The :class:`DistributedTracer` is an :class:`~repro.obs.events.EventSink`:
wired into an ORB's sink chain (``orb.enable_tracing(distributed=True)``)
it attributes every stage event to the innermost active span of the
emitting thread.  Propagation state is thread-local, which matches the
ORB's dispatch model: a servant's nested calls run on the thread of the
upcall, so the server span is exactly the innermost active span when
the nested proxy asks for the current context.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional

from ..giop.messages import (SVC_CTX_TRACE, GIOPError, ServiceContext,
                             decode_trace_context, encode_trace_context)
from .events import EventSink, StageEvent
from .stages import (STAGE_CONTROL_SEND, STAGE_DEPOSIT_RECV,
                     STAGE_DEPOSIT_SEND, STAGE_RECV_WAIT, STAGE_SERVER_WAIT)

__all__ = [
    "TraceContext", "Span", "SpanCollector", "DistributedTracer",
    "InvocationScope", "extract_trace_context", "build_span_tree",
    "render_span_tree", "SpanNode",
]

#: stages whose byte counts are control-path wire bytes.  The blocking
#: read stages count the GIOP headers + bodies actually read, so the
#: receive side of the control path is attributed to them.
_CONTROL_SENT = (STAGE_CONTROL_SEND,)
_CONTROL_RECV = (STAGE_SERVER_WAIT, STAGE_RECV_WAIT)
_DEPOSIT_SENT = (STAGE_DEPOSIT_SEND,)
_DEPOSIT_RECV = (STAGE_DEPOSIT_RECV,)


@dataclass(frozen=True)
class TraceContext:
    """One propagated (trace id, span id, sampled) triple.

    Ids are lowercase hex strings — 32 chars (128 bits) for the trace,
    16 chars (64 bits) for the span — matching W3C traceparent.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def encode(self) -> bytes:
        return encode_trace_context(bytes.fromhex(self.trace_id),
                                    bytes.fromhex(self.span_id),
                                    self.sampled)

    @classmethod
    def decode(cls, data) -> "TraceContext":
        trace_id, span_id, sampled = decode_trace_context(data)
        return cls(trace_id=trace_id.hex(), span_id=span_id.hex(),
                   sampled=sampled)

    def to_service_context(self) -> ServiceContext:
        return ServiceContext(context_id=SVC_CTX_TRACE, data=self.encode())


def extract_trace_context(
        contexts: Iterable[ServiceContext]) -> Optional[TraceContext]:
    """The trace context riding in a service context list, if any.

    A malformed payload is treated as absent (a foreign peer's private
    tag colliding with ours must not break dispatch).
    """
    for sc in contexts:
        if sc.context_id == SVC_CTX_TRACE:
            try:
                return TraceContext.decode(sc.data)
            except GIOPError:
                return None
    return None


@dataclass
class Span:
    """One side of one invocation, with its stage record."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str  #: operation name
    kind: str  #: "client" or "server"
    node: str = ""  #: which ORB produced the span (e.g. "orb3")
    start_s: float = 0.0
    end_s: float = 0.0
    status: Optional[str] = None  #: reply status or exception type name
    request_id: Optional[int] = None
    stages: List[StageEvent] = field(default_factory=list)

    # -- derived views -------------------------------------------------------
    @property
    def duration_s(self) -> float:
        return max(0.0, self.end_s - self.start_s)

    def stage_s(self, stage: str) -> float:
        return sum(e.duration_s for e in self.stages if e.stage == stage)

    def stage_bytes(self, stage: str) -> int:
        return sum(e.nbytes for e in self.stages if e.stage == stage)

    def _bytes(self, stages) -> int:
        return sum(e.nbytes for e in self.stages if e.stage in stages)

    def _seconds(self, stages) -> float:
        return sum(e.duration_s for e in self.stages if e.stage in stages)

    @property
    def control_bytes_sent(self) -> int:
        return self._bytes(_CONTROL_SENT)

    @property
    def control_bytes_recv(self) -> int:
        return self._bytes(_CONTROL_RECV)

    @property
    def deposit_bytes_sent(self) -> int:
        return self._bytes(_DEPOSIT_SENT)

    @property
    def deposit_bytes_recv(self) -> int:
        return self._bytes(_DEPOSIT_RECV)

    @property
    def control_seconds(self) -> float:
        return self._seconds(_CONTROL_SENT + _CONTROL_RECV)

    @property
    def deposit_seconds(self) -> float:
        return self._seconds(_DEPOSIT_SENT + _DEPOSIT_RECV)

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    # -- schema v2 -----------------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "node": self.node,
            "request_id": self.request_id,
            "status": self.status,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "control_bytes": {"sent": self.control_bytes_sent,
                              "recv": self.control_bytes_recv},
            "deposit_bytes": {"sent": self.deposit_bytes_sent,
                              "recv": self.deposit_bytes_recv},
            "stages": [
                {"stage": e.stage, "duration_s": e.duration_s,
                 "nbytes": e.nbytes}
                for e in self.stages
            ],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        span = cls(trace_id=d["trace_id"], span_id=d["span_id"],
                   parent_id=d.get("parent_id"), name=d.get("name", "?"),
                   kind=d.get("kind", "?"), node=d.get("node", ""),
                   start_s=float(d.get("start_s", 0.0)),
                   status=d.get("status"),
                   request_id=d.get("request_id"))
        span.end_s = span.start_s + float(d.get("duration_s", 0.0))
        span.stages = [StageEvent(stage=s["stage"],
                                  duration_s=float(s.get("duration_s", 0.0)),
                                  nbytes=int(s.get("nbytes", 0)))
                       for s in d.get("stages", [])]
        return span


class SpanCollector:
    """Thread-safe bounded store of finished spans.

    One collector can back several :class:`DistributedTracer` instances
    (client + server ORBs of one process share it, so a cross-process
    trace assembles in memory); distributed deployments dump each
    process's collector and merge by trace id.
    """

    def __init__(self, keep: int = 2048):
        self._spans: Deque[Span] = deque(maxlen=keep)
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def for_trace(self, trace_id: str) -> List[Span]:
        with self._lock:
            return [s for s in self._spans if s.trace_id == trace_id]

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in first-seen order."""
        seen: List[str] = []
        with self._lock:
            for s in self._spans:
                if s.trace_id not in seen:
                    seen.append(s.trace_id)
        return seen

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


@dataclass(frozen=True)
class InvocationScope:
    """The per-logical-call trace decision, fixed across retries.

    The proxy creates one scope per :meth:`IIOPProxy.invoke`; every
    attempt (the first try and each retry) opens a *fresh* span inside
    it, so a retried call keeps its trace id while each attempt on the
    wire is distinguishable.
    """

    trace_id: str
    parent_id: Optional[str]
    sampled: bool


class _ActiveSpan:
    """A started span plus its place on the thread's span stack."""

    __slots__ = ("span", "sampled")

    def __init__(self, span: Span, sampled: bool):
        self.span = span
        self.sampled = sampled

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.span.trace_id,
                            span_id=self.span.span_id,
                            sampled=self.sampled)

    def set_request_id(self, request_id: int) -> None:
        self.span.request_id = request_id

    def record_status(self, status: Optional[str]) -> None:
        self.span.status = status


class DistributedTracer(EventSink):
    """Produces spans; attributes stage events to the active span.

    Wired as (part of) an ORB's event sink.  The proxy and dispatcher
    drive the span lifecycle explicitly (:meth:`begin_invocation` /
    :meth:`start_client_span` / :meth:`start_server_span` /
    :meth:`finish`); stage events emitted by the connection layer while
    a span is active on the same thread are appended to the innermost
    one — which is exactly the span whose invocation produced them,
    because dispatch and nested calls share the upcall's thread.
    """

    def __init__(self, node: str = "", registry=None,
                 collector: Optional[SpanCollector] = None,
                 clock: Callable[[], float] = time.perf_counter,
                 sample_rate: float = 1.0, seed: Optional[int] = None,
                 keep: int = 2048):
        super().__init__(clock=clock)
        self.node = node
        self.registry = registry
        self.collector = collector if collector is not None \
            else SpanCollector(keep=keep)
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1]: {sample_rate}")
        self.sample_rate = sample_rate
        self._rng = random.Random(seed)
        self._tls = threading.local()

    # -- id generation -------------------------------------------------------
    def new_trace_id(self) -> str:
        while True:
            bits = self._rng.getrandbits(128)
            if bits:  # the all-zero id is invalid (W3C)
                return f"{bits:032x}"

    def new_span_id(self) -> str:
        while True:
            bits = self._rng.getrandbits(64)
            if bits:
                return f"{bits:016x}"

    # -- thread-local state --------------------------------------------------
    def _stack(self) -> List[_ActiveSpan]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_context(self) -> Optional[TraceContext]:
        """The innermost active span's context on this thread."""
        stack = self._stack()
        return stack[-1].context if stack else None

    # -- sampling ------------------------------------------------------------
    def _sample(self) -> bool:
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    # -- span lifecycle ------------------------------------------------------
    def begin_invocation(self) -> InvocationScope:
        """Fix the trace identity for one logical client call.

        Inside an active span (a servant's nested call) the scope joins
        that span's trace; at top level it roots a new trace and makes
        the sampling decision.
        """
        ctx = self.current_context()
        if ctx is not None:
            return InvocationScope(trace_id=ctx.trace_id,
                                   parent_id=ctx.span_id,
                                   sampled=ctx.sampled)
        return InvocationScope(trace_id=self.new_trace_id(),
                               parent_id=None, sampled=self._sample())

    def start_client_span(self, name: str,
                          scope: InvocationScope) -> _ActiveSpan:
        span = Span(trace_id=scope.trace_id, span_id=self.new_span_id(),
                    parent_id=scope.parent_id, name=name, kind="client",
                    node=self.node, start_s=self.clock())
        active = _ActiveSpan(span, sampled=scope.sampled)
        self._stack().append(active)
        return active

    def start_server_span(self, name: str, ctx: Optional[TraceContext],
                          request_id: Optional[int] = None) -> _ActiveSpan:
        """Open the server-side span of an incoming request.

        With an incoming context the span joins its trace (honouring
        the sampled flag); without one — a non-tracing client — the
        request roots a new trace here.
        """
        if ctx is not None:
            trace_id, parent_id, sampled = \
                ctx.trace_id, ctx.span_id, ctx.sampled
        else:
            trace_id, parent_id, sampled = \
                self.new_trace_id(), None, self._sample()
        span = Span(trace_id=trace_id, span_id=self.new_span_id(),
                    parent_id=parent_id, name=name, kind="server",
                    node=self.node, start_s=self.clock(),
                    request_id=request_id)
        active = _ActiveSpan(span, sampled=sampled)
        self._stack().append(active)
        return active

    def finish(self, active: _ActiveSpan,
               status: Optional[str] = None) -> Optional[Span]:
        """Close ``active``; record it if its trace is sampled.

        Returns the finished span (None when unsampled).  Finishing is
        tolerant of a corrupted stack (an exception that skipped inner
        finishes): everything above ``active`` is discarded.
        """
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is active:
                break
        span = active.span
        span.end_s = self.clock()
        if status is not None:
            span.status = status
        if not active.sampled:
            return None
        self.collector.add(span)
        self._record_metrics(span)
        return span

    def _record_metrics(self, span: Span) -> None:
        reg = self.registry
        if reg is None:
            return
        reg.counter("spans_total", kind=span.kind,
                    operation=span.name).inc()
        reg.histogram("span_seconds",
                      kind=span.kind).observe(span.duration_s)
        ctl = span.control_bytes_sent + span.control_bytes_recv
        dep = span.deposit_bytes_sent + span.deposit_bytes_recv
        if ctl:
            reg.counter("span_control_bytes_total", kind=span.kind).inc(ctl)
        if dep:
            reg.counter("span_deposit_bytes_total", kind=span.kind).inc(dep)

    # -- sink interface ------------------------------------------------------
    def emit(self, event) -> None:
        if not isinstance(event, StageEvent):
            return
        stack = self._stack()
        if stack:
            stack[-1].span.stages.append(event)


# ---------------------------------------------------------------------------
# span trees
# ---------------------------------------------------------------------------

@dataclass
class SpanNode:
    """One node of an assembled span tree."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)


def build_span_tree(spans: Iterable[Span]) -> Dict[str, List[SpanNode]]:
    """Assemble spans into per-trace trees.

    Returns ``{trace_id: [roots]}``.  A span whose parent is unknown
    (the parent ran in a process whose dump was not merged, or was
    unsampled) becomes a root of its trace; roots and children are
    ordered by start time.
    """
    by_trace: Dict[str, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    out: Dict[str, List[SpanNode]] = {}
    for trace_id, members in by_trace.items():
        nodes = {s.span_id: SpanNode(s) for s in members}
        roots: List[SpanNode] = []
        for node in nodes.values():
            parent = nodes.get(node.span.parent_id) \
                if node.span.parent_id else None
            if parent is None or parent is node:
                roots.append(node)
            else:
                parent.children.append(node)
        for node in nodes.values():
            node.children.sort(key=lambda n: n.span.start_s)
        roots.sort(key=lambda n: n.span.start_s)
        out[trace_id] = roots
    return out


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MiB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KiB"
    return f"{n}B"


def _span_line(span: Span) -> str:
    out = (f"{span.kind} {span.name}  {span.duration_s * 1e3:.3f}ms")
    if span.node:
        out += f"  @{span.node}"
    out += (f"  ctl {_fmt_bytes(span.control_bytes_sent)}"
            f"/{_fmt_bytes(span.control_bytes_recv)}"
            f"  dep {_fmt_bytes(span.deposit_bytes_sent)}"
            f"/{_fmt_bytes(span.deposit_bytes_recv)}")
    if span.status not in (None, "NO_EXCEPTION"):
        out += f"  [{span.status}]"
    return out


def render_span_tree(spans: Iterable[Span]) -> str:
    """ASCII trees, one per trace: per-span durations and the
    control/deposit byte split (sent/received)."""
    lines: List[str] = []
    forest = build_span_tree(spans)
    for trace_id, roots in forest.items():
        members = list(_iter_nodes(roots))
        total = sum(r.span.duration_s for r in roots)
        lines.append(f"trace {trace_id}  "
                     f"({len(members)} span{'s' if len(members) != 1 else ''}"
                     f", {total * 1e3:.3f}ms)")
        for i, root in enumerate(roots):
            _render_node(root, "", i == len(roots) - 1, lines)
    return "\n".join(lines) + ("\n" if lines else "")


def _iter_nodes(roots: List[SpanNode]):
    stack = list(roots)
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children)


def _render_node(node: SpanNode, prefix: str, last: bool,
                 lines: List[str]) -> None:
    branch = "`-- " if last else "|-- "
    lines.append(prefix + branch + _span_line(node.span))
    child_prefix = prefix + ("    " if last else "|   ")
    for i, child in enumerate(node.children):
        _render_node(child, child_prefix, i == len(node.children) - 1, lines)
