"""One fixed-width text table renderer for every CLI in the repo.

``repro-bench --compare`` (the CI regression gate), ``repro-metrics
diff`` and ``repro-top`` all print columnar deltas; they share this
renderer so the column discipline — widths computed from the content,
a dashed rule under the header — stays identical everywhere instead
of being re-implemented with hand-counted format widths per tool.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 align: Optional[str] = None) -> str:
    """Render ``rows`` under ``headers`` as a fixed-width text table.

    ``align`` gives one character per column: ``l`` (left) or ``r``
    (right).  The default left-aligns the first column (names) and
    right-aligns the rest (numbers).  Cells are ``str()``-ed; column
    widths are the max over header and cells, so nothing truncates.
    """
    cells: List[List[str]] = [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in cells:
        if len(row) != ncols:
            raise ValueError(f"row has {len(row)} cells, expected {ncols}")
    if align is None:
        align = "l" + "r" * (ncols - 1)
    if len(align) != ncols or set(align) - {"l", "r"}:
        raise ValueError(f"bad align spec {align!r} for {ncols} columns")
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]

    def fmt(row: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(row):
            out.append(cell.ljust(widths[i]) if align[i] == "l"
                       else cell.rjust(widths[i]))
        return "  ".join(out).rstrip()

    head = fmt(list(headers))
    lines = [head, "-" * len(head)]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)
