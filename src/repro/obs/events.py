"""Structured instrumentation events: the generalized ``on_bytes``.

The seed ORB exposed exactly one hook — ``on_bytes(kind, nbytes)`` — a
bare callable threaded from the ORB down to the marshalers and the
connection layer.  That was enough for the simulated testbed's per-byte
cost model, but a live overhead breakdown (paper §5.2, Fig. 7) needs
*structure*: which stage of the invocation a cost belongs to, how long
it took, and what crossed the wire.  This module defines that
structure:

* :class:`ByteEvent` — the old hook's payload, now a value object;
* :class:`StageEvent` — one timed span of an invocation stage
  (``marshal``, ``control-send``, ... — see :mod:`repro.obs.stages`);
* :class:`WireEvent` — one GIOP message on the wire: type, request id,
  sizes, fragment count and deposit descriptors.

An :class:`EventSink` receives all three.  Sinks compose
(:class:`CompositeSink`), record (:class:`RecordingSink`), adapt the
legacy callback (:class:`CallbackSink`), or aggregate into metrics
(:class:`repro.obs.stages.StageTimer`,
:class:`repro.obs.tracing.WireTracer`).  The clock is injectable so
tests never depend on wall time.

This module imports nothing from the ORB layers — it sits below them,
exactly like :mod:`repro.core.buffers`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

__all__ = [
    "ByteEvent", "StageEvent", "WireEvent",
    "EventSink", "NullSink", "RecordingSink", "CompositeSink",
    "CallbackSink", "CaptureSink", "StageSpan", "stage_span",
]


@dataclass(frozen=True)
class ByteEvent:
    """One byte-touching operation (the legacy ``on_bytes`` payload)."""

    kind: str  #: "marshal", "marshal-bulk", "reference", "deposit-send"...
    nbytes: int


@dataclass(frozen=True)
class StageEvent:
    """One timed span of an invocation stage."""

    stage: str
    duration_s: float
    nbytes: int = 0


@dataclass(frozen=True)
class WireEvent:
    """One GIOP message as it crossed the wire."""

    direction: str  #: "send" or "recv"
    msg_type: str  #: MsgType name ("Request", "Reply", ...)
    size: int  #: control-message body bytes (GIOP headers excluded)
    request_id: Optional[int] = None
    fragments: int = 1  #: GIOP frames the control message used
    #: ``(deposit_id, size)`` per descriptor riding in the message
    deposits: Tuple[Tuple[int, int], ...] = ()


class EventSink:
    """Receives instrumentation events; base class is a no-op sink.

    ``clock`` is injectable (defaults to ``time.perf_counter``) and is
    what :meth:`stage` spans measure with, so tests can drive stage
    durations deterministically.

    ``wire_stages`` declares whether this sink wants the connection
    layer to *split* each outbound gather-write at the control/deposit
    boundary so the two halves time separately.  Tracing sinks do
    (that split is the Fig. 7 breakdown); the always-on flight
    recorder does not — it must leave the wire geometry of the
    zero-copy single-``sendv`` path untouched.
    """

    #: ask the connection layer for split control/deposit send stages
    wire_stages = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.clock = clock

    def emit(self, event) -> None:
        """Handle one event.  Subclasses override."""

    # -- legacy compatibility ------------------------------------------------
    def on_bytes(self, kind: str, nbytes: int) -> None:
        """Adapter with the old hook's signature; forwards a ByteEvent."""
        self.emit(ByteEvent(kind=kind, nbytes=nbytes))

    # -- stage spans ---------------------------------------------------------
    def stage(self, name: str) -> "StageSpan":
        """A context manager measuring one stage span on this sink."""
        return StageSpan(self, name)


class StageSpan:
    """Measures one stage; emits a StageEvent on exit (even on error,
    so a failed attempt still accounts for the time it burned)."""

    __slots__ = ("_sink", "stage", "nbytes", "_t0")

    def __init__(self, sink: EventSink, stage: str):
        self._sink = sink
        self.stage = stage
        self.nbytes = 0
        self._t0 = 0.0

    def add_bytes(self, n: int) -> None:
        self.nbytes += n

    def __enter__(self) -> "StageSpan":
        self._t0 = self._sink.clock()
        return self

    def __exit__(self, *exc) -> bool:
        duration = max(0.0, self._sink.clock() - self._t0)
        self._sink.emit(StageEvent(stage=self.stage, duration_s=duration,
                                   nbytes=self.nbytes))
        return False


class _NullSpan:
    """Shared no-op span for uninstrumented connections (hot path)."""

    nbytes = 0

    def add_bytes(self, n: int) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def stage_span(sink: Optional[EventSink], name: str):
    """A measuring span on ``sink``, or a shared no-op when unset.

    The ORB layers call this on every message, so the uninstrumented
    path must not allocate.
    """
    return sink.stage(name) if sink is not None else _NULL_SPAN


class NullSink(EventSink):
    """Explicitly discards everything (useful as a default)."""


class RecordingSink(EventSink):
    """Keeps every event in order; the test/debugging sink."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        super().__init__(clock=clock)
        self.events: List = []
        self._lock = threading.Lock()

    def emit(self, event) -> None:
        with self._lock:
            self.events.append(event)

    def of_type(self, cls) -> List:
        with self._lock:
            return [e for e in self.events if isinstance(e, cls)]

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


class CompositeSink(EventSink):
    """Fans every event out to several sinks (first sink's clock wins
    for spans opened on the composite)."""

    def __init__(self, sinks: Iterable[EventSink]):
        self.sinks = list(sinks)
        clock = self.sinks[0].clock if self.sinks else time.perf_counter
        super().__init__(clock=clock)

    @property
    def wire_stages(self) -> bool:
        """Split sends if any member wants the split timing."""
        return any(s.wire_stages for s in self.sinks)

    def emit(self, event) -> None:
        for sink in self.sinks:
            sink.emit(event)


class CaptureSink(EventSink):
    """Collects events into a caller-supplied list instead of handling
    them.

    This is the hand-off vehicle for thread-sensitive sinks: a reply
    read on a demultiplexer thread captures its stage events here, and
    the thread that *awaits* the reply re-emits them while its own span
    and timers are active — so attribution follows the logical
    invocation, not the physical reader thread.  Not synchronized: each
    capture list belongs to exactly one read.
    """

    def __init__(self, into: List,
                 clock: Callable[[], float] = time.perf_counter):
        super().__init__(clock=clock)
        self.into = into

    def emit(self, event) -> None:
        self.into.append(event)


class CallbackSink(EventSink):
    """Wraps a legacy ``on_bytes(kind, nbytes)`` callable as a sink.

    Byte events forward verbatim; stage events with a byte count
    forward under their stage name, which is how the pre-obs
    ``deposit-send`` / ``deposit-recv`` kinds keep flowing to existing
    consumers (the simulated testbed's cost model).
    """

    def __init__(self, fn: Callable[[str, int], None],
                 clock: Callable[[], float] = time.perf_counter):
        super().__init__(clock=clock)
        self.fn = fn

    def emit(self, event) -> None:
        if isinstance(event, ByteEvent):
            self.fn(event.kind, event.nbytes)
