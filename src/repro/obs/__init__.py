"""repro.obs — runtime observability for the zero-copy ORB.

The paper's evidence is an *overhead breakdown* (§5.2, Fig. 7): where
a CORBA invocation spends its time — marshaling, the control message,
or the bulk data path.  This package produces that breakdown from the
live ORB instead of the offline model:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  in a :class:`MetricsRegistry` (injectable clock, label sets);
* :mod:`repro.obs.events` — the structured event stream the ORB layers
  emit (byte, stage and wire events), generalizing the old
  ``on_bytes`` callback into composable :class:`EventSink`\\ s;
* :mod:`repro.obs.stages` — the six invocation stages of Fig. 7 and
  the :class:`StageTimer` that groups them per call;
* :mod:`repro.obs.tracing` — :class:`TracingInterceptor` (the built-in
  interceptor producing breakdowns + metrics) and :class:`WireTracer`
  (per-GIOP-message wire log);
* :mod:`repro.obs.dtrace` — distributed tracing: trace contexts carried
  in GIOP service contexts, cross-process span trees splitting each
  invocation along the control/deposit boundary;
* :mod:`repro.obs.export` — text/JSON exporters and the
  ``dump_metrics``/``dump_spans`` hooks the benchmark CLI exposes.

Quickstart::

    orb = ORB(ORBConfig(scheme="loop", collocated_calls=False))
    tracer = orb.enable_tracing(wire=True)   # before first connection
    ...
    stub.push(ZCOctetSequence.from_data(payload))
    print(tracer.last.as_dict())             # six-stage breakdown
    print(render_text(tracer.registry))      # metrics exposition
"""

from .dtrace import (DistributedTracer, Span, SpanCollector, TraceContext,
                     build_span_tree, extract_trace_context, render_span_tree)
from .events import (ByteEvent, CallbackSink, CompositeSink, EventSink,
                     NullSink, RecordingSink, StageEvent, StageSpan,
                     WireEvent, stage_span)
from .export import (dump_metrics, dump_spans, render_text, spans_to_dict,
                     to_dict, to_json)
from .flightrec import DEFAULT_SLOW_THRESHOLD, FlightRecorder
from .metrics import (DEFAULT_LATENCY_BUCKETS, DEFAULT_SIZE_BUCKETS, Counter,
                      Gauge, Histogram, MetricsRegistry,
                      quantile_from_buckets)
from .stages import (CLIENT_STAGES, STAGE_CONTROL_SEND, STAGE_DEMARSHAL,
                     STAGE_DEPOSIT_RECV, STAGE_DEPOSIT_SEND, STAGE_MARSHAL,
                     STAGE_RECV_WAIT, STAGE_SERVER_WAIT, InvocationBreakdown,
                     StageTimer)
from .tracing import TracingInterceptor, WireTracer, format_wire_event

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "DEFAULT_LATENCY_BUCKETS", "DEFAULT_SIZE_BUCKETS",
    "EventSink", "NullSink", "RecordingSink", "CompositeSink",
    "CallbackSink", "StageSpan", "stage_span",
    "ByteEvent", "StageEvent", "WireEvent",
    "STAGE_MARSHAL", "STAGE_CONTROL_SEND", "STAGE_DEPOSIT_SEND",
    "STAGE_SERVER_WAIT", "STAGE_DEPOSIT_RECV", "STAGE_DEMARSHAL",
    "STAGE_RECV_WAIT", "CLIENT_STAGES",
    "InvocationBreakdown", "StageTimer",
    "TracingInterceptor", "WireTracer", "format_wire_event",
    "to_dict", "to_json", "render_text", "dump_metrics",
    "DistributedTracer", "Span", "SpanCollector", "TraceContext",
    "extract_trace_context", "build_span_tree", "render_span_tree",
    "spans_to_dict", "dump_spans", "quantile_from_buckets",
    "FlightRecorder", "DEFAULT_SLOW_THRESHOLD",
]
