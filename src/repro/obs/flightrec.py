"""Always-on flight recorder: bounded span history + slow-call sampler.

Distributed tracing (:mod:`repro.obs.dtrace`) answers "where did this
call spend its time" — but only when it was switched on *before* the
interesting call happened.  Production outliers do not announce
themselves, so every ORB keeps this recorder running by default: a
cheap, bounded ring of recent invocation roots, plus full span trees
(all stages, all nested calls) for exactly the calls that exceeded a
latency threshold.  When a p99 spike shows up on the ``/metrics``
latency histogram, the offending call's breakdown is already captured.

Cost model — why this can be on by default:

* ids are sequential hex (one ``itertools.count``), no RNG draw;
* stage events attach to the innermost active span via a thread-local
  stack, no locking on the emit path;
* fast calls keep only their root span *header* (name, duration,
  status) — the per-stage detail is dropped at finish time
  (``detail_dropped`` counts them), so ring memory stays flat;
* nothing is injected into the GIOP wire format: unlike the
  distributed tracer, the recorder never adds a service context, so
  recorded and unrecorded ORBs are byte-identical on the wire.

The recorder mirrors the :class:`~repro.obs.dtrace.DistributedTracer`
driving interface (``begin_invocation`` / ``start_client_span`` /
``start_server_span`` / ``finish``) so the proxy and dispatcher drive
both through the same call sites, and reuses its :class:`Span` type so
the captured trees render with the existing ``repro-metrics tree``
tooling and export as span-schema-v2 dumps.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional

from .dtrace import InvocationScope, Span
from .events import EventSink, StageEvent

__all__ = ["FlightRecorder", "DEFAULT_SLOW_THRESHOLD"]

#: default slow-call threshold (seconds): loopback calls are tens of
#: microseconds, cross-host ones single-digit milliseconds, so 50 ms
#: flags genuine outliers on every transport without sampling noise
DEFAULT_SLOW_THRESHOLD = 0.050


class _ActiveFlightSpan:
    """A started span plus the subtree collected while it is a root."""

    __slots__ = ("span", "children")

    def __init__(self, span: Span):
        self.span = span
        #: finished descendant spans, delivered here by :meth:`finish`
        #: of the nested spans (only roots accumulate children)
        self.children: List[Span] = []

    def set_request_id(self, request_id: int) -> None:
        self.span.request_id = request_id

    def record_status(self, status: Optional[str]) -> None:
        self.span.status = status


class FlightRecorder(EventSink):
    """Bounded recent-call ring + slow-call span-tree sampler.

    ``keep`` bounds the recent ring (root span headers), ``slow_keep``
    the slow ring (full trees).  ``slow_threshold`` is in seconds and
    may be adjusted on a live recorder.  ``enabled=False`` (or
    :meth:`disable`) stops span production; detaching the recorder
    from the ORB's sink chain entirely restores the allocation-free
    ``stage_span`` fast path.
    """

    #: never ask the connection layer to split the control/deposit
    #: gather-write: the always-on recorder must not change the wire
    #: geometry (syscall count, fault-injection timing) of the
    #: zero-copy send path it observes
    wire_stages = False

    def __init__(self, slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
                 keep: int = 256, slow_keep: int = 32, node: str = "",
                 clock: Callable[[], float] = time.perf_counter):
        super().__init__(clock=clock)
        if slow_threshold < 0:
            raise ValueError(
                f"slow_threshold must be >= 0: {slow_threshold}")
        self.slow_threshold = slow_threshold
        self.node = node
        self.enabled = True
        self._ids = itertools.count(1)  # .__next__ is atomic under the GIL
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._ring: Deque[Span] = deque(maxlen=keep)
        self._slow: Deque[List[Span]] = deque(maxlen=slow_keep)
        #: lifetime counters (read by the telemetry sampler)
        self.recorded_total = 0
        self.slow_sampled = 0
        self.detail_dropped = 0

    # -- switches ------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Stop producing spans (events to still-open spans are kept)."""
        self.enabled = False

    # -- id generation -------------------------------------------------------
    def _new_trace_id(self) -> str:
        return f"{next(self._ids):032x}"

    def _new_span_id(self) -> str:
        return f"{next(self._ids):016x}"

    # -- thread-local state --------------------------------------------------
    def _stack(self) -> List[_ActiveFlightSpan]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    # -- span lifecycle (DistributedTracer-shaped) ---------------------------
    def begin_invocation(self) -> InvocationScope:
        """Fix the trace identity for one logical client call."""
        stack = self._stack()
        if stack:
            top = stack[-1].span
            return InvocationScope(trace_id=top.trace_id,
                                   parent_id=top.span_id, sampled=True)
        return InvocationScope(trace_id=self._new_trace_id(),
                               parent_id=None, sampled=True)

    def start_client_span(self, name: str,
                          scope: InvocationScope) -> _ActiveFlightSpan:
        span = Span(trace_id=scope.trace_id, span_id=self._new_span_id(),
                    parent_id=scope.parent_id, name=name, kind="client",
                    node=self.node, start_s=self.clock())
        active = _ActiveFlightSpan(span)
        self._stack().append(active)
        return active

    def start_server_span(self, name: str, ctx=None,
                          request_id: Optional[int] = None
                          ) -> _ActiveFlightSpan:
        """Open the server side of an incoming request.

        The recorder is process-local — no context rides the wire — so
        the span parents under whatever is active on this thread (a
        same-process client span on synchronous transports) or roots a
        new trace on a clean dispatch thread.
        """
        stack = self._stack()
        if stack:
            top = stack[-1].span
            trace_id, parent_id = top.trace_id, top.span_id
        else:
            trace_id, parent_id = self._new_trace_id(), None
        span = Span(trace_id=trace_id, span_id=self._new_span_id(),
                    parent_id=parent_id, name=name, kind="server",
                    node=self.node, start_s=self.clock(),
                    request_id=request_id)
        active = _ActiveFlightSpan(span)
        stack.append(active)
        return active

    def finish(self, active: _ActiveFlightSpan,
               status: Optional[str] = None) -> Optional[Span]:
        """Close ``active``; record it when it is a root.

        Nested spans are handed to the root still on this thread's
        stack and travel with it; a finished root enters the recent
        ring — with full stage detail when it crossed the slow
        threshold (its whole subtree then also enters the slow ring),
        stripped to a header otherwise.
        """
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is active:
                break
        span = active.span
        span.end_s = self.clock()
        if status is not None:
            span.status = status
        if stack:
            root = stack[0]
            root.children.extend(active.children)
            root.children.append(span)
            return span
        members = active.children + [span]
        slow = span.duration_s >= self.slow_threshold
        with self._lock:
            self.recorded_total += 1
            if slow:
                self.slow_sampled += 1
                self._slow.append(members)
            else:
                self.detail_dropped += 1
            self._ring.append(span)
        if not slow:
            # fast call: keep the header, drop the per-stage detail —
            # this is what keeps the default-on recorder cheap
            span.stages = []
        return span

    # -- sink interface ------------------------------------------------------
    def emit(self, event) -> None:
        if not self.enabled or not isinstance(event, StageEvent):
            return
        stack = self._stack()
        if stack:
            stack[-1].span.stages.append(event)

    # -- readers -------------------------------------------------------------
    def recent(self, n: int = 0) -> List[Span]:
        """The last ``n`` recorded root spans, oldest first (0 = all)."""
        with self._lock:
            spans = list(self._ring)
        return spans[-n:] if n > 0 else spans

    def slow_trees(self, n: int = 0) -> List[List[Span]]:
        """The last ``n`` slow-call span trees, oldest first (0 = all)."""
        with self._lock:
            trees = [list(t) for t in self._slow]
        return trees[-n:] if n > 0 else trees

    def spans(self, n: int = 0) -> List[Span]:
        """Slow-tree members plus recent roots, deduplicated by span
        id, oldest first — the ``/spans`` and ``recent_spans(n)``
        payload (``n`` bounds the *root* count, 0 = all)."""
        with self._lock:
            roots = list(self._ring)
            trees = [list(t) for t in self._slow]
        if n > 0:
            roots = roots[-n:]
        keep_traces = {s.trace_id for s in roots}
        seen = {s.span_id for s in roots}
        out: List[Span] = []
        for tree in trees:
            for span in tree:
                if span.trace_id in keep_traces and span.span_id not in seen:
                    seen.add(span.span_id)
                    out.append(span)
        out.extend(roots)
        out.sort(key=lambda s: s.start_s)
        return out

    def counters(self) -> dict:
        """Lifetime counters + ring occupancy (for the sampler)."""
        with self._lock:
            return {
                "recorded_total": self.recorded_total,
                "slow_sampled": self.slow_sampled,
                "detail_dropped": self.detail_dropped,
                "ring_spans": len(self._ring),
                "slow_trees": len(self._slow),
            }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._slow.clear()

    def __repr__(self) -> str:  # pragma: no cover
        c = self.counters()
        return (f"<FlightRecorder {'on' if self.enabled else 'off'} "
                f"recorded={c['recorded_total']} "
                f"slow={c['slow_sampled']} "
                f"threshold={self.slow_threshold:g}s>")
