"""``repro-metrics``: inspect and validate metrics and span dumps.

The benchmark harness and the app CLIs write JSON dumps via
:func:`repro.obs.export.dump_metrics` (schema v1) and
:func:`repro.obs.export.dump_spans` (schema v2, distributed-tracing
spans).  This tool is the consumer side: it validates a dump against
its schema (the CI smoke step's assertion) and re-renders it for
humans — Prometheus-style text and percentile summaries for metrics,
flat span listings and ASCII span trees for traces.

Exit status: 0 on a valid dump, 1 on a malformed or wrong-schema file —
so ``repro-metrics check dump.json`` is usable directly as a CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .export import SCHEMA_VERSION, SPAN_SCHEMA_VERSION
from .metrics import PERCENTILES, quantile_from_buckets

__all__ = ["main", "validate_dump", "validate_span_dump"]

_TYPES = ("counter", "gauge", "histogram")

_SPAN_KINDS = ("client", "server")

#: required fields of every schema-v2 span object
_SPAN_FIELDS = ("trace_id", "span_id", "name", "kind", "start_s",
                "duration_s", "control_bytes", "deposit_bytes", "stages")


def validate_dump(doc: dict) -> List[str]:
    """Schema problems in a parsed v1 metrics dump (empty = valid)."""
    problems = []
    if doc.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {SCHEMA_VERSION}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        return problems + ["'metrics' missing or not a list"]
    for i, m in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(m, dict) or "name" not in m:
            problems.append(f"{where}: not an object with a 'name'")
            continue
        mtype = m.get("type")
        if mtype not in _TYPES:
            problems.append(f"{where} ({m['name']}): bad type {mtype!r}")
        elif mtype == "histogram":
            buckets = m.get("buckets")
            if not isinstance(buckets, list) or not buckets or \
                    buckets[-1].get("le") != "+Inf":
                problems.append(
                    f"{where} ({m['name']}): histogram without a "
                    f"terminal +Inf bucket")
            elif "sum" not in m or "count" not in m:
                problems.append(
                    f"{where} ({m['name']}): histogram missing sum/count")
        elif "value" not in m:
            problems.append(f"{where} ({m['name']}): missing 'value'")
    return problems


def _is_hex(s, length: int) -> bool:
    if not isinstance(s, str) or len(s) != length:
        return False
    try:
        int(s, 16)
        return True
    except ValueError:
        return False


def validate_span_dump(doc: dict) -> List[str]:
    """Schema problems in a parsed v2 span dump (empty = valid)."""
    problems = []
    if doc.get("schema") != SPAN_SCHEMA_VERSION:
        problems.append(f"schema is {doc.get('schema')!r}, expected "
                        f"{SPAN_SCHEMA_VERSION}")
    spans = doc.get("spans")
    if not isinstance(spans, list):
        return problems + ["'spans' missing or not a list"]
    for i, s in enumerate(spans):
        where = f"spans[{i}]"
        if not isinstance(s, dict):
            problems.append(f"{where}: not an object")
            continue
        missing = [f for f in _SPAN_FIELDS if f not in s]
        if missing:
            problems.append(f"{where}: missing {', '.join(missing)}")
            continue
        if not _is_hex(s["trace_id"], 32):
            problems.append(f"{where}: trace_id is not 32 hex chars")
        if not _is_hex(s["span_id"], 16):
            problems.append(f"{where}: span_id is not 16 hex chars")
        if s.get("parent_id") is not None and \
                not _is_hex(s["parent_id"], 16):
            problems.append(f"{where}: parent_id is not 16 hex chars")
        if s["kind"] not in _SPAN_KINDS:
            problems.append(f"{where}: bad kind {s['kind']!r}")
        for split in ("control_bytes", "deposit_bytes"):
            v = s[split]
            if not isinstance(v, dict) or "sent" not in v or "recv" not in v:
                problems.append(f"{where}: {split} needs sent/recv")
        if not isinstance(s["stages"], list):
            problems.append(f"{where}: 'stages' is not a list")
        elif any(not isinstance(st, dict) or "stage" not in st
                 or "duration_s" not in st for st in s["stages"]):
            problems.append(f"{where}: malformed stage entry")
    return problems


def _render_lines(doc: dict) -> str:
    """Re-render a parsed dump in the text exposition format."""
    from .export import render_text
    from .metrics import MetricsRegistry

    reg = MetricsRegistry()
    for m in doc.get("metrics", []):
        labels = m.get("labels", {})
        if m["type"] == "counter":
            reg.counter(m["name"], **labels).inc(int(m["value"]))
        elif m["type"] == "gauge":
            reg.gauge(m["name"], **labels).set(m["value"])
        else:
            bounds = [b["le"] for b in m["buckets"] if b["le"] != "+Inf"]
            hist = reg.histogram(m["name"], buckets=bounds or [float("inf")],
                                 **labels)
            prev = 0
            for bound, bucket in zip(bounds, m["buckets"]):
                for _ in range(bucket["count"] - prev):
                    hist.observe(bound)
                prev = bucket["count"]
            for _ in range(m["count"] - prev):
                hist.observe(float("inf"))
            # keep the exported sum authoritative over the reconstruction
            hist._sum = m["sum"]
    return render_text(reg)


def _dump_percentiles(m: dict) -> str:
    """p50/p95/p99 estimates from an exported histogram's buckets."""
    bounds: List[float] = []
    counts: List[int] = []
    prev = 0
    for b in m["buckets"]:
        n = b["count"] - prev
        prev = b["count"]
        if b["le"] == "+Inf":
            counts.append(m["count"] - sum(counts))
        else:
            bounds.append(float(b["le"]))
            counts.append(n)
    parts = []
    for q in PERCENTILES:
        est = quantile_from_buckets(bounds, counts, q)
        parts.append(f"p{int(q * 100)}="
                     f"{'-' if est is None else f'{est:.6g}'}")
    return " ".join(parts)


def _summary(doc: dict) -> None:
    for m in doc["metrics"]:
        labels = m.get("labels", {})
        lab = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        head = f"{m['name']}{{{lab}}}" if lab else m["name"]
        if m["type"] == "histogram":
            print(f"{head}  count={m['count']} sum={m['sum']:.6g} "
                  f"{_dump_percentiles(m)}")
        else:
            print(f"{head}  {m['value']}")


def _series_key(m: dict):
    """Identity of one exported series: name + sorted labels."""
    return (m["name"], tuple(sorted((m.get("labels") or {}).items())))


def _series_head(key) -> str:
    name, labels = key
    lab = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{lab}}}" if lab else name


def _scalar_rows(key, m: dict):
    """(head, type, value) rows for one series — histograms flatten to
    their ``_count``/``_sum`` running totals, so every row diffs as a
    plain number."""
    head = _series_head(key)
    if m["type"] == "histogram":
        return [(f"{head} count", "histogram", m["count"]),
                (f"{head} sum", "histogram", m["sum"])]
    return [(head, m["type"], m["value"])]


def _fmt_num(v) -> str:
    return f"{v:g}" if isinstance(v, (int, float)) else str(v)


def _diff(old_doc: dict, new_doc: dict) -> int:
    """Print per-series deltas between two v1 metrics dumps.

    Counters and histogram count/sum totals print as ``+N``; gauges as
    ``old -> new``.  Series present in only one dump are listed as
    added/removed; unchanged series are summarized, not listed.
    """
    from .tables import format_table

    old = {_series_key(m): m for m in old_doc["metrics"]}
    new = {_series_key(m): m for m in new_doc["metrics"]}
    rows, unchanged = [], 0
    for key in sorted(set(old) | set(new), key=_series_head):
        if key not in old:
            for head, mtype, v in _scalar_rows(key, new[key]):
                rows.append([head, mtype, "-", _fmt_num(v), "added"])
            continue
        if key not in new:
            for head, mtype, v in _scalar_rows(key, old[key]):
                rows.append([head, mtype, _fmt_num(v), "-", "removed"])
            continue
        if old[key]["type"] != new[key]["type"]:
            rows.append([_series_head(key), "?",
                         old[key]["type"], new[key]["type"],
                         "type changed"])
            continue
        for (head, mtype, ov), (_, _, nv) in zip(
                _scalar_rows(key, old[key]), _scalar_rows(key, new[key])):
            if ov == nv:
                unchanged += 1
                continue
            if mtype == "gauge":
                delta = f"{_fmt_num(ov)} -> {_fmt_num(nv)}"
            else:
                delta = f"{nv - ov:+g}"
            rows.append([head, mtype, _fmt_num(ov), _fmt_num(nv), delta])
    if rows:
        print(format_table(["series", "type", "old", "new", "delta"],
                           rows, align="llrrl"))
    print(f"{len(rows)} series changed, {unchanged} unchanged")
    return 0


def _span_dump_spans(doc: dict):
    from .dtrace import Span
    return [Span.from_dict(d) for d in doc["spans"]]


def _spans_flat(doc: dict) -> None:
    for s in _span_dump_spans(doc):
        parent = s.parent_id or "-"
        print(f"{s.trace_id[:8]} {s.span_id} <- {parent:<16} "
              f"{s.kind:<6} {s.name:<20} {s.duration_s * 1e3:9.3f}ms  "
              f"ctl {s.control_bytes_sent}/{s.control_bytes_recv}B  "
              f"dep {s.deposit_bytes_sent}/{s.deposit_bytes_recv}B"
              + ("" if s.status in (None, "NO_EXCEPTION")
                 else f"  [{s.status}]"))


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-metrics",
        description="validate and render repro.obs metrics and span dumps")
    ap.add_argument("command",
                    choices=("check", "render", "summary", "spans", "tree",
                             "diff"),
                    help="check: validate schema (v1 or v2, auto-detected); "
                         "render: Prometheus text; summary: one line per "
                         "series with percentiles; spans: one line per "
                         "span; tree: ASCII span tree per trace; diff: "
                         "per-series deltas between two metrics dumps")
    ap.add_argument("paths", nargs="+", metavar="path",
                    help="JSON dump written by --metrics-dump or "
                         "--span-dump (diff takes exactly two)")
    args = ap.parse_args(argv)

    want = 2 if args.command == "diff" else 1
    if len(args.paths) != want:
        print(f"repro-metrics: {args.command} takes exactly {want} "
              f"path{'s' if want > 1 else ''}, got {len(args.paths)}",
              file=sys.stderr)
        return 1

    docs = []
    for path in args.paths:
        try:
            with open(path, encoding="utf-8") as fh:
                docs.append(json.load(fh))
        except (OSError, json.JSONDecodeError) as e:
            print(f"repro-metrics: cannot read {path}: {e}",
                  file=sys.stderr)
            return 1

    if args.command == "diff":
        for path, doc in zip(args.paths, docs):
            if doc.get("schema") == SPAN_SCHEMA_VERSION or "spans" in doc:
                print(f"repro-metrics: {path} is a span dump; diff "
                      f"works on metrics dumps", file=sys.stderr)
                return 1
            problems = validate_dump(doc)
            if problems:
                for p in problems:
                    print(f"repro-metrics: {path}: {p}", file=sys.stderr)
                return 1
        return _diff(docs[0], docs[1])

    doc = docs[0]
    is_spans = doc.get("schema") == SPAN_SCHEMA_VERSION or "spans" in doc
    if args.command in ("spans", "tree") and not is_spans:
        print(f"repro-metrics: {args.paths[0]} is not a span dump "
              f"(schema {doc.get('schema')!r})", file=sys.stderr)
        return 1
    if args.command in ("render", "summary") and is_spans:
        print(f"repro-metrics: {args.paths[0]} is a span dump; use "
              f"'spans' or 'tree'", file=sys.stderr)
        return 1

    problems = validate_span_dump(doc) if is_spans else validate_dump(doc)
    if problems:
        for p in problems:
            print(f"repro-metrics: {p}", file=sys.stderr)
        return 1

    if args.command == "check":
        body = (f"{len(doc['spans'])} spans" if is_spans
                else f"{len(doc['metrics'])} series")
        print(f"{args.paths[0]}: schema {doc['schema']}, {body}, OK")
    elif args.command == "render":
        sys.stdout.write(_render_lines(doc))
    elif args.command == "summary":
        _summary(doc)
    elif args.command == "spans":
        _spans_flat(doc)
    else:  # tree
        from .dtrace import render_span_tree
        sys.stdout.write(render_span_tree(_span_dump_spans(doc)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
