"""``repro-metrics``: inspect and validate metrics dumps.

The benchmark harness and the app CLIs write JSON dumps via
:func:`repro.obs.export.dump_metrics`.  This tool is the consumer side:
it validates a dump against the export schema (the CI smoke step's
assertion) and re-renders it as Prometheus-style text or summary lines
for humans.

Exit status: 0 on a valid dump, 1 on a malformed or wrong-schema file —
so ``repro-metrics check dump.json`` is usable directly as a CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .export import SCHEMA_VERSION

__all__ = ["main", "validate_dump"]

_TYPES = ("counter", "gauge", "histogram")


def validate_dump(doc: dict) -> List[str]:
    """Schema problems in a parsed dump (empty list = valid)."""
    problems = []
    if doc.get("schema") != SCHEMA_VERSION:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {SCHEMA_VERSION}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        return problems + ["'metrics' missing or not a list"]
    for i, m in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(m, dict) or "name" not in m:
            problems.append(f"{where}: not an object with a 'name'")
            continue
        mtype = m.get("type")
        if mtype not in _TYPES:
            problems.append(f"{where} ({m['name']}): bad type {mtype!r}")
        elif mtype == "histogram":
            buckets = m.get("buckets")
            if not isinstance(buckets, list) or not buckets or \
                    buckets[-1].get("le") != "+Inf":
                problems.append(
                    f"{where} ({m['name']}): histogram without a "
                    f"terminal +Inf bucket")
            elif "sum" not in m or "count" not in m:
                problems.append(
                    f"{where} ({m['name']}): histogram missing sum/count")
        elif "value" not in m:
            problems.append(f"{where} ({m['name']}): missing 'value'")
    return problems


def _render_lines(doc: dict) -> str:
    """Re-render a parsed dump in the text exposition format."""
    from .export import render_text
    from .metrics import MetricsRegistry

    reg = MetricsRegistry()
    for m in doc.get("metrics", []):
        labels = m.get("labels", {})
        if m["type"] == "counter":
            reg.counter(m["name"], **labels).inc(int(m["value"]))
        elif m["type"] == "gauge":
            reg.gauge(m["name"], **labels).set(m["value"])
        else:
            bounds = [b["le"] for b in m["buckets"] if b["le"] != "+Inf"]
            hist = reg.histogram(m["name"], buckets=bounds or [float("inf")],
                                 **labels)
            prev = 0
            for bound, bucket in zip(bounds, m["buckets"]):
                for _ in range(bucket["count"] - prev):
                    hist.observe(bound)
                prev = bucket["count"]
            for _ in range(m["count"] - prev):
                hist.observe(float("inf"))
            # keep the exported sum authoritative over the reconstruction
            hist._sum = m["sum"]
    return render_text(reg)


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-metrics",
        description="validate and render repro.obs metrics dumps")
    ap.add_argument("command", choices=("check", "render", "summary"),
                    help="check: validate schema; render: Prometheus text; "
                         "summary: one line per series")
    ap.add_argument("path", help="JSON dump written by --metrics-dump")
    args = ap.parse_args(argv)

    try:
        with open(args.path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"repro-metrics: cannot read {args.path}: {e}",
              file=sys.stderr)
        return 1

    problems = validate_dump(doc)
    if problems:
        for p in problems:
            print(f"repro-metrics: {p}", file=sys.stderr)
        return 1

    if args.command == "check":
        print(f"{args.path}: schema {doc['schema']}, "
              f"{len(doc['metrics'])} series, OK")
    elif args.command == "render":
        sys.stdout.write(_render_lines(doc))
    else:
        for m in doc["metrics"]:
            labels = m.get("labels", {})
            lab = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            head = f"{m['name']}{{{lab}}}" if lab else m["name"]
            if m["type"] == "histogram":
                print(f"{head}  count={m['count']} sum={m['sum']:.6g}")
            else:
                print(f"{head}  {m['value']}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
