"""Shared transform coding machinery for the toy MPEG codecs.

Fully vectorized 8x8 block DCT (scipy), flat quantization with the
standard JPEG-style luma matrix, zigzag scan, and a run-length entropy
code over the zigzag stream.  This is a real (if minimal) transform
codec: compression ratio depends on image content and quality factor,
and reconstruction error is bounded by the quantizer.
"""

from __future__ import annotations

import struct
from typing import Tuple

import numpy as np
from scipy.fft import dctn, idctn

__all__ = [
    "BLOCK", "blockize", "unblockize", "forward", "inverse",
    "zigzag_indices", "encode_plane", "decode_plane", "CodecError",
]

BLOCK = 8

#: JPEG Annex K luminance quantization matrix
_QBASE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float64)


class CodecError(ValueError):
    """Malformed coded plane data."""


def _qmatrix(quality: int) -> np.ndarray:
    """JPEG-style quality (1..100) -> quantization matrix."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in 1..100, got {quality}")
    scale = 5000 / quality if quality < 50 else 200 - 2 * quality
    q = np.floor((_QBASE * scale + 50) / 100)
    return np.clip(q, 1, 255)


def zigzag_indices() -> np.ndarray:
    """Flat indices of the 8x8 zigzag scan (JPEG order: 0,1,8,16,9,2...).

    Odd diagonals are walked top-right -> bottom-left (row ascending),
    even diagonals the other way.
    """
    order = sorted(((i, j) for i in range(BLOCK) for j in range(BLOCK)),
                   key=lambda ij: (ij[0] + ij[1],
                                   ij[0] if (ij[0] + ij[1]) % 2 else -ij[0]))
    return np.array([i * BLOCK + j for i, j in order])

_ZIGZAG = zigzag_indices()
_UNZIGZAG = np.argsort(_ZIGZAG)


def blockize(plane: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
    """(h, w) plane -> (n_blocks, 8, 8) float64; pads to multiples of 8."""
    h, w = plane.shape
    ph = -(-h // BLOCK) * BLOCK
    pw = -(-w // BLOCK) * BLOCK
    if (ph, pw) != (h, w):
        padded = np.empty((ph, pw), dtype=np.float64)
        padded[:h, :w] = plane
        padded[h:, :w] = plane[h - 1:h, :]
        padded[:, w:] = padded[:, w - 1:w]
    else:
        padded = plane.astype(np.float64)
    blocks = padded.reshape(ph // BLOCK, BLOCK, pw // BLOCK, BLOCK)
    return blocks.transpose(0, 2, 1, 3).reshape(-1, BLOCK, BLOCK), (h, w)


def unblockize(blocks: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
    """Inverse of :func:`blockize` (crops padding)."""
    h, w = shape
    ph = -(-h // BLOCK) * BLOCK
    pw = -(-w // BLOCK) * BLOCK
    grid = blocks.reshape(ph // BLOCK, pw // BLOCK, BLOCK, BLOCK)
    plane = grid.transpose(0, 2, 1, 3).reshape(ph, pw)
    return plane[:h, :w]


def forward(blocks: np.ndarray, quality: int) -> np.ndarray:
    """DCT + quantize: (n, 8, 8) float -> (n, 8, 8) int16."""
    coeffs = dctn(blocks - 128.0, axes=(1, 2), norm="ortho")
    return np.round(coeffs / _qmatrix(quality)).astype(np.int16)


def inverse(quantized: np.ndarray, quality: int) -> np.ndarray:
    """Dequantize + IDCT: (n, 8, 8) int16 -> (n, 8, 8) float."""
    coeffs = quantized.astype(np.float64) * _qmatrix(quality)
    return idctn(coeffs, axes=(1, 2), norm="ortho") + 128.0


# ---------------------------------------------------------------------------
# entropy coding: zero-run-length over the zigzag stream
# ---------------------------------------------------------------------------

_PLANE_HEADER = struct.Struct("<HHBxI")  # h, w, quality, pad, n_tokens


def encode_plane(plane: np.ndarray, quality: int) -> bytes:
    """Transform-code one plane to a self-describing byte string."""
    blocks, (h, w) = blockize(plane)
    quantized = forward(blocks, quality)
    zig = quantized.reshape(len(quantized), -1)[:, _ZIGZAG].ravel()
    nz = np.flatnonzero(zig)
    values = zig[nz].astype(np.int16)
    # runs of zeros before each nonzero value
    prev = np.concatenate(([-1], nz[:-1]))
    runs = (nz - prev - 1).astype(np.uint32)
    header = _PLANE_HEADER.pack(h, w, quality, len(values))
    tail = struct.pack("<I", len(zig))
    return header + runs.tobytes() + values.tobytes() + tail


def decode_plane(data) -> np.ndarray:
    """Inverse of :func:`encode_plane`; returns a uint8 plane."""
    buf = memoryview(data)
    if buf.nbytes < _PLANE_HEADER.size + 4:
        raise CodecError("truncated plane header")
    h, w, quality, n_tokens = _PLANE_HEADER.unpack_from(buf)
    off = _PLANE_HEADER.size
    need = off + n_tokens * 4 + n_tokens * 2 + 4
    if buf.nbytes < need:
        raise CodecError(f"truncated plane body: {buf.nbytes} < {need}")
    runs = np.frombuffer(buf, np.uint32, n_tokens, off)
    off += n_tokens * 4
    values = np.frombuffer(buf, np.int16, n_tokens, off)
    off += n_tokens * 2
    (total,) = struct.unpack_from("<I", buf, off)
    zig = np.zeros(total, dtype=np.int16)
    if n_tokens:
        positions = np.cumsum(runs.astype(np.int64) + 1) - 1
        if positions[-1] >= total:
            raise CodecError("token positions exceed coefficient count")
        zig[positions] = values
    n_blocks = total // (BLOCK * BLOCK)
    quantized = zig.reshape(n_blocks, -1)[:, _UNZIGZAG].reshape(
        n_blocks, BLOCK, BLOCK)
    blocks = inverse(quantized, quality)
    plane = unblockize(blocks, (h, w))
    return np.clip(np.round(plane), 0, 255).astype(np.uint8)
