"""The distributed MPEG-2 -> MPEG-4 transcoder (§5.4).

Video arrives as an intra-coded "MPEG-2" stream, is split into GOP-
sized chunks, and each chunk travels as a CORBA request to an encoder
object on the cluster, which decodes it and re-encodes it predictively
("MPEG-4").  The chunks are bulk octet payloads, so the transcoder is
exactly the workload class the zero-copy ORB targets: per-frame
megabytes through the middleware.

Two operation flavours are generated from the same IDL — standard
``sequence<octet>`` and zero-copy ``sequence<ZC_Octet>`` — so the
application can A/B the ORB data paths without touching its own logic.

:func:`estimate_cluster_fps` maps the measured per-frame compute and
payload sizes onto the simulated 2003 testbed, reproducing the paper's
real-time-HDTV feasibility argument (see EXPERIMENTS.md, APP-X10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ...core import OctetSequence, ZCOctetSequence
from ...idl import compile_idl
from ...simnet import (GIGABIT_ETHERNET, LinkProfile, MachineProfile,
                       OrbCostConfig, StackConfig, measure_corba_request)
from ..framework import Farm
from .mpeg2 import Mpeg2Stream
from .mpeg4 import DELIVERY_QUALITY, Mpeg4Stream

__all__ = ["TRANSCODER_IDL", "transcoder_api", "TranscoderWorker",
           "DistributedTranscoder", "TranscodeReport",
           "estimate_cluster_fps", "ClusterEstimate"]

TRANSCODER_IDL = """
interface Transcoder {
    sequence<zc_octet> transcode(in sequence<zc_octet> gop);
    sequence<octet> transcode_std(in sequence<octet> gop);
    unsigned long frames_done();
};
"""

_api = None


def transcoder_api():
    global _api
    if _api is None:
        _api = compile_idl(TRANSCODER_IDL, module_name="_repro_transcoder_idl")
    return _api


def _transcode_chunk(data, quality: int, gop: int) -> bytes:
    """Decode an MPEG-2 chunk and re-encode it as MPEG-4."""
    mp2 = Mpeg2Stream.from_bytes(data)
    frames = mp2.decode()
    return Mpeg4Stream.from_frames(frames, quality=quality,
                                   gop=gop).to_bytes()


class TranscoderWorker:
    """One encoder object of the farm (a CORBA servant)."""

    def __new__(cls, quality: int = DELIVERY_QUALITY, gop: int = 12):
        api = transcoder_api()

        class Impl(api.Transcoder_skel):
            def __init__(self):
                self.quality = quality
                self.gop = gop
                self._frames = 0

            def _run(self, data) -> bytes:
                mp2 = Mpeg2Stream.from_bytes(data)
                frames = mp2.decode()
                self._frames += len(frames)
                return Mpeg4Stream.from_frames(
                    frames, quality=self.quality, gop=self.gop).to_bytes()

            def transcode(self, gop):
                return ZCOctetSequence.from_data(self._run(gop.view()))

            def transcode_std(self, gop):
                return OctetSequence(self._run(gop.view()))

            def frames_done(self):
                return self._frames

        return Impl()


@dataclass
class TranscodeReport:
    frames: int
    elapsed_s: float
    bytes_in: int
    bytes_out: int

    @property
    def fps(self) -> float:
        return self.frames / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def compression_gain(self) -> float:
        """input bytes / output bytes (>1: MPEG-4 is smaller)."""
        return self.bytes_in / self.bytes_out if self.bytes_out else 0.0


class DistributedTranscoder:
    """Splits a stream into GOP chunks and farms them to workers."""

    def __init__(self, workers: Sequence, zero_copy: bool = True,
                 gop: int = 12):
        if gop < 1:
            raise ValueError(f"gop must be >= 1, got {gop}")
        self.zero_copy = zero_copy
        self.gop = gop
        if zero_copy:
            call = (lambda w, chunk:
                    bytes(w.transcode(
                        ZCOctetSequence.from_data(chunk)).view()))
        else:
            call = (lambda w, chunk:
                    bytes(w.transcode_std(OctetSequence(chunk)).view()))
        self.farm = Farm(workers, call)
        self.last_report: Optional[TranscodeReport] = None

    def chunks_of(self, stream: Mpeg2Stream) -> List[bytes]:
        out = []
        for i in range(0, len(stream.pictures), self.gop):
            out.append(Mpeg2Stream(
                pictures=stream.pictures[i:i + self.gop]).to_bytes())
        return out

    def transcode(self, stream: Mpeg2Stream) -> Mpeg4Stream:
        chunks = self.chunks_of(stream)
        start = time.perf_counter()
        coded_chunks = self.farm.process(chunks)
        elapsed = time.perf_counter() - start
        pictures: List[bytes] = []
        for coded in coded_chunks:
            pictures.extend(Mpeg4Stream.from_bytes(coded).pictures)
        result = Mpeg4Stream(pictures=pictures, gop=self.gop)
        self.last_report = TranscodeReport(
            frames=len(stream.pictures), elapsed_s=elapsed,
            bytes_in=sum(len(c) for c in chunks),
            bytes_out=sum(len(c) for c in coded_chunks))
        return result


# ---------------------------------------------------------------------------
# cluster-scale feasibility on the simulated testbed (APP-X10)
# ---------------------------------------------------------------------------

@dataclass
class ClusterEstimate:
    """Achievable transcoder rate on the modelled 2003 cluster."""

    workers: int
    compute_fps: float  #: aggregate encode capacity of the farm
    comm_fps: float  #: frames/s the ORB data path can carry
    orb_label: str

    @property
    def fps(self) -> float:
        return min(self.compute_fps, self.comm_fps)

    @property
    def realtime_25(self) -> bool:
        return self.fps >= 25.0


def estimate_cluster_fps(frame_payload_bytes: int,
                         encode_ns_per_frame: int,
                         workers: int,
                         zero_copy: bool,
                         stack: StackConfig,
                         profile: MachineProfile,
                         link: LinkProfile = GIGABIT_ETHERNET,
                         frames_per_gop: int = 12) -> ClusterEstimate:
    """Map the transcoder onto the simulated testbed.

    The master ships one GOP (``frames_per_gop`` coded frames of
    ``frame_payload_bytes`` each) per CORBA request; workers encode at
    ``encode_ns_per_frame``.  The achievable frame rate is the minimum
    of aggregate compute and the master's ORB data path throughput —
    the same bottleneck analysis the paper's real-time claim rests on.
    """
    cfg = OrbCostConfig(zero_copy=zero_copy)
    gop_bytes = frame_payload_bytes * frames_per_gop
    rep = measure_corba_request(profile, link, gop_bytes, stack, cfg)
    comm_fps = frames_per_gop * 1e9 / rep.elapsed_ns
    compute_fps = workers * 1e9 / encode_ns_per_frame
    return ClusterEstimate(
        workers=workers, compute_fps=compute_fps, comm_fps=comm_fps,
        orb_label=("zc-orb" if zero_copy else "std-orb")
        + f"/{stack.kind.value}")
