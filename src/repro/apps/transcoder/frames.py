"""Synthetic video frames (the HDTV frame-grabber substitute).

The paper's demonstrator transcodes video "either grabbed from a HDTV
frame grabber or extracted from a DVD MPEG-2 stream" (§5.4).  Neither
source exists here, so :class:`FrameSource` synthesizes YCbCr 4:2:0
frames with the two properties that matter to a codec workload:
spatial structure (smooth gradients + objects, so the DCT compacts
energy) and temporal coherence (content moves slowly between frames,
so predictive coding pays off).  Deterministic per seed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

__all__ = ["VideoFrame", "FrameSource", "HDTV", "CIF", "QCIF"]

#: (width, height) presets
HDTV = (1920, 1088)  # 1080 rounded to a macroblock multiple
CIF = (352, 288)
QCIF = (176, 144)

_HEADER = struct.Struct("<4sHHI")  # magic, width, height, frame_no
_MAGIC = b"YV12"


@dataclass
class VideoFrame:
    """One YCbCr 4:2:0 picture: full-res luma, half-res chroma."""

    frame_no: int
    y: np.ndarray  #: (h, w) uint8
    cb: np.ndarray  #: (h//2, w//2) uint8
    cr: np.ndarray  #: (h//2, w//2) uint8

    def __post_init__(self):
        h, w = self.y.shape
        if h % 16 or w % 16:
            raise ValueError(
                f"frame dimensions must be macroblock multiples, got "
                f"{w}x{h}")
        if self.cb.shape != (h // 2, w // 2) or self.cr.shape != self.cb.shape:
            raise ValueError("chroma planes must be half resolution")

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def nbytes(self) -> int:
        return self.y.nbytes + self.cb.nbytes + self.cr.nbytes

    def planes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self.y, self.cb, self.cr

    # -- wire form (what travels through the ORB) -------------------------
    def to_bytes(self) -> bytes:
        return (_HEADER.pack(_MAGIC, self.width, self.height,
                             self.frame_no)
                + self.y.tobytes() + self.cb.tobytes() + self.cr.tobytes())

    @classmethod
    def from_bytes(cls, data) -> "VideoFrame":
        buf = memoryview(data)
        if buf.nbytes < _HEADER.size:
            raise ValueError("truncated frame header")
        magic, w, h, frame_no = _HEADER.unpack_from(buf)
        if magic != _MAGIC:
            raise ValueError(f"bad frame magic {magic!r}")
        need = _HEADER.size + h * w + 2 * (h // 2) * (w // 2)
        if buf.nbytes < need:
            raise ValueError(
                f"truncated frame: {buf.nbytes} < {need} bytes")
        off = _HEADER.size
        y = np.frombuffer(buf, np.uint8, h * w, off).reshape(h, w)
        off += h * w
        c = (h // 2) * (w // 2)
        cb = np.frombuffer(buf, np.uint8, c, off).reshape(h // 2, w // 2)
        off += c
        cr = np.frombuffer(buf, np.uint8, c, off).reshape(h // 2, w // 2)
        return cls(frame_no=frame_no, y=y.copy(), cb=cb.copy(),
                   cr=cr.copy())

    def psnr(self, other: "VideoFrame") -> float:
        """Luma PSNR in dB against ``other`` (inf for identical)."""
        a = self.y.astype(np.float64)
        b = other.y.astype(np.float64)
        mse = np.mean((a - b) ** 2)
        if mse == 0:
            return float("inf")
        return 10.0 * np.log10(255.0 ** 2 / mse)


class FrameSource:
    """Deterministic synthetic video: drifting gradient + moving disc
    + low-amplitude noise."""

    def __init__(self, width: int = CIF[0], height: int = CIF[1],
                 seed: int = 2003, noise: float = 2.0):
        if width % 16 or height % 16:
            raise ValueError("dimensions must be macroblock multiples")
        self.width = width
        self.height = height
        self.noise = noise
        self._rng = np.random.default_rng(seed)
        yy, xx = np.mgrid[0:height, 0:width]
        self._xx = xx
        self._yy = yy

    def frame(self, n: int) -> VideoFrame:
        w, h = self.width, self.height
        # drifting diagonal gradient
        phase = 0.02 * n
        base = (128 + 60 * np.sin(2 * np.pi *
                                  (self._xx / w + self._yy / h + phase)))
        # a disc orbiting the centre
        cx = w / 2 + (w / 3) * np.cos(0.05 * n)
        cy = h / 2 + (h / 3) * np.sin(0.05 * n)
        r2 = (self._xx - cx) ** 2 + (self._yy - cy) ** 2
        base = np.where(r2 < (min(w, h) / 8) ** 2, 220.0, base)
        noise = self._rng.normal(0.0, self.noise, size=base.shape)
        y = np.clip(base + noise, 0, 255).astype(np.uint8)
        cb = np.full((h // 2, w // 2),
                     128 + int(30 * np.sin(0.03 * n)), np.uint8)
        cr = np.full((h // 2, w // 2),
                     128 + int(30 * np.cos(0.03 * n)), np.uint8)
        return VideoFrame(frame_no=n, y=y, cb=cb, cr=cr)

    def frames(self, count: int, start: int = 0) -> Iterator[VideoFrame]:
        for n in range(start, start + count):
            yield self.frame(n)
