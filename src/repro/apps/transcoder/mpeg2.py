"""Toy MPEG-2 codec: intra-only transform coding.

Stands in for the DVD/frame-grabber MPEG-2 input of §5.4.  Every
picture is coded independently (an all-I-frame stream, which real
MPEG-2 capture hardware of the era produced too), one coded plane per
colour component.  The bitstream is self-describing so a coded stream
is a plain octet payload the ORB can ship around.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List

from .dct import CodecError, decode_plane, encode_plane
from .frames import VideoFrame

__all__ = ["encode_frame", "decode_frame", "Mpeg2Stream"]

_PIC_HEADER = struct.Struct("<4sIIII")  # magic, frame_no, len_y, len_cb, len_cr
_MAGIC = b"MP2I"
_STREAM_HEADER = struct.Struct("<4sI")  # magic, n_pictures
_STREAM_MAGIC = b"MP2S"

#: capture-grade quality: high fidelity, moderate compression
CAPTURE_QUALITY = 85


def encode_frame(frame: VideoFrame, quality: int = CAPTURE_QUALITY) -> bytes:
    """Code one picture (all-intra)."""
    y = encode_plane(frame.y, quality)
    cb = encode_plane(frame.cb, quality)
    cr = encode_plane(frame.cr, quality)
    return (_PIC_HEADER.pack(_MAGIC, frame.frame_no, len(y), len(cb),
                             len(cr)) + y + cb + cr)


def decode_frame(data) -> VideoFrame:
    """Decode one coded picture back to a frame."""
    buf = memoryview(data)
    if buf.nbytes < _PIC_HEADER.size:
        raise CodecError("truncated MPEG-2 picture header")
    magic, frame_no, len_y, len_cb, len_cr = _PIC_HEADER.unpack_from(buf)
    if magic != _MAGIC:
        raise CodecError(f"bad MPEG-2 picture magic {magic!r}")
    off = _PIC_HEADER.size
    if buf.nbytes < off + len_y + len_cb + len_cr:
        raise CodecError("truncated MPEG-2 picture body")
    y = decode_plane(buf[off:off + len_y])
    off += len_y
    cb = decode_plane(buf[off:off + len_cb])
    off += len_cb
    cr = decode_plane(buf[off:off + len_cr])
    return VideoFrame(frame_no=frame_no, y=y, cb=cb, cr=cr)


@dataclass
class Mpeg2Stream:
    """A sequence of coded pictures with a tiny container format."""

    pictures: List[bytes]

    @classmethod
    def from_frames(cls, frames: Iterable[VideoFrame],
                    quality: int = CAPTURE_QUALITY) -> "Mpeg2Stream":
        return cls(pictures=[encode_frame(f, quality) for f in frames])

    def decode(self) -> List[VideoFrame]:
        return [decode_frame(p) for p in self.pictures]

    @property
    def nbytes(self) -> int:
        return (_STREAM_HEADER.size
                + sum(4 + len(p) for p in self.pictures))

    def to_bytes(self) -> bytes:
        parts = [_STREAM_HEADER.pack(_STREAM_MAGIC, len(self.pictures))]
        for pic in self.pictures:
            parts.append(struct.pack("<I", len(pic)))
            parts.append(pic)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data) -> "Mpeg2Stream":
        buf = memoryview(data)
        if buf.nbytes < _STREAM_HEADER.size:
            raise CodecError("truncated MPEG-2 stream header")
        magic, count = _STREAM_HEADER.unpack_from(buf)
        if magic != _STREAM_MAGIC:
            raise CodecError(f"bad MPEG-2 stream magic {magic!r}")
        off = _STREAM_HEADER.size
        pictures = []
        for _ in range(count):
            if buf.nbytes < off + 4:
                raise CodecError("truncated picture length")
            (n,) = struct.unpack_from("<I", buf, off)
            off += 4
            if buf.nbytes < off + n:
                raise CodecError("truncated picture payload")
            pictures.append(bytes(buf[off:off + n]))
            off += n
        return cls(pictures=pictures)
