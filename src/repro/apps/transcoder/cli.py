"""``repro-transcode``: run the §5.4 transcoder farm from the shell.

Synthesizes video, stands up N encoder objects (each in its own ORB on
the chosen transport), transcodes, and prints throughput/compression/
fidelity for the standard and zero-copy ORB paths.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from ...orb import ORB, ORBConfig
from .frames import CIF, QCIF, FrameSource
from .mpeg2 import Mpeg2Stream
from .pipeline import DistributedTranscoder, TranscoderWorker

__all__ = ["main"]


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-transcode",
        description="distributed MPEG-2 -> MPEG-4 transcoder (paper 5.4)")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--frames", type=int, default=24)
    ap.add_argument("--gop", type=int, default=12)
    ap.add_argument("--scheme", choices=("loop", "tcp"), default="loop")
    ap.add_argument("--cif", action="store_true",
                    help="352x288 frames (default 176x144)")
    ap.add_argument("--paths", default="std,zc",
                    help="comma list of ORB paths to run: std, zc")
    ap.add_argument("--metrics-dump", metavar="PATH", default=None,
                    help="trace every request and write a repro.obs "
                         "metrics dump (JSON) on exit")
    ap.add_argument("--span-dump", metavar="PATH", default=None,
                    help="distributed-trace every request and write a "
                         "span dump (schema v2) on exit; render with "
                         "'repro-metrics tree PATH'")
    args = ap.parse_args(argv)

    registry = None
    if args.metrics_dump:
        from ...obs import MetricsRegistry
        registry = MetricsRegistry()
    collector = None
    if args.span_dump:
        from ...obs import SpanCollector
        collector = SpanCollector(keep=8192)

    def _trace(orb: ORB) -> None:
        if registry is not None or collector is not None:
            orb.enable_tracing(registry=registry,
                               distributed=collector is not None,
                               collector=collector)

    w, h = CIF if args.cif else QCIF
    source = FrameSource(w, h, seed=2003)
    frames = list(source.frames(args.frames))
    mp2 = Mpeg2Stream.from_frames(frames)
    print(f"{args.frames} frames {w}x{h}; MPEG-2 input "
          f"{mp2.nbytes / 1e6:.2f} MB", file=sys.stderr)

    client = ORB(ORBConfig(scheme=args.scheme, collocated_calls=False))
    _trace(client)
    worker_orbs, stubs = [], []
    for _ in range(args.workers):
        orb = ORB(ORBConfig(scheme=args.scheme))
        _trace(orb)
        ref = orb.activate(TranscoderWorker(gop=args.gop))
        stubs.append(client.string_to_object(orb.object_to_string(ref)))
        worker_orbs.append(orb)

    try:
        for path in args.paths.split(","):
            zero_copy = path.strip() == "zc"
            farm = DistributedTranscoder(stubs, zero_copy=zero_copy,
                                         gop=args.gop)
            mp4 = farm.transcode(mp2)
            rep = farm.last_report
            mid = args.frames // 2
            psnr = frames[mid].psnr(mp4.decode()[mid])
            print(f"{'zc ' if zero_copy else 'std'} ORB: "
                  f"{rep.fps:7.1f} fps  "
                  f"out {rep.bytes_out / 1e6:5.2f} MB "
                  f"({rep.compression_gain:4.2f}x)  "
                  f"PSNR {psnr:5.1f} dB")
    finally:
        client.shutdown()
        for orb in worker_orbs:
            orb.shutdown()
    if registry is not None:
        from ...obs import dump_metrics
        dump_metrics(registry, args.metrics_dump, workers=args.workers,
                     frames=args.frames)
        print(f"metrics written to {args.metrics_dump}", file=sys.stderr)
    if collector is not None:
        from ...obs import dump_spans
        dump_spans(collector, args.span_dump, workers=args.workers,
                   frames=args.frames)
        print(f"spans written to {args.span_dump}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
