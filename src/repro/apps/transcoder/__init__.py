"""The MPEG-2 -> MPEG-4 transcoder demonstrator of §5.4: synthetic
HDTV frames, toy transform codecs, and the CORBA encoder farm."""

from .dct import CodecError, decode_plane, encode_plane
from .frames import CIF, HDTV, QCIF, FrameSource, VideoFrame
from .mpeg2 import Mpeg2Stream
from .mpeg4 import (DELIVERY_QUALITY, Mpeg4Decoder, Mpeg4Encoder,
                    Mpeg4Stream)
from .pipeline import (TRANSCODER_IDL, ClusterEstimate,
                       DistributedTranscoder, TranscodeReport,
                       TranscoderWorker, estimate_cluster_fps,
                       transcoder_api)

__all__ = [
    "VideoFrame", "FrameSource", "HDTV", "CIF", "QCIF",
    "Mpeg2Stream", "Mpeg4Stream", "Mpeg4Encoder", "Mpeg4Decoder",
    "DELIVERY_QUALITY", "CodecError", "encode_plane", "decode_plane",
    "TRANSCODER_IDL", "transcoder_api", "TranscoderWorker",
    "DistributedTranscoder", "TranscodeReport",
    "estimate_cluster_fps", "ClusterEstimate",
]
