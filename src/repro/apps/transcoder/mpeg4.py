"""Toy MPEG-4 encoder: predictive (I/P) transform coding.

The target format of the §5.4 transcoder.  Improves on the intra-only
"MPEG-2" input by coding most pictures as P-frames — the block
transform is applied to the *difference* against the previous
reconstructed frame, which for coherent video concentrates energy far
better and yields the smaller bitstream that makes transcoding
worthwhile.  A GOP header carries the I-frame interval; decode
reconstructs by accumulating differences, so encoder and decoder
track the same reference (closed-loop prediction).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from .dct import CodecError, decode_plane, encode_plane
from .frames import VideoFrame

__all__ = ["Mpeg4Encoder", "Mpeg4Decoder", "Mpeg4Stream",
           "DELIVERY_QUALITY"]

#: delivery-grade quality: stronger quantization than capture
DELIVERY_QUALITY = 60

_PIC_HEADER = struct.Struct("<4sBxxxIIII")  # magic, type, frame_no, 3 lens
_MAGIC = b"MP4P"
_TYPE_I, _TYPE_P = 0, 1
_STREAM_HEADER = struct.Struct("<4sII")  # magic, count, gop
_STREAM_MAGIC = b"MP4S"


def _code_planes(planes, quality: int):
    return [encode_plane(p, quality) for p in planes]


class Mpeg4Encoder:
    """Closed-loop I/P encoder."""

    def __init__(self, quality: int = DELIVERY_QUALITY, gop: int = 12):
        if gop < 1:
            raise ValueError(f"gop must be >= 1, got {gop}")
        self.quality = quality
        self.gop = gop
        self._ref: Optional[VideoFrame] = None
        self._since_i = 0

    def encode(self, frame: VideoFrame) -> bytes:
        intra = self._ref is None or self._since_i >= self.gop - 1 \
            or self._ref.y.shape != frame.y.shape
        quality = self.quality
        if intra:
            coded = _code_planes(frame.planes(), quality)
            ptype = _TYPE_I
            recon = [_decode(c) for c in coded]
        else:
            # difference against the *reconstructed* reference, biased
            # into uint8 range for the plane codec
            coded = []
            recon = []
            for cur, ref in zip(frame.planes(), self._ref.planes()):
                diff = cur.astype(np.int16) - ref.astype(np.int16)
                biased = np.clip(diff + 128, 0, 255).astype(np.uint8)
                c = encode_plane(biased, quality)
                coded.append(c)
                dec = _decode(c).astype(np.int16) - 128
                recon.append(np.clip(
                    ref.astype(np.int16) + dec, 0, 255).astype(np.uint8))
            ptype = _TYPE_P
        self._ref = VideoFrame(frame_no=frame.frame_no, y=recon[0],
                               cb=recon[1], cr=recon[2])
        self._since_i = 0 if intra else self._since_i + 1
        return (_PIC_HEADER.pack(_MAGIC, ptype, frame.frame_no,
                                 *(len(c) for c in coded))
                + b"".join(coded))


def _decode(plane_bytes) -> np.ndarray:
    return decode_plane(plane_bytes)


class Mpeg4Decoder:
    """Tracks the encoder's reference to reconstruct P-frames."""

    def __init__(self):
        self._ref: Optional[VideoFrame] = None

    def decode(self, data) -> VideoFrame:
        buf = memoryview(data)
        if buf.nbytes < _PIC_HEADER.size:
            raise CodecError("truncated MPEG-4 picture header")
        magic, ptype, frame_no, ly, lcb, lcr = _PIC_HEADER.unpack_from(buf)
        if magic != _MAGIC:
            raise CodecError(f"bad MPEG-4 picture magic {magic!r}")
        off = _PIC_HEADER.size
        if buf.nbytes < off + ly + lcb + lcr:
            raise CodecError("truncated MPEG-4 picture body")
        planes = []
        for n in (ly, lcb, lcr):
            planes.append(decode_plane(buf[off:off + n]))
            off += n
        if ptype == _TYPE_I:
            frame = VideoFrame(frame_no=frame_no, y=planes[0],
                               cb=planes[1], cr=planes[2])
        elif ptype == _TYPE_P:
            if self._ref is None:
                raise CodecError("P-frame before any I-frame")
            recon = []
            for diff, ref in zip(planes, self._ref.planes()):
                d = diff.astype(np.int16) - 128
                recon.append(np.clip(
                    ref.astype(np.int16) + d, 0, 255).astype(np.uint8))
            frame = VideoFrame(frame_no=frame_no, y=recon[0],
                               cb=recon[1], cr=recon[2])
        else:
            raise CodecError(f"unknown picture type {ptype}")
        self._ref = frame
        return frame


@dataclass
class Mpeg4Stream:
    pictures: List[bytes]
    gop: int = 12

    @classmethod
    def from_frames(cls, frames: Iterable[VideoFrame],
                    quality: int = DELIVERY_QUALITY,
                    gop: int = 12) -> "Mpeg4Stream":
        enc = Mpeg4Encoder(quality=quality, gop=gop)
        return cls(pictures=[enc.encode(f) for f in frames], gop=gop)

    def decode(self) -> List[VideoFrame]:
        dec = Mpeg4Decoder()
        return [dec.decode(p) for p in self.pictures]

    @property
    def nbytes(self) -> int:
        return _STREAM_HEADER.size + sum(4 + len(p) for p in self.pictures)

    def to_bytes(self) -> bytes:
        parts = [_STREAM_HEADER.pack(_STREAM_MAGIC, len(self.pictures),
                                     self.gop)]
        for pic in self.pictures:
            parts.append(struct.pack("<I", len(pic)))
            parts.append(pic)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data) -> "Mpeg4Stream":
        buf = memoryview(data)
        if buf.nbytes < _STREAM_HEADER.size:
            raise CodecError("truncated MPEG-4 stream header")
        magic, count, gop = _STREAM_HEADER.unpack_from(buf)
        if magic != _STREAM_MAGIC:
            raise CodecError(f"bad MPEG-4 stream magic {magic!r}")
        off = _STREAM_HEADER.size
        pictures = []
        for _ in range(count):
            (n,) = struct.unpack_from("<I", buf, off)
            off += 4
            if buf.nbytes < off + n:
                raise CodecError("truncated picture payload")
            pictures.append(bytes(buf[off:off + n]))
            off += n
        return cls(pictures=pictures, gop=gop)
