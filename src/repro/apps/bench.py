"""``repro-bench``: the benchmark-trajectory pipeline in one command.

Runs the paper's headline benchmarks — the Fig. 5 and Fig. 6 TTCP
sweeps on the simulated 2003 testbed — plus a real-ORB latency probe,
and writes everything as one schema-versioned JSON document (by
convention ``BENCH_<tag>.json``).  CI runs this per PR and uploads the
file as an artifact, so the repository accumulates a throughput/latency
trajectory that future changes can be gated against.

Document layout (``BENCH_SCHEMA_VERSION`` = 7)::

    {
      "schema": 5, "kind": "bench", "tag": "...",
      "figures": {
        "fig5":       {"<label>": [{"size":..., "mbit_per_s":...}, ...]},
        "fig6_left":  {...},   # raw TCP: standard vs zero-copy stack
        "fig6_right": {...}    # ORB x stack matrix
      },
      "latency": {
        "<version>": {"size": ..., "count": N, "mean_s": ...,
                      "p50": ..., "p95": ..., "p99": ...}
      },
      "pipelining": {          # schema 2: request multiplexing
        "<scheme>": {
          "work_s": ..., "speedup": ...,
          "levels": [{"inflight": K, "calls": N, "seconds": ...,
                      "calls_per_s": ...}, ...]
        }
      },
      "shm": {                 # schema 3: shared-memory deposits
        "size": ..., "repeats": N, "speedup": ...,
        "schemes": {
          "<scheme>": {"seconds_best": ..., "bytes_per_s": ...,
                       "mbit_per_s": ...,
                       # shm only:
                       "shm_deposits_total": ...,
                       "shm_fallbacks_total": ...}
        }
        # or, on hosts without a usable shared-memory filesystem:
        # {"skipped": true, "reason": "...", "degrade_path_ok": true}
      },
      "sgcdr": {               # schema 4: scatter/gather CDR encode
        "repeats": N,
        "sizes": [{"size": ..., "blob_mb_per_s": ...,
                   "sg_mb_per_s": ..., "improvement": ...}, ...],
        "min_improvement": ...
      },
      "sendfile": {            # schema 5: kernel zero-copy file sends
        "repeats": N,
        "sizes": [{"size": ..., "sendfile_mb_per_s": ...,
                   "copy_mb_per_s": ..., "speedup": ...}, ...],
        "speedup_at_max": ...
        # or, where os.sendfile is missing or the kernel refuses it:
        # {"skipped": true, "reason": "...", "degrade_path_ok": true}
      },
      "pubsub": {              # schema 7: single-copy pub/sub fan-out
        "size": ..., "events": N,
        "levels": [
          {"subs": M,
           "shm": {"seconds": ..., "events_per_s": ...,
                   "delivered_bytes_per_s": ...,
                   "fanout_posts": ..., "shared_refs": ...},
           "tcp": {"seconds": ..., "events_per_s": ...,
                   "delivered_bytes_per_s": ...},
           "speedup": ...     # shm/tcp events_per_s at this fan-out
          }, ...],
        "speedup_at_max": ...  # at the largest subscriber count
        # or, on hosts without a usable shared-memory filesystem:
        # {"skipped": true, "reason": "...", "degrade_path_ok": true}
      },
      "cscale": {              # schema 6: connection scaling
        "calls_per_conn": N, "work_s": ..., "p99_slo_s": ...,
        "levels": [
          {"conns": C,
           "threaded": {"ok": ..., "goodput_calls_per_s": ...,
                        "p50_s": ..., "p99_s": ..., "slo_ok": ...,
                        "completed": ..., "expected": ...},
           "reactor":  {... same keys ...},
           "speedup": ...       # reactor/threaded goodput, null when
          },                    # the threaded side did not complete
          # levels the host cannot fd-budget skip visibly:
          # {"conns": C, "skipped": true, "reason": "..."}
        ]
      }
    }

Latency percentiles come from a :class:`repro.obs.Histogram` over the
per-call wall time (the same bucket-interpolation estimator that
``repro-metrics summary`` applies to exported dumps).  The pipelining
section drives a GIL-releasing servant with 1 and N concurrent callers
on a *single* connection; ``speedup`` is the N-in-flight throughput
over serialized — the headline number of the multiplexing layer.  The
sgcdr section times the chunk-plan encoder against its own blob mode
(``sg_min_chunk`` larger than any payload degrades it to the pre-
scatter/gather single-buffer behaviour, join included).

Regression gating: ``repro-bench --compare OLD NEW [--tolerance R]``
reads two documents and fails (exit 1) when any key series in NEW
dropped below ``R`` times its OLD value — see :func:`compare_bench`
for the gated series.  CI keeps a blessed ``BENCH_baseline.json`` at
the repo root and compares every PR's quick run against it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..obs.metrics import Histogram, MetricsRegistry
from .ttcp import KB, MB, TTCPSeries, default_sizes, run_sim_ttcp

__all__ = ["BENCH_SCHEMA_VERSION", "run_bench", "measure_pipelining",
           "measure_shm", "measure_sgcdr", "measure_sendfile",
           "measure_pubsub", "pubsub_smoke",
           "measure_cscale", "cscale_smoke",
           "validate_bench",
           "compare_bench", "format_compare", "render_figure", "main"]

BENCH_SCHEMA_VERSION = 7

#: the fig6_right zc-corba curves gated by --compare, at these sizes
#: (falling back to the largest size both documents share)
_GATE_SIZES = (256 * KB, 1 * MB)
_GATE_CURVES = (("fig6_right", "zc-corba/std"), ("fig6_right", "zc-corba/zc"))

#: the sim-mode curve matrix per figure: label -> (version, stack)
_FIGURES = {
    "fig5": {
        "raw/std": ("raw", "standard"),
        "corba/std": ("corba", "standard"),
    },
    "fig6_left": {
        "raw/std": ("raw", "standard"),
        "raw/zc": ("raw", "zero-copy"),
    },
    "fig6_right": {
        "corba/std": ("corba", "standard"),
        "corba/zc": ("corba", "zero-copy"),
        "zc-corba/std": ("zc-corba", "standard"),
        "zc-corba/zc": ("zc-corba", "zero-copy"),
    },
}


def _series_rows(series: TTCPSeries) -> List[dict]:
    return [{"size": p.size, "mbit_per_s": round(p.mbit_per_s, 3)}
            for p in series.points]


def _measure_latency(version: str, scheme: str, size: int,
                     calls: int) -> dict:
    """Per-call wall-time percentiles through the real ORB."""
    import time

    from ..core import OctetSequence, ZCOctetSequence
    from ..orb import ORB, ORBConfig
    from .ttcp import _TTCPServant, _ttcp_api

    _ttcp_api()
    zero_copy = version == "zc-corba"
    hist = Histogram(f"bench_latency_{version}", {},
                     help="per-call wall seconds")
    server = ORB(ORBConfig(scheme=scheme))
    client = ORB(ORBConfig(scheme=scheme, collocated_calls=False))
    try:
        ref = server.activate(_TTCPServant())
        stub = client.string_to_object(server.object_to_string(ref))
        payload_bytes = bytes(size)
        for _ in range(calls):
            payload = ZCOctetSequence.from_data(payload_bytes) \
                if zero_copy else OctetSequence(payload_bytes)
            t0 = time.perf_counter()
            if zero_copy:
                stub.send_zc(payload)
            else:
                stub.send(payload)
            hist.observe(time.perf_counter() - t0)
    finally:
        client.shutdown()
        server.shutdown()
    pct = hist.percentiles() or {}
    return {"size": size, "count": hist.count,
            "mean_s": hist.sum / max(hist.count, 1),
            **{k: v for k, v in pct.items()}}


_pipe_bench_api = None


def _pipe_api():
    """The sleeping-servant IDL module for the pipelining probe."""
    global _pipe_bench_api
    if _pipe_bench_api is None:
        from ..idl import compile_idl
        _pipe_bench_api = compile_idl(
            "interface BenchPipe { double work(in double seconds); };",
            module_name="_bench_pipe_idl")
    return _pipe_bench_api


def measure_pipelining(scheme: str = "loop", inflight: int = 8,
                       calls: int = 32, work_s: float = 0.01) -> dict:
    """1-vs-N in-flight throughput on ONE connection (see docstring).

    The servant sleeps ``work_s`` per call (releasing the GIL, like
    any real I/O- or compute-offloading upcall), so the measurement
    isolates the multiplexing win: with serialized calls the wall
    time is ``calls * work_s``; with N in flight the server's worker
    pool overlaps the sleeps.
    """
    import time
    from concurrent.futures import ThreadPoolExecutor

    from ..orb import ORB, ORBConfig

    api = _pipe_api()

    class _Servant(api.BenchPipe_skel):
        def work(self, seconds):
            time.sleep(seconds)
            return seconds

    server = ORB(ORBConfig(scheme=scheme, server_workers=inflight))
    client = ORB(ORBConfig(scheme=scheme, collocated_calls=False))
    levels = []
    try:
        ref = server.activate(_Servant())
        stub = client.string_to_object(server.object_to_string(ref))
        stub.work(0.0)  # connect + warm the path outside the timing
        for level in (1, inflight):
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=level) as pool:
                list(pool.map(lambda _: stub.work(work_s), range(calls)))
            seconds = time.perf_counter() - t0
            levels.append({"inflight": level, "calls": calls,
                           "seconds": round(seconds, 6),
                           "calls_per_s": round(calls / seconds, 3)})
    finally:
        client.shutdown()
        server.shutdown()
    speedup = levels[-1]["calls_per_s"] / levels[0]["calls_per_s"]
    return {"work_s": work_s, "speedup": round(speedup, 3),
            "levels": levels}


def measure_sgcdr(sizes=(64 * KB, 256 * KB, 1 * MB),
                  repeats: int = 5) -> dict:
    """Marshal throughput (MB/s): chunk-plan encoder vs blob mode.

    Marshals a ``sequence<ZC_Octet>`` payload inline (no deposit
    registry, the worst case for the encoder) and consumes the result
    the way the send path does: the blob baseline joins to one
    contiguous buffer (``sg_min_chunk`` above every payload size
    reproduces the pre-scatter/gather encoder, join included); the
    scatter/gather mode hands over the chunk plan with no join.  The
    ``improvement`` column is the PR's acceptance metric.
    """
    import time

    from ..cdr.encoder import SG_MIN_CHUNK, CDREncoder
    from ..cdr.marshal import get_marshaller
    from ..cdr.typecode import zc_octet_sequence_tc
    from ..core.sequences import ZCOctetSequence

    m = get_marshaller(zc_octet_sequence_tc())
    rows: List[dict] = []
    for size in sizes:
        payload = ZCOctetSequence.from_data(bytes(size))
        iters = max(1, (8 * MB) // size)

        def mb_per_s(sg_min: int, _p=payload, _n=iters, _size=size) -> float:
            blob_mode = sg_min > _size
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                for _ in range(_n):
                    enc = CDREncoder(sg_min_chunk=sg_min)
                    m.marshal(enc, _p)
                    if blob_mode:
                        enc.getvalue()  # the pre-chunking send joined
                    else:
                        enc.chunks()    # the gather send takes the plan
                best = min(best, time.perf_counter() - t0)
            return _size * _n / best / 1e6

        blob = mb_per_s(1 << 62)
        sg = mb_per_s(SG_MIN_CHUNK)
        rows.append({"size": size,
                     "blob_mb_per_s": round(blob, 1),
                     "sg_mb_per_s": round(sg, 1),
                     "improvement": round(sg / blob, 3)})
    return {"repeats": repeats, "sizes": rows,
            "min_improvement": min(r["improvement"] for r in rows)}


def _sendfile_pair():
    """(client TCPStream, server TCPStream, listener) on loopback."""
    import threading

    from ..transport.tcp import TCPTransport

    transport = TCPTransport()
    accepted: List = []
    ready = threading.Event()

    def on_accept(stream):
        accepted.append(stream)
        ready.set()

    listener = transport.listen("127.0.0.1", 0, on_accept)
    client = transport.connect(listener.endpoint)
    if not ready.wait(5.0):
        raise RuntimeError("sendfile bench server did not accept")
    return client, accepted[0], listener


def _discard(sock, n: int, _buf=bytearray(1 * MB)) -> int:
    """Consume up to ``n`` queued bytes as cheaply as the platform
    allows: Linux TCP ``MSG_TRUNC`` drops them in the kernel (no
    copy-out), so the receiver never bottlenecks the send path being
    measured; elsewhere fall back to an ordinary ``recv_into``."""
    import socket

    trunc = getattr(socket, "MSG_TRUNC", None)
    if trunc is not None and sys.platform == "linux":
        try:
            return len(sock.recv(n, trunc))
        except OSError:
            pass
    return sock.recv_into(memoryview(_buf)[:min(n, len(_buf))])


def _sendfile_run(client, server, fd, size: int, transfers: int,
                  repeats: int) -> float:
    """Best bytes/s over ``repeats`` timings of ``transfers``
    back-to-back ``send_file`` calls of ``size`` bytes each.

    One persistent drain thread serves every repeat (thread startup
    would otherwise dominate single-digit-millisecond transfers) and
    signals each repeat's boundary once its bytes are fully consumed.
    """
    import queue
    import threading
    import time

    per_repeat = size * transfers
    boundaries: "queue.Queue" = queue.Queue()

    def drain():
        sock = server._sock
        for _ in range(repeats):
            remaining = per_repeat
            while remaining:
                remaining -= _discard(sock, min(remaining, 4 * MB))
            boundaries.put(None)

    rx = threading.Thread(target=drain, daemon=True)
    rx.start()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(transfers):
            client.send_file(fd, 0, size)
        boundaries.get(timeout=120.0)
        best = min(best, time.perf_counter() - t0)
    rx.join()
    return per_repeat / best


def _sendfile_degrade_check() -> bool:
    """The copying fallback must still move bytes, byte-identically."""
    import os
    import tempfile

    with tempfile.NamedTemporaryFile() as tf:
        data = os.urandom(256 * KB)
        tf.write(data)
        tf.flush()
        client, server, listener = _sendfile_pair()
        try:
            import threading

            client.sendfile_enabled = False
            got = bytearray(len(data))

            def drain():
                server.recv_into(memoryview(got))

            rx = threading.Thread(target=drain, daemon=True)
            rx.start()
            used_kernel = client.send_file(tf.fileno(), 0, len(data))
            rx.join(timeout=30.0)
            return used_kernel is False and bytes(got) == data
        finally:
            client.close()
            server.close()
            listener.close()


def measure_sendfile(sizes=(1 * MB, 4 * MB, 16 * MB),
                     repeats: int = 5, transfers: int = 4) -> dict:
    """Disk-to-socket throughput: kernel sendfile vs copying fallback.

    Streams a file over a real TCP loopback pair twice per size: once
    through ``TCPStream.send_file``'s ``os.sendfile`` tier (the file
    bytes never enter user space on the send side) and once with the
    tier disabled, forcing the chunked ``os.pread`` + ``sendall``
    fallback — the pre-PR behaviour.  Each timing covers ``transfers``
    back-to-back sends and the receiver discards in the kernel
    (``MSG_TRUNC``), so the number isolates the send path.
    Best-of-``repeats`` each; ``speedup`` per row is the acceptance
    metric, ``speedup_at_max`` the headline at the largest size.

    Where the platform has no ``os.sendfile`` (or the kernel refuses
    it on the very first call) the probe *skips visibly*: it verifies
    the copying fallback still moves bytes byte-identically and
    records a ``{"skipped": true, ...}`` stanza the validator accepts.
    """
    import os
    import tempfile

    if not hasattr(os, "sendfile"):
        print("repro-bench: NOTICE: this platform has no os.sendfile; "
              "skipping the sendfile probe", file=sys.stderr)
        return {"repeats": 0, "skipped": True,
                "reason": "os.sendfile not available",
                "degrade_path_ok": _sendfile_degrade_check(),
                "sizes": []}

    # one pseudo-random block, tiled: content-independent timing with
    # cheap file creation even at the 64 MiB nightly sweep sizes
    block = os.urandom(1 * MB)
    rows: List[dict] = []
    with tempfile.NamedTemporaryFile() as tf:
        for _ in range(max(sizes) // len(block)):
            tf.write(block)
        tf.flush()
        fd = tf.fileno()

        # probe: does this kernel actually sendfile to a socket?
        import threading

        client, server, listener = _sendfile_pair()
        try:
            rx = threading.Thread(
                target=lambda: server.recv_exact(4096), daemon=True)
            rx.start()
            probe = client.send_file(fd, 0, 4096)
            rx.join(timeout=10.0)
            if probe is not True:
                print("repro-bench: NOTICE: kernel refused sendfile on "
                      "a TCP socket; skipping the sendfile probe",
                      file=sys.stderr)
                return {"repeats": 0, "skipped": True,
                        "reason": "kernel refused sendfile on TCP",
                        "degrade_path_ok": _sendfile_degrade_check(),
                        "sizes": []}
        finally:
            client.close()
            server.close()
            listener.close()

        for size in sizes:
            per_mode = {}
            for mode, enabled in (("sendfile", True), ("copy", False)):
                client, server, listener = _sendfile_pair()
                try:
                    client.sendfile_enabled = enabled
                    per_mode[mode] = _sendfile_run(
                        client, server, fd, size, transfers,
                        repeats) / 1e6
                finally:
                    client.close()
                    server.close()
                    listener.close()
            rows.append({
                "size": size,
                "sendfile_mb_per_s": round(per_mode["sendfile"], 1),
                "copy_mb_per_s": round(per_mode["copy"], 1),
                "speedup": round(per_mode["sendfile"] / per_mode["copy"],
                                 3)})
    return {"repeats": repeats, "sizes": rows,
            "speedup_at_max": rows[-1]["speedup"]}


def _shm_degrade_check() -> bool:
    """An arena-less shm connection must still pass control traffic."""
    import threading

    from ..transport.shm import ShmTransport

    # a directory no arena can be created in forces the handshake's
    # symmetric degrade on both ends
    transport = ShmTransport(directory="/nonexistent/repro-shm-degrade")
    accepted: List = []
    ready = threading.Event()

    def on_accept(stream):
        accepted.append(stream)
        ready.set()

    listener = transport.listen("127.0.0.1", 0, on_accept)
    client = None
    try:
        client = transport.connect(listener.endpoint)
        if not ready.wait(5.0):
            return False
        server = accepted[0]
        try:
            if client.deposit_channel is not None \
                    or server.deposit_channel is not None:
                return False
            client.send(b"degrade-probe")
            return server.recv_exact(13).tobytes() == b"degrade-probe"
        finally:
            server.close()
    finally:
        if client is not None:
            client.close()
        listener.close()


def measure_shm(size: int = 1 * MB, repeats: int = 5,
                transfers: int = 16) -> dict:
    """Deposit-path throughput: shm arena vs tcp loopback (schema 3).

    Times ``transfers`` back-to-back deposits of ``size`` bytes through
    a connected stream pair — the data plane alone, no GIOP control
    round-trip — so the number isolates what the arena buys.  The shm
    path is one copy into a mapped slot and the receiver lands
    zero-copy; the tcp-loopback path pays copy-to-kernel + copy-out
    plus per-chunk syscalls.  Best-of-``repeats``; the shm stream's own
    deposit/fallback counters are recorded so the document proves the
    arena (not the inline fallback) carried the bytes.

    On hosts without a usable shared-memory filesystem the probe
    *skips visibly* instead of erroring: it prints a notice, verifies
    the arena-less degrade path still passes traffic, and records a
    ``{"skipped": true, ...}`` stanza the schema validator accepts.
    """
    import os
    import tempfile
    import threading
    import time

    from ..core.buffers import BufferPool
    from ..core.direct_deposit import DepositDescriptor
    from ..transport.shm import ShmTransport, shm_available
    from ..transport.tcp import TCPTransport

    shm_dir = "/dev/shm" if os.path.isdir("/dev/shm") \
        else tempfile.gettempdir()
    if not shm_available(shm_dir):
        print(f"repro-bench: NOTICE: no usable shared-memory filesystem "
              f"(probed {shm_dir}); skipping the shm deposit probe",
              file=sys.stderr)
        return {"size": size, "repeats": 0, "transfers": 0,
                "skipped": True,
                "reason": f"no usable shared memory at {shm_dir}",
                "degrade_path_ok": _shm_degrade_check(),
                "schemes": {}}

    schemes: Dict[str, dict] = {}
    for scheme in ("shm", "tcp"):
        if scheme == "shm":
            # a long slot wait: exhaustion must block for a free slot,
            # never fall back, or the measurement stops being zero-copy
            transport = ShmTransport(slot_size=size, slot_wait=10.0)
        else:
            transport = TCPTransport()
        accepted: List = []
        ready = threading.Event()

        def on_accept(stream, _a=accepted, _r=ready):
            _a.append(stream)
            _r.set()

        listener = transport.listen("127.0.0.1", 0, on_accept)
        _, host, port = listener.endpoint
        client = transport.connect((scheme, host, port))
        if not ready.wait(5.0):
            raise RuntimeError("bench server did not accept")
        server = accepted[0]
        pool = BufferPool()
        payload = memoryview(bytes(size))
        desc = DepositDescriptor(deposit_id=1, size=size)
        best = float("inf")
        try:
            for _ in range(repeats):
                done = threading.Event()

                def drain(_s=server, _d=done):
                    for _ in range(transfers):
                        if scheme == "shm":
                            buf, _ = _s.recv_deposit(desc, pool)
                        else:
                            buf = pool.acquire(size)
                            _s.recv_into(buf.view()[:size])
                        buf.release()
                    _d.set()

                rx = threading.Thread(target=drain, daemon=True)
                rx.start()
                t0 = time.perf_counter()
                for _ in range(transfers):
                    if scheme == "shm":
                        client.send_deposit(payload)
                    else:
                        client.sendv([payload])
                if not done.wait(60.0):
                    raise RuntimeError("bench receiver stalled")
                best = min(best, time.perf_counter() - t0)
                rx.join()
        finally:
            client.close()
            server.close()
            listener.close()
        moved = transfers * size
        rec = {"seconds_best": round(best, 6),
               "bytes_per_s": round(moved / best, 1),
               "mbit_per_s": round(moved * 8 / best / 1e6, 3)}
        if scheme == "shm":
            rec["shm_deposits_total"] = (client.shm_deposits_sent
                                         + client.shm_references_sent)
            rec["shm_fallbacks_total"] = client.shm_fallbacks_sent
        schemes[scheme] = rec
    speedup = schemes["shm"]["bytes_per_s"] / schemes["tcp"]["bytes_per_s"]
    return {"size": size, "repeats": repeats, "transfers": transfers,
            "speedup": round(speedup, 3), "schemes": schemes}


# -- pub/sub fan-out (schema 7) ----------------------------------------------

def _pubsub_round(mode: str, subs: int, size: int, events: int) -> dict:
    """One fan-out measurement: a TopicHub publishing ``events``
    payloads of ``size`` bytes to ``subs`` subscribers whose callback
    ORBs listen on ``mode`` ("shm" = the single-copy shared-arena
    cohort, "tcp" = one deposit per subscriber link)."""
    import time

    from ..orb import ORB, ORBConfig
    from ..services import CountingSubscriber, TopicHubImpl

    page = 4096
    slot = max(page, (size + page - 1) // page * page)
    hub = TopicHubImpl(slot_size=slot, slot_count=16, slot_wait=5.0)
    orbs, impls = [], []
    try:
        for _ in range(subs):
            orb = ORB(ORBConfig(scheme=mode))
            orbs.append(orb)
            impl = CountingSubscriber()
            impls.append(impl)
            hub.subscribe("bench", orb.activate(impl))
        payload = bytes(size)
        want = events * subs
        t0 = time.perf_counter()
        delivered = 0
        for _ in range(events):
            delivered += hub.publish("bench", payload)
        # deliver is oneway: the publish loop returns as soon as the
        # records are on the wire — the clock stops when the last
        # subscriber has actually counted its event
        deadline = time.monotonic() + 60.0
        while sum(i.received for i in impls) < want:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"pubsub bench stalled: "
                    f"{sum(i.received for i in impls)}/{want} delivered")
            time.sleep(0.0005)
        elapsed = time.perf_counter() - t0
        if delivered != want:
            raise RuntimeError(
                f"pubsub bench lost deliveries: {delivered}/{want}")
        rec = {"seconds": round(elapsed, 6),
               "events_per_s": round(events / elapsed, 1),
               "delivered_bytes_per_s": round(want * size / elapsed, 1)}
        if mode == "shm":
            rec["fanout_posts"] = hub.fanout_posts
            rec["fanout_fallbacks"] = hub.fanout_fallbacks
            rec["shared_refs"] = sum(
                s["shm_shared_refs"]
                for s in hub.delivery_orb.connections_snapshot())
        return rec
    finally:
        hub.destroy()
        for orb in orbs:
            orb.shutdown()


def measure_pubsub(size: int = 1 * MB, events: int = 20,
                   subs_counts=(1, 2, 4, 8)) -> dict:
    """TopicHub fan-out throughput: shared-arena vs per-link (schema 7).

    For each subscriber count the same publish loop runs twice: once
    with every subscriber colocated on the shm cohort (one refcounted
    arena post per event, a 24-byte record per link) and once with
    tcp-only subscribers (one full deposit per link — copies scale with
    fan-out, the pre-hub behaviour).  ``speedup`` is the shm/tcp
    events-per-second ratio at each level; the shm stanza also records
    ``fanout_posts`` and ``shared_refs`` so the document *proves* the
    payload crossed once per event, not once per subscriber.

    Without a usable shared-memory filesystem the probe skips visibly,
    after verifying the per-link tcp path still delivers.
    """
    import os
    import tempfile

    from ..transport.shm import shm_available

    shm_dir = "/dev/shm" if os.path.isdir("/dev/shm") \
        else tempfile.gettempdir()
    if not shm_available(shm_dir):
        print(f"repro-bench: NOTICE: no usable shared-memory filesystem "
              f"(probed {shm_dir}); skipping the pubsub fan-out probe",
              file=sys.stderr)
        tcp = _pubsub_round("tcp", 2, min(size, 64 * KB), 2)
        return {"size": size, "events": 0, "skipped": True,
                "reason": f"no usable shared memory at {shm_dir}",
                "degrade_path_ok": tcp["events_per_s"] > 0,
                "levels": []}

    levels = []
    for subs in subs_counts:
        shm = _pubsub_round("shm", subs, size, events)
        tcp = _pubsub_round("tcp", subs, size, events)
        speedup = shm["events_per_s"] / tcp["events_per_s"] \
            if tcp["events_per_s"] else float("inf")
        levels.append({"subs": subs, "shm": shm, "tcp": tcp,
                       "speedup": round(speedup, 3)})
    return {"size": size, "events": events, "levels": levels,
            "speedup_at_max": levels[-1]["speedup"]}


def pubsub_smoke(subs: int = 4, size: int = 1 * MB,
                 events: int = 10) -> dict:
    """The CI fan-out gate: at ``subs`` colocated subscribers the
    shared-arena path must both (a) post each event into the arena
    exactly once — ``fanout_posts == events`` with one shared ref per
    subscriber link — and (b) beat the per-consumer tcp-deposit path
    on delivered events/s.  Returns ``{"ok": bool, ...}``; skips
    visibly where shared memory is unavailable."""
    import os
    import tempfile

    from ..transport.shm import shm_available

    shm_dir = "/dev/shm" if os.path.isdir("/dev/shm") \
        else tempfile.gettempdir()
    if not shm_available(shm_dir):
        return {"skipped": True,
                "reason": f"no usable shared memory at {shm_dir}"}
    shm = _pubsub_round("shm", subs, size, events)
    tcp = _pubsub_round("tcp", subs, size, events)
    single_copy = (shm["fanout_posts"] == events
                   and shm["shared_refs"] == events * subs)
    faster = shm["events_per_s"] > tcp["events_per_s"]
    return {"ok": single_copy and faster, "subs": subs, "size": size,
            "events": events, "single_copy": single_copy,
            "faster": faster,
            "shm_events_per_s": shm["events_per_s"],
            "tcp_events_per_s": tcp["events_per_s"],
            "fanout_posts": shm["fanout_posts"],
            "shared_refs": shm["shared_refs"]}


# -- connection scaling (schema 6) -------------------------------------------

#: an echo round-trip slower than this at the p99 counts as a degraded
#: mode in the cscale sweep (the "baseline fails the SLO" acceptance arm)
CSCALE_P99_SLO_S = 0.5


def _quantile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    return sorted_vals[min(len(sorted_vals) - 1,
                           int(q * len(sorted_vals)))]


def _nofile_headroom(need: int) -> Optional[str]:
    """Raise RLIMIT_NOFILE toward the hard limit; a reason string when
    even that leaves fewer than ``need`` descriptors (the caller skips
    that sweep level visibly instead of drowning in EMFILE)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < need:
        want = need if hard == resource.RLIM_INFINITY \
            else min(need, hard)
        try:
            resource.setrlimit(resource.RLIMIT_NOFILE, (want, hard))
        except (ValueError, OSError):
            pass
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < need:
        return (f"RLIMIT_NOFILE {soft} (hard {hard}) below the "
                f"~{need} descriptors this level needs")
    return None


def _rss_mb() -> float:
    """Current resident set in MiB (VmRSS; ru_maxrss high-water as the
    fallback where /proc is unavailable)."""
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    import resource
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _cscale_policy():
    from ..orb import InvocationPolicy
    return InvocationPolicy(timeout=120.0, max_retries=0, jitter=0.0)


def _cscale_pair(reactor_on: bool, inflight: int = 16):
    """(server ORB, client ORB, IIOP profile, echo signature) for one
    cscale mode.  Both ORBs live in this process; ``reactor_on``
    selects event-loop adoption on *both* sides versus the
    thread-per-connection baseline."""
    import time

    from ..orb import ORB, ORBConfig

    api = _pipe_api()

    class _Servant(api.BenchPipe_skel):
        def work(self, seconds):
            if seconds:
                time.sleep(seconds)
            return seconds

    server = ORB(ORBConfig(scheme="tcp", reactor=reactor_on,
                           server_workers=inflight))
    client = ORB(ORBConfig(scheme="tcp", reactor=reactor_on,
                           collocated_calls=False))
    try:
        ref = server.activate(_Servant())
        stub = client.string_to_object(server.object_to_string(ref))
        profile = client.select_profile(stub._ior)
        return server, client, profile, stub._signature("work")
    except BaseException:
        client.shutdown()
        server.shutdown()
        raise


def _cscale_proxy(client, endpoint, reactor):
    """A fresh single-connection proxy (never the ORB's shared one —
    the sweep needs C *distinct* sockets to one endpoint)."""
    from ..orb.connection import GIOPConn
    from ..orb.proxy import IIOPProxy

    transport = client.transports.get(endpoint[0])

    def connector() -> "GIOPConn":
        stream = transport.connect(
            endpoint, timeout=client.config.connect_timeout)
        return GIOPConn(stream, pool=client.pool,
                        zero_copy=client.config.zero_copy, orb=client)

    return IIOPProxy(connector, orb=client, reactor=reactor)


def _cscale_record(lat_lists: List[List[float]], wall: float,
                   expected: int, errors: List) -> dict:
    lats = sorted(x for lst in lat_lists for x in lst)
    completed = len(lats)
    p50 = _quantile(lats, 0.50)
    p99 = _quantile(lats, 0.99)
    rec = {"ok": not errors and completed == expected,
           "completed": completed, "expected": expected,
           "goodput_calls_per_s": round(completed / wall, 1)
           if wall > 0 else 0.0,
           "p50_s": round(p50, 6), "p99_s": round(p99, 6),
           "slo_ok": bool(completed) and p99 <= CSCALE_P99_SLO_S}
    if errors:
        rec["reason"] = (f"{len(errors)} calls failed "
                         f"(first: {errors[0]!r:.120})")
    elif completed < expected:
        rec["reason"] = (f"only {completed}/{expected} replies "
                         f"arrived before the join deadline")
    return rec


def _cscale_threaded(conns: int, calls_per_conn: int,
                     work_s: float) -> dict:
    """The baseline: C sockets, each with a sync driver thread and a
    demux reader thread client-side plus a reader thread server-side —
    ~3C threads total, the cost the reactor removes."""
    import threading
    import time

    policy = _cscale_policy()
    server, client, profile, sig = _cscale_pair(reactor_on=False)
    proxies = [_cscale_proxy(client, profile.endpoint, None)
               for _ in range(conns)]
    lat_lists: List[List[float]] = [[] for _ in range(conns)]
    errors: List = []
    start = threading.Event()
    warmed = threading.Semaphore(0)
    abort = False

    def drive(proxy, lats):
        # one untimed call dials the socket and warms the GIOP path,
        # so the timed window below measures steady-state concurrency,
        # not connection-establishment queuing
        try:
            proxy.invoke(profile.object_key, sig, [work_s],
                         policy=policy)
        except Exception as e:
            errors.append(e)
            warmed.release()
            return
        warmed.release()
        start.wait()
        if abort:
            return
        for _ in range(calls_per_conn):
            t0 = time.perf_counter()
            try:
                proxy.invoke(profile.object_key, sig, [work_s],
                             policy=policy)
            except Exception as e:
                errors.append(e)
                return
            lats.append(time.perf_counter() - t0)

    threads: List[threading.Thread] = []
    try:
        try:
            for proxy, lats in zip(proxies, lat_lists):
                t = threading.Thread(target=drive, args=(proxy, lats),
                                     daemon=True)
                t.start()
                threads.append(t)
        except (RuntimeError, MemoryError, OSError) as e:
            # the honest baseline failure mode at high C: the host
            # cannot stack that many driver threads
            abort = True
            start.set()
            return {"ok": False, "completed": 0,
                    "expected": conns * calls_per_conn,
                    "reason": (f"thread creation failed after "
                               f"{len(threads)} of {conns} "
                               f"connections: {e}")}
        deadline = time.monotonic() + 300.0
        for _ in threads:
            warmed.acquire(timeout=max(0.0,
                                       deadline - time.monotonic()))
        t0 = time.perf_counter()
        start.set()
        for t in threads:
            t.join(timeout=max(0.0, deadline - time.monotonic()))
        wall = time.perf_counter() - t0
    finally:
        for proxy in proxies:
            try:
                proxy.close(timeout=0.05)
            except Exception:
                pass
        client.shutdown()
        server.shutdown()
    return _cscale_record(lat_lists, wall, conns * calls_per_conn,
                          errors)


def _cscale_reactor(conns: int, calls_per_conn: int,
                    work_s: float) -> dict:
    """The reactor mode: C sockets adopted by the event loop on both
    sides, driven by C coroutines on one ``asyncio.run`` loop — no
    per-connection thread anywhere."""
    import asyncio
    import time

    policy = _cscale_policy()
    server, client, profile, sig = _cscale_pair(reactor_on=True)
    proxies = [_cscale_proxy(client, profile.endpoint, client.reactor)
               for _ in range(conns)]
    lat_lists: List[List[float]] = [[] for _ in range(conns)]
    errors: List = []

    async def warm(proxy):
        # untimed: dial + GIOP warmup, mirroring the threaded driver
        try:
            await proxy.invoke_async(profile.object_key, sig,
                                     [work_s], policy=policy)
        except Exception as e:
            errors.append(e)

    async def drive(proxy, lats):
        for _ in range(calls_per_conn):
            t0 = time.perf_counter()
            try:
                await proxy.invoke_async(profile.object_key, sig,
                                         [work_s], policy=policy)
            except Exception as e:
                errors.append(e)
                return
            lats.append(time.perf_counter() - t0)

    async def run_all():
        await asyncio.gather(*(warm(p) for p in proxies))
        t0 = time.perf_counter()
        await asyncio.gather(*(drive(p, lst)
                               for p, lst in zip(proxies, lat_lists)))
        return time.perf_counter() - t0

    try:
        wall = asyncio.run(run_all())
    finally:
        for proxy in proxies:
            try:
                proxy.close(timeout=0.05)
            except Exception:
                pass
        client.shutdown()
        server.shutdown()
    return _cscale_record(lat_lists, wall, conns * calls_per_conn,
                          errors)


def measure_cscale(conn_counts=(100, 1000), calls_per_conn: int = 5,
                   work_s: float = 0.0,
                   threaded_conn_cap: int = 2000) -> dict:
    """Concurrent-connection scaling: reactor vs thread-per-connection.

    For each level C the probe opens C distinct GIOP connections to an
    echo servant and drives ``calls_per_conn`` pipelined calls on each,
    twice: once with the threaded baseline (sync stubs; ~3C threads)
    and once with the reactor (async stubs; zero per-connection
    threads).  Each connection first makes one *untimed* warm-up call
    (dial + GIOP round trip), so the timed window measures
    steady-state concurrency rather than connection-establishment
    queuing.  ``goodput_calls_per_s`` is total completed calls over
    the wall time, p50/p99 the per-call round-trip quantiles, and
    ``speedup`` the reactor/threaded goodput ratio — the tentpole
    acceptance metric at 1k+ connections.

    Above ``threaded_conn_cap`` the baseline is recorded as not
    attempted (its ~3C threads would destabilise the host rather than
    produce a number); the reactor side still runs, which is itself
    the claim: it completes where the baseline cannot.  Levels the
    file-descriptor budget cannot cover (even after raising the soft
    RLIMIT_NOFILE to the hard limit) are skipped visibly per level.
    """
    levels: List[dict] = []
    for conns in conn_counts:
        reason = _nofile_headroom(2 * conns + 64)
        if reason:
            print(f"repro-bench: NOTICE: cscale@{conns}: {reason}; "
                  f"skipping this level", file=sys.stderr)
            levels.append({"conns": conns, "skipped": True,
                           "reason": reason})
            continue
        if conns <= threaded_conn_cap:
            threaded = _cscale_threaded(conns, calls_per_conn, work_s)
        else:
            threaded = {"ok": False, "completed": 0,
                        "expected": conns * calls_per_conn,
                        "reason": (f"not attempted: {conns} connections "
                                   f"need ~{3 * conns} threads, past the "
                                   f"{threaded_conn_cap}-connection "
                                   f"threaded cap")}
        reactor = _cscale_reactor(conns, calls_per_conn, work_s)
        speedup = None
        if threaded.get("ok") and reactor.get("ok"):
            denom = threaded["goodput_calls_per_s"]
            if denom:
                speedup = round(
                    reactor["goodput_calls_per_s"] / denom, 3)
        levels.append({"conns": conns, "threaded": threaded,
                       "reactor": reactor, "speedup": speedup})
    return {"calls_per_conn": calls_per_conn, "work_s": work_s,
            "p99_slo_s": CSCALE_P99_SLO_S, "levels": levels}


def cscale_smoke(conns: int = 500, calls_per_conn: int = 4,
                 rss_limit_mb: float = 512.0) -> dict:
    """The CI gate: ~``conns`` concurrent pipelined reactor clients,
    zero dropped replies, bounded RSS growth.  Returns a result dict
    with ``ok`` — `repro-bench --cscale-smoke N` prints it and exits
    nonzero on a violation."""
    reason = _nofile_headroom(2 * conns + 64)
    if reason:
        return {"ok": True, "skipped": True, "conns": conns,
                "reason": reason}
    rss_before = _rss_mb()
    rec = _cscale_reactor(conns, calls_per_conn, 0.0)
    rss_after = _rss_mb()
    growth = round(rss_after - rss_before, 1)
    return {"ok": bool(rec.get("ok")) and growth < rss_limit_mb,
            "conns": conns, "calls_per_conn": calls_per_conn,
            "completed": rec.get("completed"),
            "expected": rec.get("expected"),
            "dropped": rec.get("expected", 0) - rec.get("completed", 0),
            "goodput_calls_per_s": rec.get("goodput_calls_per_s"),
            "p50_s": rec.get("p50_s"), "p99_s": rec.get("p99_s"),
            "rss_before_mb": round(rss_before, 1),
            "rss_after_mb": round(rss_after, 1),
            "rss_growth_mb": growth,
            "rss_limit_mb": rss_limit_mb,
            **({"reason": rec["reason"]} if rec.get("reason") else {})}


def run_bench(max_size: int = 16 * MB, scheme: str = "loop",
              latency_size: int = 64 * KB, latency_calls: int = 50,
              pipeline_inflight: int = 8, pipeline_calls: int = 32,
              shm_size: int = 1 * MB, shm_repeats: int = 5,
              pubsub_size: int = 1 * MB, pubsub_events: int = 20,
              pubsub_subs=(1, 2, 4, 8),
              sgcdr_sizes=(64 * KB, 256 * KB, 1 * MB),
              sgcdr_repeats: int = 5,
              sendfile_sizes=(1 * MB, 4 * MB, 16 * MB),
              sendfile_repeats: int = 5,
              cscale_conns=(100, 1000), cscale_calls: int = 5,
              tag: str = "", registry: Optional[MetricsRegistry] = None
              ) -> dict:
    """The full trajectory document (see module docstring)."""
    sizes = default_sizes(hi=max_size)
    figures: Dict[str, Dict[str, List[dict]]] = {}
    for fig, curves in _FIGURES.items():
        figures[fig] = {}
        for label, (version, stack) in curves.items():
            series = run_sim_ttcp(version, stack=stack, sizes=sizes)
            figures[fig][label] = _series_rows(series)
            if registry is not None:
                registry.gauge("bench_saturation_mbit", figure=fig,
                               curve=label).set(series.saturation_mbit)
    latency = {
        version: _measure_latency(version, scheme, latency_size,
                                  latency_calls)
        for version in ("corba", "zc-corba")
    }
    pipelining = {
        sch: measure_pipelining(sch, inflight=pipeline_inflight,
                                calls=pipeline_calls)
        for sch in ("loop", "tcp")
    }
    if registry is not None:
        for sch, rec in pipelining.items():
            registry.gauge("bench_pipelining_speedup",
                           scheme=sch).set(rec["speedup"])
    shm = measure_shm(size=shm_size, repeats=shm_repeats)
    if registry is not None and not shm.get("skipped"):
        registry.gauge("bench_shm_speedup").set(shm["speedup"])
    pubsub = measure_pubsub(size=pubsub_size, events=pubsub_events,
                            subs_counts=pubsub_subs)
    if registry is not None and not pubsub.get("skipped"):
        registry.gauge("bench_pubsub_speedup_at_max").set(
            pubsub["speedup_at_max"])
    sgcdr = measure_sgcdr(sizes=sgcdr_sizes, repeats=sgcdr_repeats)
    if registry is not None:
        registry.gauge("bench_sgcdr_min_improvement").set(
            sgcdr["min_improvement"])
    sendfile = measure_sendfile(sizes=sendfile_sizes,
                                repeats=sendfile_repeats)
    if registry is not None and not sendfile.get("skipped"):
        registry.gauge("bench_sendfile_speedup").set(
            sendfile["speedup_at_max"])
    cscale = measure_cscale(conn_counts=cscale_conns,
                            calls_per_conn=cscale_calls)
    if registry is not None:
        for lv in cscale["levels"]:
            if lv.get("skipped"):
                continue
            for mode in ("threaded", "reactor"):
                if lv[mode].get("ok"):
                    registry.gauge("bench_cscale_goodput", mode=mode,
                                   conns=str(lv["conns"])).set(
                        lv[mode]["goodput_calls_per_s"])
    return {"schema": BENCH_SCHEMA_VERSION, "kind": "bench", "tag": tag,
            "figures": figures, "latency": latency,
            "pipelining": pipelining, "shm": shm, "pubsub": pubsub,
            "sgcdr": sgcdr, "sendfile": sendfile, "cscale": cscale}


def validate_bench(doc: dict) -> List[str]:
    """Schema problems in a parsed bench document (empty = valid)."""
    problems = []
    if doc.get("schema") != BENCH_SCHEMA_VERSION:
        problems.append(f"schema is {doc.get('schema')!r}, expected "
                        f"{BENCH_SCHEMA_VERSION}")
    if doc.get("kind") != "bench":
        problems.append(f"kind is {doc.get('kind')!r}, expected 'bench'")
    figures = doc.get("figures")
    if not isinstance(figures, dict):
        return problems + ["'figures' missing or not an object"]
    for fig in _FIGURES:
        curves = figures.get(fig)
        if not isinstance(curves, dict) or not curves:
            problems.append(f"figures.{fig}: missing or empty")
            continue
        for label, rows in curves.items():
            if not isinstance(rows, list) or not rows or any(
                    "size" not in r or "mbit_per_s" not in r for r in rows):
                problems.append(f"figures.{fig}.{label}: malformed points")
    latency = doc.get("latency")
    if not isinstance(latency, dict) or not latency:
        return problems + ["'latency' missing or empty"]
    for version, rec in latency.items():
        for key in ("size", "count", "p50", "p95", "p99"):
            if not isinstance(rec, dict) or key not in rec:
                problems.append(f"latency.{version}: missing {key!r}")
                break
    pipelining = doc.get("pipelining")
    if not isinstance(pipelining, dict) or not pipelining:
        return problems + ["'pipelining' missing or empty"]
    for sch, rec in pipelining.items():
        levels = rec.get("levels") if isinstance(rec, dict) else None
        if not isinstance(rec, dict) or "speedup" not in rec or \
                not isinstance(levels, list) or not levels or any(
                    "inflight" not in lv or "calls_per_s" not in lv
                    for lv in levels):
            problems.append(f"pipelining.{sch}: malformed")
    shm = doc.get("shm")
    if not isinstance(shm, dict):
        return problems + ["'shm' missing or malformed"]
    if shm.get("skipped"):
        # a host without shared memory: the skip must carry a reason
        # and proof the degrade path still passed traffic
        if not shm.get("reason"):
            problems.append("shm: skipped without a reason")
        if shm.get("degrade_path_ok") is not True:
            problems.append("shm: skipped but degrade path not verified")
    else:
        if "speedup" not in shm:
            return problems + ["'shm' missing or malformed"]
        schemes = shm.get("schemes")
        if not isinstance(schemes, dict):
            return problems + ["shm.schemes: missing"]
        for sch in ("shm", "tcp"):
            rec = schemes.get(sch)
            if not isinstance(rec, dict) or "bytes_per_s" not in rec:
                problems.append(f"shm.schemes.{sch}: malformed")
        shm_rec = schemes.get("shm")
        if isinstance(shm_rec, dict) and "shm_deposits_total" not in shm_rec:
            problems.append("shm.schemes.shm: missing shm_deposits_total")
    pubsub = doc.get("pubsub")
    if not isinstance(pubsub, dict):
        return problems + ["'pubsub' missing or malformed"]
    if pubsub.get("skipped"):
        if not pubsub.get("reason"):
            problems.append("pubsub: skipped without a reason")
        if pubsub.get("degrade_path_ok") is not True:
            problems.append("pubsub: skipped but degrade path not verified")
    else:
        levels = pubsub.get("levels")
        if "speedup_at_max" not in pubsub or \
                not isinstance(levels, list) or not levels:
            problems.append("'pubsub' missing or malformed")
        else:
            for lv in levels:
                if not isinstance(lv, dict) or "subs" not in lv \
                        or "speedup" not in lv or any(
                            not isinstance(lv.get(m), dict)
                            or "events_per_s" not in lv[m]
                            for m in ("shm", "tcp")):
                    problems.append(
                        f"pubsub.levels@{lv.get('subs', '?')}: malformed")
                elif "fanout_posts" not in lv["shm"] \
                        or "shared_refs" not in lv["shm"]:
                    problems.append(
                        f"pubsub.levels@{lv['subs']}: shm stanza missing "
                        "single-copy accounting")
    sgcdr = doc.get("sgcdr")
    if not isinstance(sgcdr, dict) or "min_improvement" not in sgcdr:
        return problems + ["'sgcdr' missing or malformed"]
    rows = sgcdr.get("sizes")
    if not isinstance(rows, list) or not rows or any(
            not isinstance(r, dict) or "size" not in r
            or "sg_mb_per_s" not in r or "blob_mb_per_s" not in r
            or "improvement" not in r for r in rows):
        problems.append("sgcdr.sizes: malformed rows")
    sendfile = doc.get("sendfile")
    if not isinstance(sendfile, dict):
        return problems + ["'sendfile' missing or malformed"]
    if sendfile.get("skipped"):
        # no os.sendfile (or the kernel refused it): the skip must
        # carry a reason and proof the copying fallback still works
        if not sendfile.get("reason"):
            problems.append("sendfile: skipped without a reason")
        if sendfile.get("degrade_path_ok") is not True:
            problems.append(
                "sendfile: skipped but degrade path not verified")
    else:
        sf_rows = sendfile.get("sizes")
        if "speedup_at_max" not in sendfile or \
                not isinstance(sf_rows, list) or not sf_rows or any(
                    not isinstance(r, dict) or "size" not in r
                    or "sendfile_mb_per_s" not in r
                    or "copy_mb_per_s" not in r
                    or "speedup" not in r for r in sf_rows):
            problems.append("sendfile.sizes: malformed rows")
    cscale = doc.get("cscale")
    if not isinstance(cscale, dict) or \
            not isinstance(cscale.get("levels"), list) \
            or not cscale["levels"]:
        return problems + ["'cscale' missing or malformed"]
    for lv in cscale["levels"]:
        if not isinstance(lv, dict) or "conns" not in lv:
            problems.append("cscale.levels: malformed row")
            continue
        if lv.get("skipped"):
            if not lv.get("reason"):
                problems.append(
                    f"cscale@{lv['conns']}: skipped without a reason")
            continue
        for mode in ("threaded", "reactor"):
            rec = lv.get(mode)
            if not isinstance(rec, dict) or "ok" not in rec:
                problems.append(f"cscale@{lv['conns']}.{mode}: malformed")
            elif rec["ok"] and any(
                    k not in rec for k in ("goodput_calls_per_s",
                                           "p50_s", "p99_s")):
                problems.append(
                    f"cscale@{lv['conns']}.{mode}: missing quantiles")
        if "speedup" not in lv:
            problems.append(f"cscale@{lv['conns']}: missing speedup")
    return problems


def _curve_rows(doc: dict, fig: str, label: str) -> Dict[int, float]:
    """size -> mbit_per_s for one figure curve (empty when absent)."""
    rows = (doc.get("figures") or {}).get(fig, {}).get(label) or []
    out = {}
    for r in rows:
        if isinstance(r, dict) and "size" in r and "mbit_per_s" in r:
            out[r["size"]] = r["mbit_per_s"]
    return out


def compare_bench(old: dict, new: dict,
                  tolerance: float = 0.75) -> List[dict]:
    """Per-metric regression rows for two bench documents.

    Gated series: the pipelining speedup per scheme, the shm deposit
    speedup, the pub/sub shm events/s and fan-out speedup at the
    largest subscriber count both documents swept, the fig6_right
    zc-corba throughput at 256 KiB and 1 MiB
    (or the largest size both documents share — quick runs sweep
    smaller), the sgcdr scatter/gather encode MB/s per size, the
    sendfile disk-to-socket MB/s per size both documents swept, and
    the cscale reactor goodput at the largest connection count both
    documents completed.  Each
    row is ``{"metric", "old", "new", "ratio", "ok"}``; a row fails
    (``ok=False``) when ``new < old * tolerance``.  Metrics present in
    only one document (probe skipped, different sweep) are reported
    with ``ratio=None`` and never fail — a gate must not punish a
    platform for honestly skipping a probe.
    """
    rows: List[dict] = []

    def add(metric: str, old_v, new_v) -> None:
        if not isinstance(old_v, (int, float)) \
                or not isinstance(new_v, (int, float)):
            rows.append({"metric": metric, "old": old_v, "new": new_v,
                         "ratio": None, "ok": True})
            return
        ratio = new_v / old_v if old_v else float("inf")
        rows.append({"metric": metric, "old": old_v, "new": new_v,
                     "ratio": round(ratio, 3), "ok": ratio >= tolerance})

    old_pipe = old.get("pipelining") or {}
    new_pipe = new.get("pipelining") or {}
    for sch in sorted(set(old_pipe) & set(new_pipe)):
        add(f"pipelining.{sch}.speedup",
            (old_pipe[sch] or {}).get("speedup"),
            (new_pipe[sch] or {}).get("speedup"))

    old_shm, new_shm = old.get("shm") or {}, new.get("shm") or {}
    if not old_shm.get("skipped") and not new_shm.get("skipped"):
        add("shm.speedup", old_shm.get("speedup"), new_shm.get("speedup"))

    # the pub/sub fan-out gate: shm events/s at the largest subscriber
    # count both documents swept (quick runs sweep fewer levels)
    def _ps_levels(doc: dict) -> Dict[int, dict]:
        ps = doc.get("pubsub") or {}
        if ps.get("skipped"):
            return {}
        return {lv["subs"]: lv for lv in ps.get("levels", [])
                if isinstance(lv, dict) and "subs" in lv}

    old_ps, new_ps = _ps_levels(old), _ps_levels(new)
    common_ps = sorted(set(old_ps) & set(new_ps))
    if common_ps:
        m = common_ps[-1]
        add(f"pubsub@{m}.shm_events_per_s",
            (old_ps[m].get("shm") or {}).get("events_per_s"),
            (new_ps[m].get("shm") or {}).get("events_per_s"))
        add(f"pubsub@{m}.speedup",
            old_ps[m].get("speedup"), new_ps[m].get("speedup"))

    for fig, label in _GATE_CURVES:
        o_rows, n_rows = _curve_rows(old, fig, label), \
            _curve_rows(new, fig, label)
        common = sorted(set(o_rows) & set(n_rows))
        if not common:
            continue
        targets = [s for s in _GATE_SIZES if s in common] or [common[-1]]
        for s in targets:
            # the documents store Mbit/s; the gate reports bytes/s
            add(f"{fig}.{label}@{s}.bytes_per_s",
                round(o_rows[s] * 1e6 / 8, 1),
                round(n_rows[s] * 1e6 / 8, 1))

    old_sg = {r["size"]: r for r in (old.get("sgcdr") or {}).get("sizes", [])
              if isinstance(r, dict) and "size" in r}
    new_sg = {r["size"]: r for r in (new.get("sgcdr") or {}).get("sizes", [])
              if isinstance(r, dict) and "size" in r}
    for s in sorted(set(old_sg) & set(new_sg)):
        add(f"sgcdr@{s}.sg_mb_per_s", old_sg[s].get("sg_mb_per_s"),
            new_sg[s].get("sg_mb_per_s"))

    old_sf, new_sf = old.get("sendfile") or {}, new.get("sendfile") or {}
    if not old_sf.get("skipped") and not new_sf.get("skipped"):
        o_rows = {r["size"]: r for r in old_sf.get("sizes", [])
                  if isinstance(r, dict) and "size" in r}
        n_rows = {r["size"]: r for r in new_sf.get("sizes", [])
                  if isinstance(r, dict) and "size" in r}
        for s in sorted(set(o_rows) & set(n_rows)):
            add(f"sendfile@{s}.sendfile_mb_per_s",
                o_rows[s].get("sendfile_mb_per_s"),
                n_rows[s].get("sendfile_mb_per_s"))

    def _cs_levels(doc: dict) -> Dict[int, dict]:
        return {lv["conns"]: lv
                for lv in (doc.get("cscale") or {}).get("levels", [])
                if isinstance(lv, dict) and "conns" in lv
                and not lv.get("skipped")}

    old_cs, new_cs = _cs_levels(old), _cs_levels(new)
    # gate at the LARGEST level both documents completed: that is the
    # scale claim, and the small levels' sub-second timed windows are
    # too noisy to gate on (like the figure curves' largest-common-size
    # fallback for quick runs)
    common_cs = [c for c in sorted(set(old_cs) & set(new_cs))
                 if (old_cs[c].get("reactor") or {}).get("ok")
                 and (new_cs[c].get("reactor") or {}).get("ok")]
    if common_cs:
        c = common_cs[-1]
        add(f"cscale@{c}.reactor_goodput_calls_per_s",
            old_cs[c]["reactor"].get("goodput_calls_per_s"),
            new_cs[c]["reactor"].get("goodput_calls_per_s"))
    return rows


def format_compare(rows: List[dict], tolerance: float) -> str:
    """The per-metric delta table the bench-regression CI job prints."""
    from ..obs.tables import format_table

    def num(v) -> str:
        return f"{v:,.1f}" if isinstance(v, (int, float)) else "-"

    table_rows = [[r["metric"], num(r["old"]), num(r["new"]),
                   "n/a" if r["ratio"] is None else f"{r['ratio']:.3f}",
                   "OK" if r["ok"] else "FAIL"]
                  for r in rows]
    return format_table(
        ["metric", "old", "new", "ratio", f"gate>={tolerance:g}"],
        table_rows, align="lrrrl")


def render_figure(doc: dict, figure: str = "fig5") -> str:
    """A Fig. 5/6-style text table from a bench document's curves."""
    curves = (doc.get("figures") or {}).get(figure)
    if not curves:
        return f"(no {figure} data in document)"
    labels = list(curves)
    sizes: List[int] = sorted({r["size"] for rows in curves.values()
                               for r in rows})
    by_label = {label: {r["size"]: r["mbit_per_s"] for r in rows}
                for label, rows in curves.items()}
    head = "size".rjust(10) + "".join(lb.rjust(22) for lb in labels)
    lines = [head, "-" * len(head)]
    for size in sizes:
        row = f"{size:>10}"
        for lb in labels:
            v = by_label[lb].get(size)
            row += f"{v:>18.1f} Mb/s" if v is not None else " " * 22
        lines.append(row)
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-bench",
        description="run the Fig. 5/6 benchmarks + a latency probe and "
                    "write one schema-validated trajectory document")
    ap.add_argument("--out", metavar="PATH", default="BENCH.json",
                    help="output document (default: %(default)s)")
    ap.add_argument("--tag", default="",
                    help="free-form label stored in the document "
                         "(e.g. the PR number)")
    ap.add_argument("--max-size", type=int, default=16 * MB,
                    help="largest TTCP block in the sim sweeps")
    ap.add_argument("--scheme", choices=("loop", "tcp", "shm"),
                    default="loop",
                    help="transport for the real-ORB latency probe")
    ap.add_argument("--latency-size", type=int, default=64 * KB)
    ap.add_argument("--latency-calls", type=int, default=50)
    ap.add_argument("--pipeline-inflight", type=int, default=8,
                    help="concurrent callers in the pipelining probe")
    ap.add_argument("--pipeline-calls", type=int, default=32)
    ap.add_argument("--shm-size", type=int, default=1 * MB,
                    help="payload bytes in the shm-vs-tcp deposit probe")
    ap.add_argument("--shm-repeats", type=int, default=5)
    ap.add_argument("--pubsub-size", type=int, default=1 * MB,
                    help="payload bytes in the pub/sub fan-out probe")
    ap.add_argument("--pubsub-events", type=int, default=20,
                    help="events published per fan-out level")
    ap.add_argument("--pubsub-subs", default="1,2,4,8",
                    help="comma-separated subscriber counts for the "
                         "fan-out sweep (default: %(default)s)")
    ap.add_argument("--pubsub-smoke", type=int, metavar="SUBS",
                    default=None,
                    help="run ONLY the pub/sub fan-out smoke gate at "
                         "SUBS colocated subscribers (one arena post "
                         "per event AND shm beats per-consumer tcp) "
                         "and exit")
    ap.add_argument("--sendfile-max-size", type=int, default=16 * MB,
                    help="largest file in the sendfile-vs-copy sweep "
                         "(the 1-4-16-64 MiB ladder is clipped to it)")
    ap.add_argument("--cscale-conns", default="100,1000",
                    help="comma-separated connection counts for the "
                         "reactor-vs-threaded scaling sweep "
                         "(default: %(default)s; nightly passes "
                         "100,1000,10000)")
    ap.add_argument("--cscale-calls", type=int, default=5,
                    help="pipelined calls per connection in the "
                         "cscale sweep")
    ap.add_argument("--cscale-smoke", type=int, metavar="CONNS",
                    default=None,
                    help="run ONLY the connection-scaling smoke gate "
                         "at CONNS reactor clients (zero dropped "
                         "replies, bounded RSS) and exit")
    ap.add_argument("--quick", action="store_true",
                    help="tiny sweep for CI smoke (16 KiB max, 10 calls)")
    ap.add_argument("--check", metavar="PATH", default=None,
                    help="validate an existing document instead of "
                         "running the benchmarks")
    ap.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                    default=None,
                    help="regression-gate NEW against OLD: print the "
                         "per-metric delta table, exit 1 when any gated "
                         "series fell below OLD * tolerance")
    ap.add_argument("--tolerance", type=float, default=0.75,
                    help="minimum new/old ratio --compare accepts "
                         "(default: %(default)s)")
    ap.add_argument("--render", metavar="PATH", default=None,
                    help="print the fig5 table of an existing document "
                         "instead of running the benchmarks")
    args = ap.parse_args(argv)

    if args.pubsub_smoke is not None:
        result = pubsub_smoke(subs=args.pubsub_smoke)
        print(json.dumps(result, indent=2))
        if result.get("skipped"):
            print(f"repro-bench: pubsub smoke SKIPPED: "
                  f"{result['reason']}", file=sys.stderr)
            return 0
        if not result["ok"]:
            print("repro-bench: pubsub smoke FAILED "
                  f"(single_copy={result['single_copy']}, "
                  f"faster={result['faster']}: shm "
                  f"{result['shm_events_per_s']:.1f} ev/s vs tcp "
                  f"{result['tcp_events_per_s']:.1f} ev/s)",
                  file=sys.stderr)
            return 1
        print(f"repro-bench: pubsub smoke OK: {result['fanout_posts']} "
              f"arena posts for {result['events']} events x "
              f"{result['subs']} subscribers "
              f"({result['shm_events_per_s']:.1f} ev/s shm vs "
              f"{result['tcp_events_per_s']:.1f} ev/s tcp)")
        return 0

    if args.cscale_smoke is not None:
        result = cscale_smoke(conns=args.cscale_smoke)
        print(json.dumps(result, indent=2))
        if result.get("skipped"):
            print(f"repro-bench: cscale smoke SKIPPED: "
                  f"{result['reason']}", file=sys.stderr)
            return 0
        if not result["ok"]:
            print("repro-bench: cscale smoke FAILED "
                  f"({result.get('dropped', '?')} dropped replies, "
                  f"RSS +{result.get('rss_growth_mb', '?')} MiB)",
                  file=sys.stderr)
            return 1
        print(f"repro-bench: cscale smoke OK: {result['completed']} "
              f"replies over {result['conns']} connections, "
              f"RSS +{result['rss_growth_mb']} MiB")
        return 0

    if args.compare:
        docs = []
        for path in args.compare:
            try:
                with open(path, encoding="utf-8") as fh:
                    docs.append(json.load(fh))
            except (OSError, json.JSONDecodeError) as e:
                print(f"repro-bench: cannot read {path}: {e}",
                      file=sys.stderr)
                return 1
        rows = compare_bench(docs[0], docs[1], tolerance=args.tolerance)
        if not rows:
            print("repro-bench: no comparable series in the two documents",
                  file=sys.stderr)
            return 1
        print(format_compare(rows, args.tolerance))
        failed = [r for r in rows if not r["ok"]]
        if failed:
            print(f"repro-bench: REGRESSION: {len(failed)} of {len(rows)} "
                  f"gated series below tolerance {args.tolerance:g}",
                  file=sys.stderr)
            return 1
        print(f"repro-bench: all {len(rows)} gated series within "
              f"tolerance {args.tolerance:g}")
        return 0

    if args.render:
        try:
            with open(args.render, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"repro-bench: cannot read {args.render}: {e}",
                  file=sys.stderr)
            return 1
        print(render_figure(doc, "fig5"))
        return 0

    if args.check:
        try:
            with open(args.check, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"repro-bench: cannot read {args.check}: {e}",
                  file=sys.stderr)
            return 1
        problems = validate_bench(doc)
        for p in problems:
            print(f"repro-bench: {p}", file=sys.stderr)
        if not problems:
            print(f"{args.check}: schema {doc['schema']}, OK")
        return 1 if problems else 0

    sgcdr_repeats = 5
    sendfile_repeats = 5
    try:
        cscale_conns = tuple(int(c) for c in
                             args.cscale_conns.split(",") if c.strip())
    except ValueError:
        print(f"repro-bench: bad --cscale-conns: {args.cscale_conns!r}",
              file=sys.stderr)
        return 1
    cscale_calls = args.cscale_calls
    try:
        pubsub_subs = tuple(int(c) for c in
                            args.pubsub_subs.split(",") if c.strip())
    except ValueError:
        print(f"repro-bench: bad --pubsub-subs: {args.pubsub_subs!r}",
              file=sys.stderr)
        return 1
    if args.quick:
        # the per-PR gate sweeps 100 and 500 connections; the full
        # 1k/10k levels are the nightly's job.  Six calls per conn
        # keeps the 500-level timed window over a second — that level
        # is the gate's anchor (largest common with the committed
        # baseline), so it needs the steadiest number of the sweep
        cscale_conns = tuple(c for c in (100, 500)
                             if c <= max(cscale_conns, default=0)) \
            or cscale_conns
        cscale_calls = min(cscale_calls, 6)
        args.max_size = min(args.max_size, 16 * KB)
        args.latency_size = min(args.latency_size, 16 * KB)
        args.latency_calls = min(args.latency_calls, 10)
        args.pipeline_calls = min(args.pipeline_calls, 16)
        args.shm_size = min(args.shm_size, 256 * KB)
        args.shm_repeats = min(args.shm_repeats, 3)
        # the subscriber ladder keeps its 8-way top even in quick mode
        # (the acceptance claim lives at 8 colocated subscribers, and
        # --compare anchors at the largest common level); only the
        # payload and event count shrink
        args.pubsub_size = min(args.pubsub_size, 256 * KB)
        args.pubsub_events = min(args.pubsub_events, 10)
        # the sgcdr sweep keeps its 64 KiB..1 MiB ladder even in quick
        # mode (it is encode-only and fast) so --compare always has the
        # same sizes on both sides; only the repeats shrink
        sgcdr_repeats = 3
        # the sendfile sweep keeps both its 1-4-16 MiB ladder (so the
        # acceptance size is always present) and its full repeat count:
        # each repeat is sub-second, and best-of-5 is what keeps the
        # speedup stable on noisy single-core runners
    sendfile_sizes = tuple(s for s in (1 * MB, 4 * MB, 16 * MB, 64 * MB)
                           if s <= max(args.sendfile_max_size, 1 * MB))

    doc = run_bench(max_size=args.max_size, scheme=args.scheme,
                    latency_size=args.latency_size,
                    latency_calls=args.latency_calls,
                    pipeline_inflight=args.pipeline_inflight,
                    pipeline_calls=args.pipeline_calls,
                    shm_size=args.shm_size, shm_repeats=args.shm_repeats,
                    pubsub_size=args.pubsub_size,
                    pubsub_events=args.pubsub_events,
                    pubsub_subs=pubsub_subs,
                    sgcdr_repeats=sgcdr_repeats,
                    sendfile_sizes=sendfile_sizes,
                    sendfile_repeats=sendfile_repeats,
                    cscale_conns=cscale_conns,
                    cscale_calls=cscale_calls,
                    tag=args.tag)
    problems = validate_bench(doc)
    if problems:  # a bug in this module, not in the caller's input
        for p in problems:
            print(f"repro-bench: internal: {p}", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    for version, rec in doc["latency"].items():
        print(f"{version}: {rec['count']} calls of {rec['size']} B  "
              f"p50={rec.get('p50', 0) * 1e3:.3f}ms  "
              f"p95={rec.get('p95', 0) * 1e3:.3f}ms  "
              f"p99={rec.get('p99', 0) * 1e3:.3f}ms")
    for sch, rec in doc["pipelining"].items():
        top = rec["levels"][-1]
        print(f"pipelining/{sch}: {top['inflight']} in flight "
              f"{top['calls_per_s']:.0f} calls/s "
              f"({rec['speedup']:.1f}x over serialized)")
    shm = doc["shm"]
    if shm.get("skipped"):
        print(f"shm: SKIPPED ({shm['reason']}; degrade path "
              f"{'ok' if shm.get('degrade_path_ok') else 'FAILED'})")
    else:
        shm_rec = shm["schemes"]["shm"]
        print(f"shm: {shm['size']} B deposit "
              f"{shm_rec['mbit_per_s']:.0f} Mbit/s "
              f"({shm['speedup']:.1f}x over tcp loopback, "
              f"{shm_rec['shm_deposits_total']} arena deposits, "
              f"{shm_rec['shm_fallbacks_total']} fallbacks)")
    pubsub = doc["pubsub"]
    if pubsub.get("skipped"):
        print(f"pubsub: SKIPPED ({pubsub['reason']}; degrade path "
              f"{'ok' if pubsub.get('degrade_path_ok') else 'FAILED'})")
    else:
        for lv in pubsub["levels"]:
            print(f"pubsub: {lv['subs']} subs "
                  f"{lv['shm']['events_per_s']:.0f} ev/s shm "
                  f"({lv['shm']['fanout_posts']} posts, "
                  f"{lv['shm']['shared_refs']} shared refs) vs "
                  f"{lv['tcp']['events_per_s']:.0f} ev/s tcp "
                  f"({lv['speedup']:.2f}x)")
    for row in doc["sgcdr"]["sizes"]:
        print(f"sgcdr: {row['size']} B encode "
              f"{row['sg_mb_per_s']:.0f} MB/s chunked vs "
              f"{row['blob_mb_per_s']:.0f} MB/s blob "
              f"({row['improvement']:.1f}x)")
    sendfile = doc["sendfile"]
    if sendfile.get("skipped"):
        print(f"sendfile: SKIPPED ({sendfile['reason']}; degrade path "
              f"{'ok' if sendfile.get('degrade_path_ok') else 'FAILED'})")
    else:
        for row in sendfile["sizes"]:
            print(f"sendfile: {row['size']} B disk-to-socket "
                  f"{row['sendfile_mb_per_s']:.0f} MB/s kernel vs "
                  f"{row['copy_mb_per_s']:.0f} MB/s copy "
                  f"({row['speedup']:.1f}x)")
    for lv in doc["cscale"]["levels"]:
        if lv.get("skipped"):
            print(f"cscale: {lv['conns']} conns SKIPPED "
                  f"({lv['reason']})")
            continue
        re_rec, th_rec = lv["reactor"], lv["threaded"]

        def _side(rec):
            if not rec.get("ok"):
                return f"FAILED ({rec.get('reason', 'unknown')})"
            return (f"{rec['goodput_calls_per_s']:.0f} calls/s "
                    f"p99={rec['p99_s'] * 1e3:.1f}ms")
        ratio = f"{lv['speedup']:.1f}x" if lv["speedup"] else "n/a"
        print(f"cscale: {lv['conns']} conns reactor {_side(re_rec)} "
              f"vs threaded {_side(th_rec)} ({ratio})")
    print(f"bench document written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
