"""Service-based transparent parallelization framework (§5.4, ref [9]).

The paper evaluates its ORB with "a service-based framework to support
transparent parallelization with CORBA": an application submits work
items, the framework farms them out to CORBA worker objects on the
cluster and collects results in order.

:class:`Farm` is that framework.  It is generic over the worker
interface — the caller supplies the stubs and a ``call(worker, item)``
function — so the transcoder (or any other bulk-data application) gets
parallelism without changing its object model, which is the paper's
"very short and intuitive development process" claim.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Generic, Iterable, List, Sequence,
                    TypeVar)

__all__ = ["Farm", "FarmStats", "FarmError"]

TItem = TypeVar("TItem")
TResult = TypeVar("TResult")


class FarmError(RuntimeError):
    """A worker failed and ``fail_fast`` is set."""


@dataclass
class FarmStats:
    items: int = 0
    elapsed_s: float = 0.0
    per_worker: Dict[str, int] = field(default_factory=dict)
    errors: int = 0

    @property
    def items_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.items / self.elapsed_s


class Farm(Generic[TItem, TResult]):
    """Work-pulling farm over a set of (CORBA) workers.

    One dispatcher thread per worker pulls the next unclaimed item and
    invokes ``call(worker, item)`` — a synchronous CORBA request in the
    intended use.  Results are returned in submission order.  With a
    single worker (or ``workers=[]``, which runs inline) the farm
    degrades to sequential processing, the baseline configuration of
    the application evaluation.
    """

    def __init__(self, workers: Sequence[Any],
                 call: Callable[[Any, TItem], TResult],
                 fail_fast: bool = True):
        self.workers = list(workers)
        self.call = call
        self.fail_fast = fail_fast
        self.stats = FarmStats()

    def process(self, items: Iterable[TItem]) -> List[TResult]:
        """Run every item through a worker; results in item order."""
        work = list(items)
        results: List[Any] = [None] * len(work)
        errors: List[BaseException] = []
        start = time.perf_counter()

        if not self.workers:
            for i, item in enumerate(work):
                results[i] = item
            self.stats = FarmStats(items=len(work),
                                   elapsed_s=time.perf_counter() - start)
            return results

        cursor = {"next": 0}
        lock = threading.Lock()
        per_worker: Dict[str, int] = {}

        def run(worker_idx: int) -> None:
            worker = self.workers[worker_idx]
            name = f"worker-{worker_idx}"
            while True:
                with lock:
                    if errors and self.fail_fast:
                        return
                    i = cursor["next"]
                    if i >= len(work):
                        return
                    cursor["next"] = i + 1
                try:
                    results[i] = self.call(worker, work[i])
                except BaseException as e:  # noqa: BLE001 - collected
                    with lock:
                        errors.append(e)
                    if self.fail_fast:
                        return
                else:
                    with lock:
                        per_worker[name] = per_worker.get(name, 0) + 1

        if len(self.workers) == 1:
            run(0)
        else:
            threads = [threading.Thread(target=run, args=(i,), daemon=True)
                       for i in range(len(self.workers))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        elapsed = time.perf_counter() - start
        self.stats = FarmStats(items=len(work), elapsed_s=elapsed,
                               per_worker=per_worker, errors=len(errors))
        if errors and self.fail_fast:
            raise FarmError(
                f"worker failed after {sum(per_worker.values())} items"
            ) from errors[0]
        return results
