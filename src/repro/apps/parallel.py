"""Data-parallel request helpers (the §1.2 "Data Parallel CORBA" trail).

The paper's introduction points at the OMG's Data Parallel CORBA
specification [14] that grew out of the PARDIS/Cobra line of work:
instead of wrapping work *items* (the farm), a data-parallel request
*partitions one large argument* across a group of member objects and
gathers the partial results.

:class:`ScatterGather` implements that pattern over plain object
references: a payload (bytes or a 1-D numpy array) is sliced into
near-equal, page-aligned-friendly parts, each part is sent to one
member via a caller-supplied invocation function (a zero-copy sequence
parameter in the intended use), and the partial results are gathered
back in member order — one logical invocation on a distributed object.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Union

import numpy as np

from ..core.buffers import PAGE_SIZE

__all__ = ["ScatterGather", "partition_bytes", "partition_array"]


def partition_bytes(data, parts: int,
                    align: int = PAGE_SIZE) -> List[memoryview]:
    """Slice a bytes-like payload into ``parts`` contiguous views.

    Cut points are rounded to ``align`` so every part but the last can
    be direct-deposited on page-aligned boundaries.  No copies — the
    views alias the input.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    view = memoryview(data)
    if view.format != "B" or view.ndim != 1:
        view = view.cast("B")
    n = view.nbytes
    base = n // parts
    cuts = [0]
    for i in range(1, parts):
        cut = i * base
        cut -= cut % align if n >= parts * align else 0
        cuts.append(max(cut, cuts[-1]))
    cuts.append(n)
    return [view[cuts[i]:cuts[i + 1]] for i in range(parts)]


def partition_array(arr: np.ndarray, parts: int) -> List[np.ndarray]:
    """Slice a 1-D numpy array into ``parts`` contiguous views."""
    if arr.ndim != 1:
        raise ValueError(f"need a 1-D array, got shape {arr.shape}")
    return [chunk for chunk in np.array_split(arr, parts)]


@dataclass
class ScatterGather:
    """One data-parallel invocation pattern over member objects.

    ``call(member, part)`` performs the per-member invocation (e.g.
    ``lambda m, p: m.process(ZCOctetSequence.from_data(p))``);
    ``combine`` folds the member results (default: list of partials in
    member order).
    """

    members: Sequence[Any]
    call: Callable[[Any, Any], Any]
    combine: Optional[Callable[[List[Any]], Any]] = None

    def invoke(self, payload: Union[bytes, bytearray, memoryview,
                                    np.ndarray]) -> Any:
        if not self.members:
            raise ValueError("ScatterGather needs at least one member")
        if isinstance(payload, np.ndarray):
            parts = partition_array(payload, len(self.members))
        else:
            parts = partition_bytes(payload, len(self.members))
        results: List[Any] = [None] * len(self.members)
        errors: List[BaseException] = []

        def run(i: int) -> None:
            try:
                results[i] = self.call(self.members[i], parts[i])
            except BaseException as e:  # noqa: BLE001 - re-raised below
                errors.append(e)

        if len(self.members) == 1:
            run(0)
        else:
            threads = [threading.Thread(target=run, args=(i,), daemon=True)
                       for i in range(len(self.members))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            raise errors[0]
        if self.combine is not None:
            return self.combine(results)
        return results
