"""``repro-top``: a live terminal dashboard over the telemetry plane.

Polls an ORB's ``/metrics`` endpoint (:meth:`ORB.enable_telemetry`),
parses the scrape with the strict exposition parser, and renders the
numbers an operator of the zero-copy ORB actually watches: invocation
throughput and latency quantiles, the deposit *tier mix* (how much of
the bulk data went over shm slots or kernel ``sendfile`` versus the
plain copy path), and arena/pool occupancy.  Rates come from the delta
between consecutive scrapes; latency quantiles are windowed the same
way (bucket deltas), so the display shows what is happening *now*, not
a lifetime average.

``repro-top --once URL`` prints a single snapshot (totals only — one
scrape has no rates) and exits; the default mode redraws every
``--interval`` seconds until interrupted.
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import quantile_from_buckets
from ..obs.promexport import (ExpositionError, Sample, parse_exposition,
                              samples_by_name)
from ..obs.tables import format_table

__all__ = ["main", "Snapshot", "render", "fetch_snapshot"]

#: the deposit tiers shown in the mix table: (row label, counter name)
TIERS = (("shm slots", "shm_deposits"),
         ("sendfile", "sendfile_sends"),
         ("shm fallback", "shm_fallbacks"),
         ("sendfile fallback", "sendfile_fallbacks"))


class Snapshot:
    """One parsed scrape, with the lookups the dashboard needs."""

    def __init__(self, samples: List[Sample], when: float):
        self.when = when
        self._by_name = samples_by_name(samples)

    def total(self, name: str, **labels: str) -> Optional[float]:
        """Sum of every sample of ``name`` whose labels include
        ``labels`` (series absent entirely -> None, not 0)."""
        rows = self._by_name.get(name)
        if rows is None:
            return None
        want = labels.items()
        vals = [s.value for s in rows
                if all(s.labels_dict.get(k) == v for k, v in want)]
        return sum(vals) if vals else None

    def label_values(self, name: str, label: str) -> List[str]:
        rows = self._by_name.get(name, [])
        return sorted({s.labels_dict[label] for s in rows
                       if label in s.labels_dict})

    def histogram(self, name: str) -> Tuple[List[float], List[int]]:
        """Merged ``(bounds, counts)`` for ``quantile_from_buckets``:
        cumulative bucket samples summed across label sets (e.g. per
        operation), then de-cumulated; +Inf count last."""
        by_le: Dict[float, float] = {}
        for s in self._by_name.get(f"{name}_bucket", []):
            le = float(s.labels_dict.get("le", "inf"))
            by_le[le] = by_le.get(le, 0.0) + s.value
        if not by_le:
            return [], []
        bounds = sorted(b for b in by_le if b != float("inf"))
        cumulative = [by_le[b] for b in bounds] + \
            [by_le.get(float("inf"), 0.0)]
        counts, prev = [], 0.0
        for c in cumulative:
            counts.append(int(c - prev))
            prev = c
        return bounds, counts


def fetch_snapshot(url: str, timeout: float = 5.0) -> Snapshot:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        text = resp.read().decode("utf-8")
    return Snapshot(parse_exposition(text), time.monotonic())


def _fmt(v: Optional[float], unit: str = "", per_s: bool = False) -> str:
    if v is None:
        return "-"
    suffix = f"{unit}/s" if per_s else unit
    if unit == "B":
        for scale, tag in ((1 << 30, "GiB"), (1 << 20, "MiB"),
                           (1 << 10, "KiB")):
            if abs(v) >= scale:
                return f"{v / scale:.1f} {tag}{'/s' if per_s else ''}"
        return f"{v:.0f} B{'/s' if per_s else ''}"
    tail = "" if not suffix else ("/s" if suffix == "/s"
                                  else f" {suffix}")
    if v == int(v) and not per_s:
        return f"{int(v)}{tail}"
    return f"{v:.1f}{tail}"


def _rate(cur: Snapshot, prev: Optional[Snapshot],
          name: str, **labels: str) -> Optional[float]:
    """Per-second delta of a (monotonic) series between two scrapes."""
    if prev is None:
        return None
    now_v, old_v = cur.total(name, **labels), prev.total(name, **labels)
    if now_v is None or old_v is None:
        return None
    dt = cur.when - prev.when
    return (now_v - old_v) / dt if dt > 0 else None


def _quantiles(cur: Snapshot, prev: Optional[Snapshot],
               name: str) -> List[Tuple[str, Optional[float]]]:
    """p50/p95/p99 of ``name`` — windowed between scrapes when a
    previous one exists, lifetime otherwise."""
    bounds, counts = cur.histogram(name)
    if not bounds:
        return []
    if prev is not None:
        p_bounds, p_counts = prev.histogram(name)
        if p_bounds == bounds:
            counts = [c - p for c, p in zip(counts, p_counts)]
            if any(c < 0 for c in counts) or not any(counts):
                counts = cur.histogram(name)[1]  # reset or idle window
    return [(f"p{int(q * 100)}", quantile_from_buckets(bounds, counts, q))
            for q in (0.5, 0.95, 0.99)]


def render(cur: Snapshot, prev: Optional[Snapshot] = None) -> str:
    """The dashboard text for one scrape (rates need ``prev``)."""
    out: List[str] = []
    uptime = cur.total("process_uptime_seconds")
    rss = cur.total("process_resident_memory_bytes")
    conns = cur.total("orb_connections")
    out.append(
        f"repro-top  up {_fmt(uptime, 's')}  rss {_fmt(rss, 'B')}  "
        f"threads {_fmt(cur.total('process_threads'))}  "
        f"conns {_fmt(conns)}")

    # a client ORB meters invocations_total / invocation_seconds; a
    # pure server only has the server_* equivalents — show whichever
    # side this endpoint is
    calls_series = "invocations_total" \
        if cur.total("invocations_total") is not None \
        else "server_requests_total"
    calls_label = "invocations" if calls_series == "invocations_total" \
        else "requests served"
    rows = [[calls_label, _fmt(cur.total(calls_series)),
             _fmt(_rate(cur, prev, calls_series), per_s=True)],
            ["messages sent", _fmt(cur.total("messages_sent")),
             _fmt(_rate(cur, prev, "messages_sent"), per_s=True)],
            ["bytes sent", _fmt(cur.total("bytes_sent"), "B"),
             _fmt(_rate(cur, prev, "bytes_sent"), "B", per_s=True)],
            ["bytes received", _fmt(cur.total("bytes_received"), "B"),
             _fmt(_rate(cur, prev, "bytes_received"), "B", per_s=True)],
            ["deposit bytes sent",
             _fmt(cur.total("deposit_bytes_sent"), "B"),
             _fmt(_rate(cur, prev, "deposit_bytes_sent"), "B",
                  per_s=True)],
            ["deposit bytes received",
             _fmt(cur.total("deposit_bytes_received"), "B"),
             _fmt(_rate(cur, prev, "deposit_bytes_received"), "B",
                  per_s=True)]]
    out.append("")
    out.append(format_table(["throughput", "total", "rate"], rows))

    deposits = cur.total("deposits_sent")
    tier_rows = []
    for label, series in TIERS:
        v = cur.total(series)
        share = (f"{100 * v / deposits:.0f}%"
                 if v is not None and deposits else "-")
        tier_rows.append([label, _fmt(v), share,
                          _fmt(_rate(cur, prev, series), per_s=True)])
    tier_rows.append(["deposits (all tiers)", _fmt(deposits), "",
                      _fmt(_rate(cur, prev, "deposits_sent"), per_s=True)])
    out.append("")
    out.append(format_table(["deposit tier mix", "total", "share", "rate"],
                            tier_rows))

    occ_rows = []
    for direction in cur.label_values("arena_slots_total", "dir"):
        total = cur.total("arena_slots_total", dir=direction)
        free = cur.total("arena_slots_free", dir=direction)
        used = None if total is None or free is None else total - free
        occ_rows.append([f"arena slots [{direction}]",
                         f"{_fmt(used)}/{_fmt(total)} used"])
    occ_rows.append(["pool cached",
                     f"{_fmt(cur.total('pool_cached_bytes'), 'B')} in "
                     f"{_fmt(cur.total('pool_cached_buffers'))} buffers"])
    occ_rows.append(["pool hit/miss/reclaim",
                     f"{_fmt(cur.total('pool_hits'))}/"
                     f"{_fmt(cur.total('pool_misses'))}/"
                     f"{_fmt(cur.total('pool_reclaims'))}"])
    wq = cur.total("server_worker_queue")
    if wq is not None:
        occ_rows.append(["worker inflight/queued",
                         f"{_fmt(cur.total('server_worker_inflight'))}/"
                         f"{_fmt(wq)}"])
    out.append("")
    out.append(format_table(["buffers", "occupancy"], occ_rows,
                            align="ll"))

    lat_series = "invocation_seconds"
    quants = _quantiles(cur, prev, lat_series)
    if not quants:
        lat_series = "server_handle_seconds"
        quants = _quantiles(cur, prev, lat_series)
    if quants:
        window = "window" if prev is not None else "lifetime"
        line = "  ".join(
            f"{tag} {'-' if v is None else f'{v * 1e3:.3f}ms'}"
            for tag, v in quants)
        out.append("")
        name = "invocation" if lat_series == "invocation_seconds" \
            else "server handle"
        out.append(f"{name} latency ({window}): {line}")

    loop_tasks = cur.total("loop_tasks")
    if loop_tasks is not None:
        shards = cur.label_values("loop_tasks", "shard")
        lag = _quantiles(cur, prev, "loop_lag_seconds")
        window = "window" if prev is not None else "lifetime"
        lag_txt = "  ".join(
            f"{tag} {'-' if v is None else f'{v * 1e3:.3f}ms'}"
            for tag, v in lag) if lag else "-"
        out.append("")
        out.append(
            f"reactor: {len(shards) or 1} shard(s)  "
            f"{_fmt(loop_tasks)} loop tasks  "
            f"lag ({window}): {lag_txt}")

    recorded = cur.total("flightrec_recorded_total")
    if recorded is not None:
        out.append(
            f"flight recorder: {_fmt(recorded)} recorded, "
            f"{_fmt(cur.total('flightrec_slow_sampled'))} slow trees, "
            f"{_fmt(cur.total('flightrec_detail_dropped'))} "
            f"detail-dropped")
    return "\n".join(out)


def _normalize(url: str) -> str:
    if "://" not in url:
        url = f"http://{url}"
    return url if url.endswith("/metrics") \
        else url.rstrip("/") + "/metrics"


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-top",
        description="live dashboard over an ORB telemetry endpoint")
    ap.add_argument("url", help="telemetry endpoint, e.g. "
                                "127.0.0.1:9095 (path defaults to "
                                "/metrics)")
    ap.add_argument("--interval", type=float, default=2.0,
                    help="seconds between scrapes (default: %(default)s)")
    ap.add_argument("--once", action="store_true",
                    help="print one snapshot and exit")
    ap.add_argument("--timeout", type=float, default=5.0,
                    help="HTTP timeout per scrape (default: %(default)s)")
    args = ap.parse_args(argv)
    url = _normalize(args.url)

    prev: Optional[Snapshot] = None
    try:
        while True:
            try:
                cur = fetch_snapshot(url, timeout=args.timeout)
            except (urllib.error.URLError, OSError, ExpositionError) as e:
                print(f"repro-top: scrape of {url} failed: {e}",
                      file=sys.stderr)
                return 1
            text = render(cur, prev)
            if args.once:
                print(text)
                return 0
            # full-screen redraw; plain ANSI, no curses dependency
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            prev = cur
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
