"""TTCP — the paper's throughput benchmark (§5.1), in all four versions.

The original TTCP measures end-to-end throughput from a transmitter to
a receiver.  The paper extends it with CORBA variants; we implement the
same matrix twice:

* **Simulated mode** (:func:`run_sim_ttcp`) drives the calibrated
  testbed model of :mod:`repro.simnet` and reports the modelled MBit/s
  for the paper's hardware — this regenerates Figures 5 and 6.
* **Real mode** (:func:`run_real_ttcp`) moves actual bytes through the
  real ORB over loopback or TCP sockets and reports wall-clock MBit/s.
  Absolute numbers reflect the Python interpreter, not a Pentium II;
  the *ordering* (zero-copy ORB beats copying ORB for large blocks)
  still holds and is asserted in the benchmark suite.

Versions (``--version``):

``raw``       the classic C TTCP: plain socket writes.
``zc-raw``    raw transfers over the zero-copy socket stack [10]
              (simulated mode only — real sockets have no such stack).
``corba``     TTCP with the BSD socket calls replaced by a CORBA
              request carrying a ``sequence<octet>`` parameter (§5.1).
``zc-corba``  the same with ``sequence<ZC_Octet>`` — the optimized ORB.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core import OctetSequence, ZCOctetSequence
from ..idl import compile_idl
from ..orb import ORB, ORBConfig
from ..simnet import (GIGABIT_ETHERNET, PENTIUM_II_400, LinkProfile,
                      MachineProfile, OrbCostConfig, StackConfig,
                      TransferReport, measure_corba_request, measure_stream,
                      standard_stack, zero_copy_stack)

__all__ = [
    "TTCPPoint", "TTCPSeries", "default_sizes",
    "run_sim_ttcp", "run_real_ttcp", "TTCP_IDL", "main",
]

KB = 1024
MB = 1024 * 1024

#: the TTCP service contract used by the CORBA versions
TTCP_IDL = """
interface TTCP {
    unsigned long send(in sequence<octet> data);
    unsigned long send_zc(in sequence<zc_octet> data);
};
"""

_api = None


def _ttcp_api():
    global _api
    if _api is None:
        _api = compile_idl(TTCP_IDL, module_name="_repro_ttcp_idl")
    return _api


@dataclass(frozen=True)
class TTCPPoint:
    """One measurement: a transfer of ``size`` bytes."""

    size: int
    mbit_per_s: float
    elapsed_ns: int
    sender_util: float = 0.0
    receiver_util: float = 0.0


@dataclass
class TTCPSeries:
    """One curve of a Fig. 5/6-style chart."""

    label: str
    points: List[TTCPPoint] = field(default_factory=list)

    def at(self, size: int) -> TTCPPoint:
        for p in self.points:
            if p.size == size:
                return p
        raise KeyError(f"series {self.label!r} has no point at {size}")

    @property
    def saturation_mbit(self) -> float:
        """Throughput at the largest measured size."""
        return self.points[-1].mbit_per_s

    def rows(self) -> List[tuple]:
        return [(p.size, round(p.mbit_per_s, 1)) for p in self.points]


def default_sizes(lo: int = 4 * KB, hi: int = 16 * MB) -> List[int]:
    """The paper's sweep: 4 KByte to 16 MByte (power-of-two ladder in
    4 KiB-aligned buffers)."""
    sizes = []
    size = lo
    while size <= hi:
        sizes.append(size)
        size *= 2
    return sizes


def _stack_for(name: str, **kw) -> StackConfig:
    if name in ("standard", "std"):
        return standard_stack(**kw)
    if name in ("zero-copy", "zc"):
        return zero_copy_stack(**kw)
    raise ValueError(f"unknown stack {name!r} (use 'standard'/'zero-copy')")


def run_sim_ttcp(version: str, stack: str = "standard",
                 sizes: Optional[Sequence[int]] = None,
                 profile: MachineProfile = PENTIUM_II_400,
                 link: LinkProfile = GIGABIT_ETHERNET,
                 orb_cfg: Optional[OrbCostConfig] = None,
                 app_touch: bool = False) -> TTCPSeries:
    """One TTCP curve on the simulated testbed."""
    sizes = list(sizes) if sizes is not None else default_sizes()
    if version == "zc-raw":
        version, stack = "raw", "zero-copy"
    stack_cfg = _stack_for(stack, app_touch=app_touch)
    label = f"{version}/{stack_cfg.kind.value}"
    series = TTCPSeries(label=label)
    for size in sizes:
        if version == "raw":
            rep: TransferReport = measure_stream(profile, link, size,
                                                 stack_cfg)
        elif version in ("corba", "zc-corba"):
            cfg = orb_cfg or OrbCostConfig(zero_copy=(version == "zc-corba"))
            rep = measure_corba_request(profile, link, size, stack_cfg, cfg)
        else:
            raise ValueError(f"unknown TTCP version {version!r}")
        series.points.append(TTCPPoint(
            size=size, mbit_per_s=rep.mbit_per_s, elapsed_ns=rep.elapsed_ns,
            sender_util=rep.sender_util, receiver_util=rep.receiver_util))
    return series


# ---------------------------------------------------------------------------
# real mode
# ---------------------------------------------------------------------------

class _TTCPServant:
    """Receiver process of the CORBA TTCP versions."""

    def __new__(cls):
        api = _ttcp_api()

        class Impl(api.TTCP_skel):
            def __init__(self):
                self.received = 0

            def send(self, data):
                self.received += len(data)
                return len(data)

            def send_zc(self, data):
                self.received += len(data)
                return len(data)

        return Impl()


def _real_corba_point(stub, size: int, zero_copy: bool,
                      repeats: int) -> TTCPPoint:
    payload_bytes = bytes(size)
    best = None
    for _ in range(repeats):
        if zero_copy:
            payload = ZCOctetSequence.from_data(payload_bytes)
        else:
            payload = OctetSequence(payload_bytes)
        t0 = time.perf_counter_ns()
        got = stub.send_zc(payload) if zero_copy else stub.send(payload)
        elapsed = time.perf_counter_ns() - t0
        if got != size:
            raise RuntimeError(f"TTCP length mismatch: {got} != {size}")
        best = elapsed if best is None else min(best, elapsed)
    return TTCPPoint(size=size, elapsed_ns=best,
                     mbit_per_s=size * 8 * 1e3 / best)


def run_real_ttcp(version: str, sizes: Optional[Sequence[int]] = None,
                  scheme: str = "loop", repeats: int = 3,
                  registry=None, collector=None) -> TTCPSeries:
    """One TTCP curve through the real ORB (wall-clock time).

    With ``registry`` (a :class:`repro.obs.MetricsRegistry`), both ORBs
    run the built-in :class:`~repro.obs.TracingInterceptor` and fold
    every request's stage breakdown into that shared registry — the
    live counterpart of the §5.2 overhead model, dumpable via
    ``--metrics-dump``.  With ``collector`` (a
    :class:`repro.obs.SpanCollector`), both ORBs additionally run
    distributed tracing: every request becomes a client+server span
    pair in one trace, dumpable via ``--span-dump`` and renderable
    with ``repro-metrics tree``.
    """
    sizes = list(sizes) if sizes is not None else default_sizes(hi=4 * MB)
    if version not in ("corba", "zc-corba"):
        raise ValueError(
            f"real mode supports 'corba'/'zc-corba', not {version!r}")
    zero_copy = version == "zc-corba"
    _ttcp_api()
    server = ORB(ORBConfig(scheme=scheme))
    client = ORB(ORBConfig(scheme=scheme, collocated_calls=False))
    if registry is not None or collector is not None:
        distributed = collector is not None
        client.enable_tracing(registry=registry, distributed=distributed,
                              collector=collector)
        server.enable_tracing(registry=registry, distributed=distributed,
                              collector=collector)
    try:
        servant = _TTCPServant()
        ref = server.activate(servant)
        stub = client.string_to_object(server.object_to_string(ref))
        series = TTCPSeries(label=f"real-{version}/{scheme}")
        for size in sizes:
            series.points.append(
                _real_corba_point(stub, size, zero_copy, repeats))
        return series
    finally:
        client.shutdown()
        server.shutdown()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def format_table(series_list: List[TTCPSeries]) -> str:
    """Fig. 5/6-style text table: one row per size, one column per curve."""
    sizes = [p.size for p in series_list[0].points]
    head = "size".rjust(10) + "".join(
        s.label.rjust(22) for s in series_list)
    lines = [head, "-" * len(head)]
    for i, size in enumerate(sizes):
        row = f"{size:>10}"
        for s in series_list:
            row += f"{s.points[i].mbit_per_s:>18.1f} Mb/s"
        lines.append(row)
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="repro-ttcp",
        description="TTCP benchmark (paper §5.1): simulated or real mode")
    ap.add_argument("--mode", choices=("sim", "real"), default="sim")
    ap.add_argument("--versions", default="raw,corba,zc-corba",
                    help="comma list: raw, corba, zc-corba")
    ap.add_argument("--stack", choices=("standard", "zero-copy"),
                    default="standard", help="(sim mode) TCP stack model")
    ap.add_argument("--scheme", choices=("loop", "tcp", "shm"),
                    default="loop", help="(real mode) transport")
    ap.add_argument("--max-size", type=int, default=16 * MB)
    ap.add_argument("--metrics-dump", metavar="PATH", default=None,
                    help="write a repro.obs metrics dump; in real mode "
                         "this enables per-request stage tracing")
    ap.add_argument("--metrics-format", choices=("json", "text"),
                    default="json")
    ap.add_argument("--span-dump", metavar="PATH", default=None,
                    help="(real mode) write a span dump (schema v2) of "
                         "every traced request; render it with "
                         "'repro-metrics tree PATH'")
    args = ap.parse_args(argv)
    sizes = default_sizes(hi=args.max_size)
    registry = None
    if args.metrics_dump:
        from ..obs import MetricsRegistry
        registry = MetricsRegistry()
    collector = None
    if args.span_dump:
        if args.mode != "real":
            ap.error("--span-dump requires --mode real")
        from ..obs import SpanCollector
        collector = SpanCollector(keep=8192)
    out = []
    for version in args.versions.split(","):
        version = version.strip()
        if args.mode == "sim":
            out.append(run_sim_ttcp(version, stack=args.stack, sizes=sizes))
        else:
            out.append(run_real_ttcp(version, sizes=sizes,
                                     scheme=args.scheme,
                                     registry=registry,
                                     collector=collector))
    print(format_table(out))
    if collector is not None:
        from ..obs import dump_spans
        dump_spans(collector, args.span_dump, mode=args.mode,
                   versions=args.versions)
        print(f"spans written to {args.span_dump}")
    if registry is not None:
        from ..obs import dump_metrics
        for series in out:
            for p in series.points:
                registry.gauge("ttcp_mbit_per_s", series=series.label,
                               size=str(p.size)).set(p.mbit_per_s)
        dump_metrics(registry, args.metrics_dump,
                     fmt=args.metrics_format, mode=args.mode,
                     versions=args.versions)
        print(f"metrics written to {args.metrics_dump}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
