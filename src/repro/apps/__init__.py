"""Applications: the TTCP benchmark tool (§5.1) and the service-based
parallelization framework with the MPEG transcoder demo (§5.4)."""

from .framework import Farm, FarmError, FarmStats
from .ttcp import (TTCP_IDL, TTCPPoint, TTCPSeries, default_sizes,
                   format_table, run_real_ttcp, run_sim_ttcp)

__all__ = [
    "Farm", "FarmStats", "FarmError",
    "TTCPPoint", "TTCPSeries", "default_sizes", "format_table",
    "run_sim_ttcp", "run_real_ttcp", "TTCP_IDL",
]
