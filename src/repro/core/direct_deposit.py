"""Direct-deposit protocol objects: decoupled control- and data transfer.

§3.2: "we introduce a decoupling of synchronization and data transfers
entirely within the IIOP communication system of the ORB".  A request
carrying zero-copy sequences is split:

* the **control message** is the ordinary GIOP request; each zero-copy
  parameter is replaced on the wire by a :class:`DepositDescriptor`
  (id, size, alignment) carried in the message so the receiver learns
  how much space to prepare — "a GIOPRequest header is generated which
  contains the size of the data block that is needed by the receiver
  to correctly receive the GIOPRequest message" (§4.4);
* each **data message** is the raw payload, written to the transport's
  data path after the control message and landed by the receiver
  directly in a page-aligned buffer acquired from the pool (§4.5).

The classes here are transport-agnostic; :mod:`repro.orb.connection`
drives them against a concrete transport.
"""

from __future__ import annotations

import itertools
import struct
import threading
from dataclasses import dataclass
from typing import Optional

from .buffers import (PAGE_SIZE, BufferPool, FileBackedBuffer, ZCBuffer,
                      default_pool)

__all__ = [
    "DepositDescriptor",
    "DepositRegistry",
    "DepositReceiver",
    "DepositError",
    "DEPOSIT_MAGIC",
]

#: marks a deposit descriptor on the wire (also usable as a GIOP
#: service-context tag); 'ZC' + protocol version 1
DEPOSIT_MAGIC = 0x5A43_0001

_DESC = struct.Struct("<IQIHH")  # magic, size, deposit_id, alignment_log2, flags


class DepositError(RuntimeError):
    """Violation of the deposit protocol (unknown id, size mismatch...)."""


@dataclass(frozen=True)
class DepositDescriptor:
    """Wire-visible shape of one pending data transfer."""

    deposit_id: int
    size: int
    alignment: int = PAGE_SIZE
    flags: int = 0

    ENCODED_SIZE = _DESC.size

    def encode(self) -> bytes:
        if self.alignment <= 0 or self.alignment & (self.alignment - 1):
            raise DepositError(f"alignment must be a power of two: {self.alignment}")
        return _DESC.pack(DEPOSIT_MAGIC, self.size, self.deposit_id,
                          self.alignment.bit_length() - 1, self.flags)

    @classmethod
    def decode(cls, data) -> "DepositDescriptor":
        buf = bytes(data)
        if len(buf) < _DESC.size:
            raise DepositError(
                f"short deposit descriptor: {len(buf)} < {_DESC.size}")
        magic, size, dep_id, align_log2, flags = _DESC.unpack_from(buf)
        if magic != DEPOSIT_MAGIC:
            raise DepositError(f"bad deposit magic 0x{magic:08x}")
        return cls(deposit_id=dep_id, size=size,
                   alignment=1 << align_log2, flags=flags)


class DepositRegistry:
    """Sender side: zero-copy payloads awaiting transmission.

    The marshaler (``TCSeqZCOctet``) never copies the payload; it
    registers the live memoryview here and emits only the descriptor
    into the control message.  After the control message is written,
    the connection drains the registry onto the data path in
    registration order.
    """

    def __init__(self):
        self._ids = itertools.count(1)
        self._pending: dict[int, memoryview] = {}
        self._order: list[int] = []
        self._lock = threading.Lock()

    def register(self, payload, alignment: int = PAGE_SIZE,
                 flags: int = 0) -> DepositDescriptor:
        """Register a pending payload: a memoryview (or bytes-like), or
        a :class:`FileBackedBuffer` — the latter is kept as-is so the
        connection can route it through the kernel ``sendfile`` tier
        instead of a mapped view."""
        if isinstance(payload, FileBackedBuffer):
            with self._lock:
                dep_id = next(self._ids)
                self._pending[dep_id] = payload
                self._order.append(dep_id)
            return DepositDescriptor(deposit_id=dep_id, size=payload.nbytes,
                                     alignment=alignment, flags=flags)
        view = memoryview(payload)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        with self._lock:
            dep_id = next(self._ids)
            self._pending[dep_id] = view
            self._order.append(dep_id)
        return DepositDescriptor(deposit_id=dep_id, size=view.nbytes,
                                 alignment=alignment, flags=flags)

    def drain(self) -> list[tuple[int, memoryview]]:
        """All pending payloads in registration order; clears the registry."""
        with self._lock:
            out = [(i, self._pending.pop(i)) for i in self._order]
            self._order.clear()
            return out

    def pop(self, deposit_id: int) -> memoryview:
        with self._lock:
            try:
                view = self._pending.pop(deposit_id)
            except KeyError:
                raise DepositError(f"unknown deposit id {deposit_id}") from None
            self._order.remove(deposit_id)
            return view

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)


class DepositReceiver:
    """Receiver side: prepares aligned landing buffers for deposits.

    On seeing a descriptor in a control message the connection calls
    :meth:`prepare`; the returned :class:`ZCBuffer` is the *final*
    destination — the transport reads the payload straight into it
    (``readinto`` on real sockets, view hand-off on loopback), after
    which :meth:`complete` hands the buffer to demarshaling.
    """

    def __init__(self, pool: Optional[BufferPool] = None, channel=None):
        self.pool = pool or default_pool()
        #: optional deposit channel (e.g. ``ShmStream``): when present,
        #: landing buffers come from :meth:`land` — the channel maps a
        #: shared-memory slot (or reads the inline fallback) — instead
        #: of being pool-acquired at prepare time
        self.channel = channel
        self._prepared: dict[int,
                             tuple[DepositDescriptor,
                                   Optional[ZCBuffer]]] = {}
        self._order: list[int] = []
        self.deposits_received = 0
        self.bytes_deposited = 0
        self.deposits_aborted = 0
        #: channel-mode accounting: slot-mapped vs inline-fallback landings
        self.shm_landed = 0
        self.shm_fallbacks = 0

    def prepare(self, desc: DepositDescriptor) -> Optional[ZCBuffer]:
        if desc.deposit_id in self._prepared:
            raise DepositError(f"duplicate deposit id {desc.deposit_id}")
        if self.channel is not None:
            # the landing buffer is chosen per deposit record at land()
            # time; there is nothing to allocate yet
            self._prepared[desc.deposit_id] = (desc, None)
            self._order.append(desc.deposit_id)
            return None
        buf = self.pool.acquire(max(desc.size, 1))
        buf.set_length(desc.size)
        if desc.alignment > 1 and buf.address % desc.alignment != 0:
            # pool buffers are page-aligned; anything stricter is a
            # protocol error rather than a silent copy
            buf.release()
            raise DepositError(
                f"cannot satisfy alignment {desc.alignment} for deposit "
                f"{desc.deposit_id}")
        self._prepared[desc.deposit_id] = (desc, buf)
        self._order.append(desc.deposit_id)
        return buf

    def land(self, desc: DepositDescriptor) -> ZCBuffer:
        """Channel mode: receive one prepared deposit through the
        channel (slot-mapped buffer or inline fallback read)."""
        if self.channel is None:
            raise DepositError("land() requires a deposit channel")
        prepared = self._prepared.get(desc.deposit_id)
        if prepared is None or prepared[1] is not None:
            raise DepositError(
                f"deposit {desc.deposit_id} not awaiting landing")
        buf, via_arena = self.channel.recv_deposit(desc, self.pool)
        self._prepared[desc.deposit_id] = (desc, buf)
        if via_arena:
            self.shm_landed += 1
        else:
            self.shm_fallbacks += 1
        return buf

    def pending_in_order(self) -> list[tuple[DepositDescriptor,
                                             Optional[ZCBuffer]]]:
        """Prepared deposits in control-message order (= data-path order)."""
        return [self._prepared[i] for i in self._order]

    def complete(self, deposit_id: int) -> ZCBuffer:
        try:
            desc, buf = self._prepared[deposit_id]
        except KeyError:
            raise DepositError(f"deposit {deposit_id} was not prepared") from None
        if buf is None:
            raise DepositError(f"deposit {deposit_id} completed before "
                               f"landing")
        del self._prepared[deposit_id]
        self._order.remove(deposit_id)
        self.deposits_received += 1
        self.bytes_deposited += desc.size
        return buf

    @property
    def outstanding(self) -> int:
        """Prepared deposits whose buffers have not been handed off."""
        return len(self._prepared)

    def abort(self) -> int:
        """Release all prepared buffers (connection failure path).

        A payload interrupted mid-landing must return its page-aligned
        buffer to the pool before the sender's retry re-registers the
        transfer; the count of released buffers is returned so callers
        can account for the discarded landings.
        """
        released = 0
        for _, buf in self._prepared.values():
            if buf is not None and not buf.released:
                buf.release()
                released += 1
        self._prepared.clear()
        self._order.clear()
        self.deposits_aborted += released
        return released
