"""The paper's contribution: zero-copy data handling for the ORB.

Page-aligned buffers and pools (§4.3's extended ``SequenceTmpl<>``
storage), the isomorphic ``sequence<octet>`` / ``sequence<ZC_Octet>``
datatypes, and the direct-deposit protocol that separates control- and
data transfers (§3.2, §4.4-4.5).
"""

from .buffers import (PAGE_SIZE, BufferError, BufferPool, MappedBuffer,
                      ZCBuffer, default_pool)
from .direct_deposit import (DEPOSIT_MAGIC, DepositDescriptor, DepositError,
                             DepositReceiver, DepositRegistry)
from .sequences import OctetSequence, ZCOctetSequence, as_octets

__all__ = [
    "PAGE_SIZE", "ZCBuffer", "MappedBuffer", "BufferPool", "BufferError",
    "default_pool",
    "OctetSequence", "ZCOctetSequence", "as_octets",
    "DepositDescriptor", "DepositRegistry", "DepositReceiver",
    "DepositError", "DEPOSIT_MAGIC",
]
