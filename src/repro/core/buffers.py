"""Page-aligned buffer management for zero-copy transfers.

§4.3: the ``SequenceTmpl<>`` extension adds "two new pointers, one to a
reserved memory block, another to a page aligned area in this buffer
and an integer value for the effective buffer size".  §4.5: the
direct-deposit receiver "allocates an appropriately sized and aligned
buffer" that packet payloads are landed on.

This module provides that machinery for Python: :class:`ZCBuffer` is a
page-aligned region with true address alignment (verified through the
underlying numpy array's data pointer), and :class:`BufferPool` keeps
freed buffers on per-size-class free lists so steady-state transfers
allocate nothing ("the buffers are allocated and managed by the
application or by the stub and skeleton code", §6).
"""

from __future__ import annotations

import mmap
import os
import threading
import weakref
from typing import Callable, Optional

import numpy as np

__all__ = ["PAGE_SIZE", "ZCBuffer", "MappedBuffer", "FileBackedBuffer",
           "BufferPool", "BufferError", "default_pool"]

PAGE_SIZE = 4096


class BufferError(RuntimeError):
    """Misuse of a zero-copy buffer (double release, use after free)."""


class ZCBuffer:
    """A page-aligned, fixed-capacity memory region.

    The region is carved out of a numpy byte array over-allocated by
    one page; the view starts at the first page boundary, so
    ``address % PAGE_SIZE == 0`` genuinely holds — the property the
    speculative-defragmentation receiver needs to land packet payloads
    by page remapping instead of copying.

    ``capacity`` is the usable aligned size; ``length`` is the live
    payload size (≤ capacity).  The payload is exposed as a writable
    :class:`memoryview` so every consumer shares the same storage.
    """

    __slots__ = ("_base", "_view", "capacity", "_length", "_pool",
                 "_released", "_release_lock")

    def __init__(self, capacity: int, pool: Optional["BufferPool"] = None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._base = np.empty(capacity + PAGE_SIZE, dtype=np.uint8)
        offset = (-self._base.ctypes.data) % PAGE_SIZE
        self._view = memoryview(self._base)[offset:offset + capacity]
        self._length = capacity
        self._pool = pool
        self._released = False
        #: serializes the released check-and-set: without it, two
        #: threads racing release() could both pass _check_live and
        #: reclaim the buffer twice — putting one free-list entry under
        #: two owners once re-acquired
        self._release_lock = threading.Lock()

    # -- geometry -----------------------------------------------------------
    @property
    def address(self) -> int:
        """The (real) start address of the aligned region."""
        self._check_live()
        return self._base.ctypes.data + ((-self._base.ctypes.data) % PAGE_SIZE)

    @property
    def is_page_aligned(self) -> bool:
        return self.address % PAGE_SIZE == 0

    # -- payload ------------------------------------------------------------
    @property
    def length(self) -> int:
        return self._length

    def set_length(self, n: int) -> None:
        """Set the live payload size (the sequence's ``length()`` method)."""
        self._check_live()
        if not 0 <= n <= self.capacity:
            raise ValueError(f"length {n} outside [0, {self.capacity}]")
        self._length = n

    def view(self) -> memoryview:
        """Writable view of the live payload — no copy."""
        self._check_live()
        return self._view[: self._length]

    def full_view(self) -> memoryview:
        """Writable view of the whole aligned capacity."""
        self._check_live()
        return self._view

    def fill_from(self, data) -> None:
        """Copy ``data`` in (the *one* permitted producer-side touch)."""
        self._check_live()
        src = memoryview(data)
        if src.nbytes > self.capacity:
            raise ValueError(
                f"data of {src.nbytes} bytes exceeds capacity {self.capacity}")
        self._view[: src.nbytes] = src.cast("B")
        self._length = src.nbytes

    def tobytes(self) -> bytes:
        return self.view().tobytes()

    # -- lifecycle ------------------------------------------------------------
    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Return the buffer to its pool (or just mark it dead).

        Atomic: concurrent double release raises :class:`BufferError`
        in the loser instead of racing the reclaim."""
        with self._release_lock:
            self._check_live()
            self._released = True
        if self._pool is not None:
            self._pool._reclaim(self)

    def _revive(self) -> None:
        self._released = False
        self._length = self.capacity

    def _check_live(self) -> None:
        if self._released:
            raise BufferError("use of a released ZCBuffer")

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        state = "released" if self._released else f"len={self._length}"
        return f"<ZCBuffer cap={self.capacity} {state} @0x{id(self):x}>"


class MappedBuffer(ZCBuffer):
    """A :class:`ZCBuffer` aliasing externally mapped memory.

    Backs the shared-memory deposit path: the buffer does not own (or
    allocate) its storage — it wraps a writable view of an arena slot
    that some other mapping object keeps alive.  ``address`` is the
    caller-supplied real address of that view, so the alignment checks
    of the deposit receiver keep working.

    ``on_release`` runs exactly once, on the first of an explicit
    :meth:`release` or garbage collection — arena slots are returned
    even when the application drops a landed sequence without releasing
    it (the common case for received payloads).
    """

    __slots__ = ("_address", "_finalizer", "__weakref__")

    def __init__(self, view, address: int,
                 on_release: Optional[Callable[[], None]] = None):
        mv = memoryview(view)
        if mv.format != "B" or mv.ndim != 1:
            mv = mv.cast("B")
        if mv.nbytes <= 0:
            raise ValueError(f"mapped view must be non-empty, got {mv.nbytes}")
        if mv.readonly:
            raise ValueError("mapped view must be writable")
        self.capacity = mv.nbytes
        self._base = None
        self._view = mv
        self._length = mv.nbytes
        self._pool = None
        self._released = False
        self._release_lock = threading.Lock()
        self._address = address
        self._finalizer = (weakref.finalize(self, on_release)
                           if on_release is not None else None)

    @property
    def address(self) -> int:
        self._check_live()
        return self._address

    def release(self) -> None:
        with self._release_lock:
            self._check_live()
            self._released = True
            # drop the exported view so the underlying mapping can close
            self._view = None
        if self._finalizer is not None:
            self._finalizer()  # runs on_release once; detaches from GC


class FileBackedBuffer(ZCBuffer):
    """A read-only :class:`ZCBuffer` whose payload lives in an open file.

    Wraps ``(fd, offset, count)`` — the three values ``os.sendfile``
    needs — so a disk-resident payload can be *registered* for direct
    deposit without ever being read into user space.  The TCP transport
    sends it with the kernel zero-copy path; transports without
    ``send_file`` (and the inline/copy fallbacks) call :meth:`view`,
    which lazily maps the file range and hands out a zero-copy
    ``memoryview`` of the page cache.

    With ``close_fd=True`` (or via :meth:`open`) the buffer owns the
    descriptor: a ``weakref.finalize`` closes it on the first of an
    explicit :meth:`release` or garbage collection, so descriptors are
    never leaked even when the application drops the buffer unreleased
    — the same guarantee :class:`MappedBuffer` gives arena slots.
    """

    __slots__ = ("fd", "offset", "_mmap", "_finalizer", "__weakref__")

    def __init__(self, fd: int, offset: int = 0,
                 count: Optional[int] = None, *, close_fd: bool = False):
        if count is None:
            count = max(os.fstat(fd).st_size - offset, 0)
        if offset < 0 or count < 0:
            raise ValueError(
                f"file range must be non-negative, got ({offset}, {count})")
        self.fd = fd
        self.offset = offset
        self.capacity = count
        self._length = count
        self._pool = None
        self._released = False
        self._release_lock = threading.Lock()
        self._base = None
        self._view = None
        self._mmap = None
        self._finalizer = (weakref.finalize(self, os.close, fd)
                           if close_fd else None)

    @classmethod
    def open(cls, path, offset: int = 0,
             count: Optional[int] = None) -> "FileBackedBuffer":
        """Open ``path`` read-only and wrap the given range, owning the
        descriptor (closed on release or garbage collection)."""
        fd = os.open(os.fspath(path), os.O_RDONLY)
        try:
            return cls(fd, offset, count, close_fd=True)
        except BaseException:
            os.close(fd)
            raise

    @property
    def nbytes(self) -> int:
        """Payload size (memoryview-compatible spelling of ``length``)."""
        return self._length

    @property
    def address(self) -> int:
        # a file payload has no user-space address until mapped; this
        # buffer only ever appears on the *send* side, where alignment
        # is never checked
        self._check_live()
        return 0

    def view(self) -> memoryview:
        """Read-only view of the file range, mapped on first use.

        The mapping starts at the allocation-granularity boundary at or
        below ``offset`` (``mmap`` requires it) and the returned view is
        sliced to the exact payload range.
        """
        self._check_live()
        if self._length == 0:
            return memoryview(b"")
        if self._view is None:
            start = self.offset - (self.offset % mmap.ALLOCATIONGRANULARITY)
            delta = self.offset - start
            self._mmap = mmap.mmap(self.fd, self._length + delta,
                                   offset=start, access=mmap.ACCESS_READ)
            self._view = memoryview(self._mmap)[delta:delta + self._length]
        return self._view

    def full_view(self) -> memoryview:
        return self.view()

    def fill_from(self, data) -> None:
        raise BufferError("FileBackedBuffer is read-only")

    def release(self) -> None:
        with self._release_lock:
            self._check_live()
            self._released = True
            view, self._view = self._view, None
            mapping, self._mmap = self._mmap, None
        if view is not None:
            view.release()
        if mapping is not None:
            mapping.close()
        if self._finalizer is not None:
            self._finalizer()  # closes the owned fd once; detaches from GC

    def __repr__(self) -> str:
        state = "released" if self._released else f"len={self._length}"
        return (f"<FileBackedBuffer fd={self.fd} off={self.offset} "
                f"{state}>")


def _size_class(nbytes: int) -> int:
    """Round up to a whole number of pages, then to a power-of-two page
    count, so freed buffers are reusable across similar request sizes."""
    pages = max(1, -(-nbytes // PAGE_SIZE))
    return PAGE_SIZE * (1 << (pages - 1).bit_length())


class BufferPool:
    """Free lists of :class:`ZCBuffer` keyed by size class.

    Thread-safe; the receiver side of the ORB allocates deposit targets
    here on every direct-deposit request, so a warm pool removes the
    per-request allocation cost §2.1 identifies.

    Concurrency contract (audited for the pipelining ORB, where server
    workers and client readers lease/release in parallel):

    * every mutation of the free lists and counters happens under
      ``self._lock``; ``acquire`` revives and sizes the buffer while
      still holding it, so a concurrent ``acquire`` can never hand out
      the same free-list entry twice;
    * each live buffer has exactly one owner, who alone may call
      ``release()``; release is atomic per buffer and a double release
      raises :class:`BufferError` (from the buffer's own check-and-set
      or, failing that, the free-list identity check in ``_reclaim``);
    * the *contents* of a live buffer are not locked — single-owner
      access is the zero-copy deal, exactly as with a malloc'd region.
    """

    def __init__(self, max_cached_bytes: int = 256 * 1024 * 1024):
        self._free: dict[int, list[ZCBuffer]] = {}
        #: identities of the buffers currently on a free list — gives
        #: _reclaim an O(1) double-release check instead of scanning
        #: the (possibly long) free list per release
        self._free_ids: set[int] = set()
        self._lock = threading.Lock()
        self.max_cached_bytes = max_cached_bytes
        self.cached_bytes = 0
        self.hits = 0
        self.misses = 0
        self.reclaims = 0

    def acquire(self, nbytes: int) -> ZCBuffer:
        """Get a page-aligned buffer with capacity >= ``nbytes``."""
        if nbytes <= 0:
            raise ValueError(f"nbytes must be positive, got {nbytes}")
        cls = _size_class(nbytes)
        with self._lock:
            free = self._free.get(cls)
            if free:
                buf = free.pop()
                self._free_ids.discard(id(buf))
                self.cached_bytes -= buf.capacity
                self.hits += 1
                buf._revive()
                buf.set_length(nbytes)
                return buf
            self.misses += 1
        buf = ZCBuffer(cls, pool=self)
        buf.set_length(nbytes)
        return buf

    def _reclaim(self, buf: ZCBuffer) -> None:
        with self._lock:
            cls = buf.capacity
            if id(buf) in self._free_ids:
                raise BufferError("double release of a pooled ZCBuffer")
            if self.cached_bytes + cls <= self.max_cached_bytes:
                self._free.setdefault(cls, []).append(buf)
                self._free_ids.add(id(buf))
                self.cached_bytes += cls
                self.reclaims += 1
            # else: drop the buffer; GC frees the storage

    @property
    def cached_count(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._free.values())

    def stats(self) -> dict:
        """One consistent snapshot of the pool's counters (all fields
        copied under the lock, so a scrape never sees a torn
        cached_bytes/cached_count pair mid-release)."""
        with self._lock:
            return {
                "cached_bytes": self.cached_bytes,
                "cached_count": sum(len(v) for v in self._free.values()),
                "max_cached_bytes": self.max_cached_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "reclaims": self.reclaims,
            }

    def clear(self) -> None:
        with self._lock:
            self._free.clear()
            self._free_ids.clear()
            self.cached_bytes = 0


_default_pool: Optional[BufferPool] = None
_default_pool_lock = threading.Lock()


def default_pool() -> BufferPool:
    """The process-wide pool used when no explicit pool is supplied."""
    global _default_pool
    with _default_pool_lock:
        if _default_pool is None:
            _default_pool = BufferPool()
        return _default_pool
