"""The octet-stream datatypes: standard and zero-copy sequences.

§4.1 picks ``sequence<octet>`` as the zero-copy candidate: an octet
undergoes no marshaling, and CORBA's stream semantics allow items to be
"accessed directly via a pointer to a memory buffer with variable
size".  §4.3 introduces ``ZC_Octet``, "whose representation and API is
isomorphic to the standard Octet while at the same time all
corresponding methods are modified to support zero-copy direct
deposit".

* :class:`OctetSequence` is MICO's ``SequenceTmpl<octet>``: it owns a
  growable ``bytearray`` (the STL ``vector<>`` analog) and its
  marshaler copies the payload into the request buffer.
* :class:`ZCOctetSequence` owns a page-aligned :class:`ZCBuffer` and is
  only ever passed by reference; its marshaler registers the buffer for
  direct deposit instead of copying (§4.4).

Both expose the same surface — ``length()``, indexing, ``memoryview``
access via :meth:`view`, ``tobytes()`` — so application code can switch
types by changing one IDL keyword, exactly as in the paper's test
setup.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from .buffers import BufferPool, ZCBuffer, default_pool

__all__ = ["OctetSequence", "ZCOctetSequence", "as_octets"]

BytesLike = Union[bytes, bytearray, memoryview]


class _OctetBase:
    """Shared indexing/equality surface of the two sequence types."""

    def view(self) -> memoryview:  # pragma: no cover - overridden
        raise NotImplementedError

    def length(self, n: Optional[int] = None):
        """CORBA sequence ``length()``: getter, or resizing setter."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self.length()

    def __getitem__(self, idx):
        got = self.view()[idx]
        return bytes(got) if isinstance(idx, slice) else got

    def __setitem__(self, idx, value) -> None:
        self.view()[idx] = value

    def __iter__(self):
        return iter(self.view())

    def tobytes(self) -> bytes:
        return self.view().tobytes()

    def __eq__(self, other) -> bool:
        if isinstance(other, _OctetBase):
            return self.view() == other.view()
        if isinstance(other, (bytes, bytearray, memoryview)):
            return self.view() == memoryview(other).cast("B")
        return NotImplemented

    def __hash__(self):  # sequences are mutable
        raise TypeError(f"unhashable type: {type(self).__name__}")

    def __repr__(self) -> str:
        n = self.length()
        head = self.view()[: min(n, 8)].tobytes()
        suffix = "..." if n > 8 else ""
        return f"<{type(self).__name__} len={n} {head.hex()}{suffix}>"


class OctetSequence(_OctetBase):
    """Standard ``sequence<octet>`` with copying (vector-like) storage."""

    #: MICO-style type identifier (see repro.cdr.typecode)
    TID = "octet"

    def __init__(self, data: Union[BytesLike, Iterable[int], None] = None):
        if data is None:
            self._data = bytearray()
        elif isinstance(data, bytearray):
            self._data = data  # adopt: caller handed over ownership
        else:
            self._data = bytearray(data)

    def length(self, n: Optional[int] = None):
        if n is None:
            return len(self._data)
        if n < 0:
            raise ValueError(f"negative length: {n}")
        if n < len(self._data):
            del self._data[n:]
        else:
            self._data.extend(b"\0" * (n - len(self._data)))
        return None

    def view(self) -> memoryview:
        return memoryview(self._data)

    def append(self, data: BytesLike) -> None:
        self._data.extend(data)

    @property
    def is_zero_copy(self) -> bool:
        return False


class ZCOctetSequence(_OctetBase):
    """``sequence<ZC_Octet>`` — the paper's zero-copy octet stream.

    Backed by a page-aligned :class:`ZCBuffer`; construction with a
    length allocates from a pool, :meth:`adopt` wraps a buffer that was
    direct-deposited by the receiver, and :meth:`from_data` is the
    explicit (copying) producer entry point for application data that
    does not already live in aligned storage.
    """

    TID = "zc_octet"

    def __init__(self, n: int = 0, pool: Optional[BufferPool] = None):
        self._pool = pool or default_pool()
        self._buf: Optional[ZCBuffer] = None
        if n:
            self._buf = self._pool.acquire(n)

    # -- construction ---------------------------------------------------------
    @classmethod
    def adopt(cls, buf: ZCBuffer, pool: Optional[BufferPool] = None
              ) -> "ZCOctetSequence":
        """Wrap an existing aligned buffer without copying (§4.5:
        "a pointer is set to this buffer allowing the demarshaling
        routine to directly access the data")."""
        seq = cls(0, pool=pool)
        seq._buf = buf
        return seq

    @classmethod
    def from_data(cls, data: BytesLike, pool: Optional[BufferPool] = None
                  ) -> "ZCOctetSequence":
        """Allocate an aligned buffer and copy ``data`` in — the single
        producer-side touch the zero-copy regime permits."""
        src = memoryview(data).cast("B")
        seq = cls(src.nbytes or 1, pool=pool)
        assert seq._buf is not None
        seq._buf.fill_from(src)
        seq._buf.set_length(src.nbytes)
        return seq

    @classmethod
    def in_arena(cls, arena, data: Optional[BytesLike] = None,
                 n: int = 0) -> Optional["ZCOctetSequence"]:
        """Build the sequence directly inside a leased shm-arena slot.

        The producer-side staging copy happens *here* (or not at all,
        when the application fills the returned sequence in place), so
        marshaling and sending move only the slot reference — the
        paper's zero-copy send with the single permitted touch pushed
        to the point of data production.  Returns ``None`` when the
        arena cannot lease a slot (busy, closed, payload oversize);
        callers then fall back to :meth:`from_data`.
        """
        src = memoryview(data).cast("B") if data is not None else None
        need = src.nbytes if src is not None else n
        try_acquire = getattr(arena, "try_acquire", None)
        if try_acquire is None or need <= 0:
            return None
        buf = try_acquire(need)
        if buf is None:
            return None
        if src is not None:
            buf.view()[:] = src
        return cls.adopt(buf)

    # -- isomorphic API ---------------------------------------------------------
    def length(self, n: Optional[int] = None):
        if n is None:
            return self._buf.length if self._buf is not None else 0
        if n < 0:
            raise ValueError(f"negative length: {n}")
        if self._buf is None or n > self._buf.capacity:
            old = self._buf
            new = self._pool.acquire(max(n, 1))
            if old is not None:
                keep = min(n, old.length)
                new.full_view()[:keep] = old.view()[:keep]
                old.release()
            self._buf = new
        self._buf.set_length(n)
        return None

    def view(self) -> memoryview:
        if self._buf is None:
            return memoryview(b"")
        return self._buf.view()

    @property
    def buffer(self) -> Optional[ZCBuffer]:
        """The underlying aligned buffer (identity matters in tests)."""
        return self._buf

    @property
    def is_zero_copy(self) -> bool:
        return True

    @property
    def is_page_aligned(self) -> bool:
        return self._buf is None or self._buf.is_page_aligned

    def release(self) -> None:
        """Return the storage to the pool; the sequence becomes empty."""
        if self._buf is not None:
            self._buf.release()
            self._buf = None


def as_octets(value) -> _OctetBase:
    """Coerce bytes-like application data into a sequence parameter."""
    if isinstance(value, _OctetBase):
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return OctetSequence(value)
    raise TypeError(
        f"cannot pass {type(value).__name__} as an octet sequence")
