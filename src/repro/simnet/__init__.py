"""Simulated cluster substrate replacing the paper's 2003 testbed.

The paper measured on 400 MHz Pentium II PCs over Gigabit Ethernet with
a custom zero-copy NIC driver (§5).  This package models that hardware
as a discrete-event simulation: per-byte copy/checksum/marshal costs,
per-packet and per-syscall overheads, PCI DMA bandwidth, Ethernet
framing, and the two TCP stack variants (standard copying vs.
speculative-defragmentation zero-copy).  See DESIGN.md §2 for the
substitution rationale and calibration anchors.
"""

from .engine import (AllOf, Interrupted, Process, Request, Resource,
                     SimulationError, Simulator, Timeout)
from .memory import CopyKind, MemorySystem
from .node import PhaseCharge, SimNode
from .orbcost import OrbCostConfig, corba_request_steps, measure_corba_request
from .profiles import (FAST_ETHERNET, GIGABIT_ETHERNET, MODERN_NODE, PAGE_SIZE,
                       PENTIUM_II_400, LinkProfile, MachineProfile)
from .stacks import StackConfig, StackKind, standard_stack, zero_copy_stack
from .trace import TraceEvent, TraceRecorder
from .transfer import (LatencyStep, StreamStep, Testbed, TransferReport,
                       measure_stream, run_scenario)

__all__ = [
    "Simulator", "Process", "Resource", "Request", "Timeout", "AllOf",
    "SimulationError", "Interrupted",
    "CopyKind", "MemorySystem",
    "SimNode", "PhaseCharge",
    "MachineProfile", "LinkProfile", "PENTIUM_II_400", "MODERN_NODE",
    "GIGABIT_ETHERNET", "FAST_ETHERNET", "PAGE_SIZE",
    "StackConfig", "StackKind", "standard_stack", "zero_copy_stack",
    "TransferReport", "StreamStep", "LatencyStep", "Testbed",
    "measure_stream", "run_scenario",
    "OrbCostConfig", "corba_request_steps", "measure_corba_request",
    "TraceRecorder", "TraceEvent",
]
