"""Pipelined bulk-transfer simulation.

A transfer of N bytes is chunked into pages and each chunk flows
through five stages, every stage a FIFO resource so that chunks
pipeline and the steady-state throughput is set by the slowest stage —
exactly the mechanism behind the saturation plateaus of Figs. 5/6:

    sender CPU -> sender PCI/DMA -> wire -> receiver PCI/DMA -> receiver CPU

Per-chunk stage costs come from :class:`repro.simnet.stacks.StackConfig`
(CPU stages), the machine profile (PCI) and the link profile (wire).

Sequential *phases* (e.g. MICO marshaling an entire request buffer
before the first byte is written, §4.2) are modelled with
:class:`repro.simnet.node.PhaseCharge` and composed with streams by
:func:`run_scenario`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from .engine import Simulator
from .node import PhaseCharge, SimNode
from .profiles import PAGE_SIZE, LinkProfile, MachineProfile
from .stacks import StackConfig

__all__ = [
    "TransferReport",
    "StreamStep",
    "LatencyStep",
    "run_scenario",
    "measure_stream",
    "Testbed",
]

NS_PER_S = 1_000_000_000


@dataclass
class TransferReport:
    """Outcome of one simulated measurement."""

    nbytes: int
    elapsed_ns: int
    sender_cpu_ns: int
    receiver_cpu_ns: int
    sender_util: float
    receiver_util: float
    sender_copies: float  #: full payload copies made at the sender
    receiver_copies: float
    breakdown_ns: dict[str, int] = field(default_factory=dict)

    @property
    def mbit_per_s(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.nbytes * 8 * 1e3 / self.elapsed_ns  # = *8 / (ns/1e9) / 1e6

    @property
    def mbyte_per_s(self) -> float:
        return self.mbit_per_s / 8.0


@dataclass
class StreamStep:
    """Pipeline N bytes from ``tx`` to ``rx`` over ``link``."""

    tx: SimNode
    rx: SimNode
    link: LinkProfile
    nbytes: int
    stack: StackConfig
    chunk: int = PAGE_SIZE
    #: optional per-chunk stage tracing (see repro.simnet.trace)
    trace: object = None


@dataclass
class LatencyStep:
    """A pure delay (e.g. a small control message's round trip)."""

    delay_ns: int


Step = Union[PhaseCharge, StreamStep, LatencyStep]


def _stream_proc(sim: Simulator, step: StreamStep, link_res):
    """Process generator driving one pipelined stream."""
    tx, rx, link, stack = step.tx, step.rx, step.link, step.stack
    chunk = step.chunk
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    nbytes = step.nbytes
    if nbytes < 0:
        raise ValueError(f"negative stream size: {nbytes}")
    if nbytes == 0:
        return
    pci_tx = tx.profile.pci_ns_per_byte
    pci_rx = rx.profile.pci_ns_per_byte

    trace = step.trace

    def chunk_proc(size: int, chunk_id: int):
        def note(stage, start):
            if trace is not None:
                trace.record(chunk_id, stage, start, sim.now)

        # 1. sender CPU
        req = tx.cpu.request()
        yield req
        start = sim.now
        yield sim.timeout(stack.tx_chunk_cost_ns(tx, size, link))
        tx.cpu.release(req)
        note("tx-cpu", start)
        # 2. sender PCI/DMA
        req = tx.pci.request()
        yield req
        start = sim.now
        yield sim.timeout(int(size * pci_tx))
        tx.pci.release(req)
        note("tx-pci", start)
        # 3. wire (serialization) then propagation latency
        req = link_res.request()
        yield req
        start = sim.now
        yield sim.timeout(link.wire_time_ns(size))
        link_res.release(req)
        note("wire", start)
        yield sim.timeout(link.latency_ns)
        # 4. receiver PCI/DMA
        req = rx.pci.request()
        yield req
        start = sim.now
        yield sim.timeout(int(size * pci_rx))
        rx.pci.release(req)
        note("rx-pci", start)
        # 5. receiver CPU
        req = rx.cpu.request()
        yield req
        start = sim.now
        yield sim.timeout(stack.rx_chunk_cost_ns(rx, size, link))
        rx.cpu.release(req)
        note("rx-cpu", start)

    procs = []
    remaining = nbytes
    chunk_id = 0
    while remaining > 0:
        size = min(chunk, remaining)
        remaining -= size
        procs.append(sim.process(chunk_proc(size, chunk_id), name="chunk"))
        chunk_id += 1
    yield sim.all_of(procs)


def run_scenario(sim: Simulator, steps: Sequence[Step], link_res=None) -> int:
    """Run ``steps`` sequentially; return total elapsed ns.

    Phases hold their node's CPU; streams pipeline; latency steps just
    wait.  Steps run back-to-back — the model for a synchronous CORBA
    invocation whose marshal, send and demarshal stages do not overlap
    (§4.2), as opposed to the chunk-level overlap *within* a stream.
    """
    if link_res is None:
        link_res = sim.resource(1, name="link")

    def driver():
        for step in steps:
            if isinstance(step, PhaseCharge):
                yield sim.process(step.run(), name=step.label or "phase")
            elif isinstance(step, StreamStep):
                yield sim.process(_stream_proc(sim, step, link_res), name="stream")
            elif isinstance(step, LatencyStep):
                yield sim.timeout(step.delay_ns)
            else:
                raise TypeError(f"unknown scenario step {step!r}")

    start = sim.now
    sim.process(driver(), name="scenario")
    sim.run()
    return sim.now - start


class Testbed:
    """A fresh two-node testbed for one measurement.

    Creates its own :class:`Simulator` so utilization counters start
    clean, mirroring one TTCP run between two cluster nodes.
    """

    __test__ = False  # not a pytest class, despite the Test* name

    def __init__(self, profile: MachineProfile, link: LinkProfile,
                 rx_profile: MachineProfile | None = None):
        self.sim = Simulator()
        self.link = link
        self.sender = SimNode(self.sim, profile, "sender")
        self.receiver = SimNode(self.sim, rx_profile or profile, "receiver")
        self.link_res = self.sim.resource(1, name="link")

    def stream(self, nbytes: int, stack: StackConfig,
               chunk: int = PAGE_SIZE) -> StreamStep:
        return StreamStep(self.sender, self.receiver, self.link,
                          nbytes, stack, chunk)

    def reverse_stream(self, nbytes: int, stack: StackConfig,
                       chunk: int = PAGE_SIZE) -> StreamStep:
        return StreamStep(self.receiver, self.sender, self.link,
                          nbytes, stack, chunk)

    def run(self, steps: Sequence[Step], payload_bytes: int) -> TransferReport:
        elapsed = run_scenario(self.sim, steps, self.link_res)
        tx, rx = self.sender, self.receiver
        breakdown = {f"tx.{k}": v for k, v in tx.memory.breakdown_ns().items()}
        breakdown.update(
            {f"rx.{k}": v for k, v in rx.memory.breakdown_ns().items()})
        return TransferReport(
            nbytes=payload_bytes,
            elapsed_ns=elapsed,
            sender_cpu_ns=tx.cpu_busy_ns(),
            receiver_cpu_ns=rx.cpu_busy_ns(),
            sender_util=tx.cpu_utilization(elapsed),
            receiver_util=rx.cpu_utilization(elapsed),
            sender_copies=tx.memory.copies_of(payload_bytes),
            receiver_copies=rx.memory.copies_of(payload_bytes),
            breakdown_ns=breakdown,
        )


def measure_stream(profile: MachineProfile, link: LinkProfile, nbytes: int,
                   stack: StackConfig, chunk: int = PAGE_SIZE) -> TransferReport:
    """Convenience: one raw socket stream on a fresh testbed (TTCP raw)."""
    bed = Testbed(profile, link)
    return bed.run([bed.stream(nbytes, stack, chunk)], nbytes)
