"""Discrete-event simulation engine.

A small process-based DES kernel (in the spirit of SimPy) used by
:mod:`repro.simnet` to model the paper's 2003 testbed: CPU and memory
costs, PCI/DMA stages, Ethernet links, and TCP stacks are all modelled
as *resources* with service times, and transfers are *processes* that
flow chunks through those resources.

Time is kept in integer nanoseconds to avoid floating-point drift in
long runs; all public APIs accept and return ints (ns).

Example
-------
>>> sim = Simulator()
>>> def hello(env):
...     yield env.timeout(100)
...     return env.now
>>> p = sim.process(hello(sim))
>>> sim.run()
>>> p.value
100
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Request",
    "Resource",
    "AllOf",
    "SimulationError",
    "Interrupted",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. negative delay)."""


class Interrupted(Exception):
    """Raised inside a process that has been interrupted.

    The ``cause`` attribute carries the value given to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _BaseEvent:
    """An occurrence in simulated time that processes can wait on.

    Lifecycle: *pending* -> *scheduled* (trigger requested, fire time on
    the event queue) -> *fired* (callbacks delivered, value readable).
    Waiters registered before the fire are delivered at fire time;
    waiters registered after it are delivered on the next kernel step.
    """

    __slots__ = ("sim", "_scheduled", "_fired", "_value", "_callbacks", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._scheduled = False
        self._fired = False
        self._ok = True
        self._value: Any = None
        self._callbacks: list[Callable[["_BaseEvent"], None]] = []

    @property
    def triggered(self) -> bool:
        """True once the event has fired (value is available)."""
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def _succeed(self, value: Any = None, delay: int = 0) -> "_BaseEvent":
        if self._scheduled:
            raise SimulationError("event already triggered")
        self._scheduled = True
        self._value = value
        self.sim._schedule_event(self, delay=delay)
        return self

    def _fail(self, exc: BaseException) -> "_BaseEvent":
        if self._scheduled:
            raise SimulationError("event already triggered")
        self._scheduled = True
        self._ok = False
        self._value = exc
        self.sim._schedule_event(self)
        return self

    def add_callback(self, cb: Callable[["_BaseEvent"], None]) -> None:
        if self._fired:
            # Already fired: deliver on the next kernel step.
            self.sim._schedule_call(lambda: cb(self))
        else:
            self._callbacks.append(cb)


class Timeout(_BaseEvent):
    """An event that fires ``delay`` ns after it is created."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = int(delay)
        self._succeed(value, delay=self.delay)


class Request(_BaseEvent):
    """A pending claim on a :class:`Resource` slot.

    Fires when the resource grants a slot.  Must be released with
    :meth:`Resource.release` (or used as a context manager inside a
    process via ``with``-less yield/release pairing).
    """

    __slots__ = ("resource", "_granted_at")

    def __init__(self, sim: "Simulator", resource: "Resource"):
        super().__init__(sim)
        self.resource = resource
        self._granted_at: Optional[int] = None


class AllOf(_BaseEvent):
    """Fires once all child events have fired; value is their values."""

    __slots__ = ("_pending",)

    def __init__(self, sim: "Simulator", events: Iterable[_BaseEvent]):
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            self._succeed([])
            return
        values: list[Any] = [None] * len(events)

        def make_cb(i: int) -> Callable[[_BaseEvent], None]:
            def cb(ev: _BaseEvent) -> None:
                values[i] = ev.value
                self._pending -= 1
                if self._pending == 0 and not self._scheduled:
                    self._succeed(values)

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))


class Process(_BaseEvent):
    """A generator-driven simulation process.

    The generator yields events (:class:`Timeout`, :class:`Request`,
    another :class:`Process`, or :class:`AllOf`); the kernel resumes it
    with the event's value once the event fires.  The process itself is
    an event that fires (with the generator's return value) when the
    generator finishes.
    """

    __slots__ = ("gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._waiting_on: Optional[_BaseEvent] = None
        sim._schedule_call(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        return not self._scheduled

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current time."""
        if self._scheduled:
            return
        target = self._waiting_on
        self._waiting_on = None
        if isinstance(target, Request) and not target._scheduled:
            target.resource._cancel(target)
        self.sim._schedule_call(lambda: self._resume(None, Interrupted(cause)))

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._scheduled:
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self._succeed(stop.value)
            return
        except Interrupted:
            # Process chose not to handle its interruption: treat as done.
            self._succeed(None)
            return
        except Exception as exc:
            # The generator raised: the process fails with that exception
            # (a joining parent re-raises it; otherwise value holds it).
            self._fail(exc)
            return
        if not isinstance(target, _BaseEvent):
            self._fail(SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"))
            return
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, ev: _BaseEvent) -> None:
        if self._waiting_on is not ev:
            return  # stale wake-up after an interrupt
        if ev._ok:
            self._resume(ev.value, None)
        else:
            self._resume(None, ev.value)


class Resource:
    """A FIFO multi-server resource with utilization accounting.

    ``capacity`` slots serve requests in arrival order.  Busy time is
    tracked per-slot so that ``utilization(elapsed)`` reports the mean
    fraction of time slots were held.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._queue: list[Request] = []
        self._in_use: set[Request] = set()
        self.busy_ns = 0  # total slot-held nanoseconds
        self.grant_count = 0

    def request(self) -> Request:
        req = Request(self.sim, self)
        if len(self._in_use) < self.capacity:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self, req: Request) -> None:
        if req not in self._in_use:
            raise SimulationError("releasing a request that is not held")
        self._in_use.discard(req)
        assert req._granted_at is not None
        self.busy_ns += self.sim.now - req._granted_at
        if self._queue:
            self._grant(self._queue.pop(0))

    def _grant(self, req: Request) -> None:
        self._in_use.add(req)
        req._granted_at = self.sim.now
        self.grant_count += 1
        req._succeed(self)

    def _cancel(self, req: Request) -> None:
        try:
            self._queue.remove(req)
        except ValueError:
            pass

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilization(self, elapsed_ns: int) -> float:
        """Mean fraction of slot-time held over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.busy_ns / (elapsed_ns * self.capacity)


class Simulator:
    """The event loop: a priority queue of (time, seq) ordered events."""

    def __init__(self):
        self.now = 0
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False

    # -- factory helpers ------------------------------------------------
    def timeout(self, delay: int, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def resource(self, capacity: int = 1, name: str = "") -> Resource:
        return Resource(self, capacity, name=name)

    def all_of(self, events: Iterable[_BaseEvent]) -> AllOf:
        return AllOf(self, events)

    # -- kernel ---------------------------------------------------------
    def _schedule_call(self, fn: Callable[[], None], delay: int = 0) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn))
        self._seq += 1

    def _schedule_event(self, ev: _BaseEvent, delay: int = 0) -> None:
        def fire() -> None:
            ev._fired = True
            callbacks, ev._callbacks = ev._callbacks, []
            for cb in callbacks:
                cb(ev)

        self._schedule_call(fire, delay=delay)

    def run(self, until: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``until`` ns). Returns now."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            while self._heap:
                t, _, fn = self._heap[0]
                if until is not None and t > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                if t < self.now:
                    raise SimulationError("event scheduled in the past")
                self.now = t
                fn()
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now
