"""TCP/IP stack models: standard (copying) and zero-copy sockets.

Two stack variants from the paper (§5):

* **standard** — the stock Linux 2.2 path.  Sender: ``write()`` copies
  user -> kernel socket buffers and computes the TCP checksum; NIC DMAs
  from kernel memory.  Receiver: NIC DMAs fragments into kernel
  buffers, the commodity-GigE driver performs a *defragmentation copy*
  (§1.1), ``read()`` copies kernel -> user and checksums.

* **zero-copy** — the authors' stack built on *speculative
  defragmentation* [10].  Sender: pages are pinned and DMA'd straight
  from user memory (a page-remap instead of a copy).  Receiver: the
  driver speculatively lands packet payloads on page-aligned buffers
  that are then remapped into user space; a *misprediction* (packet
  reordering, unexpected interleaving) falls back to a copy.  The
  zero-copy socket API also has a much cheaper ``read()``/``write()``
  path (§5.3: "a big improvement in the overhead of the read() and
  write() system calls").

Costs are charged per *chunk* (default one 4 KiB page, matching the
paper's 4 KiB-aligned TTCP buffers) so the transfer pipeline in
:mod:`repro.simnet.transfer` can overlap stages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from .memory import CopyKind
from .node import SimNode
from .profiles import PAGE_SIZE, LinkProfile

__all__ = ["StackKind", "StackConfig", "standard_stack", "zero_copy_stack"]


class StackKind(enum.Enum):
    STANDARD = "standard"
    ZERO_COPY = "zero-copy"


@dataclass(frozen=True)
class StackConfig:
    """Tunable parameters of one stack variant.

    ``defrag_success`` is the hit rate of speculative defragmentation;
    the expected fallback-copy cost ``(1 - p) * memcpy`` is charged
    deterministically so simulations are reproducible (the ABL-spec
    ablation sweeps ``p``).
    """

    kind: StackKind
    #: multiplier on the profile's syscall cost (the zc socket API
    #: bypasses most of the socket layer)
    syscall_factor: float = 1.0
    #: speculative defragmentation success probability (zc only)
    defrag_success: float = 0.95
    #: NIC computes checksums (not available on the paper's GNIC-II)
    checksum_offload: bool = False
    #: receiver application makes one read pass over the data (used for
    #: the CPU-utilization experiment; plain TTCP discards data unread)
    app_touch: bool = False

    @property
    def is_zero_copy(self) -> bool:
        return self.kind is StackKind.ZERO_COPY

    def with_(self, **kw) -> "StackConfig":
        return replace(self, **kw)

    # -- per-chunk CPU costs ------------------------------------------------
    def tx_chunk_cost_ns(self, node: SimNode, nbytes: int, link: LinkProfile) -> int:
        """Sender-CPU cost to hand ``nbytes`` to the NIC."""
        p = node.profile
        mem = node.memory
        frames = link.frames_for(nbytes)
        cost = int(p.syscall_ns * self.syscall_factor)
        cost += frames * p.per_packet_ns
        if self.kind is StackKind.STANDARD:
            cost += mem.touch(CopyKind.USER_KERNEL, nbytes)
            if not self.checksum_offload:
                cost += mem.touch(CopyKind.CHECKSUM, nbytes)
        else:
            # pin/remap user pages for DMA; no data pass by the CPU
            cost += self._pages(nbytes) * p.page_remap_ns
            if not self.checksum_offload:
                cost += mem.touch(CopyKind.CHECKSUM, nbytes)
        mem.touch(CopyKind.DMA, nbytes)
        return cost

    def rx_chunk_cost_ns(self, node: SimNode, nbytes: int, link: LinkProfile) -> int:
        """Receiver-CPU cost to deliver ``nbytes`` to the application."""
        p = node.profile
        mem = node.memory
        frames = link.frames_for(nbytes)
        mem.touch(CopyKind.DMA, nbytes)
        cost = int(p.syscall_ns * self.syscall_factor)
        cost += frames * p.per_packet_ns
        if self.kind is StackKind.STANDARD:
            cost += mem.touch(CopyKind.DRIVER_DEFRAG, nbytes)
            cost += mem.touch(CopyKind.USER_KERNEL, nbytes)
            if not self.checksum_offload:
                cost += mem.touch(CopyKind.CHECKSUM, nbytes)
        else:
            cost += self._pages(nbytes) * p.page_remap_ns
            if not self.checksum_offload:
                cost += mem.touch(CopyKind.CHECKSUM, nbytes)
            miss = 1.0 - self.defrag_success
            if miss > 0.0:
                # expected fallback: a fraction of chunks must be copied
                fallback_bytes = int(nbytes * miss)
                cost += mem.touch(CopyKind.FALLBACK, fallback_bytes)
        if self.app_touch:
            cost += mem.touch(CopyKind.APP_TOUCH, nbytes)
        return cost

    @staticmethod
    def _pages(nbytes: int) -> int:
        return -(-nbytes // PAGE_SIZE)


def standard_stack(**kw) -> StackConfig:
    """The stock copying TCP/IP stack."""
    return StackConfig(kind=StackKind.STANDARD, **kw)


def zero_copy_stack(**kw) -> StackConfig:
    """The speculative-defragmentation zero-copy stack of [10]."""
    kw.setdefault("syscall_factor", 0.3)
    return StackConfig(kind=StackKind.ZERO_COPY, **kw)
