"""A simulated cluster node: CPU, PCI bus, memory system, NIC metrics."""

from __future__ import annotations

from .engine import Resource, Simulator
from .memory import MemorySystem
from .profiles import MachineProfile

__all__ = ["SimNode"]


class SimNode:
    """One PC of the simulated cluster.

    Holds the two contended per-node resources of the model — the CPU
    (protocol processing, copies, marshaling) and the PCI/DMA bus
    (NIC <-> memory transfers) — plus the memory ledger.  A node is
    bound to one :class:`~repro.simnet.engine.Simulator`; create fresh
    nodes per measurement for clean utilization accounting.
    """

    def __init__(self, sim: Simulator, profile: MachineProfile, name: str):
        self.sim = sim
        self.profile = profile
        self.name = name
        self.cpu: Resource = sim.resource(1, name=f"{name}.cpu")
        self.pci: Resource = sim.resource(1, name=f"{name}.pci")
        self.memory = MemorySystem(profile)
        #: extra CPU ns charged outside resource holds (sequential phases)
        self.phase_cpu_ns = 0

    # -- sequential (non-pipelined) CPU work -------------------------------
    def cpu_phase(self, cost_ns: int, label: str = "") -> "PhaseCharge":
        """Describe a sequential CPU phase of ``cost_ns`` (e.g. MICO
        marshaling a whole request buffer before any byte is sent).

        Returns a :class:`PhaseCharge`; the caller runs it through the
        simulator (see :func:`repro.simnet.transfer.run_phases`).
        """
        if cost_ns < 0:
            raise ValueError(f"negative phase cost: {cost_ns}")
        return PhaseCharge(self, int(cost_ns), label)

    def cpu_busy_ns(self) -> int:
        """Total CPU-busy time: resource holds plus sequential phases."""
        return self.cpu.busy_ns + self.phase_cpu_ns

    def cpu_utilization(self, elapsed_ns: int) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.cpu_busy_ns() / elapsed_ns)


class PhaseCharge:
    """A sequential CPU phase on one node (see :meth:`SimNode.cpu_phase`)."""

    __slots__ = ("node", "cost_ns", "label")

    def __init__(self, node: SimNode, cost_ns: int, label: str):
        self.node = node
        self.cost_ns = cost_ns
        self.label = label

    def run(self):
        """Process generator: hold the CPU for the phase duration."""
        req = self.node.cpu.request()
        yield req
        yield self.node.sim.timeout(self.cost_ns)
        self.node.cpu.release(req)
        self.node.phase_cpu_ns += 0  # busy time already tracked by resource
