"""Machine and network cost profiles for the simulated testbed.

The paper's evaluation platform (§5) is a cluster of 400 MHz Pentium II
PCs running Linux 2.2 on Gigabit Ethernet (Cabletron SmartSwitch 8600,
PacketEngines GNIC-II NICs).  None of that hardware is available, so
:mod:`repro.simnet` models it with the cost parameters below.

Calibration
-----------
Two anchor points are taken from the paper and the parameters tuned so
the *unoptimized* system lands on them:

* raw TCP over the standard (copying) stack saturates ~330 MBit/s
  (§5.2: "With the raw TCP socket an application can achieve
  330 MBit/s");
* CORBA (unmodified MICO) over the standard stack saturates ~50 MBit/s
  (§5.2: "reaches a saturation around 50 MBit/s").

Every other curve (zero-copy TCP ~550 MBit/s, zero-copy ORB matching
raw sockets, the 10x application gain, full-GigE-at-30%-CPU on newer
machines) must then *emerge* from removing copies in the model — they
are not fitted.

The dominant mechanisms, from the paper:

* per-byte costs: memcpy passes (user<->kernel, driver defragmentation)
  at the machine's effective copy bandwidth; software checksumming;
  MICO's "very general unoptimized copy loop" for marshaling, which is
  several times slower than a straight memcpy (§5.2);
* per-packet costs: interrupt + protocol processing per Ethernet frame;
* per-call costs: syscalls, CORBA request demultiplexing, memory
  allocation (§2.1);
* shared-bus ceiling: a 32-bit/33 MHz PCI bus practically moves
  ~70-75 MB/s, which is what capped the zero-copy path at ~550 MBit/s
  on the PII machines; "newer machines" (§6) have a faster bus and
  reach full GigE.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "MachineProfile",
    "LinkProfile",
    "PENTIUM_II_400",
    "MODERN_NODE",
    "GIGABIT_ETHERNET",
    "FAST_ETHERNET",
    "PAGE_SIZE",
]

PAGE_SIZE = 4096

NS_PER_S = 1_000_000_000


def _ns_per_byte(mb_per_s: float) -> float:
    """Convert a MB/s bandwidth into ns/byte."""
    return NS_PER_S / (mb_per_s * 1e6)


@dataclass(frozen=True)
class LinkProfile:
    """An Ethernet link: raw bit rate plus framing overheads."""

    name: str
    bits_per_s: int
    mtu: int = 1500  # payload bytes per frame
    frame_overhead: int = 58  # eth hdr+CRC (18) + IP (20) + TCP (20)
    preamble_gap: int = 20  # preamble + inter-frame gap, byte times
    latency_ns: int = 10_000  # one-way propagation + switch latency

    @property
    def ns_per_wire_byte(self) -> float:
        return 8 * NS_PER_S / self.bits_per_s

    def frames_for(self, nbytes: int) -> int:
        """Number of Ethernet frames needed for ``nbytes`` of payload."""
        if nbytes <= 0:
            return 0
        return -(-nbytes // self.mtu)

    def wire_time_ns(self, nbytes: int) -> int:
        """Serialization time for ``nbytes`` of payload incl. framing."""
        frames = self.frames_for(nbytes)
        wire_bytes = nbytes + frames * (self.frame_overhead + self.preamble_gap)
        return int(wire_bytes * self.ns_per_wire_byte)


@dataclass(frozen=True)
class MachineProfile:
    """Per-node cost model.

    All ``*_ns_per_byte`` values are software per-byte costs charged to
    the node CPU; ``*_ns`` values are fixed per-event costs.
    """

    name: str
    cpu_mhz: int

    # -- memory system ---------------------------------------------------
    #: one memcpy pass (read + write + bus contention)
    memcpy_ns_per_byte: float
    #: one read-only pass (software TCP checksum)
    checksum_ns_per_byte: float
    #: MICO's generic, type-dispatching marshal loop (per direction).
    #: Profiling in §5.2 attributes the bulk of the 50 MBit/s ceiling to
    #: "data copying and data inspection" in this loop.
    marshal_loop_ns_per_byte: float
    #: an optimized bulk marshal copy ("specialized routines ... MMX"),
    #: used for the ABL-marshal-loop ablation
    marshal_bulk_ns_per_byte: float

    # -- kernel / driver per-event costs ----------------------------------
    syscall_ns: int  #: one read()/write() entry+exit
    per_packet_ns: int  #: interrupt + per-frame protocol processing
    page_remap_ns: int  #: zero-copy page flip/pin per 4 KiB page
    conn_setup_ns: int  #: TCP connect handshake + socket setup
    malloc_ns: int  #: fixed cost of one buffer allocation
    malloc_ns_per_page: int  #: growth cost per page of a fresh allocation

    # -- CORBA / ORB per-request costs (§2.1: demux + allocation) --------
    demux_ns: int  #: request demultiplexing in the server ORB
    request_header_ns: int  #: building/parsing GIOP headers

    # -- I/O bus ----------------------------------------------------------
    pci_mb_per_s: float  #: practical DMA bandwidth NIC<->memory

    @property
    def pci_ns_per_byte(self) -> float:
        return _ns_per_byte(self.pci_mb_per_s)

    def scaled(self, factor: float, name: str | None = None) -> "MachineProfile":
        """A profile with all CPU costs scaled by ``1/factor`` (faster CPU)."""
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            cpu_mhz=int(self.cpu_mhz * factor),
            memcpy_ns_per_byte=self.memcpy_ns_per_byte / factor,
            checksum_ns_per_byte=self.checksum_ns_per_byte / factor,
            marshal_loop_ns_per_byte=self.marshal_loop_ns_per_byte / factor,
            marshal_bulk_ns_per_byte=self.marshal_bulk_ns_per_byte / factor,
            syscall_ns=int(self.syscall_ns / factor),
            per_packet_ns=int(self.per_packet_ns / factor),
            page_remap_ns=int(self.page_remap_ns / factor),
            conn_setup_ns=int(self.conn_setup_ns / factor),
            malloc_ns=int(self.malloc_ns / factor),
            malloc_ns_per_page=int(self.malloc_ns_per_page / factor),
            demux_ns=int(self.demux_ns / factor),
            request_header_ns=int(self.request_header_ns / factor),
        )


#: The paper's testbed node: 400 MHz Pentium II, Linux 2.2, 32/33 PCI.
#:
#: memcpy: ~100 MB/s effective copy bandwidth under DMA contention
#: (PII/BX-chipset SDRAM streams ~300 MB/s read, but a copy is
#: read+write and the NIC is DMAing concurrently) -> 10 ns/B.
#: checksum: one read pass at ~400 MB/s -> 2.5 ns/B.
#: marshal loop: MICO's per-element generic loop, ~26 cycles/byte on a
#: 400 MHz CPU -> 65 ns/B (this is what a virtual-dispatch byte loop
#: costs; §5.2 calls it out as the dominant overhead).
PENTIUM_II_400 = MachineProfile(
    name="pentium-ii-400",
    cpu_mhz=400,
    memcpy_ns_per_byte=10.0,
    checksum_ns_per_byte=2.5,
    marshal_loop_ns_per_byte=65.0,
    marshal_bulk_ns_per_byte=12.0,
    syscall_ns=5_000,
    per_packet_ns=2_000,
    page_remap_ns=1_500,
    conn_setup_ns=800_000,
    malloc_ns=3_000,
    malloc_ns_per_page=2_500,
    demux_ns=60_000,
    request_header_ns=40_000,
    pci_mb_per_s=72.0,
)

#: "For newer machines we can achieve the full communication bandwidth
#: of Gigabit Ethernet with a CPU utilization of just 30%" (§6).
#: Modelled as a ~2 GHz class machine with a 64/66 PCI bus.
MODERN_NODE = MachineProfile(
    name="modern-2003",
    cpu_mhz=2000,
    memcpy_ns_per_byte=2.8,
    checksum_ns_per_byte=0.8,
    marshal_loop_ns_per_byte=13.0,
    marshal_bulk_ns_per_byte=3.0,
    syscall_ns=1_500,
    per_packet_ns=800,
    page_remap_ns=500,
    conn_setup_ns=160_000,
    malloc_ns=600,
    malloc_ns_per_page=500,
    demux_ns=12_000,
    request_header_ns=8_000,
    pci_mb_per_s=400.0,
)

GIGABIT_ETHERNET = LinkProfile(name="gigabit-ethernet", bits_per_s=1_000_000_000)
FAST_ETHERNET = LinkProfile(name="fast-ethernet", bits_per_s=100_000_000)
