"""Per-chunk stage tracing for simulated transfers.

Recording every (chunk, stage, start, end) event of a pipelined stream
makes the mechanism of Figs. 5/6 *visible*: the steady-state plateau is
the busiest stage's service rate, and the ramp-up region of the curves
is the pipeline-fill time.  Used by tests and the overhead-breakdown
benchmark's timeline output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["TraceEvent", "TraceRecorder"]

#: canonical stage order of one stream
STAGES = ("tx-cpu", "tx-pci", "wire", "rx-pci", "rx-cpu")


@dataclass(frozen=True)
class TraceEvent:
    chunk: int
    stage: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


class TraceRecorder:
    """Collects stage events; answers timeline questions."""

    def __init__(self):
        self.events: List[TraceEvent] = []

    def record(self, chunk: int, stage: str, start_ns: int,
               end_ns: int) -> None:
        if end_ns < start_ns:
            raise ValueError(f"event ends before it starts: "
                             f"{start_ns}..{end_ns}")
        self.events.append(TraceEvent(chunk, stage, start_ns, end_ns))

    # -- queries ------------------------------------------------------------
    def stage_busy_ns(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.stage] = out.get(ev.stage, 0) + ev.duration_ns
        return out

    def bottleneck_stage(self) -> str:
        busy = self.stage_busy_ns()
        return max(busy, key=busy.get)

    def elapsed_ns(self) -> int:
        if not self.events:
            return 0
        return max(e.end_ns for e in self.events) - min(
            e.start_ns for e in self.events)

    def pipeline_fill_ns(self) -> int:
        """Time until the last stage first becomes busy — the ramp-up
        that dominates small transfers."""
        last_stage_starts = [e.start_ns for e in self.events
                             if e.stage == STAGES[-1]]
        if not last_stage_starts:
            return self.elapsed_ns()
        return min(last_stage_starts) - min(e.start_ns
                                            for e in self.events)

    def chunk_latency_ns(self, chunk: int) -> int:
        """End-to-end latency of one chunk through all stages."""
        spans = [e for e in self.events if e.chunk == chunk]
        if not spans:
            raise KeyError(f"no events for chunk {chunk}")
        return max(e.end_ns for e in spans) - min(e.start_ns
                                                  for e in spans)

    def stage_gaps_ns(self, stage: str) -> int:
        """Idle time inside one stage's busy window (bubbles)."""
        spans = sorted((e.start_ns, e.end_ns) for e in self.events
                       if e.stage == stage)
        if not spans:
            return 0
        gaps = 0
        _, prev_end = spans[0]
        for start, end in spans[1:]:
            if start > prev_end:
                gaps += start - prev_end
            prev_end = max(prev_end, end)
        return gaps

    def timeline(self, width: int = 64) -> str:
        """A coarse text Gantt: one row per stage."""
        if not self.events:
            return "(no events)"
        t0 = min(e.start_ns for e in self.events)
        t1 = max(e.end_ns for e in self.events)
        span = max(t1 - t0, 1)
        rows = []
        for stage in STAGES:
            cells = [" "] * width
            for ev in self.events:
                if ev.stage != stage:
                    continue
                a = int((ev.start_ns - t0) * width / span)
                b = max(a + 1, int((ev.end_ns - t0) * width / span))
                for i in range(a, min(b, width)):
                    cells[i] = "#"
            rows.append(f"{stage:>7} |{''.join(cells)}|")
        return "\n".join(rows)
