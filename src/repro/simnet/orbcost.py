"""ORB-level cost scenarios: the data paths of Figs. 3 and 4.

Builds :func:`repro.simnet.transfer.run_scenario` step lists for one
synchronous CORBA invocation carrying an ``nbytes`` octet-sequence
parameter, in two variants:

* **standard MICO path (Fig. 3)** — the client marshals the payload
  into a freshly allocated GIOP request buffer with MICO's generic
  per-element loop, *then* streams the whole buffer; the server reads
  it into an ORB buffer, demarshals (another generic-loop copy into a
  newly allocated sequence), demultiplexes and dispatches.

* **zero-copy path (Fig. 4)** — marshaling is bypassed
  (``TCSeqZCOctet`` just records a reference); the GIOP header travels
  as a small *control* message; the receiver allocates a page-aligned
  buffer from a pool and the payload is *deposited* directly into it by
  the (optionally zero-copy) stack; demarshaling sets a pointer.

Ablation knobs (see DESIGN.md §5): control/data separation can be
switched off (forcing a receive-side staging copy), the generic
marshal loop can be replaced by an optimized bulk copy, the deposit
buffer pool can be cold, and deposit buffers can be misaligned (which
defeats page remapping and forces fallback copies).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .memory import CopyKind
from .node import SimNode
from .profiles import PAGE_SIZE, LinkProfile, MachineProfile
from .stacks import StackConfig
from .transfer import Testbed, TransferReport

__all__ = ["OrbCostConfig", "corba_request_steps", "measure_corba_request"]


@dataclass(frozen=True)
class OrbCostConfig:
    """Variant selection for one modelled CORBA invocation."""

    zero_copy: bool = False
    #: §3.2 separation of control- and data transfers; switching it off
    #: while keeping the zc datatype forces the receiver to stage the
    #: payload in a generic buffer and copy it out (the "combined
    #: control and data message may involve buffering" case)
    separate_control_data: bool = True
    #: replace MICO's generic loop with a specialized bulk copy
    #: ("optimized contiguous memory-to-memory copy using MMX", §5.2)
    bulk_marshal: bool = False
    #: deposit-buffer pool already holds a buffer of the right size
    pool_warm: bool = True
    #: deposit buffers are page-aligned (misaligned defeats remapping)
    aligned_buffers: bool = True
    header_bytes: int = 128  #: GIOP header + request header on the wire
    reply_bytes: int = 64  #: GIOP reply for a void result
    dispatch_ns: int = 2_000  #: skeleton -> servant upcall

    def with_(self, **kw) -> "OrbCostConfig":
        return replace(self, **kw)


def _alloc_ns(node: SimNode, nbytes: int, warm: bool) -> int:
    p = node.profile
    if warm:
        return p.malloc_ns
    pages = -(-nbytes // PAGE_SIZE)
    return p.malloc_ns + pages * p.malloc_ns_per_page


def corba_request_steps(bed: Testbed, nbytes: int, stack: StackConfig,
                        cfg: OrbCostConfig) -> list:
    """Step list for one synchronous request with an octet payload."""
    client, server, link = bed.sender, bed.receiver, bed.link
    p_client, p_server = client.profile, server.profile
    steps: list = []

    if not cfg.zero_copy:
        marshal_kind = (CopyKind.MARSHAL_BULK if cfg.bulk_marshal
                        else CopyKind.MARSHAL)
        # client: allocate request buffer, marshal payload into it
        alloc = _alloc_ns(client, nbytes, warm=False)
        marshal = client.memory.touch(marshal_kind, nbytes)
        steps.append(client.cpu_phase(
            p_client.request_header_ns + alloc + marshal, "client-marshal"))
        # one combined GIOP message: header + payload
        steps.append(bed.stream(cfg.header_bytes + nbytes, stack))
        # server: demux, allocate sequence, demarshal (copy out of the
        # request buffer), dispatch
        alloc = _alloc_ns(server, nbytes, warm=False)
        demarshal = server.memory.touch(marshal_kind, nbytes)
        steps.append(server.cpu_phase(
            p_server.demux_ns + alloc + demarshal + cfg.dispatch_ns,
            "server-demarshal"))
    else:
        # client: header only; payload is passed by reference (§4.4)
        steps.append(client.cpu_phase(
            p_client.request_header_ns, "client-header"))
        if cfg.separate_control_data:
            # control message first so the receiver can set up the
            # deposit buffer before data arrives (§4.5)
            steps.append(bed.stream(cfg.header_bytes, stack))
            steps.append(server.cpu_phase(
                p_server.demux_ns
                + _alloc_ns(server, nbytes, warm=cfg.pool_warm),
                "server-prepare-deposit"))
            if cfg.aligned_buffers:
                data_stack = stack
            else:
                # misaligned target: page remapping impossible, every
                # chunk falls back to a copy
                data_stack = stack.with_(defrag_success=0.0) \
                    if stack.is_zero_copy else stack
            steps.append(bed.stream(nbytes, data_stack))
            steps.append(server.cpu_phase(cfg.dispatch_ns, "dispatch"))
        else:
            # combined message: receiver cannot pre-allocate, so it
            # stages the payload in a generic ORB buffer and copies it
            # into the sequence afterwards
            steps.append(bed.stream(cfg.header_bytes + nbytes, stack))
            stage_copy = server.memory.touch(CopyKind.USER_KERNEL, nbytes)
            steps.append(server.cpu_phase(
                p_server.demux_ns + _alloc_ns(server, nbytes, warm=False)
                + stage_copy + cfg.dispatch_ns, "server-staging-copy"))

    # reply: a small control message back to the client
    steps.append(server.cpu_phase(p_server.request_header_ns // 2, "reply-build"))
    steps.append(bed.reverse_stream(cfg.reply_bytes, stack))
    steps.append(client.cpu_phase(p_client.request_header_ns // 2, "reply-parse"))
    return steps


def measure_corba_request(profile: MachineProfile, link: LinkProfile,
                          nbytes: int, stack: StackConfig,
                          cfg: OrbCostConfig) -> TransferReport:
    """One CORBA invocation on a fresh testbed; returns its report."""
    bed = Testbed(profile, link)
    steps = corba_request_steps(bed, nbytes, stack, cfg)
    return bed.run(steps, nbytes)
