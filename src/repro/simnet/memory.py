"""Memory-system cost accounting for a simulated node.

The central claim of the paper is that *per-byte* costs — memory-to-
memory copies along the data path — dominate bulk-transfer performance
(§1.1).  This module gives each simulated node a ledger of every pass
made over payload bytes, so that

* per-byte time charges are computed from one place,
* tests can assert a literal "zero copies" invariant for the
  direct-deposit path (the paper's definition: data touched only once
  between application and wire, §1.1), and
* the §5.2-style overhead breakdown can be printed per copy kind.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .profiles import MachineProfile

__all__ = ["CopyKind", "MemorySystem", "CopyRecord"]


class CopyKind(enum.Enum):
    """Classification of a pass over payload bytes.

    Only ``USER_KERNEL``, ``DRIVER_DEFRAG`` and ``MARSHAL`` count as
    *copies* in the paper's sense (a second store of the same data);
    ``CHECKSUM`` and ``APP_TOUCH`` are read-only passes and ``DMA``
    does not involve the CPU at all.
    """

    MARSHAL = "marshal"  #: ORB marshal/demarshal into a request buffer
    MARSHAL_BULK = "marshal-bulk"  #: optimized bulk marshal (ablation)
    USER_KERNEL = "user-kernel"  #: copy across the user/kernel boundary
    DRIVER_DEFRAG = "driver-defrag"  #: NIC driver de/fragmentation copy
    FALLBACK = "speculation-fallback"  #: mispredicted zero-copy receive
    CHECKSUM = "checksum"  #: software TCP checksum pass (read-only)
    APP_TOUCH = "app-touch"  #: application reading/producing the data
    DMA = "dma"  #: NIC DMA; no CPU cost, PCI bandwidth applies

    @property
    def is_copy(self) -> bool:
        return self in (
            CopyKind.MARSHAL,
            CopyKind.MARSHAL_BULK,
            CopyKind.USER_KERNEL,
            CopyKind.DRIVER_DEFRAG,
            CopyKind.FALLBACK,
        )


@dataclass
class CopyRecord:
    kind: CopyKind
    nbytes: int
    cost_ns: int


class MemorySystem:
    """Cost model + ledger for one node's memory traffic."""

    def __init__(self, profile: MachineProfile):
        self.profile = profile
        self.bytes_by_kind: dict[CopyKind, int] = {}
        self.ns_by_kind: dict[CopyKind, int] = {}
        self.records: list[CopyRecord] = []
        self.keep_records = False

    # -- cost model -------------------------------------------------------
    def cost_ns(self, kind: CopyKind, nbytes: int) -> int:
        p = self.profile
        if kind in (CopyKind.USER_KERNEL, CopyKind.DRIVER_DEFRAG, CopyKind.FALLBACK):
            per_byte = p.memcpy_ns_per_byte
        elif kind is CopyKind.MARSHAL:
            per_byte = p.marshal_loop_ns_per_byte
        elif kind is CopyKind.MARSHAL_BULK:
            per_byte = p.marshal_bulk_ns_per_byte
        elif kind is CopyKind.CHECKSUM:
            per_byte = p.checksum_ns_per_byte
        elif kind is CopyKind.APP_TOUCH:
            per_byte = p.checksum_ns_per_byte  # one read pass
        elif kind is CopyKind.DMA:
            per_byte = 0.0  # CPU-free; the PCI stage charges bus time
        else:  # pragma: no cover - enum is closed
            raise ValueError(kind)
        return int(nbytes * per_byte)

    # -- ledger -------------------------------------------------------------
    def touch(self, kind: CopyKind, nbytes: int) -> int:
        """Record a pass over ``nbytes`` and return its CPU cost in ns."""
        if nbytes < 0:
            raise ValueError(f"negative byte count: {nbytes}")
        cost = self.cost_ns(kind, nbytes)
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + nbytes
        self.ns_by_kind[kind] = self.ns_by_kind.get(kind, 0) + cost
        if self.keep_records:
            self.records.append(CopyRecord(kind, nbytes, cost))
        return cost

    # -- queries ------------------------------------------------------------
    @property
    def copied_bytes(self) -> int:
        """Total payload bytes that were *copied* (second store)."""
        return sum(n for k, n in self.bytes_by_kind.items() if k.is_copy)

    def copies_of(self, nbytes: int) -> float:
        """How many full copies of an ``nbytes`` payload were made."""
        if nbytes == 0:
            return 0.0
        return self.copied_bytes / nbytes

    def breakdown_ns(self) -> dict[str, int]:
        return {k.value: v for k, v in sorted(
            self.ns_by_kind.items(), key=lambda kv: -kv[1])}

    def reset(self) -> None:
        self.bytes_by_kind.clear()
        self.ns_by_kind.clear()
        self.records.clear()
