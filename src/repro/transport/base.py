"""Transport abstraction: byte streams under the GIOP connection layer.

The ORB's ``GIOPConn`` (the MICO class of the same name, §4.2) talks to
one of these.  The interface is deliberately shaped for the zero-copy
regime:

* :meth:`Stream.sendv` is a gather-send, so a control message and the
  direct-deposit payloads that follow it are written without first
  being concatenated into a staging buffer;
* :meth:`Stream.recv_into` reads payload bytes *directly into* a
  caller-supplied buffer — on real sockets this is
  ``socket.recv_into`` on the page-aligned landing buffer, the Python
  equivalent of the paper's speculative-defragmentation landing (§4.5).

Three implementations exist: in-process loopback, real TCP, and the
simulated-testbed transport.  They register under a scheme name; IORs
carry the scheme so one ORB can talk over all of them.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence, Tuple

__all__ = ["Stream", "Listener", "Transport", "Endpoint", "TransportError",
           "TransportTimeout", "TransportRegistry", "registry"]

#: (scheme, host, port)
Endpoint = Tuple[str, str, int]


class TransportError(OSError):
    """Connection failures, resets, and protocol-level stream errors."""


class TransportTimeout(TransportError):
    """A stream deadline expired mid-operation (see ``set_timeout``).

    Distinct from :class:`TransportError` so the ORB can map it to the
    CORBA ``TIMEOUT`` system exception instead of ``COMM_FAILURE``.
    """


class Stream(Protocol):
    """A reliable, ordered byte stream."""

    def send(self, data) -> None:
        """Write all of ``data`` (bytes-like)."""
        ...

    def sendv(self, chunks: Sequence) -> None:
        """Gather-write every chunk, in order, without staging copies."""
        ...

    def recv_exact(self, n: int) -> memoryview:
        """Read exactly ``n`` bytes; raises TransportError on EOF."""
        ...

    def recv_into(self, view: memoryview) -> None:
        """Fill ``view`` completely with the next bytes of the stream."""
        ...

    def close(self) -> None: ...

    @property
    def peer(self) -> str: ...

    # Optional capabilities (not part of the structural protocol),
    # feature-tested with ``getattr(stream, name, None)``:
    #
    # * streams that can block indefinitely (TCP) expose
    #   ``set_timeout(seconds | None)``; a blocking operation that
    #   exceeds the timeout raises TransportTimeout;
    # * streams over a real socket expose
    #   ``send_file(fd, offset, count) -> bool``: send a file range
    #   without reading it into user space (``os.sendfile``), returning
    #   True on the kernel path or False after the byte-identical
    #   copying fallback ran.  Streams without it get file payloads as
    #   mapped views through ``sendv`` — the copy tier;
    # * streams whose read side may be owned by the asyncio reactor
    #   (repro.orb.reactor) set the class attribute
    #   ``reactor_safe = True`` and expose ``fileno()`` plus
    #   ``recv_into_nb(view) -> Optional[int]`` — one non-blocking recv
    #   returning None on would-block, the byte count otherwise.
    #   Wrapping streams that intercept reads (FaultyStream) must set
    #   ``reactor_safe = False`` explicitly so attribute delegation
    #   cannot leak the inner stream's capability past the wrapper.


class Listener(Protocol):
    """Accepts inbound streams and announces its bound endpoint."""

    @property
    def endpoint(self) -> Endpoint: ...

    def close(self) -> None: ...


#: server callback invoked with each accepted stream
AcceptHandler = Callable[[Stream], None]


class Transport(Protocol):
    """Factory for streams and listeners under one scheme.

    ``connect`` takes an optional ``timeout`` (seconds) bounding the
    dial; in-process transports ignore it, socket transports map expiry
    to :class:`TransportTimeout`.
    """

    scheme: str

    def connect(self, endpoint: Endpoint,
                timeout: Optional[float] = None) -> Stream: ...

    def listen(self, host: str, port: int,
               on_accept: AcceptHandler) -> Listener: ...


class TransportRegistry:
    """scheme -> transport instance, used by the ORB to resolve IORs."""

    def __init__(self):
        self._by_scheme: dict[str, Transport] = {}

    def register(self, transport: Transport) -> None:
        self._by_scheme[transport.scheme] = transport

    def get(self, scheme: str) -> Transport:
        try:
            return self._by_scheme[scheme]
        except KeyError:
            known = ", ".join(sorted(self._by_scheme)) or "(none)"
            raise TransportError(
                f"no transport registered for scheme {scheme!r} "
                f"(known: {known})") from None

    def __contains__(self, scheme: str) -> bool:
        return scheme in self._by_scheme


def registry() -> TransportRegistry:
    """A fresh registry pre-loaded with the built-in transports."""
    from .loopback import LoopbackTransport
    from .shm import ShmTransport
    from .tcp import TCPTransport

    reg = TransportRegistry()
    reg.register(LoopbackTransport())
    reg.register(TCPTransport())
    reg.register(ShmTransport())
    return reg
