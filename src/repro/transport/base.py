"""Transport abstraction: byte streams under the GIOP connection layer.

The ORB's ``GIOPConn`` (the MICO class of the same name, §4.2) talks to
one of these.  The interface is deliberately shaped for the zero-copy
regime:

* :meth:`Stream.sendv` is a gather-send, so a control message and the
  direct-deposit payloads that follow it are written without first
  being concatenated into a staging buffer;
* :meth:`Stream.recv_into` reads payload bytes *directly into* a
  caller-supplied buffer — on real sockets this is
  ``socket.recv_into`` on the page-aligned landing buffer, the Python
  equivalent of the paper's speculative-defragmentation landing (§4.5).

Three implementations exist: in-process loopback, real TCP, and the
simulated-testbed transport.  They register under a scheme name; IORs
carry the scheme so one ORB can talk over all of them.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence, Tuple

__all__ = ["Stream", "Listener", "Transport", "Endpoint", "TransportError",
           "TransportTimeout", "TransportRegistry", "registry"]

#: (scheme, host, port)
Endpoint = Tuple[str, str, int]


class TransportError(OSError):
    """Connection failures, resets, and protocol-level stream errors."""


class TransportTimeout(TransportError):
    """A stream deadline expired mid-operation (see ``set_timeout``).

    Distinct from :class:`TransportError` so the ORB can map it to the
    CORBA ``TIMEOUT`` system exception instead of ``COMM_FAILURE``.
    """


class Stream(Protocol):
    """A reliable, ordered byte stream."""

    def send(self, data) -> None:
        """Write all of ``data`` (bytes-like)."""
        ...

    def sendv(self, chunks: Sequence) -> None:
        """Gather-write every chunk, in order, without staging copies."""
        ...

    def recv_exact(self, n: int) -> memoryview:
        """Read exactly ``n`` bytes; raises TransportError on EOF."""
        ...

    def recv_into(self, view: memoryview) -> None:
        """Fill ``view`` completely with the next bytes of the stream."""
        ...

    def close(self) -> None: ...

    @property
    def peer(self) -> str: ...

    # Optional capability (not part of the structural protocol): streams
    # that can block indefinitely (TCP) additionally expose
    # ``set_timeout(seconds | None)``; a blocking operation that exceeds
    # the timeout raises TransportTimeout.  Callers must feature-test
    # with ``getattr(stream, "set_timeout", None)``.


class Listener(Protocol):
    """Accepts inbound streams and announces its bound endpoint."""

    @property
    def endpoint(self) -> Endpoint: ...

    def close(self) -> None: ...


#: server callback invoked with each accepted stream
AcceptHandler = Callable[[Stream], None]


class Transport(Protocol):
    """Factory for streams and listeners under one scheme."""

    scheme: str

    def connect(self, endpoint: Endpoint) -> Stream: ...

    def listen(self, host: str, port: int,
               on_accept: AcceptHandler) -> Listener: ...


class TransportRegistry:
    """scheme -> transport instance, used by the ORB to resolve IORs."""

    def __init__(self):
        self._by_scheme: dict[str, Transport] = {}

    def register(self, transport: Transport) -> None:
        self._by_scheme[transport.scheme] = transport

    def get(self, scheme: str) -> Transport:
        try:
            return self._by_scheme[scheme]
        except KeyError:
            known = ", ".join(sorted(self._by_scheme)) or "(none)"
            raise TransportError(
                f"no transport registered for scheme {scheme!r} "
                f"(known: {known})") from None

    def __contains__(self, scheme: str) -> bool:
        return scheme in self._by_scheme


def registry() -> TransportRegistry:
    """A fresh registry pre-loaded with the built-in transports."""
    from .loopback import LoopbackTransport
    from .shm import ShmTransport
    from .tcp import TCPTransport

    reg = TransportRegistry()
    reg.register(LoopbackTransport())
    reg.register(TCPTransport())
    reg.register(ShmTransport())
    return reg
