"""In-process loopback transport with synchronous delivery.

Connects client and server ORBs living in the same process: a
``send()`` on one end synchronously invokes the peer's data handler, so
a complete request/reply cycle runs to completion inside the client's
call — no threads, deterministic, ideal for tests and single-process
examples.

The "wire" of this transport is one ``memoryview`` copy per direction
(standing in for the NIC's DMA); everything above it — the ORB layers —
still moves references only, so end-to-end byte identity plus a single
transport-level copy is the loopback analog of the paper's zero-copy
regime.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from contextlib import contextmanager
from typing import Callable, Optional

from .base import AcceptHandler, Endpoint, TransportError

__all__ = ["LoopbackTransport", "LoopbackStream", "LoopbackListener"]


class LoopbackStream:
    """One end of an in-process stream pair."""

    def __init__(self, name: str):
        self.name = name
        self.peer_stream: Optional["LoopbackStream"] = None
        self._rx: deque = deque()
        self._rx_bytes = 0
        self._closed = False
        self._suppress_notify = 0
        self._on_data: Optional[Callable[[], None]] = None
        self._lock = threading.RLock()
        #: transport-level bytes copied into receive buffers (the "DMA")
        self.bytes_received = 0
        self.bytes_sent = 0

    # -- wiring ---------------------------------------------------------------
    def set_data_handler(self, handler: Optional[Callable[[], None]]) -> None:
        """Register a callback invoked after new data is queued.

        The server side of a connection uses this to pump its GIOP
        read loop synchronously from the sender's thread.
        """
        self._on_data = handler
        if handler is not None and self._rx_bytes:
            handler()

    # -- sending ---------------------------------------------------------------
    def send(self, data) -> None:
        self.sendv([data])

    def sendv(self, chunks) -> None:
        peer = self.peer_stream
        if self._closed or peer is None or peer._closed:
            raise TransportError(f"loopback stream {self.name} is closed")
        total = 0
        with peer._lock:
            for chunk in chunks:
                view = chunk if isinstance(chunk, memoryview) \
                    else memoryview(chunk)
                if view.format != "B" or view.ndim != 1:
                    view = view.cast("B")
                if view.nbytes == 0:
                    continue
                # keep a private copy: the sender may reuse its buffer
                # after send() returns (socket semantics)
                peer._rx.append(bytes(view))
                peer._rx_bytes += view.nbytes
                total += view.nbytes
        self.bytes_sent += total
        if peer._on_data is not None and not peer._suppress_notify:
            peer._on_data()

    @contextmanager
    def send_batch(self):
        """Defer the peer's synchronous data-handler notification until
        the batch completes.

        Loopback delivery is synchronous: every ``sendv`` pumps the
        peer's GIOP read loop before returning.  A traced connection
        writes the control message and the deposit payloads as two
        timed ``sendv`` calls; batching them keeps the peer from
        reading a control message whose payloads are not queued yet —
        the loopback equivalent of one gather write.
        """
        peer = self.peer_stream
        if peer is None:
            yield
            return
        peer._suppress_notify += 1
        try:
            yield
        finally:
            peer._suppress_notify -= 1
            if not peer._suppress_notify and peer._on_data is not None \
                    and peer._rx_bytes:
                peer._on_data()

    # -- receiving ---------------------------------------------------------------
    @property
    def available(self) -> int:
        return self._rx_bytes

    def recv_exact(self, n: int) -> memoryview:
        out = bytearray(n)
        self.recv_into(memoryview(out))
        return memoryview(out)

    def recv_into(self, view: memoryview) -> None:
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        need = view.nbytes
        with self._lock:
            if need > self._rx_bytes:
                raise TransportError(
                    f"loopback stream {self.name}: need {need} bytes, "
                    f"only {self._rx_bytes} queued (peer closed or "
                    f"protocol error)")
            pos = 0
            while pos < need:
                chunk = self._rx[0]
                take = min(len(chunk), need - pos)
                view[pos:pos + take] = chunk[:take]
                pos += take
                if take == len(chunk):
                    self._rx.popleft()
                else:
                    self._rx[0] = chunk[take:]
                self._rx_bytes -= take
                # per-chunk counting, mirroring TCPStream.recv_into:
                # partial progress is never lost from the counter
                self.bytes_received += take

    def set_timeout(self, seconds) -> None:
        """Interface parity with TCP: loopback reads never block (they
        raise immediately when short of bytes), so this is a no-op."""

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        already = self._closed
        self._closed = True
        peer = self.peer_stream
        peer_was_open = peer is not None and not peer._closed
        if peer_was_open:
            peer._closed = True
        if already:
            return
        # wake both ends' data handlers: a reply demultiplexer pumped by
        # data arrival would otherwise never learn the stream died (a
        # loopback read never blocks, so there is no blocked read to
        # raise from) and its in-flight futures would hang forever
        if peer_was_open and peer._on_data is not None \
                and not peer._suppress_notify:
            peer._on_data()
        if self._on_data is not None and not self._suppress_notify:
            self._on_data()

    @property
    def peer(self) -> str:
        return self.peer_stream.name if self.peer_stream else "(unconnected)"


class LoopbackListener:
    def __init__(self, transport: "LoopbackTransport", endpoint: Endpoint,
                 on_accept: AcceptHandler):
        self._transport = transport
        self._endpoint = endpoint
        self.on_accept = on_accept

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def close(self) -> None:
        self._transport._listeners.pop(self._endpoint[1:], None)


#: every LoopbackTransport instance shares this map, so ORBs created
#: with independent transport registries can still reach each other
_GLOBAL_LISTENERS: dict = {}


class LoopbackTransport:
    """Process-wide loopback: listeners keyed by (host, port)."""

    scheme = "loop"

    _AUTO_PORT = itertools.count(9000)

    def __init__(self):
        self._listeners = _GLOBAL_LISTENERS
        self._conn_ids = itertools.count(1)

    def listen(self, host: str, port: int,
               on_accept: AcceptHandler) -> LoopbackListener:
        if port == 0:
            port = next(self._AUTO_PORT)
        key = (host, port)
        if key in self._listeners:
            raise TransportError(f"loopback endpoint {key} already bound")
        listener = LoopbackListener(self, (self.scheme, host, port), on_accept)
        self._listeners[key] = listener
        return listener

    def connect(self, endpoint: Endpoint,
                timeout: Optional[float] = None) -> LoopbackStream:
        # in-process rendezvous: the dial is instantaneous, so the
        # connect timeout is accepted for interface parity and ignored
        scheme, host, port = endpoint
        if scheme != self.scheme:
            raise TransportError(f"loopback cannot dial scheme {scheme!r}")
        listener = self._listeners.get((host, port))
        if listener is None:
            raise TransportError(f"nothing listening on loop!{host}:{port}")
        cid = next(self._conn_ids)
        client = LoopbackStream(f"loop-client-{cid}")
        server = LoopbackStream(f"loop-server-{cid}")
        client.peer_stream = server
        server.peer_stream = client
        listener.on_accept(server)
        return client
