"""Pluggable byte transports under the GIOP connection layer:
in-process loopback, real TCP sockets, and the simulated testbed
(:mod:`repro.transport.sim`)."""

from .base import (Endpoint, Listener, Stream, Transport, TransportError,
                   TransportRegistry, registry)
from .loopback import LoopbackListener, LoopbackStream, LoopbackTransport
from .tcp import TCPListener, TCPStream, TCPTransport

__all__ = [
    "Stream", "Listener", "Transport", "Endpoint", "TransportError",
    "TransportRegistry", "registry",
    "LoopbackTransport", "LoopbackStream", "LoopbackListener",
    "TCPTransport", "TCPStream", "TCPListener",
]
