"""Pluggable byte transports under the GIOP connection layer:
in-process loopback, real TCP sockets, the simulated testbed
(:mod:`repro.transport.sim`), and a fault-injection wrapper over any of
them (:mod:`repro.transport.faulty`)."""

from .base import (Endpoint, Listener, Stream, Transport, TransportError,
                   TransportRegistry, TransportTimeout, registry)
from .faulty import (FaultEvent, FaultPlan, FaultRule, FaultyStream,
                     FaultyTransport, faulty_registry)
from .loopback import LoopbackListener, LoopbackStream, LoopbackTransport
from .tcp import TCPListener, TCPStream, TCPTransport

__all__ = [
    "Stream", "Listener", "Transport", "Endpoint", "TransportError",
    "TransportTimeout", "TransportRegistry", "registry",
    "LoopbackTransport", "LoopbackStream", "LoopbackListener",
    "TCPTransport", "TCPStream", "TCPListener",
    "FaultPlan", "FaultRule", "FaultEvent", "FaultyTransport",
    "FaultyStream", "faulty_registry",
]
